//! Client capability matrix — regenerates the paper's Table 9 by running
//! the nine Table 2 test chains against all eight client profiles.
//!
//! Run with: `cargo run --example capability_matrix`

use chain_chaos::core::clients::ClientKind;
use chain_chaos::core::report::{check, TextTable};
use chain_chaos::testgen::CapabilitySuite;

fn main() {
    let suite = CapabilitySuite::new(1);
    let mut table = TextTable::new(
        "Differences in the capabilities of TLS implementations (paper Table 9)",
        &[
            "Type",
            "OpenSSL",
            "GnuTLS",
            "MbedTLS",
            "CryptoAPI",
            "Chrome",
            "Edge",
            "Safari",
            "Firefox",
        ],
    );

    let rows: Vec<Vec<String>> = {
        let evaluated: Vec<_> = ClientKind::ALL
            .iter()
            .map(|k| {
                eprintln!("evaluating {}…", k.name());
                suite.evaluate(&k.engine())
            })
            .collect();
        let col =
            |f: &dyn Fn(&chain_chaos::testgen::CapabilityRow) -> String| -> Vec<String> {
                evaluated.iter().map(f).collect()
            };
        vec![
            [vec!["Order Reorganization".to_string()], col(&|r| check(r.order_reorganization).to_string())].concat(),
            [vec!["Redundancy Elimination".to_string()], col(&|r| check(r.redundancy_elimination).to_string())].concat(),
            [vec!["AIA Completion".to_string()], col(&|r| check(r.aia_completion).to_string())].concat(),
            [vec!["Validity Priority".to_string()], col(&|r| r.validity_priority.label().to_string())].concat(),
            [vec!["KID Matching Priority".to_string()], col(&|r| r.kid_priority.label().to_string())].concat(),
            [vec!["KeyUsage Correctness Priority".to_string()], col(&|r| if r.key_usage_priority { "KUP".into() } else { "-".into() })].concat(),
            [vec!["Basic Constraints Priority".to_string()], col(&|r| if r.basic_constraints_priority { "BP".into() } else { "-".into() })].concat(),
            [vec!["Path Length Constraint".to_string()], col(&|r| r.max_path_len.label())].concat(),
            [vec!["Self-signed Leaf Certificate".to_string()], col(&|r| check(r.self_signed_leaf).to_string())].concat(),
        ]
    };
    for row in rows {
        table.row(&row);
    }
    println!("{}", table.render());
    println!(
        "Y = supported, x = not supported, - = no priority ordering\n\
         VP1 = first valid, VP2 = most recent then longest among valid\n\
         KP1 = match/absence over mismatch, KP2 = match over absence over mismatch\n\
         KUP/BP = correct KeyUsage / BasicConstraints preferred"
    );
}
