//! Server-side compliance scan over a synthetic Tranco-like corpus —
//! the miniature of the paper's Section 4 measurement.
//!
//! Generates a calibrated population of (domain, served chain)
//! observations and classifies each against the three structural rules
//! (leaf placement, issuance order, completeness), printing Table 3/5/7
//! style summaries.
//!
//! Run with: `cargo run --release --example compliance_scan [domains]`

use chain_chaos::core::report::{count_pct, TextTable};
use chain_chaos::core::{
    analyze_compliance, Completeness, CompletenessAnalyzer, IssuanceChecker, LeafPlacement,
    NonCompliance,
};
use chain_chaos::testgen::{Corpus, CorpusSpec};
use std::collections::BTreeMap;

fn main() {
    let domains: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    eprintln!("generating and scanning {domains} synthetic domains…");

    let corpus = Corpus::new(CorpusSpec::calibrated(833, domains));
    let checker = IssuanceChecker::new();
    let analyzer = CompletenessAnalyzer::new(&checker, corpus.programs.unified(), Some(&corpus.aia));

    let mut placement: BTreeMap<LeafPlacement, usize> = BTreeMap::new();
    let mut order_rows: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut completeness: BTreeMap<Completeness, usize> = BTreeMap::new();
    let mut non_compliant_domains = 0usize;
    let mut order_non_compliant = 0usize;
    let mut examples: BTreeMap<NonCompliance, String> = BTreeMap::new();

    corpus.for_each(|obs| {
        let report = analyze_compliance(&obs.domain, &obs.served, &checker, &analyzer);
        *placement.entry(report.leaf_placement).or_insert(0) += 1;
        *completeness.entry(report.completeness.completeness).or_insert(0) += 1;
        if !report.is_compliant() {
            non_compliant_domains += 1;
        }
        let mut any_order = false;
        for finding in &report.findings {
            let label = match finding {
                NonCompliance::DuplicateCertificates => "Duplicate Certificates",
                NonCompliance::IrrelevantCertificates => "Irrelevant Certificates",
                NonCompliance::MultiplePaths => "Multiple Paths",
                NonCompliance::ReversedSequence => "Reversed Sequences",
                _ => continue,
            };
            any_order = true;
            *order_rows.entry(label).or_insert(0) += 1;
            examples.entry(*finding).or_insert_with(|| obs.domain.clone());
        }
        if any_order {
            order_non_compliant += 1;
        }
    });

    let total = domains;
    let mut t3 = TextTable::new(
        "Leaf certificate deployment (paper Table 3)",
        &["Class", "Domains"],
    );
    for (class, count) in &placement {
        t3.row(&[class.label().to_string(), count_pct(*count, total)]);
    }
    println!("{}", t3.render());

    let mut t5 = TextTable::new(
        "Chains with non-compliant issuance order (paper Table 5)",
        &["Type", "Domains (% of order-non-compliant)"],
    );
    for (label, count) in &order_rows {
        t5.row(&[label.to_string(), count_pct(*count, order_non_compliant)]);
    }
    t5.row(&["Total".to_string(), order_non_compliant.to_string()]);
    println!("{}", t5.render());

    let mut t7 = TextTable::new(
        "Completeness of certificate chain (paper Table 7)",
        &["Type", "Domains"],
    );
    for (class, count) in &completeness {
        t7.row(&[class.label().to_string(), count_pct(*count, total)]);
    }
    println!("{}", t7.render());

    println!(
        "overall: {} non-compliant deployments (paper: 2.9% of Tranco Top 1M)",
        count_pct(non_compliant_domains, total)
    );
    if !examples.is_empty() {
        println!("\nexample domains per finding:");
        for (finding, domain) in &examples {
            println!("  {:<28} {}", finding.label(), domain);
        }
    }
}
