//! Quickstart: issue a chain, serve it (messily) over a real loopback
//! socket in TLS Certificate-message framing, and watch the eight client
//! profiles try to build a path from what arrives on the wire.
//!
//! Run with: `cargo run --example quickstart`

use chain_chaos::asn1::Time;
use chain_chaos::core::clients::client_profiles;
use chain_chaos::core::report::TextTable;
use chain_chaos::core::{BuildContext, IssuanceChecker};
use chain_chaos::crypto::{Group, KeyPair};
use chain_chaos::netsim::handshake::loopback_roundtrip;
use chain_chaos::netsim::AiaRepository;
use chain_chaos::rootstore::{CaUniverse, RootPrograms};
use chain_chaos::x509::CertificateBuilder;

fn main() {
    // 1. A synthetic CA universe (13 trusted roots, intermediates,
    //    cross-signs, AIA publications) and the four root programs.
    let universe = CaUniverse::default_with_seed(42);
    let programs = RootPrograms::from_universe(&universe);
    let aia = AiaRepository::new(universe.aia_publications());

    // 2. Issue a leaf for quickstart.sim under Let's Encrypt Sim, via a
    //    sub-CA so the chain has two intermediates:
    //    leaf <- subca <- intermediate <- root.
    let int = &universe.roots[0].intermediates[0];
    let g = Group::simulation_256();
    let subca_kp = KeyPair::from_seed(g, b"quickstart-subca");
    let subca_dn = chain_chaos::x509::DistinguishedName::cn_o("Quickstart Sub CA", "Demo");
    let subca = CertificateBuilder::ca_profile(subca_dn.clone()).issued_by(
        &subca_kp.public,
        int.cert.subject().clone(),
        &int.keypair,
    );
    let kp = KeyPair::from_seed(g, b"quickstart-leaf");
    let leaf = CertificateBuilder::leaf_profile("quickstart.sim")
        .issued_by(&kp.public, subca_dn, &subca_kp);

    // 3. Deploy it the way a confused administrator who merged a reversed
    //    ca-bundle would: leaf first, then the intermediates in REVERSE
    //    issuance order (the single most common real-world
    //    non-compliance).
    let served = vec![leaf, int.cert.clone(), subca];

    // 4. Ship it across a real TCP loopback connection in RFC 5246
    //    Certificate-message framing.
    let received = loopback_roundtrip(&served).expect("loopback handshake");
    println!(
        "served {} certificates over the wire; client received {} (order preserved)\n",
        served.len(),
        received.len()
    );
    assert_eq!(received, served);

    // 5. Every client profile tries to construct a path from the wire
    //    order.
    let checker = IssuanceChecker::new();
    let ctx = BuildContext {
        store: programs.unified(),
        aia: Some(&aia),
        cache: &[],
        now: Time::from_ymd(2024, 7, 1).expect("literal date is valid"),
        checker: &checker,
    };
    let mut table = TextTable::new(
        "Reversed chain: who can rebuild it?",
        &["Client", "Verdict", "Path length", "Candidates tried"],
    );
    for (kind, engine) in client_profiles() {
        let outcome = engine.process(&received, &ctx);
        table.row(&[
            kind.name().to_string(),
            match &outcome.verdict {
                Ok(()) => "accepted".to_string(),
                Err(e) => format!("REJECTED: {e}"),
            },
            outcome.path.len().to_string(),
            outcome.stats.candidates_considered.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "MbedTLS's forward-only parent scan cannot reach an issuer that was served\n\
         before its subject — every other profile reorders and accepts the chain."
    );
}
