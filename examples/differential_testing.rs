//! Differential testing of real-world-shaped chains — the miniature of
//! the paper's Section 5.2.
//!
//! Generates a synthetic corpus, selects the non-compliant chains, runs
//! all eight client profiles on each, and reports agreement rates and the
//! I-1…I-4 root causes of discrepancies.
//!
//! Run with: `cargo run --release --example differential_testing [domains]`

use chain_chaos::core::report::{count_pct, TextTable};
use chain_chaos::core::{
    analyze_compliance, CompletenessAnalyzer, DifferentialHarness, DifferentialReport,
    IssuanceChecker,
};
use chain_chaos::testgen::corpus::scan_time;
use chain_chaos::testgen::{Corpus, CorpusSpec};

fn main() {
    let domains: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    eprintln!("generating {domains} domains and differential-testing the non-compliant ones…");

    let corpus = Corpus::new(CorpusSpec::calibrated(833, domains));
    let checker = IssuanceChecker::new();
    let analyzer =
        CompletenessAnalyzer::new(&checker, corpus.programs.unified(), Some(&corpus.aia));
    let cache = corpus.intermediate_cache();
    let harness = DifferentialHarness::new(
        corpus.programs.unified(),
        Some(&corpus.aia),
        cache,
        scan_time(),
        &checker,
    );

    let mut report = DifferentialReport::default();
    let mut non_compliant = 0usize;
    let mut examples: Vec<(String, String)> = Vec::new();
    corpus.for_each(|obs| {
        let compliance = analyze_compliance(&obs.domain, &obs.served, &checker, &analyzer);
        if compliance.is_compliant() {
            return;
        }
        non_compliant += 1;
        let result = harness.run(&obs.served);
        if examples.len() < 8 && !result.causes.is_empty() {
            let causes: Vec<&str> = result.causes.iter().map(|c| c.label()).collect();
            examples.push((obs.domain.clone(), causes.join(", ")));
        }
        report.absorb(&result);
    });

    println!(
        "non-compliant chains under test: {} (of {domains} domains)\n",
        non_compliant
    );
    let mut t = TextTable::new(
        "Differential results over non-compliant chains (paper Section 5.2)",
        &["Metric", "Chains"],
    );
    t.row(&[
        "passed all 4 browsers".into(),
        count_pct(report.all_browsers_pass, report.total),
    ]);
    t.row(&[
        "passed all 4 libraries".into(),
        count_pct(report.all_libraries_pass, report.total),
    ]);
    t.row(&[
        "browser-vs-browser discrepancies".into(),
        count_pct(report.browser_discrepancies, report.total),
    ]);
    t.row(&[
        "library-vs-library discrepancies".into(),
        count_pct(report.library_discrepancies, report.total),
    ]);
    t.row(&[
        "some library fails (availability impact)".into(),
        count_pct(report.library_failures, report.total),
    ]);
    t.row(&[
        "some browser fails (warning page)".into(),
        count_pct(report.browser_failures, report.total),
    ]);
    println!("{}", t.render());

    let mut causes = TextTable::new("Discrepancy root causes", &["Cause", "Chains"]);
    for (cause, count) in &report.causes {
        causes.row(&[cause.label().to_string(), count.to_string()]);
    }
    println!("{}", causes.render());

    let mut per_client = TextTable::new("Per-client acceptance", &["Client", "Accepted"]);
    for (kind, pass) in &report.per_client_pass {
        per_client.row(&[kind.name().to_string(), count_pct(*pass, report.total)]);
    }
    println!("{}", per_client.render());

    if !examples.is_empty() {
        println!("example discrepant domains:");
        for (domain, causes) in examples {
            println!("  {domain:<20} {causes}");
        }
    }
}
