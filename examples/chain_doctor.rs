//! Chain doctor: diagnose the paper's case-study topologies (Figures 2–5)
//! and print, for each, the issuance graph, the compliance findings, the
//! per-client verdicts, and the fix the paper's Section 6 recommends.
//!
//! Run with: `cargo run --example chain_doctor`

use chain_chaos::core::clients::client_profiles;
use chain_chaos::core::report::TextTable;
use chain_chaos::core::{
    analyze_compliance, BuildContext, CompletenessAnalyzer, IssuanceChecker, NonCompliance,
    TopologyGraph,
};
use chain_chaos::testgen::scenarios::{Scenario, ScenarioSet};

fn recommend(findings: &[NonCompliance]) -> Vec<&'static str> {
    let mut recs = Vec::new();
    for finding in findings {
        recs.push(match finding {
            NonCompliance::LeafMisplaced => {
                "place the server certificate first in the configured chain file"
            }
            NonCompliance::DuplicateCertificates => {
                "remove duplicate certificates; keep the leaf only in the certificate file, \
                 not the chain file"
            }
            NonCompliance::IrrelevantCertificates => {
                "remove stale or unrelated certificates left over from renewals or co-hosted \
                 domains"
            }
            NonCompliance::MultiplePaths => {
                "order cross-signed certificates by issuance so each certificate directly \
                 certifies the one preceding it"
            }
            NonCompliance::ReversedSequence => {
                "reverse the ca-bundle into issuance order before concatenating (several \
                 resellers deliver it reversed)"
            }
            NonCompliance::IncompleteChain => {
                "include every intermediate certificate; only the root may be omitted"
            }
        });
    }
    if recs.is_empty() {
        recs.push("deployment is structurally compliant");
    }
    recs
}

fn diagnose(set: &ScenarioSet, scenario: &Scenario) {
    println!("────────────────────────────────────────────────────────────");
    println!("{} — {}", scenario.name, scenario.description);
    println!("domain: {}   served: {} certificates", scenario.domain, scenario.served.len());

    let checker = IssuanceChecker::new();
    let graph = TopologyGraph::build(&scenario.served, &checker);
    println!("topology: {}", graph.describe());

    let analyzer = CompletenessAnalyzer::new(&checker, &set.store, Some(&set.aia));
    let report = analyze_compliance(&scenario.domain, &scenario.served, &checker, &analyzer);
    if report.findings.is_empty() {
        println!("findings: none (compliant)");
    } else {
        let labels: Vec<&str> = report.findings.iter().map(|f| f.label()).collect();
        println!("findings: {}", labels.join(", "));
    }

    let ctx = BuildContext {
        store: &set.store,
        aia: Some(&set.aia),
        cache: &[],
        now: set.now,
        checker: &checker,
    };
    let mut table = TextTable::new("", &["Client", "Verdict"]);
    for (kind, engine) in client_profiles() {
        let outcome = engine.process(&scenario.served, &ctx);
        table.row(&[
            kind.name().to_string(),
            match &outcome.verdict {
                Ok(()) => "accepted".to_string(),
                Err(e) => format!("REJECTED: {e}"),
            },
        ]);
    }
    println!("{}", table.render());
    println!("recommendations:");
    for rec in recommend(&report.findings) {
        println!("  - {rec}");
    }
    println!();
}

fn main() {
    let set = ScenarioSet::new(5);
    let scenarios = vec![
        set.figure2a(),
        set.figure2b(),
        set.figure2c(),
        set.figure2d(),
        set.figure3(),
        set.figure4(),
        set.figure5().0,
    ];
    for scenario in &scenarios {
        diagnose(&set, scenario);
    }
}
