//! Integration tests for the `chain-chaos` CLI binary, driven through the
//! real executable with PEM files on disk.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chain-chaos"))
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chain-chaos-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn no_args_prints_usage_and_fails() {
    let output = bin().output().expect("run");
    assert!(!output.status.success());
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("commands:"), "{err}");
}

#[test]
fn demo_pki_analyze_and_matrix_roundtrip() {
    let dir = tempdir("roundtrip");
    let out = dir.to_str().unwrap();

    // Generate the demo PKI.
    let output = bin().args(["demo-pki", "--out", out]).output().expect("run");
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    for file in [
        "root.pem",
        "intermediate.pem",
        "leaf.pem",
        "fullchain.pem",
        "reversed-chain.pem",
    ] {
        assert!(dir.join(file).exists(), "{file} missing");
    }

    // Analyze the reversed chain.
    let reversed = dir.join("reversed-chain.pem");
    let root = dir.join("root.pem");
    let output = bin()
        .args([
            "analyze",
            reversed.to_str().unwrap(),
            "--domain",
            "demo.example",
            "--store",
            root.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("NON-COMPLIANT"), "{text}");
    assert!(text.contains("Correctly Placed and Matched"), "{text}");
    assert!(text.contains("Complete Chain w/ Root"), "{text}");

    // Matrix: all eight clients appear.
    let output = bin()
        .args([
            "matrix",
            reversed.to_str().unwrap(),
            "--store",
            root.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    for client in ["OpenSSL", "GnuTLS", "MbedTLS", "CryptoAPI", "Chrome", "Safari", "Firefox"] {
        assert!(text.contains(client), "missing {client}: {text}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn build_detects_untrusted_and_hostname_issues() {
    let dir = tempdir("build");
    let out = dir.to_str().unwrap();
    bin().args(["demo-pki", "--out", out]).output().expect("run");
    let chain = dir.join("fullchain.pem");
    let root = dir.join("root.pem");

    // Without a store: untrusted root.
    let output = bin()
        .args(["build", chain.to_str().unwrap(), "--client", "chrome"])
        .output()
        .expect("run");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("REJECTED"), "{text}");

    // With the store: accepted.
    let output = bin()
        .args([
            "build",
            chain.to_str().unwrap(),
            "--client",
            "chrome",
            "--store",
            root.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("accepted"), "{text}");
    assert!(text.contains("demo.example <-"), "{text}");

    // Wrong domain: hostname mismatch.
    let output = bin()
        .args([
            "build",
            chain.to_str().unwrap(),
            "--store",
            root.to_str().unwrap(),
            "--domain",
            "other.example",
        ])
        .output()
        .expect("run");
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("hostname mismatch"), "{text}");

    // Expired clock: rejected.
    let output = bin()
        .args([
            "build",
            chain.to_str().unwrap(),
            "--store",
            root.to_str().unwrap(),
            "--time",
            "2039-01-01",
        ])
        .output()
        .expect("run");
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("expired"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lint_reports_findings_and_respects_baselines() {
    let dir = tempdir("lint");
    let out = dir.to_str().unwrap();
    bin().args(["demo-pki", "--out", out]).output().expect("run");
    let reversed = dir.join("reversed-chain.pem");
    let root = dir.join("root.pem");

    // Reversed chain: error finding, non-zero exit.
    let output = bin()
        .args([
            "lint",
            reversed.to_str().unwrap(),
            "--store",
            root.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert!(!output.status.success(), "reversed chain must fail lint");
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("e_chain_reversed_order"), "{text}");
    assert!(text.contains("w_root_included"), "{text}");

    // SARIF output parses as the expected envelope.
    let output = bin()
        .args([
            "lint",
            reversed.to_str().unwrap(),
            "--store",
            root.to_str().unwrap(),
            "--format",
            "sarif",
        ])
        .output()
        .expect("run");
    let sarif = String::from_utf8_lossy(&output.stdout);
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"name\": \"ccc-lint\""), "{sarif}");
    assert!(sarif.contains("e_chain_reversed_order"), "{sarif}");

    // Baseline round-trip: write, then re-lint clean.
    let baseline = dir.join("baseline.json");
    let output = bin()
        .args([
            "lint",
            reversed.to_str().unwrap(),
            "--store",
            root.to_str().unwrap(),
            "--write-baseline",
            baseline.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert!(output.status.success());
    let output = bin()
        .args([
            "lint",
            reversed.to_str().unwrap(),
            "--store",
            root.to_str().unwrap(),
            "--baseline",
            baseline.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert!(
        output.status.success(),
        "baselined lint must pass: {}",
        String::from_utf8_lossy(&output.stdout)
    );
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("0 finding(s)"), "{text}");

    // Clean chain passes without a baseline (no errors; info findings ok).
    let full = dir.join("fullchain.pem");
    let output = bin()
        .args([
            "lint",
            full.to_str().unwrap(),
            "--store",
            root.to_str().unwrap(),
            "--format",
            "json",
        ])
        .output()
        .expect("run");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(!line.contains("\"severity\":\"error\""), "{line}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_inputs_produce_clean_errors() {
    let output = bin()
        .args(["analyze", "/nonexistent/file.pem"])
        .output()
        .expect("run");
    assert!(!output.status.success());
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("cannot read"), "{err}");

    let dir = tempdir("bad");
    let junk = dir.join("junk.pem");
    std::fs::write(&junk, "this is not pem").unwrap();
    let output = bin()
        .args(["analyze", junk.to_str().unwrap()])
        .output()
        .expect("run");
    assert!(!output.status.success());

    let output = bin()
        .args(["build", junk.to_str().unwrap(), "--client", "netscape"])
        .output()
        .expect("run");
    assert!(!output.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
