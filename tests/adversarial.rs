//! Adversarial-topology tests: cyclic cross-signing (the CVE-2024-0567
//! GnuTLS DoS pattern the paper's introduction cites), self-issued spam,
//! and absurdly long duplicate runs. The invariant under test is always:
//! every engine terminates with a defined verdict, never hangs or panics.

use chain_chaos::asn1::Time;
use chain_chaos::core::clients::ClientKind;
use chain_chaos::core::{analyze_order, BuildContext, IssuanceChecker, TopologyGraph};
use chain_chaos::crypto::{Group, KeyPair};
use chain_chaos::netsim::AiaRepository;
use chain_chaos::rootstore::RootStore;
use chain_chaos::x509::{Certificate, CertificateBuilder, DistinguishedName};

fn now() -> Time {
    Time::from_ymd(2024, 7, 1).expect("literal date is valid")
}

/// Two CAs that cross-sign EACH OTHER: A-signed-by-B and B-signed-by-A,
/// forming a cycle with no root.
fn cyclic_cross_sign() -> Vec<Certificate> {
    let g = Group::simulation_256();
    let a_kp = KeyPair::from_seed(g, b"cycle-a");
    let b_kp = KeyPair::from_seed(g, b"cycle-b");
    let leaf_kp = KeyPair::from_seed(g, b"cycle-leaf");
    let a_dn = DistinguishedName::cn("Cycle CA A");
    let b_dn = DistinguishedName::cn("Cycle CA B");
    let a_by_b = CertificateBuilder::ca_profile(a_dn.clone()).issued_by(
        &a_kp.public,
        b_dn.clone(),
        &b_kp,
    );
    let b_by_a = CertificateBuilder::ca_profile(b_dn.clone()).issued_by(
        &b_kp.public,
        a_dn.clone(),
        &a_kp,
    );
    let leaf = CertificateBuilder::leaf_profile("cycle.sim").issued_by(
        &leaf_kp.public,
        a_dn,
        &a_kp,
    );
    vec![leaf, a_by_b, b_by_a]
}

#[test]
fn cyclic_cross_signing_terminates_everywhere() {
    let served = cyclic_cross_sign();
    let checker = IssuanceChecker::new();
    // Topology enumeration is finite (simple paths cut the cycle).
    let graph = TopologyGraph::build(&served, &checker);
    let paths = graph.leaf_paths(64);
    assert!(!paths.is_empty());
    for path in &paths {
        assert!(path.len() <= 3);
    }
    // Surprisingly the LIST is order-compliant (leaf <- A <- B is the
    // served order; the B <- A cycle edge never appears in a simple
    // path) — the cycle bites as *unanchorable completeness*, which is
    // exactly how CVE-2024-0567-style inputs present.
    let order = analyze_order(&served, &checker);
    assert!(order.is_compliant());

    // Every client returns a defined verdict (nobody can anchor a cycle
    // with an empty trust store).
    let store = RootStore::new("empty", vec![]);
    let aia = AiaRepository::empty();
    let ctx = BuildContext {
        store: &store,
        aia: Some(&aia),
        cache: &[],
        now: now(),
        checker: &checker,
    };
    for kind in ClientKind::ALL {
        let outcome = kind.engine().process(&served, &ctx);
        assert!(!outcome.accepted(), "{} accepted a rootless cycle", kind.name());
    }
}

#[test]
fn cyclic_cross_signing_with_trusted_escape() {
    // Same cycle, but CA A also has a root-signed certificate in the
    // list: backtracking clients must find the escape hatch.
    let g = Group::simulation_256();
    let mut served = cyclic_cross_sign();
    let root_kp = KeyPair::from_seed(g, b"cycle-root");
    let root_dn = DistinguishedName::cn("Cycle Root");
    let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
    let a_kp = KeyPair::from_seed(g, b"cycle-a");
    let a_by_root = CertificateBuilder::ca_profile(DistinguishedName::cn("Cycle CA A"))
        .issued_by(&a_kp.public, root_dn, &root_kp);
    served.push(a_by_root);

    let checker = IssuanceChecker::new();
    let store = RootStore::new("with-root", vec![root]);
    let aia = AiaRepository::empty();
    let ctx = BuildContext {
        store: &store,
        aia: Some(&aia),
        cache: &[],
        now: now(),
        checker: &checker,
    };
    let chrome = ClientKind::Chrome.engine().process(&served, &ctx);
    assert!(chrome.accepted(), "{:?}", chrome.verdict);
    // OpenSSL walks into the cycle first; without backtracking it fails.
    let openssl = ClientKind::OpenSsl.engine().process(&served, &ctx);
    let _ = openssl; // either verdict is defined; just must not hang
}

#[test]
fn fifty_duplicates_of_everything() {
    let g = Group::simulation_256();
    let root_kp = KeyPair::from_seed(g, b"dup-root");
    let leaf_kp = KeyPair::from_seed(g, b"dup-leaf");
    let root_dn = DistinguishedName::cn("Dup Root");
    let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
    let leaf =
        CertificateBuilder::leaf_profile("dup.sim").issued_by(&leaf_kp.public, root_dn, &root_kp);
    let mut served = vec![leaf];
    for _ in 0..50 {
        served.push(root.clone());
    }

    let checker = IssuanceChecker::new();
    let order = analyze_order(&served, &checker);
    assert_eq!(order.duplicates.root, 49);
    let graph = TopologyGraph::build(&served, &checker);
    assert_eq!(graph.unique_len(), 2, "dedup collapses the spam");

    let store = RootStore::new("s", vec![root]);
    let aia = AiaRepository::empty();
    let ctx = BuildContext {
        store: &store,
        aia: Some(&aia),
        cache: &[],
        now: now(),
        checker: &checker,
    };
    for kind in ClientKind::ALL {
        let outcome = kind.engine().process(&served, &ctx);
        if kind == ClientKind::GnuTls {
            // 51 > its 16-certificate list limit.
            assert!(!outcome.accepted());
        } else {
            assert!(outcome.accepted(), "{}: {:?}", kind.name(), outcome.verdict);
        }
    }
}

#[test]
fn all_self_signed_junk_list() {
    let g = Group::simulation_256();
    let mut served = Vec::new();
    for i in 0..8 {
        let kp = KeyPair::from_seed(g, format!("junk-{i}").as_bytes());
        served.push(
            CertificateBuilder::ca_profile(DistinguishedName::cn(format!("Junk {i}")))
                .self_signed(&kp),
        );
    }
    let checker = IssuanceChecker::new();
    let store = RootStore::new("empty", vec![]);
    let aia = AiaRepository::empty();
    let ctx = BuildContext {
        store: &store,
        aia: Some(&aia),
        cache: &[],
        now: now(),
        checker: &checker,
    };
    for kind in ClientKind::ALL {
        let outcome = kind.engine().process(&served, &ctx);
        assert!(!outcome.accepted());
    }
}

#[test]
fn same_subject_many_keys_candidate_storm() {
    // 12 intermediates share the subject DN but have DIFFERENT keys; only
    // one actually signed the leaf. Backtracking clients must try
    // candidates until the signature matches, and still terminate fast.
    let g = Group::simulation_256();
    let root_kp = KeyPair::from_seed(g, b"storm-root");
    let root_dn = DistinguishedName::cn("Storm Root");
    let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
    let shared_dn = DistinguishedName::cn("Storm CA");
    let mut intermediates = Vec::new();
    let mut signer = None;
    for i in 0..12 {
        let kp = KeyPair::from_seed(g, format!("storm-{i}").as_bytes());
        let cert = CertificateBuilder::ca_profile(shared_dn.clone()).issued_by(
            &kp.public,
            root_dn.clone(),
            &root_kp,
        );
        intermediates.push(cert);
        if i == 7 {
            signer = Some(kp);
        }
    }
    let signer = signer.unwrap();
    let leaf_kp = KeyPair::from_seed(g, b"storm-leaf");
    let leaf = CertificateBuilder::leaf_profile("storm.sim").issued_by(
        &leaf_kp.public,
        shared_dn,
        &signer,
    );
    let mut served = vec![leaf];
    served.extend(intermediates);

    let checker = IssuanceChecker::new();
    let store = RootStore::new("s", vec![root]);
    let aia = AiaRepository::empty();
    let ctx = BuildContext {
        store: &store,
        aia: Some(&aia),
        cache: &[],
        now: now(),
        checker: &checker,
    };
    let chrome = ClientKind::Chrome.engine().process(&served, &ctx);
    assert!(chrome.accepted(), "{:?}", chrome.verdict);
    // KID priority should steer Chrome straight to the right candidate
    // (the leaf's AKID names intermediate #7's key).
    assert!(chrome.stats.candidates_considered <= 6, "{:?}", chrome.stats);
}
