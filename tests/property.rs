//! Property-based tests across the workspace: DER codecs, big integers,
//! chain mutations, and engine robustness.

use chain_chaos::asn1::{Encoder, Parser, Time};
use chain_chaos::bignum::{modpow, Uint};
use chain_chaos::core::clients::ClientKind;
use chain_chaos::core::{BuildContext, IssuanceChecker};
use chain_chaos::crypto::{sha256, Drbg, Group, KeyPair};
use chain_chaos::netsim::tlsmsg;
use chain_chaos::rootstore::{CaUniverse, RootPrograms};
use chain_chaos::testgen::Mutator;
use chain_chaos::x509::{Certificate, CertificateBuilder, DistinguishedName};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uint_add_sub_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..48),
                              b in proptest::collection::vec(any::<u8>(), 0..48)) {
        let ua = Uint::from_bytes_be(&a);
        let ub = Uint::from_bytes_be(&b);
        let sum = ua.add(&ub);
        prop_assert_eq!(sum.checked_sub(&ub).unwrap(), ua.clone());
        prop_assert_eq!(sum.checked_sub(&ua).unwrap(), ub);
    }

    #[test]
    fn uint_div_rem_reconstructs(a in proptest::collection::vec(any::<u8>(), 0..48),
                                 b in proptest::collection::vec(any::<u8>(), 1..24)) {
        let ua = Uint::from_bytes_be(&a);
        let ub = Uint::from_bytes_be(&b);
        prop_assume!(!ub.is_zero());
        let (q, r) = ua.div_rem(&ub).unwrap();
        prop_assert!(r < ub);
        prop_assert_eq!(q.mul(&ub).add(&r), ua);
    }

    #[test]
    fn uint_bytes_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..64)) {
        let ua = Uint::from_bytes_be(&a);
        let back = Uint::from_bytes_be(&ua.to_bytes_be());
        prop_assert_eq!(back, ua);
    }

    #[test]
    fn modpow_matches_iterated_multiplication(base in 1u64..1000, exp in 0u64..64, modulus in 2u64..10_000) {
        let m = Uint::from_u64(modulus);
        let expected = {
            let mut acc = 1u128;
            for _ in 0..exp {
                acc = acc * base as u128 % modulus as u128;
            }
            Uint::from_u64(acc as u64)
        };
        let got = modpow(&Uint::from_u64(base), &Uint::from_u64(exp), &m).unwrap();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn der_integer_roundtrip(v in any::<i64>()) {
        let mut enc = Encoder::new();
        enc.integer_i64(v);
        let der = enc.finish();
        let mut p = Parser::new(&der);
        prop_assert_eq!(p.integer_i64().unwrap(), v);
        p.expect_done().unwrap();
    }

    #[test]
    fn der_octet_string_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut enc = Encoder::new();
        enc.octet_string(&data);
        let der = enc.finish();
        let mut p = Parser::new(&der);
        prop_assert_eq!(p.octet_string().unwrap(), &data[..]);
    }

    #[test]
    fn parser_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut p = Parser::new(&data);
        // Walk TLVs until error or exhaustion; must never panic.
        while !p.is_done() {
            if p.read_any().is_err() {
                break;
            }
        }
    }

    #[test]
    fn certificate_parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Certificate::from_der(&data);
    }

    #[test]
    fn time_roundtrip(secs in -2_000_000_000i64..4_000_000_000i64) {
        let t = Time::from_unix(secs);
        let dt = t.to_datetime();
        let back = Time::from_ymd_hms(dt.year, dt.month, dt.day, dt.hour, dt.minute, dt.second)
            .expect("datetime from valid time is valid");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn sha256_is_deterministic_and_length_sensitive(
        data in proptest::collection::vec(any::<u8>(), 0..200)
    ) {
        let d1 = sha256(&data);
        let d2 = sha256(&data);
        prop_assert_eq!(d1, d2);
        let mut extended = data.clone();
        extended.push(0);
        prop_assert_ne!(sha256(&extended), d1);
    }

    #[test]
    fn schnorr_rejects_bit_flips(flip_byte in 0usize..64, flip_bit in 0u8..8) {
        let kp = KeyPair::from_seed(Group::simulation_256(), b"prop-schnorr");
        let mut sig = kp.private.sign(b"property message");
        let bytes_len = 32 + sig.s.len();
        let idx = flip_byte % bytes_len;
        if idx < 32 {
            sig.e[idx] ^= 1 << flip_bit;
        } else {
            sig.s[idx - 32] ^= 1 << flip_bit;
        }
        prop_assert!(!kp.public.verify(b"property message", &sig));
    }
}

/// A tiny fixed PKI used by the heavier engine properties below.
struct PropWorld {
    universe: CaUniverse,
    programs: RootPrograms,
    chain: Vec<Certificate>,
    checker: IssuanceChecker,
}

fn prop_world() -> PropWorld {
    let universe = CaUniverse::default_with_seed(99);
    let programs = RootPrograms::from_universe(&universe);
    let int = &universe.roots[0].intermediates[0];
    let kp = KeyPair::from_seed(Group::simulation_256(), b"prop-world-leaf");
    let leaf = CertificateBuilder::leaf_profile("prop.sim").issued_by(
        &kp.public,
        int.cert.subject().clone(),
        &int.keypair,
    );
    let chain = vec![leaf, int.cert.clone(), universe.roots[0].cert.clone()];
    PropWorld {
        programs,
        universe,
        chain,
        checker: IssuanceChecker::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tls_framing_roundtrips_any_prefix(n in 0usize..4) {
        let w = prop_world();
        let served = w.chain[..n.min(w.chain.len())].to_vec();
        let msg = tlsmsg::encode_tls12(&served).unwrap();
        prop_assert_eq!(tlsmsg::decode_tls12(&msg).unwrap(), served.clone());
        let msg13 = tlsmsg::encode_tls13(&served).unwrap();
        prop_assert_eq!(tlsmsg::decode_tls13(&msg13).unwrap(), served);
    }

    #[test]
    fn engines_never_panic_on_mutated_chains(seed in 0u64..500, mutations in 1usize..6) {
        let w = prop_world();
        let unrelated = {
            let kp = KeyPair::from_seed(Group::simulation_256(), b"prop-unrelated");
            CertificateBuilder::ca_profile(DistinguishedName::cn("Prop Unrelated"))
                .self_signed(&kp)
        };
        let mut mutator = Mutator::new(seed, vec![unrelated]);
        let mut served = w.chain.clone();
        mutator.mutate(&mut served, mutations);

        let aia = chain_chaos::netsim::AiaRepository::new(w.universe.aia_publications());
        let ctx = BuildContext {
            store: w.programs.unified(),
            aia: Some(&aia),
            cache: &[],
            now: Time::from_ymd(2024, 7, 1).unwrap(),
            checker: &w.checker,
        };
        for kind in ClientKind::ALL {
            // Must terminate with a defined verdict, never panic or hang.
            let outcome = kind.engine().process(&served, &ctx);
            if outcome.accepted() {
                // Accepted paths must be genuine: signatures chain and the
                // terminal is trusted.
                for pair in outcome.path.windows(2) {
                    prop_assert!(w.checker.signature_verifies(&pair[1], &pair[0]));
                }
                prop_assert!(w.programs.unified().contains(outcome.path.last().unwrap()));
            }
        }
    }

    #[test]
    fn engine_is_deterministic(seed in 0u64..100) {
        let w = prop_world();
        let mut served = w.chain.clone();
        let mut drbg = Drbg::from_u64(seed);
        drbg.shuffle(&mut served);
        let aia = chain_chaos::netsim::AiaRepository::new(w.universe.aia_publications());
        let ctx = BuildContext {
            store: w.programs.unified(),
            aia: Some(&aia),
            cache: &[],
            now: Time::from_ymd(2024, 7, 1).unwrap(),
            checker: &w.checker,
        };
        for kind in ClientKind::ALL {
            let a = kind.engine().process(&served, &ctx);
            let b = kind.engine().process(&served, &ctx);
            prop_assert_eq!(a.verdict, b.verdict);
            prop_assert_eq!(a.path, b.path);
        }
    }

    #[test]
    fn full_capability_client_accepts_any_permutation(seed in 0u64..100) {
        let w = prop_world();
        let mut served = w.chain.clone();
        let mut drbg = Drbg::from_u64(seed);
        // Any permutation that keeps the leaf first must be buildable by a
        // fully capable client.
        drbg.shuffle(&mut served[1..]);
        let engine = chain_chaos::core::ChainEngine::new(
            chain_chaos::core::BuilderPolicy::full_capability("prop-full"),
        );
        let aia = chain_chaos::netsim::AiaRepository::new(w.universe.aia_publications());
        let ctx = BuildContext {
            store: w.programs.unified(),
            aia: Some(&aia),
            cache: &[],
            now: Time::from_ymd(2024, 7, 1).unwrap(),
            checker: &w.checker,
        };
        let outcome = engine.process(&served, &ctx);
        prop_assert!(outcome.accepted(), "verdict {:?}", outcome.verdict);
    }
}
