//! Cross-crate consistency of the calibrated corpus: compliance analysis,
//! differential testing, and root-store completeness must agree with the
//! generator's ground truth.

use chain_chaos::core::clients::ClientKind;
use chain_chaos::core::{
    analyze_compliance, CompletenessAnalyzer, DifferentialHarness, IssuanceChecker,
    TopologyGraph,
};
use chain_chaos::rootstore::RootProgram;
use chain_chaos::testgen::corpus::scan_time;
use chain_chaos::testgen::{Corpus, CorpusSpec, PlannedDefect};

fn corpus(n: usize) -> Corpus {
    Corpus::new(CorpusSpec::calibrated(4242, n))
}

#[test]
fn compliant_observations_accepted_by_every_client() {
    let corpus = corpus(300);
    let checker = IssuanceChecker::new();
    let cache = corpus.intermediate_cache();
    let harness = DifferentialHarness::new(
        corpus.programs.unified(),
        Some(&corpus.aia),
        cache,
        scan_time(),
        &checker,
    );
    let analyzer =
        CompletenessAnalyzer::new(&checker, corpus.programs.unified(), Some(&corpus.aia));
    let mut checked = 0;
    corpus.for_each(|obs| {
        if obs.planned != PlannedDefect::None || obs.terminal_akid_absent {
            return;
        }
        let report = analyze_compliance(&obs.domain, &obs.served, &checker, &analyzer);
        assert!(report.is_compliant(), "{}: {:?}", obs.domain, report.findings);
        let result = harness.run(&obs.served);
        for (kind, outcome) in &result.outcomes {
            assert!(
                outcome.accepted(),
                "{} rejected compliant {}: {:?}",
                kind.name(),
                obs.domain,
                outcome.verdict
            );
        }
        checked += 1;
    });
    assert!(checked > 150, "too few compliant observations: {checked}");
}

#[test]
fn akid_absent_chains_need_aia_for_completeness() {
    let corpus = corpus(600);
    let checker = IssuanceChecker::new();
    let with_aia =
        CompletenessAnalyzer::new(&checker, corpus.programs.unified(), Some(&corpus.aia));
    let without_aia = CompletenessAnalyzer::new(&checker, corpus.programs.unified(), None);
    let mut checked = 0;
    corpus.for_each(|obs| {
        if !obs.terminal_akid_absent || obs.planned != PlannedDefect::None {
            return;
        }
        // Skip deployments that appended the root (self-signed terminal
        // needs no AKID matching).
        if obs.served.last().map(|c| c.is_self_issued()).unwrap_or(true) {
            return;
        }
        let graph = TopologyGraph::build(&obs.served, &checker);
        assert!(with_aia.client_complete(&graph), "{} with AIA", obs.domain);
        assert!(
            !without_aia.client_complete(&graph),
            "{} without AIA should be unanchorable",
            obs.domain
        );
        checked += 1;
    });
    assert!(checked > 50, "too few AKID-absent observations: {checked}");
}

#[test]
fn incomplete_chains_fail_non_aia_libraries() {
    let corpus = corpus(2000);
    let checker = IssuanceChecker::new();
    let harness = DifferentialHarness::new(
        corpus.programs.unified(),
        Some(&corpus.aia),
        corpus.intermediate_cache(),
        scan_time(),
        &checker,
    );
    let mut seen = 0;
    corpus.for_each(|obs| {
        if obs.planned != PlannedDefect::Incomplete {
            return;
        }
        seen += 1;
        let result = harness.run(&obs.served);
        let get = |k: ClientKind| {
            result
                .outcomes
                .iter()
                .find(|(kind, _)| *kind == k)
                .map(|(_, o)| o.accepted())
                .unwrap()
        };
        assert!(!get(ClientKind::OpenSsl), "{}", obs.domain);
        assert!(!get(ClientKind::GnuTls), "{}", obs.domain);
        assert!(!get(ClientKind::MbedTls), "{}", obs.domain);
        // AIA clients succeed unless the AIA chain itself is broken
        // (missing field / dead URI variants) — then nobody does.
        let aia_ok = obs
            .served
            .first()
            .and_then(|c| c.aia_ca_issuers_uri().map(|u| !u.contains("/dead/")))
            .unwrap_or(false);
        if aia_ok {
            assert!(get(ClientKind::Chrome), "{} should AIA-complete", obs.domain);
            assert!(get(ClientKind::CryptoApi), "{}", obs.domain);
        } else {
            assert!(!get(ClientKind::Chrome), "{} unfixable", obs.domain);
        }
    });
    assert!(seen >= 10, "too few incomplete observations: {seen}");
}

#[test]
fn regional_chains_are_store_sensitive() {
    // Crank the regional rate so a small corpus contains them.
    let mut spec = CorpusSpec::calibrated(7, 400);
    spec.regional_mz_rate = 0.05;
    let corpus = Corpus::new(spec);
    let checker = IssuanceChecker::new();
    let mut seen = 0;
    corpus.for_each(|obs| {
        if obs.ca != "Regional (MZ-excluded)" {
            return;
        }
        seen += 1;
        let graph = TopologyGraph::build(&obs.served, &checker);
        let unified =
            CompletenessAnalyzer::new(&checker, corpus.programs.unified(), Some(&corpus.aia));
        let mozilla = CompletenessAnalyzer::new(
            &checker,
            corpus.programs.store(RootProgram::Mozilla),
            Some(&corpus.aia),
        );
        let microsoft = CompletenessAnalyzer::new(
            &checker,
            corpus.programs.store(RootProgram::Microsoft),
            Some(&corpus.aia),
        );
        assert!(unified.client_complete(&graph), "{}", obs.domain);
        assert!(!mozilla.client_complete(&graph), "{}", obs.domain);
        assert!(microsoft.client_complete(&graph), "{}", obs.domain);
    });
    assert!(seen >= 5, "regional population missing: {seen}");
}

#[test]
fn corpus_streaming_matches_collect() {
    let corpus = corpus(50);
    let collected = corpus.collect();
    let mut streamed = Vec::new();
    corpus.for_each(|obs| streamed.push(obs));
    assert_eq!(collected.len(), streamed.len());
    for (a, b) in collected.iter().zip(&streamed) {
        assert_eq!(a.served, b.served);
        assert_eq!(a.planned, b.planned);
        assert_eq!(a.ca, b.ca);
    }
}
