//! End-to-end integration: CA issuance → administrator assembly → HTTP
//! server deployment → TLS wire framing over a real socket → client chain
//! construction → validation.

use chain_chaos::asn1::Time;
use chain_chaos::core::clients::ClientKind;
use chain_chaos::core::{BuildContext, IssuanceChecker};
use chain_chaos::crypto::Drbg;
use chain_chaos::netsim::admin::{assemble, AdminBehavior};
use chain_chaos::netsim::ca::CaProfile;
use chain_chaos::netsim::handshake::loopback_roundtrip;
use chain_chaos::netsim::httpserver::HttpServerKind;
use chain_chaos::netsim::AiaRepository;
use chain_chaos::rootstore::{CaUniverse, RootPrograms};

struct World {
    universe: CaUniverse,
    programs: RootPrograms,
    aia: AiaRepository,
    checker: IssuanceChecker,
}

fn world() -> World {
    let universe = CaUniverse::default_with_seed(77);
    let programs = RootPrograms::from_universe(&universe);
    let aia = AiaRepository::new(universe.aia_publications());
    World {
        universe,
        programs,
        aia,
        checker: IssuanceChecker::new(),
    }
}

fn now() -> Time {
    Time::from_ymd(2024, 7, 1).expect("literal date is valid")
}

#[test]
fn issued_deployed_served_and_validated() {
    let w = world();
    let profiles = CaProfile::all();

    for (pi, profile) in profiles.iter().enumerate() {
        let domain = format!("e2e-{pi}.sim");
        let bundle = profile.issue(
            &w.universe,
            0,
            &domain,
            Time::from_ymd(2024, 2, 1).expect("literal date is valid"),
            Time::from_ymd(2025, 2, 1).expect("literal date is valid"),
            &mut Drbg::from_u64(1000 + pi as u64),
            false,
        );
        // A careful admin on Nginx.
        let files = assemble(&bundle, &AdminBehavior::FollowGuide, HttpServerKind::Nginx);
        let deployed = HttpServerKind::Nginx.deploy(&files).expect("deploys");

        // Over the wire.
        let received = loopback_roundtrip(&deployed).expect("handshake");
        assert_eq!(received, deployed);

        // Every client validates the guided deployment.
        let ctx = BuildContext {
            store: w.programs.unified(),
            aia: Some(&w.aia),
            cache: &[],
            now: now(),
            checker: &w.checker,
        };
        for kind in ClientKind::ALL {
            let outcome = kind.engine().process(&received, &ctx);
            assert!(
                outcome.accepted(),
                "{} rejected {domain} ({}): {:?}",
                kind.name(),
                profile.name,
                outcome.verdict
            );
        }
    }
}

#[test]
fn reversed_reseller_delivery_surfaces_on_the_wire() {
    let w = world();
    let profiles = CaProfile::all();
    let gogetssl = profiles.iter().find(|p| p.name == "GoGetSSL").unwrap();
    let bundle = gogetssl.issue(
        &w.universe,
        0,
        "naive.sim",
        Time::from_ymd(2024, 2, 1).expect("literal date is valid"),
        Time::from_ymd(2025, 2, 1).expect("literal date is valid"),
        &mut Drbg::from_u64(2),
        false,
    );
    // A naive merge of reversed files on Apache.
    let files = assemble(&bundle, &AdminBehavior::NaiveMerge, HttpServerKind::ApacheOld);
    let deployed = HttpServerKind::ApacheOld.deploy(&files).expect("deploys");
    let received = loopback_roundtrip(&deployed).expect("handshake");

    // The wire preserves the non-compliant order…
    let order = chain_chaos::core::analyze_order(&received, &w.checker);
    assert!(order.has_reversed());

    // …and reordering clients still validate it.
    let ctx = BuildContext {
        store: w.programs.unified(),
        aia: Some(&w.aia),
        cache: &[],
        now: now(),
        checker: &w.checker,
    };
    let chrome = ClientKind::Chrome.engine().process(&received, &ctx);
    assert!(chrome.accepted());
    // The constructed path is in proper order even though the wire wasn't.
    let path = &chrome.path;
    for pair in path.windows(2) {
        assert!(w.checker.issues(&pair[1], &pair[0]));
    }
}

#[test]
fn azure_blocks_duplicate_leaf_end_to_end() {
    let w = world();
    let profiles = CaProfile::all();
    let zerossl = profiles.iter().find(|p| p.name == "ZeroSSL").unwrap();
    let bundle = zerossl.issue(
        &w.universe,
        0,
        "azure.sim",
        Time::from_ymd(2024, 2, 1).expect("literal date is valid"),
        Time::from_ymd(2025, 2, 1).expect("literal date is valid"),
        &mut Drbg::from_u64(3),
        false,
    );
    let files = assemble(
        &bundle,
        &AdminBehavior::LeafInChainFile,
        HttpServerKind::AzureAppGateway,
    );
    assert!(HttpServerKind::AzureAppGateway.deploy(&files).is_err());
    // The same files sail through Apache, and the duplicate reaches
    // clients.
    let files = assemble(&bundle, &AdminBehavior::LeafInChainFile, HttpServerKind::ApacheOld);
    let deployed = HttpServerKind::ApacheOld.deploy(&files).expect("apache accepts");
    let received = loopback_roundtrip(&deployed).expect("handshake");
    let order = chain_chaos::core::analyze_order(&received, &w.checker);
    assert_eq!(order.duplicates.leaf, 1);
}

#[test]
fn aia_completion_over_full_stack() {
    let w = world();
    // Serve ONLY the leaf; CryptoAPI recovers via two AIA fetches
    // (intermediate, then the root is matched in the store).
    let int = &w.universe.roots[1].intermediates[0];
    let kp = chain_chaos::crypto::KeyPair::from_seed(
        chain_chaos::crypto::Group::simulation_256(),
        b"e2e-aia",
    );
    let leaf = chain_chaos::x509::CertificateBuilder::leaf_profile("lonely.sim")
        .aia_ca_issuers(int.aia_uri.clone())
        .issued_by(&kp.public, int.cert.subject().clone(), &int.keypair);
    let received = loopback_roundtrip(std::slice::from_ref(&leaf)).expect("handshake");
    assert_eq!(received.len(), 1);

    let ctx = BuildContext {
        store: w.programs.unified(),
        aia: Some(&w.aia),
        cache: &[],
        now: now(),
        checker: &w.checker,
    };
    let outcome = ClientKind::CryptoApi.engine().process(&received, &ctx);
    assert!(outcome.accepted(), "{:?}", outcome.verdict);
    assert!(outcome.stats.aia_fetches >= 1);
    assert_eq!(outcome.path.len(), 3, "leaf + fetched intermediate + root");

    let no_aia = ClientKind::OpenSsl.engine().process(&received, &ctx);
    assert!(!no_aia.accepted());
}
