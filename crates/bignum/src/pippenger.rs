//! Pippenger bucket-method multi-scalar exponentiation.
//!
//! Batch signature verification reduces to one product of many powers,
//! `Π bᵢ^{eᵢ} mod n`. Evaluating the k exponentiations separately costs
//! k full squaring chains; Straus interleaving (the two-base case lives
//! in [`multiexp`](crate::multiexp)) shares one chain but still pays one
//! table per base. Pippenger's bucket method drops the per-base tables
//! entirely: walk all exponents top-down in `c`-bit digits, and per
//! window throw each base whose digit is `d` into bucket `d` (one
//! multiplication), then fold the buckets with the suffix-product trick
//! (`Σ d·Bd` costs ~2 multiplications per bucket). Per window the work is
//! `c` squarings + one multiplication per non-zero digit + `2^(c+1)`
//! bucket folds — sublinear in k per bit once the window is sized to the
//! batch.
//!
//! The window width comes from [`optimal_window`], minimizing the total
//! multiplication count for the given batch size and exponent width.
//! Tiny batches (k ≤ 2) degenerate to the existing single/joint
//! exponentiation paths built on the shared
//! [`digit_powers`](crate::multiexp::digit_powers) tables, so there is no
//! crossover regime where the batch entry point is slower than calling
//! the scalar one in a loop.
//!
//! Everything is exact integer arithmetic: results are bit-identical to
//! multiplying k independent [`modpow`](crate::modpow) results, which the
//! proptest suite (`crates/bignum/tests/pippenger_equiv.rs`) pins.

use crate::montgomery::{MontElem, MontgomeryCtx};
use crate::multiexp::{digit, joint_pow_mont};
use crate::uint::Uint;

/// Upper bound on the bucket window: `2^c` bucket folds per window grow
/// exponentially, and batches large enough to want more than 12 bits are
/// far beyond what one analysis flush produces.
const MAX_WINDOW: usize = 12;

/// The bucket window width (in bits) minimizing the multiplication count
/// for `num_terms` bases with exponents up to `exp_bits` bits.
///
/// Cost model per window of width `c`: `c` squarings of the running
/// result, at most one bucket multiplication per term, and `2·(2^c − 1)`
/// multiplications to fold the buckets; there are `⌈exp_bits/c⌉` windows.
pub fn optimal_window(num_terms: usize, exp_bits: usize) -> usize {
    let bits = exp_bits.max(1) as u64;
    let k = num_terms as u64;
    let mut best = 1;
    let mut best_cost = u64::MAX;
    for c in 1..=MAX_WINDOW {
        let windows = bits.div_ceil(c as u64);
        let cost = windows * (c as u64 + k + 2 * ((1u64 << c) - 1));
        if cost < best_cost {
            best_cost = cost;
            best = c;
        }
    }
    best
}

/// `Π baseᵢ^{expᵢ}` in Montgomery form over the caller's pairs.
///
/// Empty products (no pairs, or all exponents zero) yield the Montgomery
/// one. `k = 1` and `k = 2` fall through to
/// [`MontgomeryCtx::pow_mont`] and [`joint_pow_mont`] respectively —
/// bucket bookkeeping only pays for itself from three bases up.
pub fn multi_pow_mont(ctx: &MontgomeryCtx, pairs: &[(&MontElem, &Uint)]) -> MontElem {
    let bits = pairs.iter().map(|(_, e)| e.bit_len()).max().unwrap_or(0);
    if bits == 0 {
        return ctx.one();
    }
    match pairs {
        [(base, exp)] => return ctx.pow_mont(base, exp),
        [(a, ae), (b, be)] => return joint_pow_mont(ctx, a, ae, b, be),
        _ => {}
    }
    let c = optimal_window(pairs.len(), bits);
    let windows = bits.div_ceil(c);
    let mut result: Option<MontElem> = None;
    let mut buckets: Vec<Option<MontElem>> = vec![None; (1 << c) - 1];
    for w in (0..windows).rev() {
        if let Some(r) = result.as_mut() {
            for _ in 0..c {
                *r = ctx.square(r);
            }
        }
        for b in buckets.iter_mut() {
            *b = None;
        }
        for (base, exp) in pairs {
            let d = digit(exp, w, c);
            if d != 0 {
                let slot = &mut buckets[d - 1];
                *slot = Some(match slot.take() {
                    Some(acc) => ctx.mul(&acc, base),
                    None => (*base).clone(),
                });
            }
        }
        // Σ d·Bd via suffix products: running = Π_{d' ≥ d} Bd', and the
        // window total is the product of every running value — bucket d
        // ends up multiplied in exactly d times.
        let mut running: Option<MontElem> = None;
        let mut window_sum: Option<MontElem> = None;
        for b in buckets.iter().rev() {
            if let Some(b) = b {
                running = Some(match running.take() {
                    Some(r) => ctx.mul(&r, b),
                    None => b.clone(),
                });
            }
            if let Some(r) = &running {
                window_sum = Some(match window_sum.take() {
                    Some(s) => ctx.mul(&s, r),
                    None => r.clone(),
                });
            }
        }
        if let Some(s) = window_sum {
            result = Some(match result.take() {
                Some(r) => ctx.mul(&r, &s),
                None => s,
            });
        }
    }
    result.unwrap_or_else(|| ctx.one())
}

/// `Π baseᵢ^{expᵢ} mod n` with inputs and output in normal form
/// (convenience wrapper for tests and callers outside a Montgomery
/// pipeline).
pub fn multi_modpow(ctx: &MontgomeryCtx, pairs: &[(Uint, Uint)]) -> Uint {
    let mont: Vec<MontElem> = pairs.iter().map(|(b, _)| ctx.to_montgomery(b)).collect();
    let borrowed: Vec<(&MontElem, &Uint)> = mont
        .iter()
        .zip(pairs.iter().map(|(_, e)| e))
        .collect();
    ctx.from_montgomery(&multi_pow_mont(ctx, &borrowed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(hex: &str) -> Uint {
        Uint::from_hex(hex).unwrap()
    }

    fn reference(ctx: &MontgomeryCtx, pairs: &[(Uint, Uint)]) -> Uint {
        let mut acc = Uint::one();
        for (b, e) in pairs {
            acc = acc.mul_mod(&ctx.modpow(b, e), ctx.modulus());
        }
        acc
    }

    #[test]
    fn empty_and_degenerate_batches() {
        let n = u("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        assert_eq!(multi_modpow(&ctx, &[]), Uint::one());
        // All-zero exponents: the empty product.
        let zeros = vec![
            (Uint::from_u64(7), Uint::zero()),
            (Uint::from_u64(11), Uint::zero()),
            (Uint::from_u64(13), Uint::zero()),
        ];
        assert_eq!(multi_modpow(&ctx, &zeros), Uint::one());
        // k = 1 and k = 2 take the scalar / Straus paths.
        let one = vec![(Uint::from_u64(7), u("deadbeefcafef00d"))];
        assert_eq!(multi_modpow(&ctx, &one), reference(&ctx, &one));
        let two = vec![
            (Uint::from_u64(4), u("1eadbeef1eadbeef1eadbeef1eadbeef")),
            (Uint::from_u64(9), u("aaaaaaaaaaaaaaaaaaaa")),
        ];
        assert_eq!(multi_modpow(&ctx, &two), reference(&ctx, &two));
    }

    #[test]
    fn bucket_path_matches_separate_pows() {
        let n = u("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        // Mixed widths, repeated bases, and a zero exponent in the middle.
        let pairs = vec![
            (Uint::from_u64(4), u("76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb784")),
            (u("ab3d485627ba6272e0f9c0a9ae435e247c91df81a1743c12a89eeaf8ef52878a"), Uint::from_u64(3)),
            (Uint::from_u64(4), Uint::zero()),
            (Uint::from_u64(2), u("1234567890abcdef1234567890abcdef")),
            (u("1eadbeef1eadbeef1eadbeef1eadbeef1eadbeef"), u("deadbeefcafef00d")),
        ];
        assert_eq!(multi_modpow(&ctx, &pairs), reference(&ctx, &pairs));
    }

    #[test]
    fn batch_shaped_like_verification_coefficients() {
        // 64 bases with 64-bit exponents — the exact shape the batch
        // self-check produces (small deterministic coefficients).
        let n = u("76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb785");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let mut pairs = Vec::new();
        let mut b = Uint::from_u64(3);
        let mut e = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..64 {
            pairs.push((b.clone(), Uint::from_u64(e)));
            b = b.mul_mod(&b, &n).add_mod(&Uint::one(), &n);
            e = e.rotate_left(7) ^ 0xdead_beef_cafe_f00d;
        }
        assert_eq!(multi_modpow(&ctx, &pairs), reference(&ctx, &pairs));
    }

    #[test]
    fn optimal_window_is_sane() {
        for k in [1usize, 3, 16, 64, 256, 4096] {
            for bits in [1usize, 64, 256, 1536] {
                let c = optimal_window(k, bits);
                assert!((1..=MAX_WINDOW).contains(&c), "k={k} bits={bits} c={c}");
            }
        }
        // Bigger batches justify wider windows.
        assert!(optimal_window(4096, 256) >= optimal_window(4, 256));
    }
}
