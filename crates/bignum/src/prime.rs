//! Miller–Rabin probabilistic primality testing.

use crate::{modpow, Uint};

/// Fixed witness bases. For n < 3.3 * 10^24 these bases make Miller–Rabin
/// deterministic; beyond that the test is probabilistic with error
/// probability far below 2^-80 for the numbers this crate deals with
/// (fixed, published group parameters — not adversarial inputs).
const BASES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Miller–Rabin primality test with the fixed base set above.
pub fn is_probable_prime(n: &Uint) -> bool {
    let two = Uint::from_u64(2);
    if n < &two {
        return false;
    }
    // Trial small primes.
    for &b in &BASES {
        let b = Uint::from_u64(b);
        if n == &b {
            return true;
        }
        if n.rem(&b).expect("base is non-zero").is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^r with d odd.
    let n_minus_1 = n.checked_sub(&Uint::one()).expect("n > 1 here");
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while !d.is_odd() {
        d = d.shr(1);
        r += 1;
    }
    'witness: for &b in &BASES {
        let a = Uint::from_u64(b);
        let mut x = modpow(&a, &d, n).expect("modulus n is non-zero");
        if x == Uint::one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..r.saturating_sub(1) {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_and_composites() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65537, 2147483647];
        for p in primes {
            assert!(is_probable_prime(&Uint::from_u64(p)), "{p} should be prime");
        }
        let composites = [0u64, 1, 4, 9, 15, 561, 1105, 6601, 65536, 2147483649];
        for c in composites {
            assert!(!is_probable_prime(&Uint::from_u64(c)), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for c in [561u64, 41041, 825265, 321197185] {
            assert!(!is_probable_prime(&Uint::from_u64(c)));
        }
    }

    #[test]
    fn simulation_group_parameters_are_safe_prime() {
        let p = Uint::from_hex("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b")
            .unwrap();
        let q = Uint::from_hex("76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb785")
            .unwrap();
        assert!(is_probable_prime(&p));
        assert!(is_probable_prime(&q));
        // p = 2q + 1
        assert_eq!(q.mul(&Uint::from_u64(2)).add(&Uint::one()), p);
    }
}
