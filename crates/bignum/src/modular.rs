//! Modular exponentiation and inversion.

use crate::montgomery::MontgomeryCtx;
use crate::Uint;

/// Compute `base^exp mod modulus`.
///
/// Odd moduli (every modulus the crypto stack uses: safe primes and their
/// subgroup orders) dispatch to Montgomery-form 4-bit fixed-window
/// exponentiation ([`MontgomeryCtx::modpow`]); even moduli fall back to the
/// schoolbook square-and-multiply path ([`modpow_naive`]). Both paths are
/// exact, so results are bit-identical regardless of dispatch.
///
/// Returns `None` when `modulus` is zero. `base^0 mod 1` is `0` (all values
/// are congruent to 0 mod 1).
pub fn modpow(base: &Uint, exp: &Uint, modulus: &Uint) -> Option<Uint> {
    if modulus.is_zero() {
        return None;
    }
    if modulus == &Uint::one() {
        return Some(Uint::zero());
    }
    match MontgomeryCtx::new(modulus) {
        Some(ctx) => Some(ctx.modpow(base, exp)),
        None => modpow_naive(base, exp, modulus),
    }
}

/// Bit-by-bit square-and-multiply with full `mul` + `div_rem` reduction at
/// every step — the pre-Montgomery reference implementation.
///
/// Kept public for even moduli, the equivalence test-suite, and the
/// `benches/modexp.rs` naive-vs-Montgomery comparison.
pub fn modpow_naive(base: &Uint, exp: &Uint, modulus: &Uint) -> Option<Uint> {
    if modulus.is_zero() {
        return None;
    }
    if modulus == &Uint::one() {
        return Some(Uint::zero());
    }
    let mut result = Uint::one();
    let mut b = base.rem(modulus)?;
    let bits = exp.bit_len();
    for i in 0..bits {
        if exp.bit(i) {
            result = result.mul_mod(&b, modulus);
        }
        if i + 1 < bits {
            b = b.mul_mod(&b, modulus);
        }
    }
    Some(result)
}

/// Compute the multiplicative inverse of `a` modulo `m` via the extended
/// Euclidean algorithm.
///
/// Returns `None` when `gcd(a, m) != 1` or `m < 2`.
pub fn modinv(a: &Uint, m: &Uint) -> Option<Uint> {
    if m < &Uint::from_u64(2) {
        return None;
    }
    // Extended Euclid tracking only the coefficient of `a`, with signs
    // handled by (value, negative) pairs.
    let mut r0 = m.clone();
    let mut r1 = a.rem(m)?;
    if r1.is_zero() {
        return None;
    }
    // t coefficients: x0, x1 with sign flags.
    let mut t0 = (Uint::zero(), false);
    let mut t1 = (Uint::one(), false);
    while !r1.is_zero() {
        let (q, r2) = r0.div_rem(&r1).expect("r1 non-zero");
        // t2 = t0 - q * t1
        let qt1 = q.mul(&t1.0);
        let t2 = signed_sub(&t0, &(qt1, t1.1));
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t1 = t2;
    }
    if r0 != Uint::one() {
        return None;
    }
    // Normalize t0 into [0, m).
    let (val, neg) = t0;
    let val = val.rem(m)?;
    Some(if neg && !val.is_zero() {
        m.checked_sub(&val).expect("val reduced mod m, so m - val cannot underflow")
    } else {
        val
    })
}

/// `a - b` on (magnitude, is_negative) pairs.
fn signed_sub(a: &(Uint, bool), b: &(Uint, bool)) -> (Uint, bool) {
    match (a.1, b.1) {
        // a - b where both non-negative
        (false, false) => match a.0.checked_sub(&b.0) {
            Some(d) => (d, false),
            None => (b.0.checked_sub(&a.0).expect("b >= a when a - b underflows"), true),
        },
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - (-b) = b - a
        (true, true) => match b.0.checked_sub(&a.0) {
            Some(d) => (d, false),
            None => (a.0.checked_sub(&b.0).expect("a >= b when b - a underflows"), true),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modpow_small() {
        let r = modpow(&Uint::from_u64(4), &Uint::from_u64(13), &Uint::from_u64(497)).unwrap();
        assert_eq!(r, Uint::from_u64(445));
    }

    #[test]
    fn modpow_edge_cases() {
        assert!(modpow(&Uint::from_u64(2), &Uint::from_u64(10), &Uint::zero()).is_none());
        assert_eq!(
            modpow(&Uint::from_u64(2), &Uint::from_u64(10), &Uint::one()).unwrap(),
            Uint::zero()
        );
        assert_eq!(
            modpow(&Uint::from_u64(2), &Uint::zero(), &Uint::from_u64(7)).unwrap(),
            Uint::one()
        );
        assert_eq!(
            modpow(&Uint::zero(), &Uint::from_u64(5), &Uint::from_u64(7)).unwrap(),
            Uint::zero()
        );
    }

    #[test]
    fn modpow_fermat() {
        // a^(p-1) = 1 mod p for prime p and gcd(a,p)=1.
        let p = Uint::from_hex("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b")
            .unwrap();
        let a = Uint::from_u64(0x1234_5678_9abc_def1);
        let e = p.checked_sub(&Uint::one()).unwrap();
        assert_eq!(modpow(&a, &e, &p).unwrap(), Uint::one());
    }

    #[test]
    fn modinv_small() {
        let inv = modinv(&Uint::from_u64(3), &Uint::from_u64(11)).unwrap();
        assert_eq!(inv, Uint::from_u64(4));
        // Non-invertible.
        assert!(modinv(&Uint::from_u64(6), &Uint::from_u64(9)).is_none());
        assert!(modinv(&Uint::from_u64(5), &Uint::one()).is_none());
        assert!(modinv(&Uint::zero(), &Uint::from_u64(7)).is_none());
    }

    #[test]
    fn modinv_large() {
        let p = Uint::from_hex("76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb785")
            .unwrap();
        let a = Uint::from_hex("1eadbeef1eadbeef1eadbeef1eadbeef").unwrap();
        let inv = modinv(&a, &p).unwrap();
        assert_eq!(a.mul_mod(&inv, &p), Uint::one());
    }
}
