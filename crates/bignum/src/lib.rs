//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This crate is the numeric substrate for `ccc-crypto`: it provides the
//! big-integer machinery (schoolbook multiplication, Knuth-D division,
//! Montgomery-form modular exponentiation, Miller–Rabin primality) backing
//! a real discrete-log signature scheme for the synthetic Web PKI used by
//! chain-chaos. It stays dependency-free, but the hot path is engineered:
//! [`modpow`] dispatches odd moduli to CIOS Montgomery multiplication with
//! 4-bit fixed-window exponentiation, [`FixedBaseTable`] provides Brauer
//! fixed-base windowing for bases that are exponentiated millions of times
//! per corpus pass (see `montgomery`), [`multiexp`] provides Straus
//! interleaved joint exponentiation (`a^x · b^y` on one shared squaring
//! chain) for verification-shaped products, and [`pippenger`] provides
//! bucket-method multi-scalar exponentiation (`Π bᵢ^{eᵢ}` over a whole
//! batch) for batched signature verification.

mod modular;
mod montgomery;
pub mod multiexp;
pub mod pippenger;
mod prime;
mod uint;

pub use modular::{modinv, modpow, modpow_naive};
pub use montgomery::{FixedBaseTable, MontElem, MontgomeryCtx};
pub use multiexp::{
    digit_powers, joint_modpow, joint_pow_mont, joint_pow_with_powers, window_powers,
};
pub use pippenger::{multi_modpow, multi_pow_mont, optimal_window};
pub use prime::is_probable_prime;
pub use uint::Uint;
