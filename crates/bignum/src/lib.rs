//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This crate is the numeric substrate for `ccc-crypto`: it provides just
//! enough big-integer machinery (schoolbook multiplication, Knuth-D
//! division, modular exponentiation, Miller–Rabin primality) to implement a
//! real discrete-log signature scheme for the synthetic Web PKI used by
//! chain-chaos. It is deliberately simple and dependency-free rather than
//! fast; the simulation uses a 256-bit group precisely so that this level of
//! performance is sufficient.

mod modular;
mod prime;
mod uint;

pub use modular::{modinv, modpow};
pub use prime::is_probable_prime;
pub use uint::Uint;
