//! Montgomery-form modular arithmetic.
//!
//! A [`MontgomeryCtx`] precomputes, for one odd modulus `n` of `k` 64-bit
//! limbs, everything needed to multiply residues without per-step division:
//! `n' = -n⁻¹ mod 2⁶⁴` and `R² mod n` where `R = 2^(64k)`. Products are
//! reduced with CIOS (coarsely integrated operand scanning) Montgomery
//! multiplication — one fused multiply/reduce pass over the limbs — so the
//! quadratic `div_rem` the naive path performs after every multiplication
//! disappears entirely.
//!
//! The context deliberately widens [`Uint`]'s 32-bit limbs to 64-bit ones
//! at the conversion boundary: on 64-bit hosts one `u64×u64 → u128`
//! multiply replaces four `u32×u32 → u64` multiplies, quartering the inner
//! CIOS work for the same modulus.
//!
//! On top of the context sit two exponentiation strategies:
//!
//! - [`MontgomeryCtx::modpow`]: 4-bit fixed-window exponentiation for
//!   arbitrary bases (15 precomputed odd powers, then 4 squarings + at most
//!   one multiplication per window);
//! - [`FixedBaseTable`]: Brauer-style fixed-base windowing for bases that
//!   are exponentiated millions of times (the group generator `g`): all
//!   `base^(d·2^(4i))` are precomputed, so `base^e` costs only one
//!   Montgomery multiplication per non-zero 4-bit digit of `e` — no
//!   squarings at all.
//!
//! Everything here is exact integer arithmetic: results are bit-identical
//! to the schoolbook `mul` + `div_rem` path, which the proptest equivalence
//! suite (`crates/bignum/tests/montgomery_equiv.rs`) pins down.

use crate::uint::Uint;

/// Exponentiation window width in bits (tables hold `2^W - 1` entries).
/// Shared with the Straus joint-exponentiation module (`multiexp`), whose
/// digit tables must agree with the fixed-base rows to be interchangeable.
pub(crate) const WINDOW: usize = 4;

/// A residue in Montgomery form with respect to some [`MontgomeryCtx`].
///
/// The limb vector always has exactly `ctx.limbs()` entries (trailing zeros
/// included) and represents `a·R mod n`. Elements are only meaningful
/// together with the context that produced them.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MontElem {
    limbs: Vec<u64>,
}

/// Precomputed constants for Montgomery arithmetic modulo one odd `n > 1`.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    /// The modulus.
    n: Uint,
    /// Little-endian 64-bit limbs of `n` (length `k`, top limb non-zero).
    n_limbs: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴` (exists because `n` is odd).
    n0_inv: u64,
    /// `R mod n` — the Montgomery form of 1.
    one: MontElem,
    /// `R² mod n` — multiplier for the to-Montgomery conversion.
    r2: MontElem,
}

/// Widen a [`Uint`]'s 32-bit limbs into `k` little-endian 64-bit limbs.
fn to_limbs64(v: &Uint, k: usize) -> Vec<u64> {
    let src = v.limbs();
    let mut out = vec![0u64; k];
    for (i, limb) in out.iter_mut().enumerate() {
        let lo = src.get(2 * i).copied().unwrap_or(0) as u64;
        let hi = src.get(2 * i + 1).copied().unwrap_or(0) as u64;
        *limb = lo | (hi << 32);
    }
    out
}

/// Narrow 64-bit limbs back into a (normalized) [`Uint`].
fn limbs64_to_uint(limbs: &[u64]) -> Uint {
    let mut out = Vec::with_capacity(limbs.len() * 2);
    for &l in limbs {
        out.push(l as u32);
        out.push((l >> 32) as u32);
    }
    Uint::from_limbs(out)
}

impl MontgomeryCtx {
    /// Build a context for `modulus`.
    ///
    /// Returns `None` when the modulus is even or `< 2`: Montgomery
    /// reduction requires `gcd(n, 2³²) = 1`, and `n = 1` has no useful
    /// residues (callers special-case it).
    pub fn new(modulus: &Uint) -> Option<MontgomeryCtx> {
        if !modulus.is_odd() || modulus <= &Uint::one() {
            return None;
        }
        let k = modulus.limbs().len().div_ceil(2);
        let n_limbs = to_limbs64(modulus, k);

        // n0_inv = -n[0]^{-1} mod 2^64 by Newton–Hensel lifting: for odd a,
        // x_{i+1} = x_i (2 - a x_i) doubles the number of correct bits.
        let a = n_limbs[0];
        let mut inv: u64 = a; // correct to 3 bits for odd a
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(inv)));
        }
        debug_assert_eq!(a.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        // R mod n and R^2 mod n via the (setup-only) schoolbook path.
        let r = Uint::one().shl(64 * k);
        let one_val = r.rem(modulus).expect("modulus > 1");
        let r2_val = one_val.mul_mod(&one_val, modulus);
        let pad = |v: &Uint| MontElem { limbs: to_limbs64(v, k) };
        Some(MontgomeryCtx {
            n: modulus.clone(),
            one: pad(&one_val),
            r2: pad(&r2_val),
            n_limbs,
            n0_inv,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Uint {
        &self.n
    }

    /// Number of 64-bit limbs in the modulus (the Montgomery radix is
    /// `R = 2^(64·limbs())`).
    pub fn limbs(&self) -> usize {
        self.n_limbs.len()
    }

    /// The Montgomery form of 1 (`R mod n`).
    pub fn one(&self) -> MontElem {
        self.one.clone()
    }

    /// Convert `a` (any size; reduced mod `n` first) into Montgomery form.
    pub fn to_montgomery(&self, a: &Uint) -> MontElem {
        let reduced = a.rem(&self.n).expect("modulus > 1");
        let limbs = to_limbs64(&reduced, self.limbs());
        self.mul(&MontElem { limbs }, &self.r2)
    }

    /// Convert a Montgomery residue back to a normal integer in `[0, n)`.
    pub fn from_montgomery(&self, a: &MontElem) -> Uint {
        let mut one = vec![0u64; self.limbs()];
        one[0] = 1;
        let redc = self.mul(a, &MontElem { limbs: one });
        limbs64_to_uint(&redc.limbs)
    }

    /// CIOS Montgomery multiplication: returns `a·b·R⁻¹ mod n`.
    ///
    /// Both inputs must belong to this context (limb count `k`); the result
    /// does too. One interleaved pass accumulates `a[i]·b` and the
    /// reduction term `m·n`, shifting one limb per outer step, so the
    /// working buffer never exceeds `k + 2` limbs.
    pub fn mul(&self, a: &MontElem, b: &MontElem) -> MontElem {
        let k = self.limbs();
        debug_assert_eq!(a.limbs.len(), k);
        debug_assert_eq!(b.limbs.len(), k);
        let n = &self.n_limbs;
        // t holds k+2 limbs: k accumulated limbs plus two carry limbs.
        let mut t = vec![0u64; k + 2];
        for &ai in &a.limbs {
            // t += ai * b
            let mut carry: u128 = 0;
            for (tj, &bj) in t[..k].iter_mut().zip(&b.limbs) {
                let s = *tj as u128 + ai as u128 * bj as u128 + carry;
                *tj = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // m chosen so t + m*n ≡ 0 (mod 2^64); add and shift right one limb.
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = t[0] as u128 + m as u128 * n[0] as u128;
            debug_assert_eq!(s as u64, 0);
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            // The final carry cannot overflow u64: t < 2n·2^(64k) throughout.
            t[k] = t[k + 1] + (s >> 64) as u64;
            t[k + 1] = 0;
        }
        // Result is t[..=k] < 2n; one conditional subtraction normalizes.
        let mut out = t;
        out.truncate(k + 1);
        if out[k] != 0 || !limbs_lt(&out[..k], n) {
            limbs_sub_in_place(&mut out, n);
        }
        out.truncate(k);
        MontElem { limbs: out }
    }

    /// Montgomery squaring (alias of [`mul`](Self::mul) with one operand).
    pub fn square(&self, a: &MontElem) -> MontElem {
        self.mul(a, a)
    }

    /// `base^exp mod n` with both input and output in normal form.
    pub fn modpow(&self, base: &Uint, exp: &Uint) -> Uint {
        let b = self.to_montgomery(base);
        self.from_montgomery(&self.pow_mont(&b, exp))
    }

    /// 4-bit fixed-window exponentiation over Montgomery residues.
    pub fn pow_mont(&self, base: &MontElem, exp: &Uint) -> MontElem {
        let bits = exp.bit_len();
        if bits == 0 {
            return self.one();
        }
        // table[d-1] = base^d for d in 1..16.
        let table = crate::multiexp::digit_powers(self, base, WINDOW);
        let windows = bits.div_ceil(WINDOW);
        let mut result: Option<MontElem> = None;
        for w in (0..windows).rev() {
            if let Some(r) = result.as_mut() {
                for _ in 0..WINDOW {
                    *r = self.square(r);
                }
            }
            let mut digit = 0usize;
            for bit in (0..WINDOW).rev() {
                let idx = w * WINDOW + bit;
                digit = (digit << 1) | usize::from(exp.bit(idx));
            }
            if digit != 0 {
                result = Some(match result {
                    Some(r) => self.mul(&r, &table[digit - 1]),
                    None => table[digit - 1].clone(),
                });
            }
        }
        result.unwrap_or_else(|| self.one())
    }
}

/// `a < b` over equal-length little-endian limb slices.
fn limbs_lt(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

/// `a -= b` in place (`a` may be one limb longer than `b`; no underflow).
fn limbs_sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = false;
    for i in 0..a.len() {
        let bi = if i < b.len() { b[i] } else { 0 };
        let (d1, o1) = a[i].overflowing_sub(bi);
        let (d2, o2) = d1.overflowing_sub(borrow as u64);
        a[i] = d2;
        borrow = o1 || o2;
    }
    debug_assert!(!borrow);
}

/// Precomputed powers of one base for Brauer fixed-base windowing.
///
/// `table[i][d-1] = base^(d · 2^(WINDOW·i))` in Montgomery form, for window
/// index `i` up to `max_exp_bits` and digit `d ∈ [1, 2^WINDOW)`. Evaluating
/// `base^e` is then a product of one table entry per non-zero 4-bit digit
/// of `e` — about `bits/4` Montgomery multiplications and zero squarings.
///
/// Memory cost: `⌈bits/4⌉ · 15` residues (≈30 KiB for a 256-bit modulus,
/// ≈1.1 MiB for 1536 bits) — paid once per process via the `OnceLock` on
/// the owning group.
#[derive(Clone, Debug)]
pub struct FixedBaseTable {
    table: Vec<Vec<MontElem>>,
    max_bits: usize,
    window: usize,
}

impl FixedBaseTable {
    /// Precompute the window tables for `base` (normal form) under `ctx`,
    /// covering exponents up to `max_exp_bits` bits.
    pub fn new(ctx: &MontgomeryCtx, base: &Uint, max_exp_bits: usize) -> FixedBaseTable {
        FixedBaseTable::from_mont(ctx, &ctx.to_montgomery(base), max_exp_bits)
    }

    /// Precompute the window tables for a base that is *already* a
    /// Montgomery residue of `ctx`.
    ///
    /// This is the general entry point: any group element — not just a
    /// generator — can be promoted to fixed-base treatment once it is
    /// known to be exponentiated repeatedly (e.g. a CA public key `y`
    /// verified against for many certificates). `new` is the normal-form
    /// convenience wrapper.
    pub fn from_mont(ctx: &MontgomeryCtx, base: &MontElem, max_exp_bits: usize) -> FixedBaseTable {
        FixedBaseTable::from_mont_with_window(ctx, base, max_exp_bits, WINDOW)
    }

    /// [`from_mont`](Self::from_mont) at an explicit window width.
    ///
    /// Wider windows trade table size (and build time) for fewer
    /// multiplications per exponentiation: `⌈bits/w⌉` lookups instead of
    /// `⌈bits/4⌉`. Batch verification uses an 8-bit generator table —
    /// every batched check exponentiates `g`, so the bigger build
    /// amortizes where a per-key table would not.
    pub fn from_mont_with_window(
        ctx: &MontgomeryCtx,
        base: &MontElem,
        max_exp_bits: usize,
        window: usize,
    ) -> FixedBaseTable {
        debug_assert!((1..=16).contains(&window));
        let windows = max_exp_bits.div_ceil(window).max(1);
        let mut block_base = base.clone();
        let mut table = Vec::with_capacity(windows);
        for w in 0..windows {
            let row = crate::multiexp::digit_powers(ctx, &block_base, window);
            if w + 1 < windows {
                // base for the next block: this block's base^(2^window).
                block_base = ctx.square(&row[(1 << (window - 1)) - 1]);
            }
            table.push(row);
        }
        FixedBaseTable { table, max_bits: windows * window, window }
    }

    /// Highest exponent bit width the table covers.
    pub fn max_exp_bits(&self) -> usize {
        self.max_bits
    }

    /// The window width this table was built at (bits per digit).
    pub fn window(&self) -> usize {
        self.window
    }

    /// The first window row: `base^d` for `d ∈ [1, 2^window)`.
    ///
    /// For the default 4-bit window this is exactly the digit table
    /// [`multiexp::window_powers`](crate::multiexp::window_powers) would
    /// build for the same base (both call the shared
    /// [`digit_powers`](crate::multiexp::digit_powers) helper), so Straus
    /// joint exponentiation can borrow it instead of recomputing (the
    /// generator side of a Schnorr verification does this).
    pub fn first_row(&self) -> &[MontElem] {
        &self.table[0]
    }

    /// `base^exp` in Montgomery form.
    ///
    /// Exponents wider than the table fall back to windowed square-and-
    /// multiply on the stored base (`table[0][0]`), so the result is always
    /// correct.
    pub fn pow_mont(&self, ctx: &MontgomeryCtx, exp: &Uint) -> MontElem {
        if exp.bit_len() > self.max_bits {
            return ctx.pow_mont(&self.table[0][0], exp);
        }
        let mut result: Option<MontElem> = None;
        for (w, row) in self.table.iter().enumerate() {
            let mut digit = 0usize;
            for bit in (0..self.window).rev() {
                digit = (digit << 1) | usize::from(exp.bit(w * self.window + bit));
            }
            if digit != 0 {
                result = Some(match result {
                    Some(r) => ctx.mul(&r, &row[digit - 1]),
                    None => row[digit - 1].clone(),
                });
            }
        }
        result.unwrap_or_else(|| ctx.one())
    }

    /// `base^exp mod n` in normal form.
    pub fn pow(&self, ctx: &MontgomeryCtx, exp: &Uint) -> Uint {
        ctx.from_montgomery(&self.pow_mont(ctx, exp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::modpow_naive;

    fn u(hex: &str) -> Uint {
        Uint::from_hex(hex).unwrap()
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontgomeryCtx::new(&Uint::zero()).is_none());
        assert!(MontgomeryCtx::new(&Uint::one()).is_none());
        assert!(MontgomeryCtx::new(&Uint::from_u64(10)).is_none());
        assert!(MontgomeryCtx::new(&u("fffffffffffffffffffffffe")).is_none());
        assert!(MontgomeryCtx::new(&Uint::from_u64(3)).is_some());
    }

    #[test]
    fn roundtrip_to_from_montgomery() {
        let n = u("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for v in [
            Uint::zero(),
            Uint::one(),
            Uint::from_u64(0xdead_beef),
            n.checked_sub(&Uint::one()).unwrap(),
        ] {
            let m = ctx.to_montgomery(&v);
            assert_eq!(ctx.from_montgomery(&m), v);
        }
        // Values >= n reduce first.
        let big = n.mul(&Uint::from_u64(7)).add(&Uint::from_u64(42));
        assert_eq!(
            ctx.from_montgomery(&ctx.to_montgomery(&big)),
            Uint::from_u64(42)
        );
    }

    #[test]
    fn mul_matches_schoolbook() {
        let n = u("76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb785");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let a = u("1eadbeef1eadbeef1eadbeef1eadbeef1eadbeef");
        let b = u("123456789abcdef0fedcba9876543210");
        let am = ctx.to_montgomery(&a);
        let bm = ctx.to_montgomery(&b);
        assert_eq!(ctx.from_montgomery(&ctx.mul(&am, &bm)), a.mul_mod(&b, &n));
        assert_eq!(ctx.from_montgomery(&ctx.square(&am)), a.mul_mod(&a, &n));
    }

    #[test]
    fn modpow_matches_naive_single_limb() {
        let n = Uint::from_u64(0xffff_fff1); // odd single-limb modulus
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for (b, e) in [(3u64, 0u64), (2, 1), (7, 65537), (0xffff_ffff, 12345)] {
            let b = Uint::from_u64(b);
            let e = Uint::from_u64(e);
            assert_eq!(
                ctx.modpow(&b, &e),
                modpow_naive(&b, &e, &n).unwrap(),
                "b={b:?} e={e:?}"
            );
        }
    }

    #[test]
    fn modpow_matches_naive_multi_limb() {
        let n = u("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let base = u("ab3d485627ba6272e0f9c0a9ae435e247c91df81a1743c12a89eeaf8ef52878a");
        let exp = u("1eadbeef1eadbeef1eadbeef1eadbeef1eadbeef1eadbeef");
        assert_eq!(ctx.modpow(&base, &exp), modpow_naive(&base, &exp, &n).unwrap());
    }

    #[test]
    fn fixed_base_matches_ctx_pow() {
        let n = u("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let g = Uint::from_u64(4);
        let table = FixedBaseTable::new(&ctx, &g, 256);
        for e in [
            Uint::zero(),
            Uint::one(),
            Uint::from_u64(2),
            Uint::from_u64(0xffff_ffff_ffff_ffff),
            u("76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb784"),
        ] {
            assert_eq!(table.pow(&ctx, &e), ctx.modpow(&g, &e), "e={e:?}");
        }
    }

    #[test]
    fn wide_window_table_matches_default_window() {
        // The 8-bit batch-verification generator table must agree with
        // the default 4-bit table (and the plain ctx pow) bit-for-bit.
        let n = u("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let g = ctx.to_montgomery(&Uint::from_u64(4));
        let narrow = FixedBaseTable::from_mont(&ctx, &g, 256);
        let wide = FixedBaseTable::from_mont_with_window(&ctx, &g, 256, 8);
        assert_eq!(narrow.window(), WINDOW);
        assert_eq!(wide.window(), 8);
        for e in [
            Uint::zero(),
            Uint::one(),
            Uint::from_u64(0xdead_beef),
            u("76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb784"),
        ] {
            assert_eq!(wide.pow_mont(&ctx, &e), narrow.pow_mont(&ctx, &e), "e={e:?}");
            assert_eq!(wide.pow_mont(&ctx, &e), ctx.pow_mont(&g, &e), "e={e:?}");
        }
    }

    #[test]
    fn first_row_is_the_shared_digit_table() {
        // Pins the dedup: the first Brauer row and the Straus digit table
        // come from the same helper and stay interchangeable.
        let n = u("76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb785");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let base = ctx.to_montgomery(&u("1eadbeef1eadbeef1eadbeef1eadbeef"));
        let table = FixedBaseTable::from_mont(&ctx, &base, 256);
        assert_eq!(table.first_row(), crate::multiexp::window_powers(&ctx, &base));
    }

    #[test]
    fn fixed_base_falls_back_beyond_table_width() {
        let n = Uint::from_u64(1_000_003);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let g = Uint::from_u64(5);
        let table = FixedBaseTable::new(&ctx, &g, 16);
        let wide = u("1234567890abcdef1234"); // > 16 bits
        assert_eq!(table.pow(&ctx, &wide), ctx.modpow(&g, &wide));
    }

    #[test]
    fn zero_and_one_bases() {
        let n = u("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let e = Uint::from_u64(12345);
        assert_eq!(ctx.modpow(&Uint::zero(), &e), Uint::zero());
        assert_eq!(ctx.modpow(&Uint::one(), &e), Uint::one());
        assert_eq!(ctx.modpow(&Uint::zero(), &Uint::zero()), Uint::one());
    }
}
