//! Straus/Shamir interleaved joint exponentiation in Montgomery form.
//!
//! Verification-shaped workloads compute a *product* of two powers,
//! `a^x · b^y mod n`, and evaluating the two exponentiations separately
//! pays for two full squaring chains. Straus's trick shares one chain:
//! walk both exponents top-down in [`WINDOW`]-bit digits, square the
//! running result `WINDOW` times per step, and multiply in the matching
//! precomputed power of each base whose digit is non-zero. The cost drops
//! from `2·bits` squarings to `bits`, with at most two extra
//! multiplications per window.
//!
//! The per-base digit tables (`base^1 .. base^(2^WINDOW - 1)`) are the
//! same shape [`MontgomeryCtx::pow_mont`] builds internally, exposed here
//! as [`window_powers`] so callers that already hold a table for one base
//! — e.g. the generator row of a
//! [`FixedBaseTable`](crate::FixedBaseTable) — can pass it in via
//! [`joint_pow_with_powers`] and only pay table setup for the other base.
//!
//! Everything is exact integer arithmetic: results are bit-identical to
//! multiplying two independent [`modpow`](crate::modpow) results, which
//! the proptest suite (`crates/bignum/tests/multiexp_equiv.rs`) pins.

use crate::montgomery::{MontElem, MontgomeryCtx, WINDOW};
use crate::uint::Uint;

/// The digit table for one base at an arbitrary window width: `base^d`
/// for `d ∈ [1, 2^window)`, in Montgomery form (`2^window - 1` entries;
/// index `d - 1` holds `base^d`).
///
/// This is the one shared builder behind every digit table in the crate:
/// [`window_powers`] (Straus), each block row of a
/// [`FixedBaseTable`](crate::FixedBaseTable) (Brauer), and the dense small
/// tables the Pippenger path ([`crate::pippenger`]) degenerates to for
/// tiny batches all call it rather than growing their own copy.
pub fn digit_powers(ctx: &MontgomeryCtx, base: &MontElem, window: usize) -> Vec<MontElem> {
    debug_assert!(window >= 1);
    let mut powers = Vec::with_capacity((1 << window) - 1);
    powers.push(base.clone());
    for d in 1..(1 << window) - 1 {
        let next = ctx.mul(&powers[d - 1], base);
        powers.push(next);
    }
    powers
}

/// The digit table for one base: `base^d` for `d ∈ [1, 2^WINDOW)`, in
/// Montgomery form (`2^WINDOW - 1` entries; index `d - 1` holds `base^d`).
pub fn window_powers(ctx: &MontgomeryCtx, base: &MontElem) -> Vec<MontElem> {
    digit_powers(ctx, base, WINDOW)
}

/// Extract the `w`-th `window`-bit digit of `exp` (digit 0 is the least
/// significant).
pub(crate) fn digit(exp: &Uint, w: usize, window: usize) -> usize {
    let mut d = 0usize;
    for bit in (0..window).rev() {
        d = (d << 1) | usize::from(exp.bit(w * window + bit));
    }
    d
}

/// `a^ae · b^be` in Montgomery form via Straus interleaving, with
/// caller-supplied digit tables (each exactly the [`window_powers`] of its
/// base).
///
/// One shared squaring chain covers both exponents; each window costs
/// [`WINDOW`] squarings plus at most one multiplication per base with a
/// non-zero digit. Zero exponents contribute nothing (both zero yields
/// the Montgomery one).
pub fn joint_pow_with_powers(
    ctx: &MontgomeryCtx,
    a_powers: &[MontElem],
    ae: &Uint,
    b_powers: &[MontElem],
    be: &Uint,
) -> MontElem {
    debug_assert_eq!(a_powers.len(), (1 << WINDOW) - 1);
    debug_assert_eq!(b_powers.len(), (1 << WINDOW) - 1);
    let bits = ae.bit_len().max(be.bit_len());
    if bits == 0 {
        return ctx.one();
    }
    let windows = bits.div_ceil(WINDOW);
    let mut result: Option<MontElem> = None;
    for w in (0..windows).rev() {
        if let Some(r) = result.as_mut() {
            for _ in 0..WINDOW {
                *r = ctx.square(r);
            }
        }
        for (powers, exp) in [(a_powers, ae), (b_powers, be)] {
            let d = digit(exp, w, WINDOW);
            if d != 0 {
                result = Some(match result {
                    Some(r) => ctx.mul(&r, &powers[d - 1]),
                    None => powers[d - 1].clone(),
                });
            }
        }
    }
    result.unwrap_or_else(|| ctx.one())
}

/// `a^ae · b^be` in Montgomery form (tables built internally).
pub fn joint_pow_mont(
    ctx: &MontgomeryCtx,
    a: &MontElem,
    ae: &Uint,
    b: &MontElem,
    be: &Uint,
) -> MontElem {
    joint_pow_with_powers(
        ctx,
        &window_powers(ctx, a),
        ae,
        &window_powers(ctx, b),
        be,
    )
}

/// `a^ae · b^be mod n` with inputs and output in normal form (convenience
/// wrapper for tests and callers outside a Montgomery pipeline).
pub fn joint_modpow(ctx: &MontgomeryCtx, a: &Uint, ae: &Uint, b: &Uint, be: &Uint) -> Uint {
    let am = ctx.to_montgomery(a);
    let bm = ctx.to_montgomery(b);
    ctx.from_montgomery(&joint_pow_mont(ctx, &am, ae, &bm, be))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(hex: &str) -> Uint {
        Uint::from_hex(hex).unwrap()
    }

    fn reference(ctx: &MontgomeryCtx, a: &Uint, ae: &Uint, b: &Uint, be: &Uint) -> Uint {
        ctx.modpow(a, ae).mul_mod(&ctx.modpow(b, be), ctx.modulus())
    }

    #[test]
    fn joint_matches_separate_pows() {
        let n = u("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let a = Uint::from_u64(4);
        let b = u("ab3d485627ba6272e0f9c0a9ae435e247c91df81a1743c12a89eeaf8ef52878a");
        for (ae, be) in [
            (Uint::from_u64(3), Uint::from_u64(5)),
            (u("1eadbeef1eadbeef1eadbeef1eadbeef"), Uint::from_u64(2)),
            (
                u("76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb784"),
                u("1234567890abcdef1234567890abcdef1234567890abcdef"),
            ),
        ] {
            assert_eq!(
                joint_modpow(&ctx, &a, &ae, &b, &be),
                reference(&ctx, &a, &ae, &b, &be),
                "ae={ae:?} be={be:?}"
            );
        }
    }

    #[test]
    fn zero_exponent_edges() {
        let n = u("76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb785");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let a = Uint::from_u64(7);
        let b = Uint::from_u64(11);
        let e = u("deadbeefcafef00d");
        // Both zero: empty product is 1.
        assert_eq!(
            joint_modpow(&ctx, &a, &Uint::zero(), &b, &Uint::zero()),
            Uint::one()
        );
        // One zero: degenerates to a single pow.
        assert_eq!(joint_modpow(&ctx, &a, &e, &b, &Uint::zero()), ctx.modpow(&a, &e));
        assert_eq!(joint_modpow(&ctx, &a, &Uint::zero(), &b, &e), ctx.modpow(&b, &e));
    }

    #[test]
    fn mismatched_exponent_widths() {
        // One wide, one narrow exponent: the shared chain is driven by the
        // wider one and the narrow digits are all-zero at the top.
        let n = u("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let a = Uint::from_u64(2);
        let b = Uint::from_u64(3);
        let wide = u("76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb784");
        let narrow = Uint::from_u64(5);
        assert_eq!(
            joint_modpow(&ctx, &a, &wide, &b, &narrow),
            reference(&ctx, &a, &wide, &b, &narrow)
        );
        assert_eq!(
            joint_modpow(&ctx, &a, &narrow, &b, &wide),
            reference(&ctx, &a, &narrow, &b, &wide)
        );
    }

    #[test]
    fn digit_powers_matches_pre_dedup_construction() {
        // Equivalence pin for the shared-helper refactor: the generalized
        // digit_powers at WINDOW must reproduce the loop window_powers
        // (and FixedBaseTable rows) used to carry inline.
        let n = u("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let base = ctx.to_montgomery(&u("ab3d485627ba6272e0f9c0a9ae435e247c91df81a1743c12a89eeaf8ef52878a"));
        let mut legacy = Vec::with_capacity((1 << WINDOW) - 1);
        legacy.push(base.clone());
        for d in 1..(1 << WINDOW) - 1 {
            let next = ctx.mul(&legacy[d - 1], &base);
            legacy.push(next);
        }
        assert_eq!(digit_powers(&ctx, &base, WINDOW), legacy);
        assert_eq!(window_powers(&ctx, &base), legacy);
        // Narrow and wide widths have the right shape and contents.
        for window in [1usize, 2, 5, 8] {
            let powers = digit_powers(&ctx, &base, window);
            assert_eq!(powers.len(), (1 << window) - 1);
            let mut acc = base.clone();
            for p in &powers {
                assert_eq!(p, &acc);
                acc = ctx.mul(&acc, &base);
            }
        }
    }

    #[test]
    fn shared_powers_reuse_matches() {
        let n = u("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b");
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let a = ctx.to_montgomery(&Uint::from_u64(4));
        let b = ctx.to_montgomery(&u("1eadbeef1eadbeef1eadbeef1eadbeef1eadbeef"));
        let ae = u("deadbeefcafef00d1234");
        let be = u("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        let a_powers = window_powers(&ctx, &a);
        let b_powers = window_powers(&ctx, &b);
        assert_eq!(
            joint_pow_with_powers(&ctx, &a_powers, &ae, &b_powers, &be),
            joint_pow_mont(&ctx, &a, &ae, &b, &be)
        );
    }
}
