//! The [`Uint`] arbitrary-precision unsigned integer.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u32` limbs with no trailing zero limbs; zero is
/// the empty limb vector. All arithmetic is checked: subtraction of a larger
/// value and division by zero return errors rather than wrapping.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Uint {
    /// Little-endian limbs, normalized (highest limb non-zero).
    limbs: Vec<u32>,
}

impl Uint {
    /// The value 0.
    pub fn zero() -> Self {
        Uint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Uint { limbs: vec![1] }
    }

    /// Construct from a primitive.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = vec![(v & 0xffff_ffff) as u32, (v >> 32) as u32];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Uint { limbs }
    }

    /// Construct from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut acc: u32 = 0;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            acc |= (b as u32) << shift;
            shift += 8;
            if shift == 32 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Uint { limbs }
    }

    /// Serialize to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most significant limb.
                let mut skipping = true;
                for &b in &bytes {
                    if skipping && b == 0 {
                        continue;
                    }
                    skipping = false;
                    out.push(b);
                }
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialize to big-endian bytes left-padded with zeros to `len` bytes.
    ///
    /// Returns `None` if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// Parse a (case-insensitive) hexadecimal string, without `0x` prefix.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        if s.is_empty() {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let padded = if s.len() % 2 == 1 {
            format!("0{s}")
        } else {
            s
        };
        for chunk in padded.as_bytes().chunks(2) {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            bytes.push((hi * 16 + lo) as u8);
        }
        Some(Uint::from_bytes_be(&bytes))
    }

    /// Render as lowercase hexadecimal ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let bytes = self.to_bytes_be();
        let mut s = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            s.push_str(&format!("{b:02x}"));
        }
        // Trim a single leading zero nibble for canonical form.
        if s.starts_with('0') {
            s.remove(0);
        }
        s
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// The `i`-th bit (bit 0 is least significant).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 32, i % 32);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Lowest 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        let lo = *self.limbs.first().unwrap_or(&0) as u64;
        let hi = *self.limbs.get(1).unwrap_or(&0) as u64;
        lo | (hi << 32)
    }

    fn normalize(mut limbs: Vec<u32>) -> Uint {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Uint { limbs }
    }

    /// Little-endian limb view (crate-internal; used by the Montgomery
    /// arithmetic layer, which works on raw limb vectors).
    pub(crate) fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    /// Build from little-endian limbs, normalizing trailing zeros
    /// (crate-internal counterpart of [`limbs`](Self::limbs)).
    pub(crate) fn from_limbs(limbs: Vec<u32>) -> Uint {
        Uint::normalize(limbs)
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Uint) -> Uint {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = *self.limbs.get(i).unwrap_or(&0) as u64;
            let b = *other.limbs.get(i).unwrap_or(&0) as u64;
            let s = a + b + carry;
            out.push((s & 0xffff_ffff) as u32);
            carry = s >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        Uint::normalize(out)
    }

    /// `self - other`, or `None` if the result would be negative.
    #[must_use]
    pub fn checked_sub(&self, other: &Uint) -> Option<Uint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1i64 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        Some(Uint::normalize(out))
    }

    /// `self * other` (schoolbook).
    #[must_use]
    pub fn mul(&self, other: &Uint) -> Uint {
        if self.is_zero() || other.is_zero() {
            return Uint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u64 + (a as u64) * (b as u64) + carry;
                out[i + j] = (t & 0xffff_ffff) as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = out[k] as u64 + carry;
                out[k] = (t & 0xffff_ffff) as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        Uint::normalize(out)
    }

    /// Shift left by `bits`.
    #[must_use]
    pub fn shl(&self, bits: usize) -> Uint {
        if self.is_zero() {
            return Uint::zero();
        }
        let (limb_shift, bit_shift) = (bits / 32, bits % 32);
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        Uint::normalize(out)
    }

    /// Shift right by `bits`.
    #[must_use]
    pub fn shr(&self, bits: usize) -> Uint {
        let (limb_shift, bit_shift) = (bits / 32, bits % 32);
        if limb_shift >= self.limbs.len() {
            return Uint::zero();
        }
        let mut out: Vec<u32> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            let mut carry = 0u32;
            for l in out.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (32 - bit_shift);
                *l = new;
            }
        }
        Uint::normalize(out)
    }

    /// `(self / divisor, self % divisor)`; `None` when `divisor` is zero.
    ///
    /// Uses long division with Knuth's Algorithm D normalization for the
    /// multi-limb case.
    #[must_use]
    pub fn div_rem(&self, divisor: &Uint) -> Option<(Uint, Uint)> {
        if divisor.is_zero() {
            return None;
        }
        match self.cmp(divisor) {
            Ordering::Less => return Some((Uint::zero(), self.clone())),
            Ordering::Equal => return Some((Uint::one(), Uint::zero())),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut q = vec![0u32; self.limbs.len()];
            let mut rem = 0u64;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            return Some((Uint::normalize(q), Uint::from_u64(rem)));
        }

        // Knuth Algorithm D.
        let shift = divisor.limbs.last().expect("divisor is normalized and non-zero").leading_zeros() as usize;
        let v = divisor.shl(shift);
        let mut u = self.shl(shift).limbs;
        let n = v.limbs.len();
        let m = u.len() - n;
        u.push(0); // u has m + n + 1 limbs
        let mut q = vec![0u32; m + 1];
        let v_hi = v.limbs[n - 1] as u64;
        let v_next = v.limbs[n - 2] as u64;

        for j in (0..=m).rev() {
            let top = ((u[j + n] as u64) << 32) | u[j + n - 1] as u64;
            let mut qhat = top / v_hi;
            let mut rhat = top % v_hi;
            while qhat >= 1u64 << 32
                || qhat * v_next > ((rhat << 32) | u[j + n - 2] as u64)
            {
                qhat -= 1;
                rhat += v_hi;
                if rhat >= 1u64 << 32 {
                    break;
                }
            }
            // Multiply-subtract: u[j..j+n+1] -= qhat * v
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * v.limbs[i] as u64 + carry;
                carry = p >> 32;
                let sub = (p & 0xffff_ffff) as i64;
                let mut d = u[j + i] as i64 - sub - borrow;
                if d < 0 {
                    d += 1i64 << 32;
                    borrow = 1;
                } else {
                    borrow = 0;
                }
                u[j + i] = d as u32;
            }
            let mut d = u[j + n] as i64 - carry as i64 - borrow;
            if d < 0 {
                // qhat was one too large: add back v.
                d += 1i64 << 32;
                qhat -= 1;
                let mut carry2 = 0u64;
                for i in 0..n {
                    let s = u[j + i] as u64 + v.limbs[i] as u64 + carry2;
                    u[j + i] = (s & 0xffff_ffff) as u32;
                    carry2 = s >> 32;
                }
                d += carry2 as i64;
                d &= (1i64 << 32) - 1;
            }
            u[j + n] = d as u32;
            q[j] = qhat as u32;
        }
        let rem = Uint::normalize(u[..n].to_vec()).shr(shift);
        Some((Uint::normalize(q), rem))
    }

    /// `self % modulus`; `None` when `modulus` is zero.
    #[must_use]
    pub fn rem(&self, modulus: &Uint) -> Option<Uint> {
        if modulus.limbs.len() == 1 {
            return Some(Uint::from_u64(self.rem_u32(modulus.limbs[0]) as u64));
        }
        self.div_rem(modulus).map(|(_, r)| r)
    }

    /// `self mod d` for a single-limb divisor, by limb-wise folding —
    /// no quotient is materialized. Panics when `d == 0` (matching the
    /// `None`/`expect` contract of the multi-limb paths).
    pub(crate) fn rem_u32(&self, d: u32) -> u32 {
        assert!(d != 0, "division by zero");
        let d = d as u64;
        let mut r: u64 = 0;
        for &limb in self.limbs.iter().rev() {
            r = ((r << 32) | limb as u64) % d;
        }
        r as u32
    }

    /// Modular addition: `(self + other) mod m`. Inputs need not be reduced.
    #[must_use]
    pub fn add_mod(&self, other: &Uint, m: &Uint) -> Uint {
        self.add(other).rem(m).expect("modulus must be non-zero")
    }

    /// Modular subtraction: `(self - other) mod m`. Inputs need not be reduced.
    #[must_use]
    pub fn sub_mod(&self, other: &Uint, m: &Uint) -> Uint {
        let a = self.rem(m).expect("modulus must be non-zero");
        let b = other.rem(m).expect("modulus must be non-zero");
        if a >= b {
            a.checked_sub(&b).expect("a >= b checked above")
        } else {
            a.add(m).checked_sub(&b).expect("a + m >= b since b < m")
        }
    }

    /// Modular multiplication: `(self * other) mod m`.
    ///
    /// Single-limb moduli take a fast path: both operands are folded to
    /// `u32` residues first, so no full-width product or `div_rem` is ever
    /// formed.
    #[must_use]
    pub fn mul_mod(&self, other: &Uint, m: &Uint) -> Uint {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if m.limbs.len() == 1 {
            let d = m.limbs[0];
            let prod = self.rem_u32(d) as u64 * other.rem_u32(d) as u64;
            return Uint::from_u64(prod % d as u64);
        }
        self.mul(other).rem(m).expect("modulus must be non-zero")
    }
}

impl Ord for Uint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            o => return o,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for Uint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uint(0x{})", self.to_hex())
    }
}

impl fmt::Display for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for Uint {
    fn from(v: u64) -> Self {
        Uint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_properties() {
        let z = Uint::zero();
        assert!(z.is_zero());
        assert!(!z.is_odd());
        assert_eq!(z.bit_len(), 0);
        assert_eq!(z.to_bytes_be(), Vec::<u8>::new());
        assert_eq!(z.to_hex(), "0");
    }

    #[test]
    fn roundtrip_bytes() {
        let v = Uint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(v.to_bytes_be(), vec![0x01, 0x02, 0x03, 0x04, 0x05]);
        // Leading zeros stripped.
        let v2 = Uint::from_bytes_be(&[0x00, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(v, v2);
    }

    #[test]
    fn roundtrip_hex() {
        let v = Uint::from_hex("deadbeefcafebabe1234").unwrap();
        assert_eq!(v.to_hex(), "deadbeefcafebabe1234");
        assert_eq!(Uint::from_hex("0").unwrap(), Uint::zero());
        assert!(Uint::from_hex("xyz").is_none());
    }

    #[test]
    fn padded_bytes() {
        let v = Uint::from_u64(0x0102);
        assert_eq!(v.to_bytes_be_padded(4).unwrap(), vec![0, 0, 1, 2]);
        assert!(v.to_bytes_be_padded(1).is_none());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Uint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let b = Uint::from_hex("123456789abcdef0").unwrap();
        let s = a.add(&b);
        assert_eq!(s.checked_sub(&b).unwrap(), a);
        assert_eq!(s.checked_sub(&a).unwrap(), b);
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = Uint::from_hex("ffffffff").unwrap();
        assert_eq!(a.add(&Uint::one()).to_hex(), "100000000");
    }

    #[test]
    fn mul_known_values() {
        let a = Uint::from_hex("123456789abcdef").unwrap();
        let b = Uint::from_hex("fedcba9876543210").unwrap();
        // Computed independently.
        assert_eq!(a.mul(&b).to_hex(), "121fa00ad77d7422236d88fe5618cf0");
        assert_eq!(a.mul(&Uint::zero()), Uint::zero());
        assert_eq!(a.mul(&Uint::one()), a);
    }

    #[test]
    fn shifts() {
        let a = Uint::from_hex("1234").unwrap();
        assert_eq!(a.shl(4).to_hex(), "12340");
        assert_eq!(a.shl(36).to_hex(), "1234000000000");
        assert_eq!(a.shl(36).shr(36), a);
        assert_eq!(a.shr(100), Uint::zero());
    }

    #[test]
    fn div_rem_small() {
        let a = Uint::from_u64(1000);
        let (q, r) = a.div_rem(&Uint::from_u64(7)).unwrap();
        assert_eq!(q, Uint::from_u64(142));
        assert_eq!(r, Uint::from_u64(6));
        assert!(a.div_rem(&Uint::zero()).is_none());
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = Uint::from_hex("123456789abcdef0123456789abcdef0123456789abcdef0").unwrap();
        let b = Uint::from_hex("fedcba98765432100f").unwrap();
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_identity_and_smaller() {
        let a = Uint::from_hex("ffffffffffffffffffffffff").unwrap();
        let (q, r) = a.div_rem(&a).unwrap();
        assert_eq!(q, Uint::one());
        assert!(r.is_zero());
        let small = Uint::from_u64(5);
        let (q, r) = small.div_rem(&a).unwrap();
        assert!(q.is_zero());
        assert_eq!(r, small);
    }

    #[test]
    fn bit_access() {
        let a = Uint::from_u64(0b1010);
        assert!(!a.bit(0));
        assert!(a.bit(1));
        assert!(!a.bit(2));
        assert!(a.bit(3));
        assert!(!a.bit(64));
        assert_eq!(a.bit_len(), 4);
    }

    #[test]
    fn mod_arith() {
        let m = Uint::from_u64(97);
        let a = Uint::from_u64(95);
        let b = Uint::from_u64(10);
        assert_eq!(a.add_mod(&b, &m), Uint::from_u64(8));
        assert_eq!(a.sub_mod(&b, &m), Uint::from_u64(85));
        assert_eq!(b.sub_mod(&a, &m), Uint::from_u64(12));
        assert_eq!(a.mul_mod(&b, &m), Uint::from_u64(950 % 97));
    }

    #[test]
    fn ordering() {
        let a = Uint::from_hex("100000000").unwrap();
        let b = Uint::from_hex("ffffffff").unwrap();
        assert!(a > b);
        assert!(Uint::zero() < Uint::one());
    }
}
