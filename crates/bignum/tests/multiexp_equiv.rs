//! Property-based equivalence: Straus joint exponentiation vs the product
//! of two independent `modpow` results.
//!
//! The joint path must be bit-identical to `a^x · b^y mod n` computed the
//! slow way, across random multi-limb operands, mismatched exponent
//! widths, zero exponents, `R`-boundary bases (operands at the Montgomery
//! radix `R = 2^(64k)`), and generalized fixed-base tables built from
//! arbitrary Montgomery residues.

use ccc_bignum::{
    joint_modpow, joint_pow_mont, joint_pow_with_powers, modpow_naive, window_powers,
    FixedBaseTable, MontgomeryCtx, Uint,
};
use proptest::prelude::*;

fn uint(bytes: &[u8]) -> Uint {
    Uint::from_bytes_be(bytes)
}

/// Force a byte-vector modulus odd and > 1.
fn odd_modulus(bytes: &[u8]) -> Uint {
    let mut m = bytes.to_vec();
    if m.is_empty() {
        m.push(3);
    }
    *m.last_mut().expect("m is non-empty") |= 1; // odd
    let m = uint(&m);
    if m <= Uint::one() {
        Uint::from_u64(3)
    } else {
        m
    }
}

/// The reference: two independent naive exponentiations, multiplied.
fn reference(a: &Uint, ae: &Uint, b: &Uint, be: &Uint, n: &Uint) -> Uint {
    modpow_naive(a, ae, n)
        .expect("n > 0")
        .mul_mod(&modpow_naive(b, be, n).expect("n > 0"), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn joint_equals_product_of_pows(
        a in proptest::collection::vec(any::<u8>(), 0..48),
        b in proptest::collection::vec(any::<u8>(), 0..48),
        ae in proptest::collection::vec(any::<u8>(), 0..24),
        be in proptest::collection::vec(any::<u8>(), 0..24),
        modulus in proptest::collection::vec(any::<u8>(), 1..48),
    ) {
        let modulus = odd_modulus(&modulus);
        let (a, b) = (uint(&a), uint(&b));
        let (ae, be) = (uint(&ae), uint(&be));
        let ctx = MontgomeryCtx::new(&modulus).expect("odd modulus > 1");
        prop_assert_eq!(
            joint_modpow(&ctx, &a, &ae, &b, &be),
            reference(&a, &ae, &b, &be, &modulus)
        );
    }

    #[test]
    fn zero_exponents_degenerate_cleanly(
        a in proptest::collection::vec(any::<u8>(), 1..32),
        b in proptest::collection::vec(any::<u8>(), 1..32),
        e in proptest::collection::vec(any::<u8>(), 0..16),
        modulus in proptest::collection::vec(any::<u8>(), 2..32),
    ) {
        let modulus = odd_modulus(&modulus);
        let (a, b, e) = (uint(&a), uint(&b), uint(&e));
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        // Both zero → 1 mod n.
        prop_assert_eq!(
            joint_modpow(&ctx, &a, &Uint::zero(), &b, &Uint::zero()),
            Uint::one().rem(&modulus).unwrap()
        );
        // One zero → a plain single-base pow.
        prop_assert_eq!(
            joint_modpow(&ctx, &a, &e, &b, &Uint::zero()),
            ctx.modpow(&a, &e)
        );
        prop_assert_eq!(
            joint_modpow(&ctx, &a, &Uint::zero(), &b, &e),
            ctx.modpow(&b, &e)
        );
    }

    #[test]
    fn precomputed_powers_and_fixed_base_rows_interchange(
        a in proptest::collection::vec(any::<u8>(), 1..32),
        b in proptest::collection::vec(any::<u8>(), 1..32),
        ae in proptest::collection::vec(any::<u8>(), 0..20),
        be in proptest::collection::vec(any::<u8>(), 0..20),
        modulus in proptest::collection::vec(any::<u8>(), 5..32),
    ) {
        let modulus = odd_modulus(&modulus);
        let (a, b) = (uint(&a), uint(&b));
        let (ae, be) = (uint(&ae), uint(&be));
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        let am = ctx.to_montgomery(&a);
        let bm = ctx.to_montgomery(&b);
        // A fixed-base table's first row is a valid Straus digit table.
        let a_table = FixedBaseTable::from_mont(&ctx, &am, 160);
        let joint = joint_pow_with_powers(
            &ctx,
            a_table.first_row(),
            &ae,
            &window_powers(&ctx, &bm),
            &be,
        );
        prop_assert_eq!(joint.clone(), joint_pow_mont(&ctx, &am, &ae, &bm, &be));
        prop_assert_eq!(
            ctx.from_montgomery(&joint),
            reference(&a, &ae, &b, &be, &modulus)
        );
    }

    #[test]
    fn generalized_fixed_base_table_equals_pow_mont(
        base in proptest::collection::vec(any::<u8>(), 1..32),
        exp in proptest::collection::vec(any::<u8>(), 0..20),
        modulus in proptest::collection::vec(any::<u8>(), 2..32),
    ) {
        // FixedBaseTable::from_mont over an arbitrary residue (not a group
        // generator) must agree with generic windowed exponentiation,
        // including the beyond-table-width fallback.
        let modulus = odd_modulus(&modulus);
        let (base, exp) = (uint(&base), uint(&exp));
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        let bm = ctx.to_montgomery(&base);
        let table = FixedBaseTable::from_mont(&ctx, &bm, 96);
        prop_assert_eq!(
            ctx.from_montgomery(&table.pow_mont(&ctx, &exp)),
            ctx.modpow(&base, &exp)
        );
    }
}

#[test]
fn r_boundary_bases() {
    // Bases at the Montgomery radix: R ≡ the Montgomery one, R ± 1
    // straddle the conditional-subtraction path.
    for modulus in [
        Uint::from_u64(0xffff_fff1),
        Uint::from_hex("ffffffffffffffffffffffef").unwrap(), // 2^96 - 17
        Uint::from_hex("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b")
            .unwrap(),
    ] {
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        let r = Uint::one().shl(64 * ctx.limbs());
        let bases = [
            r.checked_sub(&Uint::one()).unwrap(),
            r.clone(),
            r.add(&Uint::one()),
            modulus.checked_sub(&Uint::one()).unwrap(),
        ];
        for a in &bases {
            for b in &bases {
                for (ae, be) in [
                    (Uint::from_u64(2), Uint::from_u64(65537)),
                    (Uint::from_u64(0xdead_beef), Uint::one()),
                ] {
                    assert_eq!(
                        joint_modpow(&ctx, a, &ae, b, &be),
                        modpow_naive(a, &ae, &modulus)
                            .unwrap()
                            .mul_mod(&modpow_naive(b, &be, &modulus).unwrap(), &modulus),
                        "modulus={modulus:?} a={a:?} b={b:?} ae={ae:?} be={be:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn schnorr_shaped_verification_product() {
    // The exact shape PublicKey::verify computes: g^s · y^(q-e) over the
    // 256-bit simulation group prime, exponents just below q.
    let p = Uint::from_hex("edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b")
        .unwrap();
    let q = Uint::from_hex("76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb785")
        .unwrap();
    let ctx = MontgomeryCtx::new(&p).unwrap();
    let g = Uint::from_u64(4);
    let y = Uint::from_hex("ab3d485627ba6272e0f9c0a9ae435e247c91df81a1743c12a89eeaf8ef52878a")
        .unwrap();
    let s = q.checked_sub(&Uint::from_u64(12345)).unwrap();
    let neg_e = q.checked_sub(&Uint::from_u64(0xcafe_f00d)).unwrap();
    assert_eq!(
        joint_modpow(&ctx, &g, &s, &y, &neg_e),
        modpow_naive(&g, &s, &p)
            .unwrap()
            .mul_mod(&modpow_naive(&y, &neg_e, &p).unwrap(), &p)
    );
}
