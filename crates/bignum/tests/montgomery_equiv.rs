//! Property-based equivalence: the Montgomery stack vs the schoolbook path.
//!
//! Every result the optimized arithmetic produces must be bit-identical to
//! `modpow_naive` / full-width `mul` + `div_rem`, across random multi-limb
//! operands, `R`-boundary values (operands straddling the Montgomery radix
//! `R = 2^(64k)`), single-limb moduli (the `mul_mod` fast path), and the
//! even-modulus rejection rule.

use ccc_bignum::{modpow, modpow_naive, FixedBaseTable, MontgomeryCtx, Uint};
use proptest::prelude::*;

/// Build a Uint from random bytes (any length, leading zeros fine).
fn uint(bytes: &[u8]) -> Uint {
    Uint::from_bytes_be(bytes)
}

/// Force a byte-vector modulus odd and > 1.
fn odd_modulus(bytes: &[u8]) -> Uint {
    let mut m = bytes.to_vec();
    if m.is_empty() {
        m.push(3);
    }
    *m.last_mut().expect("m is non-empty") |= 1; // odd
    let m = uint(&m);
    if m <= Uint::one() {
        Uint::from_u64(3)
    } else {
        m
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn montgomery_modpow_equals_naive(
        base in proptest::collection::vec(any::<u8>(), 0..48),
        exp in proptest::collection::vec(any::<u8>(), 0..24),
        modulus in proptest::collection::vec(any::<u8>(), 1..48),
    ) {
        let base = uint(&base);
        let exp = uint(&exp);
        let modulus = odd_modulus(&modulus);
        let ctx = MontgomeryCtx::new(&modulus).expect("odd modulus > 1");
        prop_assert_eq!(
            ctx.modpow(&base, &exp),
            modpow_naive(&base, &exp, &modulus).unwrap()
        );
        // The public wrapper dispatches to the same answer.
        prop_assert_eq!(
            modpow(&base, &exp, &modulus).unwrap(),
            modpow_naive(&base, &exp, &modulus).unwrap()
        );
    }

    #[test]
    fn modpow_wrapper_equals_naive_for_even_moduli(
        base in proptest::collection::vec(any::<u8>(), 0..32),
        exp in proptest::collection::vec(any::<u8>(), 0..8),
        modulus in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let base = uint(&base);
        let exp = uint(&exp);
        let mut m = modulus.clone();
        *m.last_mut().unwrap() &= 0xfe; // force even
        let modulus = uint(&m);
        prop_assume!(!modulus.is_zero());
        // Even moduli must be rejected by the Montgomery layer...
        prop_assert!(MontgomeryCtx::new(&modulus).is_none());
        // ...and the wrapper must still answer via the naive path.
        prop_assert_eq!(
            modpow(&base, &exp, &modulus),
            modpow_naive(&base, &exp, &modulus)
        );
    }

    #[test]
    fn mul_mod_fast_path_equals_reference(
        a in proptest::collection::vec(any::<u8>(), 0..40),
        b in proptest::collection::vec(any::<u8>(), 0..40),
        d in 1u32..u32::MAX,
    ) {
        let a = uint(&a);
        let b = uint(&b);
        let m = Uint::from_u64(d as u64);
        // Reference: full product then Knuth division.
        let (_, reference) = a.mul(&b).div_rem(&m).unwrap();
        prop_assert_eq!(a.mul_mod(&b, &m), reference);
        let (_, rem_ref) = a.div_rem(&m).unwrap();
        prop_assert_eq!(a.rem(&m).unwrap(), rem_ref);
    }

    #[test]
    fn montgomery_mul_equals_mul_mod_multi_limb(
        a in proptest::collection::vec(any::<u8>(), 0..48),
        b in proptest::collection::vec(any::<u8>(), 0..48),
        modulus in proptest::collection::vec(any::<u8>(), 5..48),
    ) {
        let modulus = odd_modulus(&modulus);
        let a = uint(&a).rem(&modulus).unwrap();
        let b = uint(&b).rem(&modulus).unwrap();
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        let am = ctx.to_montgomery(&a);
        let bm = ctx.to_montgomery(&b);
        prop_assert_eq!(
            ctx.from_montgomery(&ctx.mul(&am, &bm)),
            a.mul_mod(&b, &modulus)
        );
    }

    #[test]
    fn fixed_base_equals_naive(
        base in proptest::collection::vec(any::<u8>(), 1..24),
        exp in proptest::collection::vec(any::<u8>(), 0..20),
        modulus in proptest::collection::vec(any::<u8>(), 2..24),
    ) {
        let base = uint(&base);
        let exp = uint(&exp);
        let modulus = odd_modulus(&modulus);
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        // Table deliberately narrower than some exponents to also exercise
        // the fallback path.
        let table = FixedBaseTable::new(&ctx, &base, 96);
        prop_assert_eq!(
            table.pow(&ctx, &exp),
            modpow_naive(&base, &exp, &modulus).unwrap()
        );
    }
}

#[test]
fn r_boundary_values() {
    // Operands and results sitting exactly at the Montgomery radix
    // R = 2^(64k): the conditional-subtraction and carry-limb paths.
    for modulus in [
        // k = 1: R = 2^64.
        Uint::from_u64(0xffff_fff1),
        Uint::from_u64(3),
        // k = 1 with every bit of the limb set: n just below R.
        Uint::from_u64(u64::MAX - 58), // 0xffffffffffffffc5, odd? MAX-58 = ...c5 -> odd
        // Multi-limb: 2^96 - 17 (straddles a 64-bit limb boundary).
        Uint::from_hex("ffffffffffffffffffffffef").unwrap(),
        // k = 3 with all-ones limbs: 2^192 - 237.
        Uint::from_hex("ffffffffffffffffffffffffffffffffffffffffffffff13").unwrap(),
    ] {
        assert!(modulus.is_odd(), "{modulus:?}");
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        let k = ctx.limbs();
        let r = Uint::one().shl(64 * k);
        for base in [
            r.checked_sub(&Uint::one()).unwrap(), // R - 1
            r.clone(),                            // R itself (≡ Montgomery one)
            r.add(&Uint::one()),                  // R + 1
            modulus.checked_sub(&Uint::one()).unwrap(), // n - 1
        ] {
            for exp in [Uint::one(), Uint::from_u64(2), Uint::from_u64(65537)] {
                assert_eq!(
                    ctx.modpow(&base, &exp),
                    modpow_naive(&base, &exp, &modulus).unwrap(),
                    "modulus={modulus:?} base={base:?} exp={exp:?}"
                );
            }
        }
        // Round-trip of R-1 through Montgomery form.
        let v = r.checked_sub(&Uint::one()).unwrap().rem(&modulus).unwrap();
        assert_eq!(ctx.from_montgomery(&ctx.to_montgomery(&v)), v);
    }
}

#[test]
fn even_modulus_rejection_and_wrapper_contract() {
    assert!(MontgomeryCtx::new(&Uint::zero()).is_none());
    assert!(MontgomeryCtx::new(&Uint::one()).is_none());
    assert!(MontgomeryCtx::new(&Uint::from_u64(2)).is_none());
    assert!(MontgomeryCtx::new(&Uint::from_u64(1 << 40)).is_none());
    // Wrapper edge cases unchanged from the seed implementation.
    assert!(modpow(&Uint::from_u64(2), &Uint::from_u64(10), &Uint::zero()).is_none());
    assert_eq!(
        modpow(&Uint::from_u64(2), &Uint::from_u64(10), &Uint::one()).unwrap(),
        Uint::zero()
    );
    assert_eq!(
        modpow(&Uint::from_u64(2), &Uint::zero(), &Uint::from_u64(7)).unwrap(),
        Uint::one()
    );
}
