//! Property-based equivalence: Pippenger bucket multi-exponentiation vs
//! the product of k independent `modpow` results.
//!
//! The bucket path must be bit-identical to `Π bᵢ^{eᵢ} mod n` computed
//! the slow way, across random batch sizes (covering the scalar/Straus
//! degenerate paths and the bucket path proper), random multi-limb
//! operands, zero exponents, and repeated bases.

use ccc_bignum::{modpow_naive, multi_modpow, optimal_window, MontgomeryCtx, Uint};
use proptest::prelude::*;

fn uint(bytes: &[u8]) -> Uint {
    Uint::from_bytes_be(bytes)
}

/// Force a byte-vector modulus odd and > 1.
fn odd_modulus(bytes: &[u8]) -> Uint {
    let mut m = bytes.to_vec();
    if m.is_empty() {
        m.push(3);
    }
    *m.last_mut().expect("m is non-empty") |= 1; // odd
    let m = uint(&m);
    if m <= Uint::one() {
        Uint::from_u64(3)
    } else {
        m
    }
}

/// The reference: k independent naive exponentiations, multiplied.
fn reference(pairs: &[(Uint, Uint)], n: &Uint) -> Uint {
    let mut acc = Uint::one();
    for (b, e) in pairs {
        acc = acc.mul_mod(&modpow_naive(b, e, n).expect("n > 0"), n);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bucket_product_equals_separate_pows(
        k in 0..12usize,
        base_pool in proptest::collection::vec(any::<u8>(), 480..481),
        exp_pool in proptest::collection::vec(any::<u8>(), 288..289),
        base_lens in proptest::collection::vec(any::<u8>(), 12..13),
        exp_lens in proptest::collection::vec(any::<u8>(), 12..13),
        modulus in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        // The vendored proptest has no tuple strategies, so batches are
        // carved out of flat byte pools: item i takes a prefix of its
        // 40-byte base chunk / 24-byte exponent chunk, with the prefix
        // lengths (0 ⇒ zero operand) drawn from the *_lens vectors.
        let modulus = odd_modulus(&modulus);
        let ctx = MontgomeryCtx::new(&modulus).expect("odd modulus > 1");
        let pairs: Vec<(Uint, Uint)> = (0..k)
            .map(|i| {
                let bl = usize::from(base_lens[i]) % 41;
                let el = usize::from(exp_lens[i]) % 25;
                (
                    uint(&base_pool[i * 40..i * 40 + bl]),
                    uint(&exp_pool[i * 24..i * 24 + el]),
                )
            })
            .collect();
        prop_assert_eq!(multi_modpow(&ctx, &pairs), reference(&pairs, &modulus));
    }

    #[test]
    fn coefficient_shaped_batches_match(
        exps in proptest::collection::vec(any::<u64>(), 3..80),
        modulus in proptest::collection::vec(any::<u8>(), 8..40),
        seed in any::<u64>(),
    ) {
        // The batch self-check's exact shape: many bases, 64-bit
        // exponents. Bases derived deterministically from the seed so
        // collisions (repeated bases landing in one bucket) occur.
        let modulus = odd_modulus(&modulus);
        let ctx = MontgomeryCtx::new(&modulus).expect("odd modulus > 1");
        let mut base = Uint::from_u64(seed | 3);
        let pairs: Vec<(Uint, Uint)> = exps
            .iter()
            .map(|&e| {
                base = base.mul_mod(&base, &modulus).add_mod(&Uint::one(), &modulus);
                (base.clone(), Uint::from_u64(e))
            })
            .collect();
        prop_assert_eq!(multi_modpow(&ctx, &pairs), reference(&pairs, &modulus));
    }
}

#[test]
fn window_choice_never_exceeds_exponent_width_budget() {
    // The window is a pure function of (k, bits): deterministic across
    // runs (batch verdicts must be schedule-independent) and bounded.
    for k in 1..300usize {
        for bits in [8usize, 64, 256, 1536] {
            let c = optimal_window(k, bits);
            assert_eq!(c, optimal_window(k, bits));
            assert!(c >= 1 && c <= 12);
        }
    }
}
