//! Certificate builder — the in-tree equivalent of `rcgen`, extended with
//! the *misconfiguration knobs* the paper's test cases need (absent or
//! mismatched key identifiers, wrong KeyUsage, bad path lengths, corrupt
//! signatures, signing with the wrong key).

use crate::cert::{Certificate, TbsCertificate, Validity};
use crate::extensions::{
    AuthorityInfoAccess, AuthorityKeyIdentifier, BasicConstraints, Extension, ExtendedKeyUsage,
    KeyUsage, SubjectAltName,
};
use crate::name::DistinguishedName;
use crate::spki::SubjectPublicKeyInfo;
use ccc_asn1::{oids, Time};
use ccc_crypto::{KeyPair, PrivateKey, PublicKey};

/// How to populate the Subject Key Identifier extension.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum KidMode {
    /// Derive per RFC 5280 method 1: SHA-1 of the public key bytes.
    #[default]
    Auto,
    /// Omit the extension entirely.
    Absent,
    /// Use these exact bytes (for mismatch test cases).
    Custom(Vec<u8>),
}

/// Compute the canonical key identifier for a public key (SHA-1 of the key
/// material, RFC 5280 §4.2.1.2 method 1).
pub fn key_identifier(key: &PublicKey) -> Vec<u8> {
    ccc_crypto::sha1(key.as_bytes()).to_vec()
}

/// Fluent builder for (possibly deliberately malformed) certificates.
#[derive(Clone, Debug)]
pub struct CertificateBuilder {
    subject: DistinguishedName,
    validity: Validity,
    serial: Option<Vec<u8>>,
    san: Option<SubjectAltName>,
    basic_constraints: Option<BasicConstraints>,
    key_usage: Option<KeyUsage>,
    eku: Option<ExtendedKeyUsage>,
    skid_mode: KidMode,
    akid_mode: KidMode,
    aia: Option<AuthorityInfoAccess>,
    extra_extensions: Vec<Extension>,
    corrupt_signature: bool,
}

impl CertificateBuilder {
    /// Start a builder with a subject DN. Defaults: validity 2024-01-01 to
    /// 2026-01-01, issuer = subject (overridden when signing with
    /// [`Self::issued_by`]), automatic SKID/AKID, no other extensions.
    pub fn new(subject: DistinguishedName) -> CertificateBuilder {
        let not_before = Time::from_ymd(2024, 1, 1).expect("valid date");
        let not_after = Time::from_ymd(2026, 1, 1).expect("valid date");
        CertificateBuilder {
            subject,
            validity: Validity { not_before, not_after },
            serial: None,
            san: None,
            basic_constraints: None,
            key_usage: None,
            eku: None,
            skid_mode: KidMode::Auto,
            akid_mode: KidMode::Auto,
            aia: None,
            extra_extensions: Vec::new(),
            corrupt_signature: false,
        }
    }

    /// Shorthand for a typical CA certificate profile (BasicConstraints
    /// cA=TRUE, KeyUsage keyCertSign|cRLSign).
    pub fn ca_profile(subject: DistinguishedName) -> CertificateBuilder {
        CertificateBuilder::new(subject)
            .basic_constraints(Some(BasicConstraints::ca()))
            .key_usage(Some(KeyUsage::ca()))
    }

    /// Shorthand for a typical TLS leaf profile for `domain`: SAN with the
    /// domain, CN set, end-entity constraints, serverAuth EKU.
    pub fn leaf_profile(domain: &str) -> CertificateBuilder {
        CertificateBuilder::new(DistinguishedName::cn(domain))
            .san(Some(SubjectAltName::dns(&[domain])))
            .basic_constraints(Some(BasicConstraints::end_entity()))
            .key_usage(Some(KeyUsage::tls_server()))
            .eku(Some(ExtendedKeyUsage::server_auth()))
    }

    /// Set the validity window.
    pub fn validity(mut self, not_before: Time, not_after: Time) -> Self {
        self.validity = Validity { not_before, not_after };
        self
    }

    /// Set the serial number magnitude.
    pub fn serial(mut self, serial: Vec<u8>) -> Self {
        self.serial = Some(serial);
        self
    }

    /// Set (or clear) the SAN extension.
    pub fn san(mut self, san: Option<SubjectAltName>) -> Self {
        self.san = san;
        self
    }

    /// Set (or clear) BasicConstraints.
    pub fn basic_constraints(mut self, bc: Option<BasicConstraints>) -> Self {
        self.basic_constraints = bc;
        self
    }

    /// Set (or clear) KeyUsage.
    pub fn key_usage(mut self, ku: Option<KeyUsage>) -> Self {
        self.key_usage = ku;
        self
    }

    /// Set (or clear) ExtendedKeyUsage.
    pub fn eku(mut self, eku: Option<ExtendedKeyUsage>) -> Self {
        self.eku = eku;
        self
    }

    /// Control the SKID extension.
    pub fn skid(mut self, mode: KidMode) -> Self {
        self.skid_mode = mode;
        self
    }

    /// Control the AKID extension.
    pub fn akid(mut self, mode: KidMode) -> Self {
        self.akid_mode = mode;
        self
    }

    /// Add an AIA caIssuers URI.
    pub fn aia_ca_issuers(mut self, uri: impl Into<String>) -> Self {
        self.aia = Some(AuthorityInfoAccess::ca_issuers(uri));
        self
    }

    /// Set (or clear) the whole AIA extension.
    pub fn aia(mut self, aia: Option<AuthorityInfoAccess>) -> Self {
        self.aia = aia;
        self
    }

    /// Append an arbitrary raw extension.
    pub fn extension(mut self, ext: Extension) -> Self {
        self.extra_extensions.push(ext);
        self
    }

    /// Flip a bit in the signature after signing (produces a certificate
    /// whose KID/DN relations all match but whose signature is invalid).
    pub fn corrupt_signature(mut self, corrupt: bool) -> Self {
        self.corrupt_signature = corrupt;
        self
    }

    /// Build a self-signed certificate: subject == issuer, signed by
    /// `keypair` which is also the subject key.
    pub fn self_signed(self, keypair: &KeyPair) -> Certificate {
        let issuer = self.subject.clone();
        self.build(&keypair.public, issuer, &keypair.private, &keypair.public)
    }

    /// Build a certificate for `subject_key`, issued and signed by
    /// `issuer_keypair` under `issuer_dn`.
    pub fn issued_by(
        self,
        subject_key: &PublicKey,
        issuer_dn: DistinguishedName,
        issuer_keypair: &KeyPair,
    ) -> Certificate {
        self.build(
            subject_key,
            issuer_dn,
            &issuer_keypair.private,
            &issuer_keypair.public,
        )
    }

    /// Fully explicit build: sign with `signing_key`, while AKID (in Auto
    /// mode) is derived from `akid_source_key`. Splitting the two enables
    /// "KID says issuer X but signature is from key Y" test certificates.
    pub fn build(
        self,
        subject_key: &PublicKey,
        issuer_dn: DistinguishedName,
        signing_key: &PrivateKey,
        akid_source_key: &PublicKey,
    ) -> Certificate {
        let mut extensions = Vec::new();
        if let Some(san) = &self.san {
            extensions.push(Extension {
                oid: oids::subject_alt_name().clone(),
                critical: false,
                value: san.encode_value(),
            });
        }
        if let Some(bc) = &self.basic_constraints {
            extensions.push(Extension {
                oid: oids::basic_constraints().clone(),
                critical: true,
                value: bc.encode_value(),
            });
        }
        if let Some(ku) = &self.key_usage {
            extensions.push(Extension {
                oid: oids::key_usage().clone(),
                critical: true,
                value: ku.encode_value(),
            });
        }
        if let Some(eku) = &self.eku {
            extensions.push(Extension {
                oid: oids::ext_key_usage().clone(),
                critical: false,
                value: eku.encode_value(),
            });
        }
        match &self.skid_mode {
            KidMode::Auto => extensions.push(skid_extension(&key_identifier(subject_key))),
            KidMode::Custom(bytes) => extensions.push(skid_extension(bytes)),
            KidMode::Absent => {}
        }
        match &self.akid_mode {
            KidMode::Auto => {
                extensions.push(akid_extension(&key_identifier(akid_source_key)));
            }
            KidMode::Custom(bytes) => extensions.push(akid_extension(bytes)),
            KidMode::Absent => {}
        }
        if let Some(aia) = &self.aia {
            extensions.push(Extension {
                oid: oids::authority_info_access().clone(),
                critical: false,
                value: aia.encode_value(),
            });
        }
        extensions.extend(self.extra_extensions.clone());

        let serial = self.serial.clone().unwrap_or_else(|| {
            // Deterministic serial from the identifying fields.
            let mut material = self.subject.to_der();
            material.extend_from_slice(&issuer_dn.to_der());
            material.extend_from_slice(subject_key.as_bytes());
            material.extend_from_slice(&self.validity.not_before.unix().to_be_bytes());
            let digest = ccc_crypto::sha256(&material);
            let mut serial = digest[..16].to_vec();
            serial[0] &= 0x7f; // keep it positive without a pad byte
            if serial[0] == 0 {
                serial[0] = 1;
            }
            serial
        });

        let spki = SubjectPublicKeyInfo::new(subject_key.clone());
        let tbs = TbsCertificate {
            serial,
            signature_algorithm: spki.algorithm,
            issuer: issuer_dn,
            validity: self.validity,
            subject: self.subject.clone(),
            spki,
            extensions,
        };
        let tbs_der = tbs.to_der();
        let mut signature = signing_key.sign(&tbs_der);
        if self.corrupt_signature {
            signature.e[0] ^= 0x01;
        }
        Certificate::assemble(tbs, &signature)
    }
}

fn skid_extension(key_id: &[u8]) -> Extension {
    let mut enc = ccc_asn1::Encoder::new();
    enc.octet_string(key_id);
    Extension {
        oid: oids::subject_key_identifier().clone(),
        critical: false,
        value: enc.finish(),
    }
}

fn akid_extension(key_id: &[u8]) -> Extension {
    Extension {
        oid: oids::authority_key_identifier().clone(),
        critical: false,
        value: AuthorityKeyIdentifier {
            key_id: Some(key_id.to_vec()),
        }
        .encode_value(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::Group;

    fn group() -> &'static Group {
        Group::simulation_256()
    }

    #[test]
    fn self_signed_root_roundtrips_and_verifies() {
        let kp = KeyPair::from_seed(group(), b"root-1");
        let root = CertificateBuilder::ca_profile(DistinguishedName::cn_o("Sim Root", "Sim Trust"))
            .self_signed(&kp);
        assert!(root.is_self_issued());
        assert!(root.is_self_signed());
        assert!(root.is_ca());
        // DER round trip preserves identity.
        let reparsed = Certificate::from_der(root.to_der()).unwrap();
        assert_eq!(reparsed, root);
        assert_eq!(reparsed.subject(), root.subject());
        assert_eq!(reparsed.skid(), root.skid());
    }

    #[test]
    fn three_level_chain_verifies() {
        let root_kp = KeyPair::from_seed(group(), b"root-2");
        let int_kp = KeyPair::from_seed(group(), b"int-2");
        let leaf_kp = KeyPair::from_seed(group(), b"leaf-2");
        let root_dn = DistinguishedName::cn_o("Sim Root 2", "Sim Trust");
        let int_dn = DistinguishedName::cn_o("Sim Issuing CA 2", "Sim Trust");

        let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
        let intermediate = CertificateBuilder::ca_profile(int_dn.clone()).issued_by(
            &int_kp.public,
            root_dn.clone(),
            &root_kp,
        );
        let leaf = CertificateBuilder::leaf_profile("example.sim").issued_by(
            &leaf_kp.public,
            int_dn.clone(),
            &int_kp,
        );

        assert!(leaf.verify_signature_with(intermediate.public_key()));
        assert!(intermediate.verify_signature_with(root.public_key()));
        assert!(!leaf.verify_signature_with(root.public_key()));
        // KID chain: leaf AKID == intermediate SKID, etc.
        assert_eq!(leaf.akid_key_id().unwrap(), intermediate.skid().unwrap());
        assert_eq!(intermediate.akid_key_id().unwrap(), root.skid().unwrap());
        // DN chain.
        assert_eq!(leaf.issuer(), intermediate.subject());
        assert_eq!(intermediate.issuer(), root.subject());
    }

    #[test]
    fn kid_modes() {
        let root_kp = KeyPair::from_seed(group(), b"root-3");
        let leaf_kp = KeyPair::from_seed(group(), b"leaf-3");
        let root_dn = DistinguishedName::cn("Root 3");

        let absent = CertificateBuilder::leaf_profile("a.sim")
            .skid(KidMode::Absent)
            .akid(KidMode::Absent)
            .issued_by(&leaf_kp.public, root_dn.clone(), &root_kp);
        assert!(absent.skid().is_none());
        assert!(absent.akid().is_none());

        let custom = CertificateBuilder::leaf_profile("b.sim")
            .skid(KidMode::Custom(vec![9; 20]))
            .akid(KidMode::Custom(vec![7; 20]))
            .issued_by(&leaf_kp.public, root_dn.clone(), &root_kp);
        assert_eq!(custom.skid().unwrap(), &[9; 20][..]);
        assert_eq!(custom.akid_key_id().unwrap(), &[7; 20][..]);
        // Custom AKID != the real issuer key id.
        assert_ne!(custom.akid_key_id().unwrap(), key_identifier(&root_kp.public));
        // But the signature still verifies (KID mismatch is metadata only).
        assert!(custom.verify_signature_with(&root_kp.public));
    }

    #[test]
    fn corrupt_signature_fails_verification() {
        let kp = KeyPair::from_seed(group(), b"root-4");
        let cert = CertificateBuilder::ca_profile(DistinguishedName::cn("Root 4"))
            .corrupt_signature(true)
            .self_signed(&kp);
        assert!(cert.is_self_issued());
        assert!(!cert.is_self_signed());
        assert!(!cert.verify_signature_with(&kp.public));
    }

    #[test]
    fn wrong_signer_with_matching_metadata() {
        // AKID points at the legitimate issuer, but the actual signature is
        // from an imposter key: DN and KID match, crypto does not.
        let real_kp = KeyPair::from_seed(group(), b"real-ca");
        let imposter_kp = KeyPair::from_seed(group(), b"imposter");
        let leaf_kp = KeyPair::from_seed(group(), b"leaf-5");
        let issuer_dn = DistinguishedName::cn("Real CA");

        let cert = CertificateBuilder::leaf_profile("victim.sim").build(
            &leaf_kp.public,
            issuer_dn,
            &imposter_kp.private,
            &real_kp.public, // AKID source
        );
        assert_eq!(cert.akid_key_id().unwrap(), key_identifier(&real_kp.public));
        assert!(!cert.verify_signature_with(&real_kp.public));
        assert!(cert.verify_signature_with(&imposter_kp.public));
    }

    #[test]
    fn leaf_profile_fields() {
        let kp = KeyPair::from_seed(group(), b"leaf-6");
        let ca_kp = KeyPair::from_seed(group(), b"ca-6");
        let leaf = CertificateBuilder::leaf_profile("www.example.sim").issued_by(
            &kp.public,
            DistinguishedName::cn("CA 6"),
            &ca_kp,
        );
        assert!(!leaf.is_ca());
        assert_eq!(
            leaf.san().unwrap().dns_names().collect::<Vec<_>>(),
            vec!["www.example.sim"]
        );
        assert!(leaf.eku().unwrap().allows_server_auth());
        assert!(leaf.key_usage().unwrap().digital_signature);
        assert!(!leaf.key_usage().unwrap().key_cert_sign);
        assert_eq!(leaf.subject().common_name(), Some("www.example.sim"));
    }

    #[test]
    fn serial_is_deterministic_and_custom_serial_respected() {
        let kp = KeyPair::from_seed(group(), b"root-7");
        let a = CertificateBuilder::ca_profile(DistinguishedName::cn("R7")).self_signed(&kp);
        let b = CertificateBuilder::ca_profile(DistinguishedName::cn("R7")).self_signed(&kp);
        assert_eq!(a, b, "same inputs must produce identical certificates");

        let c = CertificateBuilder::ca_profile(DistinguishedName::cn("R7"))
            .serial(vec![1, 2, 3])
            .self_signed(&kp);
        assert_eq!(c.serial(), &[1, 2, 3]);
        assert_ne!(a, c);
    }

    #[test]
    fn validity_is_respected() {
        let kp = KeyPair::from_seed(group(), b"root-8");
        let nb = Time::from_ymd(2020, 6, 1).unwrap();
        let na = Time::from_ymd(2021, 6, 1).unwrap();
        let cert = CertificateBuilder::ca_profile(DistinguishedName::cn("R8"))
            .validity(nb, na)
            .self_signed(&kp);
        assert_eq!(cert.validity().not_before, nb);
        assert_eq!(cert.validity().not_after, na);
        assert!(cert.validity().contains(Time::from_ymd(2020, 12, 1).unwrap()));
        assert!(!cert.validity().contains(Time::from_ymd(2022, 1, 1).unwrap()));
    }

    #[test]
    fn aia_uri_roundtrip() {
        let kp = KeyPair::from_seed(group(), b"root-9");
        let ca_kp = KeyPair::from_seed(group(), b"ca-9");
        let cert = CertificateBuilder::leaf_profile("aia.sim")
            .aia_ca_issuers("http://aia.sim/ca9.crt")
            .issued_by(&kp.public, DistinguishedName::cn("CA 9"), &ca_kp);
        let reparsed = Certificate::from_der(cert.to_der()).unwrap();
        assert_eq!(reparsed.aia_ca_issuers_uri(), Some("http://aia.sim/ca9.crt"));
    }
}
