//! X.509 errors.

use std::fmt;

/// Errors from parsing or building certificates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum X509Error {
    /// Underlying DER was malformed.
    Der(ccc_asn1::Error),
    /// DER was well-formed but violated the certificate profile.
    Profile(&'static str),
    /// An algorithm OID was not one of the supported algorithms.
    UnsupportedAlgorithm(String),
    /// Key material did not parse under its declared algorithm.
    InvalidKey,
}

impl fmt::Display for X509Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            X509Error::Der(e) => write!(f, "DER error: {e}"),
            X509Error::Profile(what) => write!(f, "certificate profile violation: {what}"),
            X509Error::UnsupportedAlgorithm(oid) => {
                write!(f, "unsupported algorithm OID {oid}")
            }
            X509Error::InvalidKey => write!(f, "invalid public key material"),
        }
    }
}

impl std::error::Error for X509Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            X509Error::Der(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ccc_asn1::Error> for X509Error {
    fn from(e: ccc_asn1::Error) -> Self {
        X509Error::Der(e)
    }
}
