//! SubjectPublicKeyInfo for the synthetic Schnorr key algorithms.

use crate::X509Error;
use ccc_asn1::{oids, Encoder, Oid, Parser};
use ccc_crypto::schnorr::{Group, GroupId};
use ccc_crypto::PublicKey;

/// Supported public key algorithms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KeyAlgorithm {
    /// Schnorr over the 256-bit simulation group.
    SchnorrSim256,
    /// Schnorr over the RFC 3526 1536-bit group.
    SchnorrRfc3526,
}

impl KeyAlgorithm {
    /// The group backing this algorithm.
    pub fn group(self) -> &'static Group {
        match self {
            KeyAlgorithm::SchnorrSim256 => Group::simulation_256(),
            KeyAlgorithm::SchnorrRfc3526 => Group::rfc3526_1536(),
        }
    }

    /// From a group id.
    pub fn from_group(id: GroupId) -> KeyAlgorithm {
        match id {
            GroupId::Sim256 => KeyAlgorithm::SchnorrSim256,
            GroupId::Rfc3526_1536 => KeyAlgorithm::SchnorrRfc3526,
        }
    }

    /// Public key algorithm OID.
    pub fn key_oid(self) -> &'static Oid {
        match self {
            KeyAlgorithm::SchnorrSim256 => oids::schnorr_sim256_key(),
            KeyAlgorithm::SchnorrRfc3526 => oids::schnorr_rfc3526_key(),
        }
    }

    /// Signature algorithm OID (SHA-256 + Schnorr over the same group).
    pub fn signature_oid(self) -> &'static Oid {
        match self {
            KeyAlgorithm::SchnorrSim256 => oids::schnorr_sim256_sig(),
            KeyAlgorithm::SchnorrRfc3526 => oids::schnorr_rfc3526_sig(),
        }
    }

    /// Resolve a key algorithm from its OID.
    pub fn from_key_oid(oid: &Oid) -> Option<KeyAlgorithm> {
        if oid == oids::schnorr_sim256_key() {
            Some(KeyAlgorithm::SchnorrSim256)
        } else if oid == oids::schnorr_rfc3526_key() {
            Some(KeyAlgorithm::SchnorrRfc3526)
        } else {
            None
        }
    }

    /// Resolve a key algorithm from its signature OID.
    pub fn from_signature_oid(oid: &Oid) -> Option<KeyAlgorithm> {
        if oid == oids::schnorr_sim256_sig() {
            Some(KeyAlgorithm::SchnorrSim256)
        } else if oid == oids::schnorr_rfc3526_sig() {
            Some(KeyAlgorithm::SchnorrRfc3526)
        } else {
            None
        }
    }
}

/// A parsed SubjectPublicKeyInfo.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SubjectPublicKeyInfo {
    /// Key algorithm.
    pub algorithm: KeyAlgorithm,
    /// The public key.
    pub key: PublicKey,
}

impl SubjectPublicKeyInfo {
    /// Wrap a public key.
    pub fn new(key: PublicKey) -> SubjectPublicKeyInfo {
        SubjectPublicKeyInfo {
            algorithm: KeyAlgorithm::from_group(key.group_id()),
            key,
        }
    }

    /// Encode as the SPKI SEQUENCE.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|spki| {
            spki.sequence(|alg| {
                alg.oid(self.algorithm.key_oid());
                alg.null();
            });
            spki.bit_string(self.key.as_bytes());
        });
    }

    /// Encode standalone to bytes.
    pub fn to_der(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Decode from a parser positioned at the SPKI SEQUENCE.
    pub fn decode(parser: &mut Parser<'_>) -> Result<SubjectPublicKeyInfo, X509Error> {
        parser.sequence(|spki| {
            let algorithm = spki.sequence(|alg| {
                let oid = alg.oid()?;
                if !alg.is_done() {
                    alg.null()?;
                }
                Ok(oid)
            })?;
            let (unused, key_bytes) = spki.bit_string()?;
            if unused != 0 {
                return Err(ccc_asn1::Error::InvalidValue("SPKI key with unused bits"));
            }
            Ok((algorithm, key_bytes.to_vec()))
        })
        .map_err(X509Error::from)
        .and_then(|(oid, key_bytes)| {
            let algorithm = KeyAlgorithm::from_key_oid(&oid)
                .ok_or_else(|| X509Error::UnsupportedAlgorithm(oid.to_string()))?;
            let key = PublicKey::from_bytes(algorithm.group(), &key_bytes)
                .ok_or(X509Error::InvalidKey)?;
            Ok(SubjectPublicKeyInfo { algorithm, key })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::KeyPair;

    #[test]
    fn roundtrip() {
        let kp = KeyPair::from_seed(Group::simulation_256(), b"spki-test");
        let spki = SubjectPublicKeyInfo::new(kp.public.clone());
        let der = spki.to_der();
        let mut p = Parser::new(&der);
        let decoded = SubjectPublicKeyInfo::decode(&mut p).unwrap();
        p.expect_done().unwrap();
        assert_eq!(decoded, spki);
        assert_eq!(decoded.algorithm, KeyAlgorithm::SchnorrSim256);
    }

    #[test]
    fn roundtrip_large_group() {
        let kp = KeyPair::from_seed(Group::rfc3526_1536(), b"spki-test-2");
        let spki = SubjectPublicKeyInfo::new(kp.public.clone());
        let der = spki.to_der();
        let mut p = Parser::new(&der);
        let decoded = SubjectPublicKeyInfo::decode(&mut p).unwrap();
        assert_eq!(decoded.algorithm, KeyAlgorithm::SchnorrRfc3526);
        assert_eq!(decoded.key, kp.public);
    }

    #[test]
    fn unknown_algorithm_rejected() {
        let mut enc = Encoder::new();
        enc.sequence(|spki| {
            spki.sequence(|alg| {
                alg.oid(&ccc_asn1::Oid::new(&[1, 2, 840, 113549, 1, 1, 11]));
                alg.null();
            });
            spki.bit_string(&[0u8; 32]);
        });
        let der = enc.finish();
        let mut p = Parser::new(&der);
        match SubjectPublicKeyInfo::decode(&mut p) {
            Err(X509Error::UnsupportedAlgorithm(oid)) => {
                assert_eq!(oid, "1.2.840.113549.1.1.11");
            }
            other => panic!("expected UnsupportedAlgorithm, got {other:?}"),
        }
    }

    #[test]
    fn invalid_key_material_rejected() {
        let mut enc = Encoder::new();
        enc.sequence(|spki| {
            spki.sequence(|alg| {
                alg.oid(oids::schnorr_sim256_key());
                alg.null();
            });
            spki.bit_string(&[0u8; 32]); // y = 0: invalid
        });
        let der = enc.finish();
        let mut p = Parser::new(&der);
        assert_eq!(
            SubjectPublicKeyInfo::decode(&mut p).unwrap_err(),
            X509Error::InvalidKey
        );
    }

    #[test]
    fn signature_oid_mapping() {
        assert_eq!(
            KeyAlgorithm::from_signature_oid(oids::schnorr_sim256_sig()),
            Some(KeyAlgorithm::SchnorrSim256)
        );
        assert_eq!(
            KeyAlgorithm::from_signature_oid(oids::schnorr_sim256_key()),
            None
        );
    }
}
