//! X.509 v3 extensions relevant to chain construction.

use ccc_asn1::{oids, Encoder, Error, Oid, Parser, Result as DerResult, Tag};
use std::fmt;

/// A raw extension: OID, criticality, and the DER value inside the
/// extnValue OCTET STRING.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Extension {
    /// Extension OID.
    pub oid: Oid,
    /// Criticality flag.
    pub critical: bool,
    /// Inner DER value (content of the extnValue OCTET STRING).
    pub value: Vec<u8>,
}

impl Extension {
    /// Encode as the Extension SEQUENCE.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|ext| {
            ext.oid(&self.oid);
            if self.critical {
                ext.boolean(true); // DEFAULT FALSE: only encode when true
            }
            ext.octet_string(&self.value);
        });
    }

    /// Decode one Extension SEQUENCE.
    pub fn decode(parser: &mut Parser<'_>) -> DerResult<Extension> {
        parser.sequence(|ext| {
            let oid = ext.oid()?;
            let critical = if !ext.is_done() && ext.peek_tag()? == Tag::BOOLEAN {
                ext.boolean()?
            } else {
                false
            };
            let value = ext.octet_string()?.to_vec();
            Ok(Extension { oid, critical, value })
        })
    }
}

/// BasicConstraints (RFC 5280 §4.2.1.9).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BasicConstraints {
    /// Whether the subject is a CA.
    pub ca: bool,
    /// Maximum number of intermediate certificates that may follow this
    /// one in a valid path (only meaningful when `ca` is true).
    pub path_len: Option<u32>,
}

impl BasicConstraints {
    /// A CA with unlimited path length.
    pub fn ca() -> BasicConstraints {
        BasicConstraints { ca: true, path_len: None }
    }

    /// A CA with a specific path length constraint.
    pub fn ca_with_path_len(path_len: u32) -> BasicConstraints {
        BasicConstraints { ca: true, path_len: Some(path_len) }
    }

    /// A non-CA (end entity).
    pub fn end_entity() -> BasicConstraints {
        BasicConstraints { ca: false, path_len: None }
    }

    /// Encode inner DER value.
    pub fn encode_value(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.sequence(|s| {
            if self.ca {
                s.boolean(true); // cA DEFAULT FALSE
            }
            if let Some(n) = self.path_len {
                s.integer_i64(n as i64);
            }
        });
        enc.finish()
    }

    /// Decode inner DER value.
    pub fn decode_value(value: &[u8]) -> DerResult<BasicConstraints> {
        let mut p = Parser::new(value);
        let bc = p.sequence(|s| {
            let ca = if !s.is_done() && s.peek_tag()? == Tag::BOOLEAN {
                s.boolean()?
            } else {
                false
            };
            let path_len = if !s.is_done() && s.peek_tag()? == Tag::INTEGER {
                let v = s.integer_i64()?;
                if v < 0 {
                    return Err(Error::InvalidValue("negative pathLenConstraint"));
                }
                Some(v.min(u32::MAX as i64) as u32)
            } else {
                None
            };
            Ok(BasicConstraints { ca, path_len })
        })?;
        p.expect_done()?;
        Ok(bc)
    }
}

/// KeyUsage bits (RFC 5280 §4.2.1.3), named-bit order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct KeyUsage {
    /// Bit 0.
    pub digital_signature: bool,
    /// Bit 1 (contentCommitment / nonRepudiation).
    pub content_commitment: bool,
    /// Bit 2.
    pub key_encipherment: bool,
    /// Bit 3.
    pub data_encipherment: bool,
    /// Bit 4.
    pub key_agreement: bool,
    /// Bit 5 — the bit that matters for chain building: may sign certs.
    pub key_cert_sign: bool,
    /// Bit 6.
    pub crl_sign: bool,
}

impl KeyUsage {
    /// Typical CA usage: keyCertSign + cRLSign.
    pub fn ca() -> KeyUsage {
        KeyUsage { key_cert_sign: true, crl_sign: true, ..Default::default() }
    }

    /// Typical TLS server leaf usage.
    pub fn tls_server() -> KeyUsage {
        KeyUsage {
            digital_signature: true,
            key_encipherment: true,
            ..Default::default()
        }
    }

    /// A usage set that is *wrong* for an issuing CA (no keyCertSign) —
    /// used by the paper's KeyUsage-priority test case.
    pub fn no_cert_sign() -> KeyUsage {
        KeyUsage { digital_signature: true, ..Default::default() }
    }

    fn bits(&self) -> [bool; 7] {
        [
            self.digital_signature,
            self.content_commitment,
            self.key_encipherment,
            self.data_encipherment,
            self.key_agreement,
            self.key_cert_sign,
            self.crl_sign,
        ]
    }

    /// Encode inner DER value (named BIT STRING).
    pub fn encode_value(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.bit_string_named(&self.bits());
        enc.finish()
    }

    /// Decode inner DER value.
    pub fn decode_value(value: &[u8]) -> DerResult<KeyUsage> {
        let mut p = Parser::new(value);
        let (unused, data) = p.bit_string()?;
        p.expect_done()?;
        let bit = |i: usize| -> bool {
            if i / 8 >= data.len() {
                return false;
            }
            // Respect unused bits in the final octet.
            if i / 8 == data.len() - 1 && (i % 8) >= 8 - unused as usize {
                return false;
            }
            data[i / 8] & (0x80 >> (i % 8)) != 0
        };
        Ok(KeyUsage {
            digital_signature: bit(0),
            content_commitment: bit(1),
            key_encipherment: bit(2),
            data_encipherment: bit(3),
            key_agreement: bit(4),
            key_cert_sign: bit(5),
            crl_sign: bit(6),
        })
    }
}

/// Extended key usage: a list of purpose OIDs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ExtendedKeyUsage {
    /// Purpose OIDs in order.
    pub purposes: Vec<Oid>,
}

impl ExtendedKeyUsage {
    /// serverAuth only (typical TLS leaf).
    pub fn server_auth() -> ExtendedKeyUsage {
        ExtendedKeyUsage { purposes: vec![oids::kp_server_auth().clone()] }
    }

    /// Whether serverAuth is present.
    pub fn allows_server_auth(&self) -> bool {
        self.purposes.iter().any(|p| p == oids::kp_server_auth())
    }

    /// Encode inner DER value.
    pub fn encode_value(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.sequence(|s| {
            for p in &self.purposes {
                s.oid(p);
            }
        });
        enc.finish()
    }

    /// Decode inner DER value.
    pub fn decode_value(value: &[u8]) -> DerResult<ExtendedKeyUsage> {
        let mut p = Parser::new(value);
        let purposes = p.sequence(|s| {
            let mut v = Vec::new();
            while !s.is_done() {
                v.push(s.oid()?);
            }
            Ok(v)
        })?;
        p.expect_done()?;
        Ok(ExtendedKeyUsage { purposes })
    }
}

/// A GeneralName subset: DNS names and IP addresses (what the paper's leaf
/// classification needs), plus URIs (for AIA locations).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum GeneralName {
    /// dNSName (context tag 2).
    Dns(String),
    /// uniformResourceIdentifier (context tag 6).
    Uri(String),
    /// iPAddress (context tag 7): 4 (IPv4) or 16 (IPv6) raw bytes.
    Ip(Vec<u8>),
}

impl GeneralName {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            GeneralName::Dns(name) => enc.write_tlv(Tag::context(2), name.as_bytes()),
            GeneralName::Uri(uri) => enc.write_tlv(Tag::context(6), uri.as_bytes()),
            GeneralName::Ip(bytes) => enc.write_tlv(Tag::context(7), bytes),
        }
    }

    fn decode(parser: &mut Parser<'_>) -> DerResult<GeneralName> {
        let (tag, content) = parser.read_any()?;
        match (tag.class, tag.number) {
            (ccc_asn1::Class::ContextSpecific, 2) => Ok(GeneralName::Dns(
                std::str::from_utf8(content)
                    .map_err(|_| Error::InvalidValue("non-UTF8 dNSName"))?
                    .to_string(),
            )),
            (ccc_asn1::Class::ContextSpecific, 6) => Ok(GeneralName::Uri(
                std::str::from_utf8(content)
                    .map_err(|_| Error::InvalidValue("non-UTF8 URI"))?
                    .to_string(),
            )),
            (ccc_asn1::Class::ContextSpecific, 7) => {
                if content.len() != 4 && content.len() != 16 {
                    return Err(Error::InvalidValue("iPAddress must be 4 or 16 bytes"));
                }
                Ok(GeneralName::Ip(content.to_vec()))
            }
            _ => Err(Error::InvalidValue("unsupported GeneralName choice")),
        }
    }
}

impl fmt::Display for GeneralName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneralName::Dns(d) => write!(f, "DNS:{d}"),
            GeneralName::Uri(u) => write!(f, "URI:{u}"),
            GeneralName::Ip(b) if b.len() == 4 => {
                write!(f, "IP:{}.{}.{}.{}", b[0], b[1], b[2], b[3])
            }
            GeneralName::Ip(b) => {
                write!(f, "IP:")?;
                for (i, chunk) in b.chunks(2).enumerate() {
                    if i > 0 {
                        write!(f, ":")?;
                    }
                    write!(f, "{:02x}{:02x}", chunk[0], chunk.get(1).unwrap_or(&0))?;
                }
                Ok(())
            }
        }
    }
}

/// SubjectAltName: a list of general names.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct SubjectAltName {
    /// Names in order.
    pub names: Vec<GeneralName>,
}

impl SubjectAltName {
    /// SAN with DNS entries.
    pub fn dns(names: &[&str]) -> SubjectAltName {
        SubjectAltName {
            names: names.iter().map(|n| GeneralName::Dns(n.to_string())).collect(),
        }
    }

    /// All DNS names.
    pub fn dns_names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().filter_map(|n| match n {
            GeneralName::Dns(d) => Some(d.as_str()),
            _ => None,
        })
    }

    /// Encode inner DER value.
    pub fn encode_value(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.sequence(|s| {
            for n in &self.names {
                n.encode(s);
            }
        });
        enc.finish()
    }

    /// Decode inner DER value.
    pub fn decode_value(value: &[u8]) -> DerResult<SubjectAltName> {
        let mut p = Parser::new(value);
        let names = p.sequence(|s| {
            let mut v = Vec::new();
            while !s.is_done() {
                v.push(GeneralName::decode(s)?);
            }
            Ok(v)
        })?;
        p.expect_done()?;
        Ok(SubjectAltName { names })
    }
}

/// AuthorityKeyIdentifier (keyIdentifier form only, which is what Web PKI
/// CAs emit and what the paper's KID-matching rule uses).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct AuthorityKeyIdentifier {
    /// The issuer's subject key identifier bytes, if present.
    pub key_id: Option<Vec<u8>>,
}

impl AuthorityKeyIdentifier {
    /// Encode inner DER value.
    pub fn encode_value(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.sequence(|s| {
            if let Some(kid) = &self.key_id {
                s.write_tlv(Tag::context(0), kid);
            }
        });
        enc.finish()
    }

    /// Decode inner DER value. Ignores the (rare) issuer+serial form fields.
    pub fn decode_value(value: &[u8]) -> DerResult<AuthorityKeyIdentifier> {
        let mut p = Parser::new(value);
        let akid = p.sequence(|s| {
            let mut key_id = None;
            while !s.is_done() {
                let (tag, content) = s.read_any()?;
                if tag.class == ccc_asn1::Class::ContextSpecific && tag.number == 0 {
                    key_id = Some(content.to_vec());
                }
                // [1]/[2] (authorityCertIssuer/SerialNumber) skipped.
            }
            Ok(AuthorityKeyIdentifier { key_id })
        })?;
        p.expect_done()?;
        Ok(akid)
    }
}

/// Access method for an AIA AccessDescription.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessMethod {
    /// id-ad-caIssuers: where to fetch the issuer certificate.
    CaIssuers,
    /// id-ad-ocsp.
    Ocsp,
}

impl AccessMethod {
    fn oid(self) -> &'static Oid {
        match self {
            AccessMethod::CaIssuers => oids::ad_ca_issuers(),
            AccessMethod::Ocsp => oids::ad_ocsp(),
        }
    }
}

/// One AIA AccessDescription.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AccessDescription {
    /// Access method.
    pub method: AccessMethod,
    /// Location URI.
    pub location: String,
}

/// AuthorityInformationAccess: a list of access descriptions.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct AuthorityInfoAccess {
    /// Descriptions in order.
    pub descriptions: Vec<AccessDescription>,
}

impl AuthorityInfoAccess {
    /// An AIA with one caIssuers URI.
    pub fn ca_issuers(uri: impl Into<String>) -> AuthorityInfoAccess {
        AuthorityInfoAccess {
            descriptions: vec![AccessDescription {
                method: AccessMethod::CaIssuers,
                location: uri.into(),
            }],
        }
    }

    /// The first caIssuers URI, if any.
    pub fn ca_issuers_uri(&self) -> Option<&str> {
        self.descriptions
            .iter()
            .find(|d| d.method == AccessMethod::CaIssuers)
            .map(|d| d.location.as_str())
    }

    /// Encode inner DER value.
    pub fn encode_value(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.sequence(|s| {
            for d in &self.descriptions {
                s.sequence(|ad| {
                    ad.oid(d.method.oid());
                    ad.write_tlv(Tag::context(6), d.location.as_bytes());
                });
            }
        });
        enc.finish()
    }

    /// Decode inner DER value. Unknown access methods are skipped.
    pub fn decode_value(value: &[u8]) -> DerResult<AuthorityInfoAccess> {
        let mut p = Parser::new(value);
        let descriptions = p.sequence(|s| {
            let mut v = Vec::new();
            while !s.is_done() {
                s.sequence(|ad| {
                    let oid = ad.oid()?;
                    let (tag, content) = ad.read_any()?;
                    if tag.class != ccc_asn1::Class::ContextSpecific || tag.number != 6 {
                        // Non-URI location: tolerated and skipped.
                        return Ok(());
                    }
                    let location = std::str::from_utf8(content)
                        .map_err(|_| Error::InvalidValue("non-UTF8 AIA URI"))?
                        .to_string();
                    let method = if &oid == oids::ad_ca_issuers() {
                        AccessMethod::CaIssuers
                    } else if &oid == oids::ad_ocsp() {
                        AccessMethod::Ocsp
                    } else {
                        return Ok(());
                    };
                    v.push(AccessDescription { method, location });
                    Ok(())
                })?;
            }
            Ok(v)
        })?;
        p.expect_done()?;
        Ok(AuthorityInfoAccess { descriptions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_constraints_roundtrip() {
        for bc in [
            BasicConstraints::ca(),
            BasicConstraints::ca_with_path_len(0),
            BasicConstraints::ca_with_path_len(3),
            BasicConstraints::end_entity(),
        ] {
            let v = bc.encode_value();
            assert_eq!(BasicConstraints::decode_value(&v).unwrap(), bc);
        }
    }

    #[test]
    fn basic_constraints_empty_sequence_is_end_entity() {
        // SEQUENCE {} — cA defaults to FALSE.
        let v = vec![0x30, 0x00];
        let bc = BasicConstraints::decode_value(&v).unwrap();
        assert!(!bc.ca);
        assert_eq!(bc.path_len, None);
    }

    #[test]
    fn key_usage_roundtrip() {
        for ku in [
            KeyUsage::ca(),
            KeyUsage::tls_server(),
            KeyUsage::no_cert_sign(),
            KeyUsage::default(),
        ] {
            let v = ku.encode_value();
            assert_eq!(KeyUsage::decode_value(&v).unwrap(), ku, "{ku:?}");
        }
    }

    #[test]
    fn key_usage_ca_has_cert_sign() {
        assert!(KeyUsage::ca().key_cert_sign);
        assert!(!KeyUsage::no_cert_sign().key_cert_sign);
    }

    #[test]
    fn san_roundtrip() {
        let san = SubjectAltName {
            names: vec![
                GeneralName::Dns("example.com".into()),
                GeneralName::Dns("*.example.com".into()),
                GeneralName::Ip(vec![192, 0, 2, 1]),
            ],
        };
        let v = san.encode_value();
        assert_eq!(SubjectAltName::decode_value(&v).unwrap(), san);
        assert_eq!(san.dns_names().collect::<Vec<_>>(), vec!["example.com", "*.example.com"]);
    }

    #[test]
    fn san_rejects_bad_ip_len()  {
        let san = SubjectAltName { names: vec![GeneralName::Ip(vec![1, 2, 3])] };
        let v = san.encode_value();
        assert!(SubjectAltName::decode_value(&v).is_err());
    }

    #[test]
    fn akid_roundtrip() {
        let akid = AuthorityKeyIdentifier { key_id: Some(vec![1, 2, 3, 4]) };
        let v = akid.encode_value();
        assert_eq!(AuthorityKeyIdentifier::decode_value(&v).unwrap(), akid);

        let empty = AuthorityKeyIdentifier { key_id: None };
        let v = empty.encode_value();
        assert_eq!(AuthorityKeyIdentifier::decode_value(&v).unwrap(), empty);
    }

    #[test]
    fn aia_roundtrip() {
        let aia = AuthorityInfoAccess {
            descriptions: vec![
                AccessDescription {
                    method: AccessMethod::Ocsp,
                    location: "http://ocsp.sim/".into(),
                },
                AccessDescription {
                    method: AccessMethod::CaIssuers,
                    location: "http://aia.sim/issuer.crt".into(),
                },
            ],
        };
        let v = aia.encode_value();
        let decoded = AuthorityInfoAccess::decode_value(&v).unwrap();
        assert_eq!(decoded, aia);
        assert_eq!(decoded.ca_issuers_uri(), Some("http://aia.sim/issuer.crt"));
    }

    #[test]
    fn eku_roundtrip() {
        let eku = ExtendedKeyUsage::server_auth();
        let v = eku.encode_value();
        let decoded = ExtendedKeyUsage::decode_value(&v).unwrap();
        assert_eq!(decoded, eku);
        assert!(decoded.allows_server_auth());
    }

    #[test]
    fn extension_wrapper_roundtrip() {
        let ext = Extension {
            oid: oids::basic_constraints().clone(),
            critical: true,
            value: BasicConstraints::ca().encode_value(),
        };
        let mut enc = Encoder::new();
        ext.encode(&mut enc);
        let der = enc.finish();
        let mut p = Parser::new(&der);
        let decoded = Extension::decode(&mut p).unwrap();
        assert_eq!(decoded, ext);
    }

    #[test]
    fn extension_default_criticality_not_encoded() {
        let ext = Extension {
            oid: oids::subject_key_identifier().clone(),
            critical: false,
            value: vec![0x04, 0x00],
        };
        let mut enc = Encoder::new();
        ext.encode(&mut enc);
        let der = enc.finish();
        // No BOOLEAN byte should be present.
        assert!(!der.windows(2).any(|w| w == [0x01, 0x01]));
        let mut p = Parser::new(&der);
        assert_eq!(Extension::decode(&mut p).unwrap(), ext);
    }

    #[test]
    fn general_name_display() {
        assert_eq!(GeneralName::Dns("a.b".into()).to_string(), "DNS:a.b");
        assert_eq!(GeneralName::Ip(vec![10, 0, 0, 1]).to_string(), "IP:10.0.0.1");
        assert_eq!(GeneralName::Uri("http://x/".into()).to_string(), "URI:http://x/");
    }
}
