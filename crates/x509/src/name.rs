//! X.501 distinguished names (the RDNSequence subset with one attribute per
//! RDN, which is what Web PKI certificates use in practice).

use ccc_asn1::{oids, Encoder, Error, Oid, Parser, Result as DerResult};
use std::fmt;

/// Attribute types supported in distinguished names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum AttributeType {
    /// commonName (CN).
    CommonName,
    /// countryName (C).
    Country,
    /// organizationName (O).
    Organization,
    /// organizationalUnitName (OU).
    OrganizationalUnit,
}

impl AttributeType {
    /// The attribute's OID.
    pub fn oid(self) -> &'static Oid {
        match self {
            AttributeType::CommonName => oids::common_name(),
            AttributeType::Country => oids::country_name(),
            AttributeType::Organization => oids::organization_name(),
            AttributeType::OrganizationalUnit => oids::organizational_unit_name(),
        }
    }

    /// Short display label ("CN", "C", "O", "OU").
    pub fn label(self) -> &'static str {
        match self {
            AttributeType::CommonName => "CN",
            AttributeType::Country => "C",
            AttributeType::Organization => "O",
            AttributeType::OrganizationalUnit => "OU",
        }
    }

    fn from_oid(oid: &Oid) -> Option<AttributeType> {
        [
            AttributeType::CommonName,
            AttributeType::Country,
            AttributeType::Organization,
            AttributeType::OrganizationalUnit,
        ]
        .into_iter()
        .find(|t| t.oid() == oid)
    }
}

/// An ordered distinguished name: a list of (type, value) attributes.
///
/// Equality is byte-exact on type and value, matching how chain builders
/// compare `issuer` and `subject` fields (RFC 5280 name comparison is
/// case-insensitive in theory, but implementations overwhelmingly compare
/// the DER encodings — and so does the paper's issuance-relationship rule).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct DistinguishedName {
    attributes: Vec<(AttributeType, String)>,
}

impl DistinguishedName {
    /// The empty DN (legal: some real leaf certificates have empty
    /// subjects, carrying identity in SAN only).
    pub fn empty() -> DistinguishedName {
        DistinguishedName::default()
    }

    /// Build from attribute pairs.
    pub fn from_attributes(attributes: Vec<(AttributeType, String)>) -> DistinguishedName {
        DistinguishedName { attributes }
    }

    /// A DN with just a common name.
    pub fn cn(common_name: impl Into<String>) -> DistinguishedName {
        DistinguishedName {
            attributes: vec![(AttributeType::CommonName, common_name.into())],
        }
    }

    /// A DN with common name and organization (typical CA subject shape).
    pub fn cn_o(common_name: impl Into<String>, org: impl Into<String>) -> DistinguishedName {
        DistinguishedName {
            attributes: vec![
                (AttributeType::Country, "SC".to_string()),
                (AttributeType::Organization, org.into()),
                (AttributeType::CommonName, common_name.into()),
            ],
        }
    }

    /// Append an attribute.
    pub fn with(mut self, ty: AttributeType, value: impl Into<String>) -> DistinguishedName {
        self.attributes.push((ty, value.into()));
        self
    }

    /// All attributes in order.
    pub fn attributes(&self) -> &[(AttributeType, String)] {
        &self.attributes
    }

    /// The first commonName value, if any.
    pub fn common_name(&self) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(t, _)| *t == AttributeType::CommonName)
            .map(|(_, v)| v.as_str())
    }

    /// True when the DN has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Encode as an RDNSequence.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|rdn_seq| {
            for (ty, value) in &self.attributes {
                rdn_seq.set(|set| {
                    set.sequence(|attr| {
                        attr.oid(ty.oid());
                        attr.utf8_string(value);
                    });
                });
            }
        });
    }

    /// Decode an RDNSequence. Unknown attribute types are an error (the
    /// synthetic universe only emits the supported four).
    pub fn decode(parser: &mut Parser<'_>) -> DerResult<DistinguishedName> {
        let mut attributes = Vec::new();
        parser.sequence(|rdn_seq| {
            while !rdn_seq.is_done() {
                rdn_seq.set(|set| {
                    set.sequence(|attr| {
                        let oid = attr.oid()?;
                        let value = attr.any_string()?.to_string();
                        let ty = AttributeType::from_oid(&oid)
                            .ok_or(Error::InvalidValue("unsupported DN attribute type"))?;
                        attributes.push((ty, value));
                        Ok(())
                    })
                })?;
            }
            Ok(())
        })?;
        Ok(DistinguishedName { attributes })
    }

    /// Encode standalone to bytes (convenience for hashing/maps).
    pub fn to_der(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }
}

impl fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.attributes.is_empty() {
            return write!(f, "<empty>");
        }
        for (i, (ty, value)) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", ty.label(), value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dn = DistinguishedName::cn_o("Example CA", "Example Trust Services")
            .with(AttributeType::OrganizationalUnit, "Issuing");
        let der = dn.to_der();
        let mut p = Parser::new(&der);
        let decoded = DistinguishedName::decode(&mut p).unwrap();
        p.expect_done().unwrap();
        assert_eq!(decoded, dn);
    }

    #[test]
    fn empty_dn_roundtrip() {
        let dn = DistinguishedName::empty();
        let der = dn.to_der();
        assert_eq!(der, vec![0x30, 0x00]);
        let mut p = Parser::new(&der);
        assert_eq!(DistinguishedName::decode(&mut p).unwrap(), dn);
    }

    #[test]
    fn display_format() {
        let dn = DistinguishedName::cn("example.com");
        assert_eq!(dn.to_string(), "CN=example.com");
        assert_eq!(DistinguishedName::empty().to_string(), "<empty>");
    }

    #[test]
    fn common_name_accessor() {
        let dn = DistinguishedName::cn_o("Root X1", "Test Org");
        assert_eq!(dn.common_name(), Some("Root X1"));
        assert_eq!(DistinguishedName::empty().common_name(), None);
    }

    #[test]
    fn equality_is_exact() {
        assert_ne!(
            DistinguishedName::cn("Example"),
            DistinguishedName::cn("example")
        );
        assert_ne!(
            DistinguishedName::cn("a"),
            DistinguishedName::cn_o("a", "b")
        );
    }
}
