//! Hashing tuned for SHA-256 certificate fingerprints.
//!
//! Fingerprints are already uniformly distributed (they are SHA-256
//! digests), so running them through SipHash — the `HashMap` default,
//! designed to defend untrusted keys against collision attacks — wastes
//! cycles on every chain-construction set/map lookup. This module
//! provides a trivial mixing hasher that folds the input eight bytes at
//! a time with a rotate-xor-multiply (the multiply breaks GF(2)
//! linearity, so structured inputs — repeated bytes, swapped tuple
//! members — don't collide the way a pure rotate-xor fold lets them).
//! It is **not** collision-resistant for adversarial input and must
//! only be keyed by fingerprint-derived types.
//!
//! Note on `Hash` for `[u8; 32]`: the standard implementation routes
//! through the slice impl, which writes a `usize` length prefix before
//! the 32 digest bytes; tuple keys such as the issuance cache's
//! `(fp, fp)` arrive as consecutive `write` calls. The fold below is
//! deterministic for any such sequence — the prefix costs one extra
//! 8-byte fold, nothing more.

use crate::cert::CertificateFingerprint;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Rotate-xor-multiply folding hasher for fingerprint-derived keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FingerprintHasher(u64);

/// Odd multiplier (π in fixed point) — the non-linear step of the fold.
const FOLD_MUL: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FingerprintHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let word = u64::from_le_bytes(c.try_into().expect("8 bytes"));
            self.0 = (self.0.rotate_left(29) ^ word).wrapping_mul(FOLD_MUL);
        }
        for &b in chunks.remainder() {
            self.0 = (self.0.rotate_left(11) ^ u64::from(b)).wrapping_mul(FOLD_MUL);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` for fingerprint-keyed collections.
pub type FingerprintBuildHasher = BuildHasherDefault<FingerprintHasher>;

/// `HashSet<CertificateFingerprint>` with the fast fingerprint hasher.
pub type FingerprintSet = HashSet<CertificateFingerprint, FingerprintBuildHasher>;

/// `HashMap<CertificateFingerprint, V>` with the fast fingerprint hasher.
pub type FingerprintMap<V> = HashMap<CertificateFingerprint, V, FingerprintBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FingerprintBuildHasher::default().hash_one(v)
    }

    #[test]
    fn distinct_fingerprints_hash_differently() {
        let a = CertificateFingerprint([0x11; 32]);
        let mut b_bytes = [0x11; 32];
        b_bytes[31] = 0x12;
        let b = CertificateFingerprint(b_bytes);
        assert_ne!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn pair_keys_are_order_sensitive() {
        let a = CertificateFingerprint([0xaa; 32]);
        let b = CertificateFingerprint([0xbb; 32]);
        assert_ne!(hash_of(&(a, b)), hash_of(&(b, a)));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut set = FingerprintSet::default();
        let mut map = FingerprintMap::default();
        for i in 0..64u8 {
            let fp = CertificateFingerprint([i; 32]);
            assert!(set.insert(fp));
            map.insert(fp, usize::from(i));
        }
        for i in 0..64u8 {
            let fp = CertificateFingerprint([i; 32]);
            assert!(set.contains(&fp));
            assert_eq!(map.get(&fp), Some(&usize::from(i)));
        }
    }
}
