//! X.509 v3 certificates for the chain-chaos synthetic Web PKI.
//!
//! Implements the RFC 5280 certificate profile subset that matters for
//! certificate *chain construction*: distinguished names, validity,
//! SubjectPublicKeyInfo, and the chain-relevant extensions (Subject
//! Alternative Name, Subject/Authority Key Identifier, Authority Information
//! Access, Basic Constraints, Key Usage, Extended Key Usage). Certificates
//! round-trip through real DER via `ccc-asn1` and carry real Schnorr
//! signatures via `ccc-crypto`.
//!
//! The [`builder::CertificateBuilder`] is the rcgen-equivalent used by the
//! test-chain and corpus generators; it deliberately supports *malformed*
//! outputs (absent/mismatched key identifiers, wrong path lengths, corrupt
//! signatures) because the paper's test cases require them.

pub mod builder;
pub mod cert;
pub mod error;
pub mod extensions;
pub mod fphash;
pub mod name;
pub mod pem;
pub mod spki;

pub use builder::{key_identifier, CertificateBuilder, KidMode};
pub use fphash::{FingerprintBuildHasher, FingerprintMap, FingerprintSet};
pub use cert::{Certificate, CertificateFingerprint, TbsCertificate, Validity};
pub use error::X509Error;
pub use extensions::{
    AccessDescription, AccessMethod, AuthorityInfoAccess, AuthorityKeyIdentifier,
    BasicConstraints, Extension, ExtendedKeyUsage, GeneralName, KeyUsage, SubjectAltName,
};
pub use name::{AttributeType, DistinguishedName};
pub use pem::PemError;
pub use spki::{KeyAlgorithm, SubjectPublicKeyInfo};
