//! PEM (RFC 7468) encoding/decoding for certificates.
//!
//! CA file deliveries (`fullchain.pem`, `ca-bundle.pem`) and the CLI tool
//! speak PEM; this module provides the armor plus an in-tree base64 codec
//! (standard alphabet, 64-column wrapping).

use crate::cert::Certificate;
use crate::X509Error;
use std::fmt;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Errors from PEM parsing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PemError {
    /// No `BEGIN CERTIFICATE` block found.
    NoCertificateBlock,
    /// A `BEGIN` armor line had no matching `END`.
    UnterminatedBlock,
    /// Base64 payload was malformed.
    InvalidBase64,
    /// The DER inside a block failed to parse.
    BadCertificate(X509Error),
}

impl fmt::Display for PemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PemError::NoCertificateBlock => write!(f, "no CERTIFICATE block in PEM input"),
            PemError::UnterminatedBlock => write!(f, "unterminated PEM block"),
            PemError::InvalidBase64 => write!(f, "invalid base64 in PEM block"),
            PemError::BadCertificate(e) => write!(f, "bad certificate in PEM block: {e}"),
        }
    }
}

impl std::error::Error for PemError {}

/// Base64-encode (standard alphabet, with padding).
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

/// Base64-decode (standard alphabet; whitespace ignored; padding
/// optional).
pub fn base64_decode(text: &str) -> Option<Vec<u8>> {
    let mut acc: u32 = 0;
    let mut bits = 0u32;
    let mut out = Vec::with_capacity(text.len() * 3 / 4);
    for c in text.chars() {
        if c.is_whitespace() {
            continue;
        }
        if c == '=' {
            break;
        }
        let v = match c {
            'A'..='Z' => c as u32 - 'A' as u32,
            'a'..='z' => c as u32 - 'a' as u32 + 26,
            '0'..='9' => c as u32 - '0' as u32 + 52,
            '+' => 62,
            '/' => 63,
            _ => return None,
        };
        acc = (acc << 6) | v;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    // Leftover bits must be zero padding.
    if bits > 0 && acc & ((1 << bits) - 1) != 0 {
        return None;
    }
    Some(out)
}

/// Encode one certificate as a PEM block.
pub fn encode_certificate(cert: &Certificate) -> String {
    let b64 = base64_encode(cert.to_der());
    let mut out = String::with_capacity(b64.len() + 64);
    out.push_str("-----BEGIN CERTIFICATE-----\n");
    for chunk in b64.as_bytes().chunks(64) {
        out.push_str(std::str::from_utf8(chunk).expect("base64 is ASCII"));
        out.push('\n');
    }
    out.push_str("-----END CERTIFICATE-----\n");
    out
}

/// Encode a certificate list as concatenated PEM blocks (the fullchain /
/// ca-bundle file format).
pub fn encode_chain(certs: &[Certificate]) -> String {
    certs.iter().map(encode_certificate).collect()
}

/// Parse every CERTIFICATE block from PEM text, in order.
pub fn decode_chain(text: &str) -> Result<Vec<Certificate>, PemError> {
    let mut certs = Vec::new();
    let mut lines = text.lines();
    loop {
        // Seek a BEGIN line.
        let mut found = false;
        for line in lines.by_ref() {
            if line.trim() == "-----BEGIN CERTIFICATE-----" {
                found = true;
                break;
            }
        }
        if !found {
            break;
        }
        let mut b64 = String::new();
        let mut terminated = false;
        for line in lines.by_ref() {
            if line.trim() == "-----END CERTIFICATE-----" {
                terminated = true;
                break;
            }
            b64.push_str(line.trim());
        }
        if !terminated {
            return Err(PemError::UnterminatedBlock);
        }
        let der = base64_decode(&b64).ok_or(PemError::InvalidBase64)?;
        let cert = Certificate::from_der(&der).map_err(PemError::BadCertificate)?;
        certs.push(cert);
    }
    if certs.is_empty() {
        return Err(PemError::NoCertificateBlock);
    }
    Ok(certs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CertificateBuilder, DistinguishedName};
    use ccc_crypto::{Group, KeyPair};

    fn cert(name: &str, seed: &[u8]) -> Certificate {
        let kp = KeyPair::from_seed(Group::simulation_256(), seed);
        CertificateBuilder::ca_profile(DistinguishedName::cn(name)).self_signed(&kp)
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(base64_decode("Zg==").unwrap(), b"f");
        assert_eq!(base64_decode("Zm8=").unwrap(), b"fo");
        assert_eq!(base64_decode("Z m 8 =").unwrap(), b"fo", "whitespace tolerated");
        assert!(base64_decode("Z!8=").is_none());
    }

    #[test]
    fn base64_roundtrip_random_lengths() {
        for len in 0..100usize {
            let data: Vec<u8> = (0..len as u8).collect();
            let enc = base64_encode(&data);
            assert_eq!(base64_decode(&enc).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn single_certificate_roundtrip() {
        let c = cert("PEM Test", b"pem-1");
        let pem = encode_certificate(&c);
        assert!(pem.starts_with("-----BEGIN CERTIFICATE-----\n"));
        assert!(pem.ends_with("-----END CERTIFICATE-----\n"));
        // All payload lines are <= 64 columns.
        for line in pem.lines().filter(|l| !l.starts_with("-----")) {
            assert!(line.len() <= 64);
        }
        let parsed = decode_chain(&pem).unwrap();
        assert_eq!(parsed, vec![c]);
    }

    #[test]
    fn chain_roundtrip_preserves_order() {
        let chain = vec![cert("A", b"pem-a"), cert("B", b"pem-b"), cert("C", b"pem-c")];
        let pem = encode_chain(&chain);
        assert_eq!(decode_chain(&pem).unwrap(), chain);
    }

    #[test]
    fn junk_between_blocks_tolerated() {
        let c = cert("PEM Junk", b"pem-2");
        let pem = format!(
            "subject=CN=PEM Junk\nissuer=whatever\n{}# trailing comment\n",
            encode_certificate(&c)
        );
        assert_eq!(decode_chain(&pem).unwrap(), vec![c]);
    }

    #[test]
    fn errors_reported() {
        assert_eq!(decode_chain("no pem here"), Err(PemError::NoCertificateBlock));
        assert_eq!(
            decode_chain("-----BEGIN CERTIFICATE-----\nZm9v\n"),
            Err(PemError::UnterminatedBlock)
        );
        assert_eq!(
            decode_chain("-----BEGIN CERTIFICATE-----\n!!!\n-----END CERTIFICATE-----\n"),
            Err(PemError::InvalidBase64)
        );
        let garbage = format!(
            "-----BEGIN CERTIFICATE-----\n{}\n-----END CERTIFICATE-----\n",
            base64_encode(b"not a certificate")
        );
        assert!(matches!(
            decode_chain(&garbage),
            Err(PemError::BadCertificate(_))
        ));
    }
}
