//! Certificate and TBSCertificate types with DER codec.

use crate::extensions::{
    AuthorityInfoAccess, AuthorityKeyIdentifier, BasicConstraints, Extension, ExtendedKeyUsage,
    KeyUsage, SubjectAltName,
};
use crate::name::DistinguishedName;
use crate::spki::{KeyAlgorithm, SubjectPublicKeyInfo};
use crate::X509Error;
use ccc_asn1::{oids, Encoder, Parser, Tag, Time};
use ccc_crypto::{PublicKey, Signature};
use std::fmt;
use std::sync::Arc;

/// Certificate validity window.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Validity {
    /// notBefore.
    pub not_before: Time,
    /// notAfter (inclusive).
    pub not_after: Time,
}

impl Validity {
    /// True when `t` falls inside the window. Per RFC 5280 §4.1.2.5 the
    /// validity period runs *from `notBefore` through `notAfter`,
    /// inclusive*: both boundary instants are inside the window.
    pub fn contains(&self, t: Time) -> bool {
        self.not_before <= t && t <= self.not_after
    }

    /// Window length in seconds, counting both inclusive boundary
    /// instants: a degenerate `[t, t]` window is valid for exactly one
    /// second, and an inverted window (`not_after < not_before`, which no
    /// conforming CA emits) yields a non-positive duration.
    pub fn duration_seconds(&self) -> i64 {
        self.not_after.unix() - self.not_before.unix() + 1
    }

    /// True when the window is inverted (`not_after` strictly before
    /// `not_before`) — such a certificate can never be valid at any
    /// instant, see [`contains`](Self::contains).
    pub fn is_inverted(&self) -> bool {
        self.not_after < self.not_before
    }
}

/// The to-be-signed portion of a certificate (v3 profile).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TbsCertificate {
    /// Serial number (unsigned big-endian magnitude).
    pub serial: Vec<u8>,
    /// Signature algorithm the issuer will use (also echoed in the outer
    /// Certificate).
    pub signature_algorithm: KeyAlgorithm,
    /// Issuer distinguished name.
    pub issuer: DistinguishedName,
    /// Validity window.
    pub validity: Validity,
    /// Subject distinguished name.
    pub subject: DistinguishedName,
    /// Subject public key.
    pub spki: SubjectPublicKeyInfo,
    /// Extensions in order.
    pub extensions: Vec<Extension>,
}

impl TbsCertificate {
    /// Encode to DER.
    pub fn to_der(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|tbs| {
            // version [0] EXPLICIT INTEGER { v3(2) }
            tbs.explicit(0, |v| v.integer_i64(2));
            tbs.integer_unsigned(&self.serial);
            tbs.sequence(|alg| {
                alg.oid(self.signature_algorithm.signature_oid());
                alg.null();
            });
            self.issuer.encode(tbs);
            tbs.sequence(|val| {
                val.time(self.validity.not_before);
                val.time(self.validity.not_after);
            });
            self.subject.encode(tbs);
            self.spki.encode(tbs);
            if !self.extensions.is_empty() {
                tbs.explicit(3, |wrapper| {
                    wrapper.sequence(|exts| {
                        for ext in &self.extensions {
                            ext.encode(exts);
                        }
                    });
                });
            }
        });
    }

}

/// SHA-256 fingerprint of the full certificate DER — the certificate's
/// identity throughout chain-chaos ("bit-for-bit identical" duplicate
/// detection in the paper is exactly DER equality).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CertificateFingerprint(pub [u8; 32]);

impl CertificateFingerprint {
    /// Hex rendering (lowercase, full length).
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Short prefix for logs.
    pub fn short(&self) -> String {
        self.to_hex()[..12].to_string()
    }
}

impl fmt::Debug for CertificateFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({}…)", self.short())
    }
}

impl fmt::Display for CertificateFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Pre-parsed chain-relevant extensions, computed once per certificate.
#[derive(Clone, Debug, Default)]
struct ParsedExtensions {
    skid: Option<Vec<u8>>,
    akid: Option<AuthorityKeyIdentifier>,
    basic_constraints: Option<BasicConstraints>,
    key_usage: Option<KeyUsage>,
    san: Option<SubjectAltName>,
    aia: Option<AuthorityInfoAccess>,
    eku: Option<ExtendedKeyUsage>,
}

impl ParsedExtensions {
    fn from_list(extensions: &[Extension]) -> ParsedExtensions {
        let mut parsed = ParsedExtensions::default();
        for ext in extensions {
            // Lenient: unparseable typed values behave as absent, matching
            // how permissive clients treat junk extensions.
            if &ext.oid == oids::subject_key_identifier() {
                let mut p = Parser::new(&ext.value);
                if let Ok(v) = p.octet_string() {
                    if p.is_done() {
                        parsed.skid = Some(v.to_vec());
                    }
                }
            } else if &ext.oid == oids::authority_key_identifier() {
                parsed.akid = AuthorityKeyIdentifier::decode_value(&ext.value).ok();
            } else if &ext.oid == oids::basic_constraints() {
                parsed.basic_constraints = BasicConstraints::decode_value(&ext.value).ok();
            } else if &ext.oid == oids::key_usage() {
                parsed.key_usage = KeyUsage::decode_value(&ext.value).ok();
            } else if &ext.oid == oids::subject_alt_name() {
                parsed.san = SubjectAltName::decode_value(&ext.value).ok();
            } else if &ext.oid == oids::authority_info_access() {
                parsed.aia = AuthorityInfoAccess::decode_value(&ext.value).ok();
            } else if &ext.oid == oids::ext_key_usage() {
                parsed.eku = ExtendedKeyUsage::decode_value(&ext.value).ok();
            }
        }
        parsed
    }
}

struct CertificateInner {
    tbs: TbsCertificate,
    /// Exact DER of the TBSCertificate — the signed message.
    tbs_der: Vec<u8>,
    /// Outer signature algorithm.
    signature_algorithm: KeyAlgorithm,
    /// Raw signature bytes (BIT STRING contents).
    signature: Vec<u8>,
    /// Full certificate DER.
    der: Vec<u8>,
    fingerprint: CertificateFingerprint,
    parsed: ParsedExtensions,
}

/// An X.509 v3 certificate (immutable, cheaply cloneable).
///
/// Equality and hashing use the SHA-256 fingerprint of the full DER, so two
/// `Certificate` values are equal exactly when they are bit-for-bit the
/// same certificate — the comparison the paper uses for duplicate
/// detection.
#[derive(Clone)]
pub struct Certificate(Arc<CertificateInner>);

impl PartialEq for Certificate {
    fn eq(&self, other: &Self) -> bool {
        self.0.fingerprint == other.0.fingerprint
    }
}

impl Eq for Certificate {}

impl std::hash::Hash for Certificate {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.fingerprint.hash(state);
    }
}

impl Certificate {
    /// Assemble a certificate from a TBS and its signature. Used by the
    /// builder; `signature` is not checked here (deliberately: corrupt
    /// signatures are a required test input).
    pub fn assemble(tbs: TbsCertificate, signature: &Signature) -> Certificate {
        let tbs_der = tbs.to_der();
        let sig_bytes = signature.to_bytes();
        let mut enc = Encoder::new();
        enc.sequence(|cert| {
            cert.write_raw(&tbs_der);
            cert.sequence(|alg| {
                alg.oid(tbs.signature_algorithm.signature_oid());
                alg.null();
            });
            cert.bit_string(&sig_bytes);
        });
        let der = enc.finish();
        let fingerprint = CertificateFingerprint(ccc_crypto::sha256(&der));
        let parsed = ParsedExtensions::from_list(&tbs.extensions);
        Certificate(Arc::new(CertificateInner {
            signature_algorithm: tbs.signature_algorithm,
            tbs,
            tbs_der,
            signature: sig_bytes,
            der,
            fingerprint,
            parsed,
        }))
    }

    /// Parse a certificate from DER.
    pub fn from_der(der: &[u8]) -> Result<Certificate, X509Error> {
        let mut parser = Parser::new(der);
        let cert = Self::decode_one(&mut parser)?;
        parser.expect_done()?;
        Ok(cert)
    }

    /// Parse one certificate from a parser (allows concatenated streams).
    pub fn decode_one(parser: &mut Parser<'_>) -> Result<Certificate, X509Error> {
        let start_remaining = parser.remaining();
        let (outer_tag, outer_raw) = parser.read_any_raw()?;
        if outer_tag != Tag::SEQUENCE {
            return Err(X509Error::Der(ccc_asn1::Error::UnexpectedTag {
                expected: Tag::SEQUENCE,
                found: outer_tag,
            }));
        }
        let _ = start_remaining;
        // Re-walk the outer sequence content.
        let mut outer = Parser::new(outer_raw);
        let (_, content) = outer.read_any()?;
        let mut body = Parser::new(content);
        let (tbs_tag, tbs_der) = body.read_any_raw()?;
        if tbs_tag != Tag::SEQUENCE {
            return Err(X509Error::Profile("TBSCertificate must be a SEQUENCE"));
        }
        let tbs = Self::decode_tbs(tbs_der)?;
        let outer_sig_oid = body
            .sequence(|alg| {
                let oid = alg.oid()?;
                if !alg.is_done() {
                    alg.null()?;
                }
                Ok(oid)
            })
            .map_err(X509Error::from)?;
        let outer_alg = KeyAlgorithm::from_signature_oid(&outer_sig_oid)
            .ok_or_else(|| X509Error::UnsupportedAlgorithm(outer_sig_oid.to_string()))?;
        let (unused, sig_bytes) = body.bit_string().map_err(X509Error::from)?;
        if unused != 0 {
            return Err(X509Error::Profile("signature BIT STRING with unused bits"));
        }
        body.expect_done().map_err(X509Error::from)?;

        let fingerprint = CertificateFingerprint(ccc_crypto::sha256(outer_raw));
        let parsed = ParsedExtensions::from_list(&tbs.extensions);
        Ok(Certificate(Arc::new(CertificateInner {
            signature_algorithm: outer_alg,
            tbs_der: tbs_der.to_vec(),
            signature: sig_bytes.to_vec(),
            der: outer_raw.to_vec(),
            fingerprint,
            parsed,
            tbs,
        })))
    }

    fn decode_tbs(tbs_der: &[u8]) -> Result<TbsCertificate, X509Error> {
        let mut p = Parser::new(tbs_der);
        let tbs = p.sequence(|tbs| {
            let version = tbs
                .optional_constructed(Tag::context_constructed(0), |v| v.integer_i64())?
                .unwrap_or(0);
            if version != 2 {
                return Err(ccc_asn1::Error::InvalidValue("only v3 certificates supported"));
            }
            let serial = tbs.integer_unsigned()?.to_vec();
            let sig_oid = tbs.sequence(|alg| {
                let oid = alg.oid()?;
                if !alg.is_done() {
                    alg.null()?;
                }
                Ok(oid)
            })?;
            let issuer = DistinguishedName::decode(tbs)?;
            let validity = tbs.sequence(|val| {
                Ok(Validity {
                    not_before: val.time()?,
                    not_after: val.time()?,
                })
            })?;
            let subject = DistinguishedName::decode(tbs)?;
            // SPKI errors need the richer X509Error; stash the raw bytes.
            let (spki_tag, spki_raw) = tbs.read_any_raw()?;
            if spki_tag != Tag::SEQUENCE {
                return Err(ccc_asn1::Error::UnexpectedTag {
                    expected: Tag::SEQUENCE,
                    found: spki_tag,
                });
            }
            let extensions = tbs
                .optional_constructed(Tag::context_constructed(3), |wrapper| {
                    wrapper.sequence(|exts| {
                        let mut v = Vec::new();
                        while !exts.is_done() {
                            v.push(Extension::decode(exts)?);
                        }
                        Ok(v)
                    })
                })?
                .unwrap_or_default();
            Ok((serial, sig_oid, issuer, validity, subject, spki_raw, extensions))
        })?;
        p.expect_done()?;
        let (serial, sig_oid, issuer, validity, subject, spki_raw, extensions) = tbs;
        let signature_algorithm = KeyAlgorithm::from_signature_oid(&sig_oid)
            .ok_or_else(|| X509Error::UnsupportedAlgorithm(sig_oid.to_string()))?;
        let mut spki_parser = Parser::new(spki_raw);
        let spki = SubjectPublicKeyInfo::decode(&mut spki_parser)?;
        Ok(TbsCertificate {
            serial,
            signature_algorithm,
            issuer,
            validity,
            subject,
            spki,
            extensions,
        })
    }

    /// Full certificate DER.
    pub fn to_der(&self) -> &[u8] {
        &self.0.der
    }

    /// Exact TBS bytes (the signed message).
    pub fn tbs_der(&self) -> &[u8] {
        &self.0.tbs_der
    }

    /// The TBS fields.
    pub fn tbs(&self) -> &TbsCertificate {
        &self.0.tbs
    }

    /// Raw signature bytes.
    pub fn signature_bytes(&self) -> &[u8] {
        &self.0.signature
    }

    /// Outer signature algorithm.
    pub fn signature_algorithm(&self) -> KeyAlgorithm {
        self.0.signature_algorithm
    }

    /// SHA-256 fingerprint of the DER.
    pub fn fingerprint(&self) -> CertificateFingerprint {
        self.0.fingerprint
    }

    /// Subject DN.
    pub fn subject(&self) -> &DistinguishedName {
        &self.0.tbs.subject
    }

    /// Issuer DN.
    pub fn issuer(&self) -> &DistinguishedName {
        &self.0.tbs.issuer
    }

    /// Serial number magnitude.
    pub fn serial(&self) -> &[u8] {
        &self.0.tbs.serial
    }

    /// Validity window.
    pub fn validity(&self) -> Validity {
        self.0.tbs.validity
    }

    /// Subject public key info.
    pub fn spki(&self) -> &SubjectPublicKeyInfo {
        &self.0.tbs.spki
    }

    /// The subject public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.0.tbs.spki.key
    }

    /// Raw extension list.
    pub fn extensions(&self) -> &[Extension] {
        &self.0.tbs.extensions
    }

    /// Subject Key Identifier bytes, if the extension is present and
    /// parseable.
    pub fn skid(&self) -> Option<&[u8]> {
        self.0.parsed.skid.as_deref()
    }

    /// Authority Key Identifier, if present.
    pub fn akid(&self) -> Option<&AuthorityKeyIdentifier> {
        self.0.parsed.akid.as_ref()
    }

    /// AKID key id bytes, if present (shorthand).
    pub fn akid_key_id(&self) -> Option<&[u8]> {
        self.0.parsed.akid.as_ref().and_then(|a| a.key_id.as_deref())
    }

    /// Basic constraints, if present.
    pub fn basic_constraints(&self) -> Option<BasicConstraints> {
        self.0.parsed.basic_constraints
    }

    /// Key usage, if present.
    pub fn key_usage(&self) -> Option<KeyUsage> {
        self.0.parsed.key_usage
    }

    /// Subject alternative name, if present.
    pub fn san(&self) -> Option<&SubjectAltName> {
        self.0.parsed.san.as_ref()
    }

    /// Authority information access, if present.
    pub fn aia(&self) -> Option<&AuthorityInfoAccess> {
        self.0.parsed.aia.as_ref()
    }

    /// First caIssuers URI from AIA, if any.
    pub fn aia_ca_issuers_uri(&self) -> Option<&str> {
        self.0.parsed.aia.as_ref().and_then(|a| a.ca_issuers_uri())
    }

    /// Extended key usage, if present.
    pub fn eku(&self) -> Option<&ExtendedKeyUsage> {
        self.0.parsed.eku.as_ref()
    }

    /// True when subject and issuer DN are identical (self-*issued*; the
    /// signature may or may not verify).
    pub fn is_self_issued(&self) -> bool {
        self.0.tbs.subject == self.0.tbs.issuer
    }

    /// True when the certificate is genuinely self-signed: self-issued and
    /// the signature verifies under its own key.
    pub fn is_self_signed(&self) -> bool {
        self.is_self_issued() && self.verify_signature_with(self.public_key())
    }

    /// Whether this certificate claims to be a CA (BasicConstraints cA).
    pub fn is_ca(&self) -> bool {
        self.basic_constraints().map(|bc| bc.ca).unwrap_or(false)
    }

    /// Verify this certificate's signature with a candidate issuer key.
    pub fn verify_signature_with(&self, issuer_key: &PublicKey) -> bool {
        let scalar_len = issuer_key.group().scalar_len;
        match Signature::from_bytes(&self.0.signature, scalar_len) {
            Some(sig) => issuer_key.verify(&self.0.tbs_der, &sig),
            None => false,
        }
    }
}

impl fmt::Debug for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Certificate")
            .field("subject", &self.subject().to_string())
            .field("issuer", &self.issuer().to_string())
            .field("self_issued", &self.is_self_issued())
            .field("fp", &self.fingerprint().short())
            .finish()
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Certificate[subject={}, issuer={}, fp={}]",
            self.subject(),
            self.issuer(),
            self.fingerprint().short()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(nb: i64, na: i64) -> Validity {
        Validity {
            not_before: Time::from_unix(nb),
            not_after: Time::from_unix(na),
        }
    }

    #[test]
    fn validity_boundary_instants_are_inside() {
        let v = window(1_000, 2_000);
        // RFC 5280 §4.1.2.5: "from notBefore through notAfter, inclusive".
        assert!(v.contains(Time::from_unix(1_000)), "notBefore instant");
        assert!(v.contains(Time::from_unix(2_000)), "notAfter instant");
        assert!(v.contains(Time::from_unix(1_500)));
        assert!(!v.contains(Time::from_unix(999)), "one second early");
        assert!(!v.contains(Time::from_unix(2_001)), "one second late");
    }

    #[test]
    fn validity_duration_counts_inclusive_seconds() {
        // A [t, t] window is valid for exactly the one instant t.
        let degenerate = window(5, 5);
        assert!(degenerate.contains(Time::from_unix(5)));
        assert_eq!(degenerate.duration_seconds(), 1);
        assert!(!degenerate.is_inverted());

        let v = window(0, 86_399);
        assert_eq!(v.duration_seconds(), 86_400, "a full day of seconds");
    }

    #[test]
    fn inverted_validity_window() {
        let v = window(2_000, 1_000);
        assert!(v.is_inverted());
        assert!(v.duration_seconds() <= 0);
        // No instant is inside an inverted window.
        for t in [999, 1_000, 1_500, 2_000, 2_001] {
            assert!(!v.contains(Time::from_unix(t)), "t={t}");
        }
    }
}
