//! Exhaustive interleaving checks for the `IssuanceChecker` signature
//! cache (model-check builds only; tier-1 `cargo test -q` skips this
//! file).
//!
//! Pattern: certificates and every process-global lazy (group ops,
//! interned issuer key, its fixed-base table) are warmed *outside* the
//! explorer closure so they sit in their terminal states during runs —
//! pure reads the sleep sets prune — while the checker under test is
//! created *fresh inside* the closure so each explored execution starts
//! from the same state.

#![cfg(feature = "model-check")]

use ccc_core::IssuanceChecker;
use ccc_crypto::{Group, KeyPair, PROMOTION_THRESHOLD};
use ccc_mc::Explorer;
use ccc_x509::{Certificate, CertificateBuilder, DistinguishedName};
use std::sync::Arc;

/// Serializes the model tests in this binary: the verify-route counters
/// folded into `CacheStats` are process-global. (Raw std mutex on
/// purpose — the harness lock must never become a model object.)
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    // Warm the process-global ccc-obs registration outside the explorer
    // so the registry OnceLocks are "done" during runs: in-run metric
    // updates then emit schedule-consistent ops instead of a one-time
    // init that diverges between the first execution and its replays.
    let _ = ccc_crypto::verify_route_stats();
    ccc_core::builder::touch_build_metrics();
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct Fixture {
    root: Certificate,
    leaf_a: Certificate,
    leaf_b: Certificate,
}

/// Builds a root plus two leaves and drives the issuer key well past the
/// promotion threshold, so every model execution takes the same (hot
/// fixed-base) verify route with the table already built — the per-
/// execution scheduling points are then exactly the cache's own ops.
fn warmed_fixture() -> Fixture {
    let g = Group::simulation_256();
    let root_kp = KeyPair::from_seed(g, b"mc-topo-root");
    let leaf_a_kp = KeyPair::from_seed(g, b"mc-topo-leaf-a");
    let leaf_b_kp = KeyPair::from_seed(g, b"mc-topo-leaf-b");
    let root_dn = DistinguishedName::cn("MC Topo Root");
    let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
    let leaf_a = CertificateBuilder::leaf_profile("mc-a.sim").issued_by(
        &leaf_a_kp.public,
        root_dn.clone(),
        &root_kp,
    );
    let leaf_b =
        CertificateBuilder::leaf_profile("mc-b.sim").issued_by(&leaf_b_kp.public, root_dn, &root_kp);
    for _ in 0..=(PROMOTION_THRESHOLD + 1) {
        assert!(leaf_a.verify_signature_with(root.public_key()));
    }
    assert!(leaf_b.verify_signature_with(root.public_key()));
    Fixture {
        root,
        leaf_a,
        leaf_b,
    }
}

/// Invariant: under OnceLock coalescing, a unique (issuer, subject) pair
/// is verified exactly once no matter how two concurrent misses
/// interleave, and the `CacheStats` accounting identities hold in every
/// interleaving.
#[test]
fn cache_coalesces_to_one_verification() {
    let _guard = test_guard();
    let fx = Arc::new(warmed_fixture());
    let exploration = Explorer::new().explore(move || {
        let checker = Arc::new(IssuanceChecker::with_shards(1));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let checker = Arc::clone(&checker);
                let fx = Arc::clone(&fx);
                ccc_mc::spawn(move || checker.signature_verifies(&fx.root, &fx.leaf_a))
            })
            .collect();
        let results: Vec<bool> = handles
            .into_iter()
            .map(|h| h.join().expect("verifier task"))
            .collect();
        assert!(results[0] && results[1], "both tasks must see the verdict");
        let stats = checker.snapshot_stats();
        assert_eq!(
            stats.verifications, 1,
            "one verification per unique pair under coalescing"
        );
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits + stats.misses, stats.lookups);
        assert_eq!(stats.verifications + stats.coalesced_waits, stats.misses);
        assert_eq!(stats.entries as u64, stats.verifications);
    });
    assert!(exploration.failure.is_none(), "{:?}", exploration.failure);
    assert!(
        exploration.complete,
        "2-thread OnceLock-coalescing scenario must explore to fixpoint"
    );
    assert!(!exploration.truncated);
    // The shard stripe and the coalescing slot both surface as lock
    // classes rooted in topology.rs; they never cycle (the slot is only
    // initialized outside the shard lock).
    assert!(exploration
        .lock_order
        .classes
        .iter()
        .any(|c| c.kind == ccc_mc::LockKind::Mutex && c.site.contains("topology.rs")));
    assert!(exploration.lock_order.is_acyclic());
}

/// Invariant: the cache and route counters are lock-free fetch_adds, so
/// two concurrent lookups on *distinct* pairs never lose an update —
/// every interleaving ends with both verifications and both fixed-base
/// route hits counted.
#[test]
fn route_counters_lose_no_updates() {
    let _guard = test_guard();
    let fx = Arc::new(warmed_fixture());
    let exploration = Explorer::new().explore(move || {
        let checker = Arc::new(IssuanceChecker::with_shards(1));
        let a = {
            let checker = Arc::clone(&checker);
            let fx = Arc::clone(&fx);
            ccc_mc::spawn(move || checker.signature_verifies(&fx.root, &fx.leaf_a))
        };
        let b = {
            let checker = Arc::clone(&checker);
            let fx = Arc::clone(&fx);
            ccc_mc::spawn(move || checker.signature_verifies(&fx.root, &fx.leaf_b))
        };
        assert!(a.join().expect("task a"));
        assert!(b.join().expect("task b"));
        let stats = checker.snapshot_stats();
        assert_eq!(stats.lookups, 2, "lookup counter must not lose updates");
        assert_eq!(
            stats.verifications, 2,
            "distinct pairs are verified independently"
        );
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.coalesced_waits, 0);
        assert_eq!(stats.entries, 2);
        assert_eq!(
            stats.fixed_base_hits, 2,
            "route counter must not lose updates (both keys are promoted)"
        );
    });
    assert!(exploration.failure.is_none(), "{:?}", exploration.failure);
    assert!(
        exploration.complete,
        "distinct-pair counter scenario must explore to fixpoint"
    );
    assert!(!exploration.truncated);
    assert!(exploration.lock_order.is_acyclic());
}
