//! Leaf certificate placement classification (paper §3.1 / Table 3).

use ccc_x509::Certificate;

/// Placement classes from the paper's Table 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum LeafPlacement {
    /// First certificate's CN/SAN matches the queried domain.
    CorrectlyPlacedMatched,
    /// First certificate is domain/IP-shaped but does not match.
    CorrectlyPlacedMismatched,
    /// A later certificate matches the domain.
    IncorrectlyPlacedMatched,
    /// A later certificate is domain/IP-shaped (none matches).
    IncorrectlyPlacedMismatched,
    /// No certificate is even domain/IP-shaped (test certs, empty CNs…).
    Other,
}

impl LeafPlacement {
    /// Paper table row label.
    pub fn label(&self) -> &'static str {
        match self {
            LeafPlacement::CorrectlyPlacedMatched => "Correctly Placed and Matched",
            LeafPlacement::CorrectlyPlacedMismatched => "Correctly Placed but Mismatched",
            LeafPlacement::IncorrectlyPlacedMatched => "Incorrectly Placed but Matched",
            LeafPlacement::IncorrectlyPlacedMismatched => "Incorrectly Placed and Mismatched",
            LeafPlacement::Other => "Other",
        }
    }

    /// Whether this class counts as leaf-placement compliant.
    pub fn is_compliant(&self) -> bool {
        matches!(
            self,
            LeafPlacement::CorrectlyPlacedMatched | LeafPlacement::CorrectlyPlacedMismatched
        )
    }
}

/// All identity strings of a certificate: CN plus SAN DNS/IP entries.
fn identity_strings(cert: &Certificate) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(cn) = cert.subject().common_name() {
        out.push(cn.to_string());
    }
    if let Some(san) = cert.san() {
        for name in &san.names {
            out.push(match name {
                ccc_x509::GeneralName::Dns(d) => d.clone(),
                ccc_x509::GeneralName::Ip(b) if b.len() == 4 => {
                    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
                }
                ccc_x509::GeneralName::Ip(_) => continue,
                ccc_x509::GeneralName::Uri(_) => continue,
            });
        }
    }
    out
}

/// Case-insensitive hostname match with single-label wildcard support
/// (`*.example.com` matches `www.example.com` but not `example.com` or
/// `a.b.example.com`).
pub fn hostname_matches(pattern: &str, domain: &str) -> bool {
    let pattern = pattern.to_ascii_lowercase();
    let domain = domain.to_ascii_lowercase();
    if let Some(suffix) = pattern.strip_prefix("*.") {
        match domain.split_once('.') {
            Some((first_label, rest)) => !first_label.is_empty() && rest == suffix,
            None => false,
        }
    } else {
        pattern == domain
    }
}

/// Heuristic: does `s` look like a DNS domain name? (letters/digits/
/// hyphens, at least one dot, no spaces, labels non-empty; a leading `*.`
/// wildcard is allowed.)
pub fn is_domain_like(s: &str) -> bool {
    let s = s.strip_prefix("*.").unwrap_or(s);
    if s.is_empty() || !s.contains('.') {
        return false;
    }
    s.split('.').all(|label| {
        !label.is_empty()
            && label
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    })
}

/// Heuristic: does `s` look like an IPv4 address?
pub fn is_ip_like(s: &str) -> bool {
    let parts: Vec<&str> = s.split('.').collect();
    parts.len() == 4 && parts.iter().all(|p| !p.is_empty() && p.parse::<u8>().is_ok())
}

/// Does this certificate cover `domain`? SAN DNS entries are authoritative
/// when present; otherwise the CN is consulted (legacy behaviour).
pub fn cert_covers_domain(cert: &Certificate, domain: &str) -> bool {
    if let Some(san) = cert.san() {
        if san.names.iter().any(|n| matches!(n, ccc_x509::GeneralName::Dns(_))) {
            return san
                .dns_names()
                .any(|pattern| hostname_matches(pattern, domain));
        }
    }
    cert.subject()
        .common_name()
        .map(|cn| hostname_matches(cn, domain))
        .unwrap_or(false)
}

fn cert_matches_domain(cert: &Certificate, domain: &str) -> bool {
    identity_strings(cert)
        .iter()
        .any(|id| hostname_matches(id, domain))
}

fn cert_is_host_shaped(cert: &Certificate) -> bool {
    identity_strings(cert)
        .iter()
        .any(|id| is_domain_like(id) || is_ip_like(id))
}

/// Classify the leaf placement of a served list for `domain` (Table 3).
pub fn classify_leaf_placement(domain: &str, served: &[Certificate]) -> LeafPlacement {
    let Some(first) = served.first() else {
        return LeafPlacement::Other;
    };
    if cert_matches_domain(first, domain) {
        return LeafPlacement::CorrectlyPlacedMatched;
    }
    if cert_is_host_shaped(first) {
        return LeafPlacement::CorrectlyPlacedMismatched;
    }
    // First cert is not host-shaped: look deeper in the list.
    let rest = &served[1..];
    if rest.iter().any(|c| cert_matches_domain(c, domain)) {
        return LeafPlacement::IncorrectlyPlacedMatched;
    }
    if rest.iter().any(cert_is_host_shaped) {
        return LeafPlacement::IncorrectlyPlacedMismatched;
    }
    LeafPlacement::Other
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::{CertificateBuilder, DistinguishedName};

    fn leaf_for(domain: &str, seed: &[u8]) -> Certificate {
        let g = Group::simulation_256();
        let kp = KeyPair::from_seed(g, seed);
        CertificateBuilder::leaf_profile(domain).self_signed(&kp)
    }

    fn weird_cert(cn: &str, seed: &[u8]) -> Certificate {
        let g = Group::simulation_256();
        let kp = KeyPair::from_seed(g, seed);
        CertificateBuilder::new(DistinguishedName::cn(cn)).self_signed(&kp)
    }

    #[test]
    fn hostname_matching() {
        assert!(hostname_matches("example.com", "example.com"));
        assert!(hostname_matches("EXAMPLE.com", "example.COM"));
        assert!(hostname_matches("*.example.com", "www.example.com"));
        assert!(!hostname_matches("*.example.com", "example.com"));
        assert!(!hostname_matches("*.example.com", "a.b.example.com"));
        assert!(!hostname_matches("other.com", "example.com"));
    }

    #[test]
    fn shape_heuristics() {
        assert!(is_domain_like("example.com"));
        assert!(is_domain_like("*.example.co.uk"));
        assert!(!is_domain_like("localhost"));
        assert!(!is_domain_like("Plesk"));
        assert!(!is_domain_like("SophosApplianceCertificate_abc")); // no dot
        assert!(!is_domain_like(""));
        assert!(is_ip_like("192.0.2.1"));
        assert!(!is_ip_like("192.0.2.999"));
        assert!(!is_ip_like("example.com"));
    }

    #[test]
    fn correctly_placed_matched() {
        let served = vec![leaf_for("good.sim", b"lp-1")];
        assert_eq!(
            classify_leaf_placement("good.sim", &served),
            LeafPlacement::CorrectlyPlacedMatched
        );
    }

    #[test]
    fn wildcard_match_counts() {
        let served = vec![leaf_for("*.wild.sim", b"lp-2")];
        assert_eq!(
            classify_leaf_placement("www.wild.sim", &served),
            LeafPlacement::CorrectlyPlacedMatched
        );
    }

    #[test]
    fn correctly_placed_mismatched() {
        let served = vec![leaf_for("other.sim", b"lp-3")];
        assert_eq!(
            classify_leaf_placement("query.sim", &served),
            LeafPlacement::CorrectlyPlacedMismatched
        );
    }

    #[test]
    fn incorrectly_placed_matched() {
        // mot.gov.ps pattern: appliance cert first, matching cert later.
        let served = vec![weird_cert("SophosAppliance", b"lp-4"), leaf_for("mot.gov.sim", b"lp-5")];
        assert_eq!(
            classify_leaf_placement("mot.gov.sim", &served),
            LeafPlacement::IncorrectlyPlacedMatched
        );
    }

    #[test]
    fn incorrectly_placed_mismatched() {
        let served = vec![weird_cert("Appliance", b"lp-6"), leaf_for("elsewhere.sim", b"lp-7")];
        assert_eq!(
            classify_leaf_placement("query.sim", &served),
            LeafPlacement::IncorrectlyPlacedMismatched
        );
    }

    #[test]
    fn other_category() {
        let served = vec![weird_cert("Plesk", b"lp-8"), weird_cert("localhost", b"lp-9")];
        assert_eq!(classify_leaf_placement("query.sim", &served), LeafPlacement::Other);
        assert_eq!(classify_leaf_placement("query.sim", &[]), LeafPlacement::Other);
    }

    #[test]
    fn compliance_flags() {
        assert!(LeafPlacement::CorrectlyPlacedMatched.is_compliant());
        assert!(LeafPlacement::CorrectlyPlacedMismatched.is_compliant());
        assert!(!LeafPlacement::IncorrectlyPlacedMatched.is_compliant());
        assert!(!LeafPlacement::Other.is_compliant());
    }
}
