//! Certificate path validation (the step after construction, paper Fig. 1).

use crate::builder::ClientError;
use crate::topology::IssuanceChecker;
use ccc_asn1::Time;
use ccc_rootstore::RootStore;
use ccc_x509::Certificate;

/// Which checks to run (policies/ablations can relax individual checks).
#[derive(Clone, Copy, Debug)]
pub struct ValidationOptions {
    /// Require keyCertSign on issuers that carry KeyUsage.
    pub enforce_key_usage: bool,
    /// Require CA basic constraints on issuers.
    pub enforce_basic_constraints: bool,
    /// Enforce pathLenConstraint.
    pub enforce_path_len: bool,
    /// Verify every signature along the path.
    pub check_signatures: bool,
    /// Check validity windows against the context time.
    pub check_validity: bool,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            enforce_key_usage: true,
            enforce_basic_constraints: true,
            enforce_path_len: true,
            check_signatures: true,
            check_validity: true,
        }
    }
}

/// Validate a constructed path (leaf first, trust anchor last).
///
/// Checks, in the order a typical implementation reports them:
/// 1. every certificate is within its validity window;
/// 2. every issuer (index ≥ 1) is a CA with certificate-signing KeyUsage
///    and a satisfied pathLenConstraint;
/// 3. every signature verifies under its issuer's key;
/// 4. the terminal certificate is in the trust store.
pub fn validate_path(
    path: &[Certificate],
    store: &RootStore,
    now: Time,
    checker: &IssuanceChecker,
    opts: &ValidationOptions,
) -> Result<(), ClientError> {
    if path.is_empty() {
        return Err(ClientError::EmptyList);
    }
    if opts.check_validity {
        for cert in path {
            let v = cert.validity();
            if now < v.not_before {
                return Err(ClientError::NotYetValid);
            }
            if now > v.not_after {
                return Err(ClientError::Expired);
            }
        }
    }
    for (i, issuer) in path.iter().enumerate().skip(1) {
        if opts.enforce_basic_constraints {
            match issuer.basic_constraints() {
                Some(bc) if bc.ca => {
                    if opts.enforce_path_len {
                        if let Some(max) = bc.path_len {
                            // Number of intermediates strictly between this
                            // issuer and the leaf.
                            let below = i as i64 - 1;
                            if below > max as i64 {
                                return Err(ClientError::PathLenConstraintViolated);
                            }
                        }
                    }
                }
                _ => return Err(ClientError::NotACa),
            }
        }
        if opts.enforce_key_usage {
            if let Some(ku) = issuer.key_usage() {
                if !ku.key_cert_sign {
                    return Err(ClientError::BadKeyUsage);
                }
            }
        }
    }
    if opts.check_signatures {
        for w in path.windows(2) {
            if !checker.signature_verifies(&w[1], &w[0]) {
                return Err(ClientError::BadSignature);
            }
        }
        let terminal = path.last().expect("non-empty");
        if terminal.is_self_issued() && !checker.signature_verifies(terminal, terminal) {
            return Err(ClientError::BadSignature);
        }
    }
    let terminal = path.last().expect("non-empty");
    if !store.contains(terminal) {
        return Err(ClientError::UntrustedRoot);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::{BasicConstraints, CertificateBuilder, DistinguishedName, KeyUsage};

    struct Pki {
        root: Certificate,
        int: Certificate,
        leaf: Certificate,
        store: RootStore,
    }

    fn pki() -> Pki {
        let g = Group::simulation_256();
        let root_kp = KeyPair::from_seed(g, b"val-root");
        let int_kp = KeyPair::from_seed(g, b"val-int");
        let leaf_kp = KeyPair::from_seed(g, b"val-leaf");
        let root_dn = DistinguishedName::cn("Val Root");
        let int_dn = DistinguishedName::cn("Val Int");
        let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
        let int = CertificateBuilder::ca_profile(int_dn.clone()).issued_by(
            &int_kp.public,
            root_dn,
            &root_kp,
        );
        let leaf = CertificateBuilder::leaf_profile("val.sim").issued_by(
            &leaf_kp.public,
            int_dn,
            &int_kp,
        );
        let store = RootStore::new("test", vec![root.clone()]);
        Pki {
            root,
            int,
            leaf,
            store,
        }
    }

    fn now() -> Time {
        Time::from_ymd(2024, 7, 1).unwrap()
    }

    #[test]
    fn valid_path_passes() {
        let p = pki();
        let checker = IssuanceChecker::new();
        let path = vec![p.leaf, p.int, p.root];
        assert_eq!(
            validate_path(&path, &p.store, now(), &checker, &ValidationOptions::default()),
            Ok(())
        );
    }

    #[test]
    fn expired_detected() {
        let p = pki();
        let checker = IssuanceChecker::new();
        let path = vec![p.leaf, p.int, p.root];
        let late = Time::from_ymd(2030, 1, 1).unwrap();
        assert_eq!(
            validate_path(&path, &p.store, late, &checker, &ValidationOptions::default()),
            Err(ClientError::Expired)
        );
        let early = Time::from_ymd(2020, 1, 1).unwrap();
        assert_eq!(
            validate_path(&path, &p.store, early, &checker, &ValidationOptions::default()),
            Err(ClientError::NotYetValid)
        );
    }

    #[test]
    fn untrusted_root_detected() {
        let p = pki();
        let checker = IssuanceChecker::new();
        let empty_store = RootStore::new("empty", vec![]);
        let path = vec![p.leaf, p.int, p.root];
        assert_eq!(
            validate_path(&path, &empty_store, now(), &checker, &ValidationOptions::default()),
            Err(ClientError::UntrustedRoot)
        );
    }

    #[test]
    fn non_ca_issuer_detected() {
        let g = Group::simulation_256();
        let fake_ca_kp = KeyPair::from_seed(g, b"val-fake");
        let leaf_kp = KeyPair::from_seed(g, b"val-leaf2");
        let fake_dn = DistinguishedName::cn("Not A CA");
        // "CA" without BasicConstraints CA bit.
        let fake_ca = CertificateBuilder::new(fake_dn.clone())
            .basic_constraints(Some(BasicConstraints::end_entity()))
            .key_usage(Some(KeyUsage::ca()))
            .self_signed(&fake_ca_kp);
        let leaf = CertificateBuilder::leaf_profile("fake.sim").issued_by(
            &leaf_kp.public,
            fake_dn,
            &fake_ca_kp,
        );
        let store = RootStore::new("s", vec![fake_ca.clone()]);
        let checker = IssuanceChecker::new();
        assert_eq!(
            validate_path(&[leaf, fake_ca], &store, now(), &checker, &ValidationOptions::default()),
            Err(ClientError::NotACa)
        );
    }

    #[test]
    fn bad_key_usage_detected() {
        let g = Group::simulation_256();
        let ca_kp = KeyPair::from_seed(g, b"val-badku");
        let leaf_kp = KeyPair::from_seed(g, b"val-leaf3");
        let dn = DistinguishedName::cn("Bad KU CA");
        let ca = CertificateBuilder::new(dn.clone())
            .basic_constraints(Some(BasicConstraints::ca()))
            .key_usage(Some(KeyUsage::no_cert_sign()))
            .self_signed(&ca_kp);
        let leaf =
            CertificateBuilder::leaf_profile("ku.sim").issued_by(&leaf_kp.public, dn, &ca_kp);
        let store = RootStore::new("s", vec![ca.clone()]);
        let checker = IssuanceChecker::new();
        assert_eq!(
            validate_path(&[leaf, ca], &store, now(), &checker, &ValidationOptions::default()),
            Err(ClientError::BadKeyUsage)
        );
    }

    #[test]
    fn path_len_constraint_enforced() {
        let g = Group::simulation_256();
        let root_kp = KeyPair::from_seed(g, b"val-plc-root");
        let i1_kp = KeyPair::from_seed(g, b"val-plc-i1");
        let i2_kp = KeyPair::from_seed(g, b"val-plc-i2");
        let leaf_kp = KeyPair::from_seed(g, b"val-plc-leaf");
        let root_dn = DistinguishedName::cn("PLC Root");
        let i1_dn = DistinguishedName::cn("PLC I1");
        let i2_dn = DistinguishedName::cn("PLC I2");
        // Root constrains path length to 0 intermediates below it — but
        // the chain has two.
        let root = CertificateBuilder::new(root_dn.clone())
            .basic_constraints(Some(BasicConstraints::ca_with_path_len(0)))
            .key_usage(Some(KeyUsage::ca()))
            .self_signed(&root_kp);
        let i2 = CertificateBuilder::ca_profile(i2_dn.clone()).issued_by(
            &i2_kp.public,
            root_dn,
            &root_kp,
        );
        let i1 = CertificateBuilder::ca_profile(i1_dn.clone()).issued_by(
            &i1_kp.public,
            i2_dn,
            &i2_kp,
        );
        let leaf = CertificateBuilder::leaf_profile("plc.sim").issued_by(
            &leaf_kp.public,
            i1_dn,
            &i1_kp,
        );
        let store = RootStore::new("s", vec![root.clone()]);
        let checker = IssuanceChecker::new();
        assert_eq!(
            validate_path(
                &[leaf, i1, i2, root],
                &store,
                now(),
                &checker,
                &ValidationOptions::default()
            ),
            Err(ClientError::PathLenConstraintViolated)
        );
    }

    #[test]
    fn bad_signature_detected() {
        let p = pki();
        let g = Group::simulation_256();
        let imposter_kp = KeyPair::from_seed(g, b"val-imposter");
        let leaf_kp = KeyPair::from_seed(g, b"val-leaf4");
        // Leaf claims p.int as issuer but is signed by an imposter.
        let forged = CertificateBuilder::leaf_profile("forged.sim").build(
            &leaf_kp.public,
            p.int.subject().clone(),
            &imposter_kp.private,
            p.int.public_key(),
        );
        let checker = IssuanceChecker::new();
        assert_eq!(
            validate_path(
                &[forged, p.int, p.root],
                &p.store,
                now(),
                &checker,
                &ValidationOptions::default()
            ),
            Err(ClientError::BadSignature)
        );
    }

    #[test]
    fn options_relax_checks() {
        let p = pki();
        let checker = IssuanceChecker::new();
        let path = vec![p.leaf, p.int, p.root];
        let late = Time::from_ymd(2030, 1, 1).unwrap();
        let opts = ValidationOptions {
            check_validity: false,
            ..Default::default()
        };
        assert_eq!(validate_path(&path, &p.store, late, &checker, &opts), Ok(()));
    }

    #[test]
    fn empty_path_rejected() {
        let p = pki();
        let checker = IssuanceChecker::new();
        assert_eq!(
            validate_path(&[], &p.store, now(), &checker, &ValidationOptions::default()),
            Err(ClientError::EmptyList)
        );
    }
}
