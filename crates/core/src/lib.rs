//! chain-chaos core: certificate chain compliance analysis and client-side
//! chain construction.
//!
//! This crate implements the paper's two contributions:
//!
//! **Server-side compliance analysis** (paper §3.1/§4) — given the
//! certificate *list* a server sends in its TLS Certificate message,
//! classify:
//! - leaf placement ([`leaf`], Table 3),
//! - issuance order via the topology graph ([`topology`], [`order`],
//!   Figure 2 / Table 5),
//! - chain completeness against root stores and AIA ([`completeness`],
//!   Tables 7–8),
//! - and the aggregate verdict ([`compliance`]).
//!
//! **Client-side chain construction** (paper §3.2/§5) — a single
//! configurable path-building engine ([`builder`]) whose capability knobs
//! span the paper's nine test dimensions (Table 2), eight client profiles
//! tuned to the paper's measurements ([`clients`], Table 9), a path
//! validator ([`validate`]), and a differential-testing harness
//! ([`differential`], §5.2).

pub mod builder;
pub mod clients;
pub mod compliance;
pub mod completeness;
pub mod differential;
pub mod leaf;
pub mod order;
pub mod report;
pub mod topology;
pub mod validate;

pub use builder::{BuildContext, BuildOutcome, BuildStats, BuilderPolicy, CandidateOrigin,
    ChainEngine, ClientError, KidPriority, RetryPolicy, SearchScope, ValidityPriority};
pub use clients::{client_profiles, ClientKind};
pub use compliance::{
    analyze_compliance, analyze_compliance_with_graph, ComplianceReport, NonCompliance,
};
pub use completeness::{Completeness, CompletenessAnalysis, CompletenessAnalyzer, IncompleteReason};
pub use differential::{DifferentialHarness, DifferentialReport, DifferentialResult, DiscrepancyCause};
pub use leaf::{classify_leaf_placement, LeafPlacement};
pub use order::{analyze_order, analyze_order_with_graph, OrderAnalysis};
pub use topology::{CacheStats, IssuanceChecker, TopologyGraph};
pub use validate::{validate_path, ValidationOptions};
