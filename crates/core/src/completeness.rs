//! Chain completeness analysis (paper §4.3, Tables 7 and 8).

use crate::topology::{IssuanceChecker, TopologyGraph};
use ccc_netsim::AiaRepository;
use ccc_rootstore::RootStore;
use ccc_x509::Certificate;

/// Maximum AIA fetch depth per path (real chains need 1–3).
const MAX_AIA_DEPTH: usize = 8;

/// Table 7 classes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Completeness {
    /// The chain includes a self-signed (root) certificate.
    CompleteWithRoot,
    /// All intermediates present; only the root is omitted.
    CompleteWithoutRoot,
    /// At least one intermediate certificate is missing.
    Incomplete,
}

impl Completeness {
    /// Paper table row label.
    pub fn label(&self) -> &'static str {
        match self {
            Completeness::CompleteWithRoot => "Complete Chain w/ Root",
            Completeness::CompleteWithoutRoot => "Complete Chain w/o Root",
            Completeness::Incomplete => "Incomplete Chain",
        }
    }
}

/// Why an incomplete chain could not be completed via AIA.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IncompleteReason {
    /// The terminal certificate has no AIA caIssuers field.
    NoAiaField,
    /// The AIA URI did not resolve.
    AiaUriDead,
    /// The AIA URI served a certificate that is not the issuer.
    AiaWrongCertificate,
    /// The AIA descent exceeded the depth limit without reaching a root.
    AiaChainNotTerminating,
}

/// How the (possibly omitted) root was located.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RootResolution {
    /// A self-signed certificate was included in the served list.
    IncludedSelfSigned,
    /// The terminal certificate's AKID matched a store root's SKID.
    StoreSkidMatch,
    /// Resolved by AIA fetching (`fetches` downloads, the last of which
    /// was self-signed).
    AiaResolved {
        /// Number of certificates downloaded.
        fetches: usize,
    },
}

/// Result of analyzing one served list.
#[derive(Clone, Debug)]
pub struct CompletenessAnalysis {
    /// Table 7 class (best over all leaf paths).
    pub completeness: Completeness,
    /// How the root was located, when the chain is complete.
    pub resolution: Option<RootResolution>,
    /// Number of missing intermediates recovered via AIA, when the chain
    /// is incomplete but AIA-completable.
    pub missing_intermediates: usize,
    /// Whether an incomplete chain could be fully completed via AIA.
    pub aia_completable: bool,
    /// The failure reason when AIA completion failed.
    pub incomplete_reason: Option<IncompleteReason>,
}

/// Analyzer bundling the trust store and (optional) AIA repository.
#[derive(Clone, Copy, Debug)]
pub struct CompletenessAnalyzer<'a> {
    checker: &'a IssuanceChecker,
    store: &'a RootStore,
    aia: Option<&'a AiaRepository>,
}

/// Outcome of resolving one path terminal.
enum TerminalOutcome {
    SelfSignedIncluded,
    SkidMatch,
    /// AIA descent reached a self-signed root after `fetches` downloads;
    /// `in_store` records whether that root is in the analyzer's store.
    AiaRoot { fetches: usize, in_store: bool },
    Failed(IncompleteReason),
}

impl<'a> CompletenessAnalyzer<'a> {
    /// Build an analyzer. Pass `None` for `aia` to model clients without
    /// AIA support.
    pub fn new(
        checker: &'a IssuanceChecker,
        store: &'a RootStore,
        aia: Option<&'a AiaRepository>,
    ) -> CompletenessAnalyzer<'a> {
        CompletenessAnalyzer { checker, store, aia }
    }

    /// Structural completeness per the paper's §3.1 method (Table 7).
    pub fn analyze(&self, served: &[Certificate]) -> CompletenessAnalysis {
        let graph = TopologyGraph::build(served, self.checker);
        self.analyze_graph(&graph)
    }

    /// Analysis over a pre-built topology graph.
    pub fn analyze_graph(&self, graph: &TopologyGraph) -> CompletenessAnalysis {
        let paths = graph.leaf_paths(64);
        if paths.is_empty() {
            return CompletenessAnalysis {
                completeness: Completeness::Incomplete,
                resolution: None,
                missing_intermediates: 0,
                aia_completable: false,
                incomplete_reason: Some(IncompleteReason::NoAiaField),
            };
        }

        // Evaluate every path terminal; keep the best outcome.
        let mut best: Option<CompletenessAnalysis> = None;
        for path in &paths {
            let terminal = &graph.nodes[*path.last().expect("non-empty")].cert;
            let outcome = self.resolve_terminal(terminal);
            let analysis = match outcome {
                TerminalOutcome::SelfSignedIncluded => CompletenessAnalysis {
                    completeness: Completeness::CompleteWithRoot,
                    resolution: Some(RootResolution::IncludedSelfSigned),
                    missing_intermediates: 0,
                    aia_completable: true,
                    incomplete_reason: None,
                },
                TerminalOutcome::SkidMatch => CompletenessAnalysis {
                    completeness: Completeness::CompleteWithoutRoot,
                    resolution: Some(RootResolution::StoreSkidMatch),
                    missing_intermediates: 0,
                    aia_completable: true,
                    incomplete_reason: None,
                },
                TerminalOutcome::AiaRoot { fetches, .. } if fetches == 1 => {
                    // Only the root itself was missing.
                    CompletenessAnalysis {
                        completeness: Completeness::CompleteWithoutRoot,
                        resolution: Some(RootResolution::AiaResolved { fetches }),
                        missing_intermediates: 0,
                        aia_completable: true,
                        incomplete_reason: None,
                    }
                }
                TerminalOutcome::AiaRoot { fetches, .. } => CompletenessAnalysis {
                    completeness: Completeness::Incomplete,
                    resolution: Some(RootResolution::AiaResolved { fetches }),
                    missing_intermediates: fetches - 1,
                    aia_completable: true,
                    incomplete_reason: None,
                },
                TerminalOutcome::Failed(reason) => CompletenessAnalysis {
                    completeness: Completeness::Incomplete,
                    resolution: None,
                    missing_intermediates: 0,
                    aia_completable: false,
                    incomplete_reason: Some(reason),
                },
            };
            best = Some(match best.take() {
                None => analysis,
                Some(prev) => better(prev, analysis),
            });
        }
        best.expect("at least one path")
    }

    /// Client-level completeness: can a client with this store (and AIA
    /// setting) anchor some path at a root *it trusts*? Used for Table 8.
    pub fn client_complete(&self, graph: &TopologyGraph) -> bool {
        let paths = graph.leaf_paths(64);
        for path in &paths {
            let terminal = &graph.nodes[*path.last().expect("non-empty")].cert;
            if self.self_signed(terminal) {
                if self.store.contains(terminal) {
                    return true;
                }
                // An untrusted self-signed terminal ends this path, but the
                // AIA descent below cannot help a self-signed cert either.
                continue;
            }
            if self.skid_match(terminal) {
                return true;
            }
            if let TerminalOutcome::AiaRoot { in_store: true, .. } = self.aia_descent(terminal) {
                return true;
            }
        }
        false
    }

    /// Self-signed check routed through the shared signature cache:
    /// semantically identical to [`Certificate::is_self_signed`]
    /// (`is_self_issued` + self-key verification), but the Schnorr
    /// verification is memoized under the `(cert, cert)` pair key, so the
    /// per-program analyzers and fused pipeline passes that resolve the
    /// same terminal hundreds of times pay it once.
    fn self_signed(&self, cert: &Certificate) -> bool {
        cert.is_self_issued() && self.checker.signature_verifies(cert, cert)
    }

    fn skid_match(&self, terminal: &Certificate) -> bool {
        match terminal.akid_key_id() {
            Some(akid) => self.store.has_skid(akid),
            None => false,
        }
    }

    fn resolve_terminal(&self, terminal: &Certificate) -> TerminalOutcome {
        if self.self_signed(terminal) {
            return TerminalOutcome::SelfSignedIncluded;
        }
        if self.skid_match(terminal) {
            return TerminalOutcome::SkidMatch;
        }
        self.aia_descent(terminal)
    }

    fn aia_descent(&self, terminal: &Certificate) -> TerminalOutcome {
        let Some(repo) = self.aia else {
            return TerminalOutcome::Failed(IncompleteReason::NoAiaField);
        };
        let mut current = terminal.clone();
        let mut fetches = 0usize;
        loop {
            if fetches >= MAX_AIA_DEPTH {
                return TerminalOutcome::Failed(IncompleteReason::AiaChainNotTerminating);
            }
            let Some(uri) = current.aia_ca_issuers_uri() else {
                return TerminalOutcome::Failed(IncompleteReason::NoAiaField);
            };
            let Some(fetched) = repo.fetch(uri) else {
                return TerminalOutcome::Failed(IncompleteReason::AiaUriDead);
            };
            fetches += 1;
            if !self.checker.issues(&fetched, &current) {
                return TerminalOutcome::Failed(IncompleteReason::AiaWrongCertificate);
            }
            if self.self_signed(&fetched) {
                let in_store = self.store.contains(&fetched);
                return TerminalOutcome::AiaRoot { fetches, in_store };
            }
            // Also stop early if the fetched intermediate now SKID-matches
            // a store root (the client could anchor here).
            if self.skid_match(&fetched) {
                let in_store = true;
                return TerminalOutcome::AiaRoot {
                    fetches: fetches + 1,
                    in_store,
                };
            }
            current = fetched;
        }
    }
}

/// Order analyses by quality: prefer complete-with-root, then
/// complete-without-root, then AIA-completable incompletes.
fn better(a: CompletenessAnalysis, b: CompletenessAnalysis) -> CompletenessAnalysis {
    let rank = |x: &CompletenessAnalysis| match (x.completeness, x.aia_completable) {
        (Completeness::CompleteWithRoot, _) => 0,
        (Completeness::CompleteWithoutRoot, _) => 1,
        (Completeness::Incomplete, true) => 2,
        (Completeness::Incomplete, false) => 3,
    };
    if rank(&b) < rank(&a) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_netsim::AiaFailure;
    use ccc_rootstore::{CaUniverse, RootPrograms};

    struct Env {
        universe: CaUniverse,
        programs: RootPrograms,
        aia: AiaRepository,
        checker: IssuanceChecker,
    }

    fn env() -> Env {
        let universe = CaUniverse::default_with_seed(21);
        let programs = RootPrograms::from_universe(&universe);
        let aia = AiaRepository::new(universe.aia_publications());
        Env {
            universe,
            programs,
            aia,
            checker: IssuanceChecker::new(),
        }
    }

    fn leaf_under(env: &Env, ca: usize, int: usize, domain: &str) -> Certificate {
        let intermediate = &env.universe.roots[ca].intermediates[int];
        let kp = ccc_crypto::KeyPair::from_seed(
            ccc_crypto::Group::simulation_256(),
            format!("cmpl-{domain}").as_bytes(),
        );
        ccc_x509::CertificateBuilder::leaf_profile(domain)
            .aia_ca_issuers(intermediate.aia_uri.clone())
            .issued_by(&kp.public, intermediate.cert.subject().clone(), &intermediate.keypair)
    }

    #[test]
    fn complete_with_root() {
        let e = env();
        let leaf = leaf_under(&e, 0, 0, "cwr.sim");
        let int = &e.universe.roots[0].intermediates[0];
        let served = vec![leaf, int.cert.clone(), e.universe.roots[0].cert.clone()];
        let analyzer =
            CompletenessAnalyzer::new(&e.checker, e.programs.unified(), Some(&e.aia));
        let a = analyzer.analyze(&served);
        assert_eq!(a.completeness, Completeness::CompleteWithRoot);
        assert_eq!(a.resolution, Some(RootResolution::IncludedSelfSigned));
    }

    #[test]
    fn complete_without_root_via_skid() {
        let e = env();
        let leaf = leaf_under(&e, 0, 0, "cwor.sim");
        let int = &e.universe.roots[0].intermediates[0];
        let served = vec![leaf, int.cert.clone()];
        let analyzer =
            CompletenessAnalyzer::new(&e.checker, e.programs.unified(), Some(&e.aia));
        let a = analyzer.analyze(&served);
        assert_eq!(a.completeness, Completeness::CompleteWithoutRoot);
        assert_eq!(a.resolution, Some(RootResolution::StoreSkidMatch));
    }

    #[test]
    fn no_akid_terminal_needs_aia() {
        let e = env();
        let leaf = leaf_under(&e, 0, 0, "noakid.sim");
        let int = &e.universe.roots[0].intermediates[0];
        let served = vec![leaf, int.cert_no_akid.clone()];
        let analyzer =
            CompletenessAnalyzer::new(&e.checker, e.programs.unified(), Some(&e.aia));
        let a = analyzer.analyze(&served);
        // AIA fetches the root directly: complete without root.
        assert_eq!(a.completeness, Completeness::CompleteWithoutRoot);
        assert_eq!(a.resolution, Some(RootResolution::AiaResolved { fetches: 1 }));

        // Without AIA the same chain cannot be anchored.
        let analyzer_no_aia =
            CompletenessAnalyzer::new(&e.checker, e.programs.unified(), None);
        let a = analyzer_no_aia.analyze(&served);
        assert_eq!(a.completeness, Completeness::Incomplete);
        assert!(!a.aia_completable);
    }

    #[test]
    fn missing_intermediate_completable_via_aia() {
        let e = env();
        let leaf = leaf_under(&e, 1, 0, "miss.sim");
        let served = vec![leaf]; // no intermediate at all
        let analyzer =
            CompletenessAnalyzer::new(&e.checker, e.programs.unified(), Some(&e.aia));
        let a = analyzer.analyze(&served);
        assert_eq!(a.completeness, Completeness::Incomplete);
        assert!(a.aia_completable);
        assert_eq!(a.missing_intermediates, 1);

        let analyzer_no_aia =
            CompletenessAnalyzer::new(&e.checker, e.programs.unified(), None);
        let a = analyzer_no_aia.analyze(&served);
        assert!(!a.aia_completable);
        assert_eq!(a.incomplete_reason, Some(IncompleteReason::NoAiaField));
    }

    #[test]
    fn dead_aia_uri_detected() {
        let e = env();
        let leaf = leaf_under(&e, 1, 1, "dead.sim");
        let mut aia = AiaRepository::new(e.universe.aia_publications());
        let int = &e.universe.roots[1].intermediates[1];
        aia.inject_failure(int.aia_uri.clone(), AiaFailure::DeadUri);
        let served = vec![leaf];
        let analyzer = CompletenessAnalyzer::new(&e.checker, e.programs.unified(), Some(&aia));
        let a = analyzer.analyze(&served);
        assert_eq!(a.completeness, Completeness::Incomplete);
        assert_eq!(a.incomplete_reason, Some(IncompleteReason::AiaUriDead));
    }

    #[test]
    fn wrong_aia_certificate_detected() {
        let e = env();
        let leaf = leaf_under(&e, 1, 0, "wrong.sim");
        let mut aia = AiaRepository::new(e.universe.aia_publications());
        let int = &e.universe.roots[1].intermediates[0];
        // The CAcert pattern: URI serves the certificate itself.
        aia.inject_failure(
            int.aia_uri.clone(),
            AiaFailure::WrongCertificate(leaf.clone()),
        );
        let served = vec![leaf];
        let analyzer = CompletenessAnalyzer::new(&e.checker, e.programs.unified(), Some(&aia));
        let a = analyzer.analyze(&served);
        assert_eq!(a.incomplete_reason, Some(IncompleteReason::AiaWrongCertificate));
    }

    #[test]
    fn client_completeness_respects_store_exclusions() {
        let e = env();
        // A chain under the Mozilla/Chrome-excluded root.
        let mz_idx = e
            .universe
            .roots
            .iter()
            .position(|r| r.name.contains("Sim MZ"))
            .unwrap();
        let leaf = leaf_under(&e, mz_idx, 0, "excl.sim");
        let int = &e.universe.roots[mz_idx].intermediates[0];
        let served = vec![leaf, int.cert.clone()];
        let graph = TopologyGraph::build(&served, &e.checker);

        let unified =
            CompletenessAnalyzer::new(&e.checker, e.programs.unified(), Some(&e.aia));
        assert!(unified.client_complete(&graph));

        let mozilla = CompletenessAnalyzer::new(
            &e.checker,
            e.programs.store(ccc_rootstore::RootProgram::Mozilla),
            Some(&e.aia),
        );
        assert!(!mozilla.client_complete(&graph));

        let microsoft = CompletenessAnalyzer::new(
            &e.checker,
            e.programs.store(ccc_rootstore::RootProgram::Microsoft),
            Some(&e.aia),
        );
        assert!(microsoft.client_complete(&graph));
    }

    #[test]
    fn untrusted_self_signed_terminal_not_client_complete() {
        let e = env();
        let gov_idx = e
            .universe
            .roots
            .iter()
            .position(|r| !r.trusted)
            .unwrap();
        let leaf = leaf_under(&e, gov_idx, 0, "gov.sim");
        let int = &e.universe.roots[gov_idx].intermediates[0];
        let served = vec![leaf, int.cert.clone(), e.universe.roots[gov_idx].cert.clone()];
        let graph = TopologyGraph::build(&served, &e.checker);
        let analyzer =
            CompletenessAnalyzer::new(&e.checker, e.programs.unified(), Some(&e.aia));
        // Structurally complete (root included)…
        assert_eq!(
            analyzer.analyze_graph(&graph).completeness,
            Completeness::CompleteWithRoot
        );
        // …but no client trusts it.
        assert!(!analyzer.client_complete(&graph));
    }

    #[test]
    fn empty_list_is_incomplete() {
        let e = env();
        let analyzer =
            CompletenessAnalyzer::new(&e.checker, e.programs.unified(), Some(&e.aia));
        let a = analyzer.analyze(&[]);
        assert_eq!(a.completeness, Completeness::Incomplete);
    }
}
