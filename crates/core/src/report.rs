//! Plain-text table rendering for experiment reports.
//!
//! The bench binaries print tables shaped like the paper's; this module
//! keeps the formatting in one place (column alignment, percentage
//! rendering) so every table looks consistent.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are free-form strings).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of string slices.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:<w$}");
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Format `count` with a percentage of `total`: `1,234 (5.6%)`.
///
/// An empty bucket (`total == 0`, so necessarily `count == 0`) renders as
/// `0 (0.0%)` rather than propagating the `0/0` division into `NaN%` —
/// the lint histogram hits this whenever a rule never fired.
pub fn count_pct(count: usize, total: usize) -> String {
    let pct = if total == 0 {
        0.0
    } else {
        100.0 * count as f64 / total as f64
    };
    format!("{} ({pct:.1}%)", group_thousands(count))
}

/// Thousands separators: 1234567 → "1,234,567".
pub fn group_thousands(n: usize) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Check mark / cross rendering for capability tables.
pub fn check(b: bool) -> &'static str {
    if b {
        "Y"
    } else {
        "x"
    }
}

/// One-line rendering of an [`IssuanceChecker`](crate::IssuanceChecker)
/// [`CacheStats`](crate::topology::CacheStats) snapshot, e.g.:
///
/// ```text
/// signature cache: 1,024 lookups, 960 hits (93.8%), 64 verified, 960 verifications saved
/// ```
///
/// Used by the table/figure binaries and the CLI `matrix` command to show
/// how much work the shared sharded cache avoided.
pub fn render_cache_stats(stats: &crate::topology::CacheStats) -> String {
    let mut line = format!(
        "signature cache: {} lookups, {} hits ({:.1}%), {} verified, {} verifications saved",
        group_thousands(stats.lookups as usize),
        group_thousands(stats.hits as usize),
        100.0 * stats.hit_rate(),
        group_thousands(stats.verifications as usize),
        group_thousands(stats.saved() as usize),
    );
    if stats.coalesced_waits > 0 {
        let _ = write!(
            line,
            " ({} coalesced)",
            group_thousands(stats.coalesced_waits as usize)
        );
    }
    // Verify-route breakdown, only when any verification was routed during
    // the window (keeps zero-activity renders — and historical output —
    // unchanged).
    if stats.fixed_base_hits > 0 || stats.cold_multiexps > 0 || stats.tables_built > 0 {
        let _ = write!(
            line,
            "; verify routes: {} table hits, {} cold multi-exps, {} tables built",
            group_thousands(stats.fixed_base_hits as usize),
            group_thousands(stats.cold_multiexps as usize),
            group_thousands(stats.tables_built as usize),
        );
    }
    // Batched-verification breakdown, suffix-only for the same reason:
    // renders with no batch activity (CCC_VERIFY_BATCH=off, or callers
    // that never prefetch) stay byte-identical to historical output.
    if stats.batched_verifies > 0 || stats.batch_flushes > 0 {
        let _ = write!(
            line,
            "; batched: {} checks in {} flushes",
            group_thousands(stats.batched_verifies as usize),
            group_thousands(stats.batch_flushes as usize),
        );
    }
    line
}

/// Two-line rendering of a fused sweep's per-phase wall-time split, in
/// the same one-line-metric style as [`render_cache_stats`]:
///
/// ```text
/// pipeline: 1,000 observation(s) generated once, consumed by 3 pass(es)
/// phase split: generation 1.243s (62.1%) · analysis 0.758s (37.9%)
/// ```
///
/// `generation` is the time spent producing the inputs (corpus
/// observation synthesis, or chain parsing for the CLI), `analysis` the
/// time spent inside the registered passes; both are summed across
/// workers, so they are CPU time on parallel sweeps.
pub fn render_phase_split(
    generation: std::time::Duration,
    analysis: std::time::Duration,
    observations: usize,
    passes: usize,
) -> String {
    let total = (generation + analysis).as_secs_f64();
    let pct = |d: std::time::Duration| {
        if total <= f64::EPSILON {
            0.0
        } else {
            100.0 * d.as_secs_f64() / total
        }
    };
    format!(
        "pipeline: {} observation(s) generated once, consumed by {} pass(es)\n\
         phase split: generation {:.3}s ({:.1}%) · analysis {:.3}s ({:.1}%)",
        group_thousands(observations),
        passes,
        generation.as_secs_f64(),
        pct(generation),
        analysis.as_secs_f64(),
        pct(analysis),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_split_renders_percentages() {
        let text = render_phase_split(
            std::time::Duration::from_millis(750),
            std::time::Duration::from_millis(250),
            1234,
            3,
        );
        assert!(text.contains("1,234 observation(s)"), "{text}");
        assert!(text.contains("consumed by 3 pass(es)"), "{text}");
        assert!(text.contains("generation 0.750s (75.0%)"), "{text}");
        assert!(text.contains("analysis 0.250s (25.0%)"), "{text}");
    }

    #[test]
    fn phase_split_zero_duration_is_finite() {
        let text = render_phase_split(
            std::time::Duration::ZERO,
            std::time::Duration::ZERO,
            0,
            1,
        );
        assert!(text.contains("(0.0%)"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1000), "1,000");
        assert_eq!(group_thousands(906336), "906,336");
        assert_eq!(group_thousands(1234567), "1,234,567");
    }

    #[test]
    fn count_pct_format() {
        assert_eq!(count_pct(838354, 906336), "838,354 (92.5%)");
        // 0/0 must render as a plain zero percentage, not NaN%.
        assert_eq!(count_pct(0, 0), "0 (0.0%)");
        assert_eq!(count_pct(5, 0), "5 (0.0%)");
    }

    #[test]
    fn table_rendering_aligns() {
        let mut t = TextTable::new("Demo", &["Type", "Count"]);
        t.row(&["Duplicate".to_string(), "5,974".to_string()]);
        t.row(&["Reversed".to_string(), "8,566".to_string()]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        let lines: Vec<&str> = r.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("Type"));
        assert!(lines[3].starts_with("Duplicate"));
    }

    #[test]
    fn check_marks() {
        assert_eq!(check(true), "Y");
        assert_eq!(check(false), "x");
    }

    #[test]
    fn cache_stats_line() {
        let stats = crate::topology::CacheStats {
            lookups: 1024,
            hits: 960,
            misses: 64,
            verifications: 64,
            coalesced_waits: 0,
            entries: 64,
            ..Default::default()
        };
        let line = render_cache_stats(&stats);
        assert_eq!(
            line,
            "signature cache: 1,024 lookups, 960 hits (93.8%), 64 verified, \
             960 verifications saved"
        );
        let contended = crate::topology::CacheStats {
            coalesced_waits: 3,
            ..stats
        };
        assert!(render_cache_stats(&contended).ends_with("(3 coalesced)"));
    }

    #[test]
    fn cache_stats_line_with_verify_routes() {
        let stats = crate::topology::CacheStats {
            lookups: 100,
            hits: 40,
            misses: 60,
            verifications: 60,
            coalesced_waits: 0,
            fixed_base_hits: 52,
            cold_multiexps: 8,
            tables_built: 2,
            entries: 60,
            ..Default::default()
        };
        let line = render_cache_stats(&stats);
        assert!(
            line.ends_with("verify routes: 52 table hits, 8 cold multi-exps, 2 tables built"),
            "{line}"
        );
    }

    #[test]
    fn cache_stats_line_with_batching() {
        let stats = crate::topology::CacheStats {
            lookups: 1200,
            hits: 200,
            misses: 1000,
            verifications: 1000,
            batched_verifies: 960,
            batch_flushes: 40,
            entries: 1000,
            ..Default::default()
        };
        let line = render_cache_stats(&stats);
        assert!(
            line.ends_with("; batched: 960 checks in 40 flushes"),
            "{line}"
        );
        // The suffix disappears entirely with zero batch activity.
        let quiet = crate::topology::CacheStats {
            batched_verifies: 0,
            batch_flushes: 0,
            ..stats
        };
        assert!(!render_cache_stats(&quiet).contains("batched"));
    }
}
