//! The eight TLS client profiles (paper §3.2 / Table 9).
//!
//! Each profile instantiates the [`crate::builder::ChainEngine`] with the
//! capability knobs the paper measured for that client. Path-length
//! figures are the paper's measured limits; ">52" entries (OpenSSL,
//! Chrome, Safari) are modeled as unlimited.

use crate::builder::{
    BuilderPolicy, ChainEngine, KidPriority, RetryPolicy, SearchScope, ValidityPriority,
};

/// The clients the paper evaluates: four TLS libraries, four browsers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ClientKind {
    /// OpenSSL 3.0.x.
    OpenSsl,
    /// GnuTLS 3.7.x.
    GnuTls,
    /// MbedTLS 3.5.x.
    MbedTls,
    /// Windows CryptoAPI (schannel).
    CryptoApi,
    /// Chrome (Chromium network stack).
    Chrome,
    /// Microsoft Edge (Chromium engine, its own limit settings).
    Edge,
    /// Safari (Security.framework).
    Safari,
    /// Firefox (NSS + intermediate preloading/caching).
    Firefox,
}

impl ClientKind {
    /// All clients in the paper's Table 9 column order.
    pub const ALL: [ClientKind; 8] = [
        ClientKind::OpenSsl,
        ClientKind::GnuTls,
        ClientKind::MbedTls,
        ClientKind::CryptoApi,
        ClientKind::Chrome,
        ClientKind::Edge,
        ClientKind::Safari,
        ClientKind::Firefox,
    ];

    /// The four libraries.
    pub const LIBRARIES: [ClientKind; 4] = [
        ClientKind::OpenSsl,
        ClientKind::GnuTls,
        ClientKind::MbedTls,
        ClientKind::CryptoApi,
    ];

    /// The four browsers.
    pub const BROWSERS: [ClientKind; 4] = [
        ClientKind::Chrome,
        ClientKind::Edge,
        ClientKind::Safari,
        ClientKind::Firefox,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ClientKind::OpenSsl => "OpenSSL",
            ClientKind::GnuTls => "GnuTLS",
            ClientKind::MbedTls => "MbedTLS",
            ClientKind::CryptoApi => "CryptoAPI",
            ClientKind::Chrome => "Chrome",
            ClientKind::Edge => "Microsoft Edge",
            ClientKind::Safari => "Safari",
            ClientKind::Firefox => "Firefox",
        }
    }

    /// Whether this client is a browser (vs a library).
    pub fn is_browser(&self) -> bool {
        matches!(
            self,
            ClientKind::Chrome | ClientKind::Edge | ClientKind::Safari | ClientKind::Firefox
        )
    }

    /// The Table 9 policy for this client.
    pub fn policy(&self) -> BuilderPolicy {
        let base = BuilderPolicy {
            name: self.name().to_string(),
            scope: SearchScope::FullList,
            aia: false,
            use_intermediate_cache: false,
            validity_priority: ValidityPriority::NoPreference,
            kid_priority: KidPriority::NoPreference,
            key_usage_priority: false,
            basic_constraints_priority: false,
            trusted_first: false,
            max_path_len: None,
            max_list_len: None,
            allow_self_signed_leaf: false,
            backtracking: false,
            partial_validation: false,
            max_candidate_expansions: 4096,
            retry: RetryPolicy::none(),
        };
        match self {
            ClientKind::OpenSsl => BuilderPolicy {
                validity_priority: ValidityPriority::FirstValid,
                kid_priority: KidPriority::MatchOrAbsentFirst,
                // Prefers trusted candidates when building (X509_STORE
                // lookup precedes untrusted list search).
                trusted_first: true,
                ..base
            },
            ClientKind::GnuTls => BuilderPolicy {
                kid_priority: KidPriority::MatchOrAbsentFirst,
                max_list_len: Some(16),
                ..base
            },
            ClientKind::MbedTls => BuilderPolicy {
                scope: SearchScope::ForwardOnly,
                validity_priority: ValidityPriority::FirstValid,
                key_usage_priority: true,
                basic_constraints_priority: true,
                max_path_len: Some(10),
                allow_self_signed_leaf: true,
                partial_validation: true,
                ..base
            },
            ClientKind::CryptoApi => BuilderPolicy {
                aia: true,
                validity_priority: ValidityPriority::MostRecent,
                kid_priority: KidPriority::MatchFirst,
                key_usage_priority: true,
                basic_constraints_priority: true,
                trusted_first: true,
                max_path_len: Some(13),
                backtracking: true,
                // One AIA try per URI, no backoff — the schannel fetcher
                // defers retries to its offline URL cache, which a single
                // handshake never revisits.
                retry: RetryPolicy::none(),
                ..base
            },
            ClientKind::Chrome => BuilderPolicy {
                aia: true,
                validity_priority: ValidityPriority::MostRecent,
                kid_priority: KidPriority::MatchFirst,
                key_usage_priority: true,
                basic_constraints_priority: true,
                trusted_first: true,
                backtracking: true,
                retry: RetryPolicy::retrying(3, 200, 30_000),
                ..base
            },
            ClientKind::Edge => BuilderPolicy {
                aia: true,
                validity_priority: ValidityPriority::MostRecent,
                kid_priority: KidPriority::MatchFirst,
                key_usage_priority: true,
                basic_constraints_priority: true,
                trusted_first: true,
                max_path_len: Some(21),
                backtracking: true,
                retry: RetryPolicy::retrying(3, 200, 30_000),
                ..base
            },
            ClientKind::Safari => BuilderPolicy {
                aia: true,
                validity_priority: ValidityPriority::MostRecent,
                kid_priority: KidPriority::MatchOrAbsentFirst,
                key_usage_priority: true,
                basic_constraints_priority: true,
                trusted_first: true,
                allow_self_signed_leaf: true,
                backtracking: true,
                retry: RetryPolicy::retrying(2, 500, 15_000),
                ..base
            },
            ClientKind::Firefox => BuilderPolicy {
                use_intermediate_cache: true,
                validity_priority: ValidityPriority::FirstValid,
                key_usage_priority: true,
                basic_constraints_priority: true,
                trusted_first: true,
                max_path_len: Some(8),
                backtracking: true,
                ..base
            },
        }
    }

    /// An engine ready to process served lists.
    pub fn engine(&self) -> ChainEngine {
        ChainEngine::new(self.policy())
    }
}

/// All eight engines in Table 9 order.
pub fn client_profiles() -> Vec<(ClientKind, ChainEngine)> {
    ClientKind::ALL.iter().map(|&k| (k, k.engine())).collect()
}

/// The Table 1 comparison data: which capability dimensions BetterTLS
/// (2020) covers versus this work.
pub fn capability_coverage() -> Vec<(&'static str, &'static str, bool, bool)> {
    // (group, capability, bettertls, this_work)
    vec![
        ("Basic Capabilities", "ORDER_REORGANIZATION", false, true),
        ("Basic Capabilities", "REDUNDANCY_ELIMINATION", false, true),
        ("Basic Capabilities", "AIA_COMPLETION", false, true),
        ("Priority Preferences", "EXPIRED", true, true),
        ("Priority Preferences", "NAME_CONSTRAINTS", true, false),
        ("Priority Preferences", "BAD_EKU", true, false),
        ("Priority Preferences", "MISS_BASIC_CONSTRAINTS", true, false),
        ("Priority Preferences", "NOT_A_CA", true, false),
        ("Priority Preferences", "DEPRECATED_CRYPTO", true, false),
        ("Priority Preferences", "BAD_PATH_LENGTH", false, true),
        ("Priority Preferences", "BAD_KID", false, true),
        ("Priority Preferences", "BAD_KU", false, true),
        ("Restriction Settings", "PATH_LENGTH_CONSTRAINT", false, true),
        ("Restriction Settings", "SELF_SIGNED_LEAF_CERT", false, true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table9_headlines() {
        // AIA: CryptoAPI + the three non-Firefox browsers only.
        let aia: Vec<bool> = ClientKind::ALL.iter().map(|k| k.policy().aia).collect();
        assert_eq!(aia, vec![false, false, false, true, true, true, true, false]);

        // Reorder: everyone except MbedTLS.
        let reorder: Vec<bool> = ClientKind::ALL
            .iter()
            .map(|k| k.policy().scope == SearchScope::FullList)
            .collect();
        assert_eq!(reorder, vec![true, true, false, true, true, true, true, true]);

        // Self-signed leaf: MbedTLS and Safari only.
        let ssl: Vec<bool> = ClientKind::ALL
            .iter()
            .map(|k| k.policy().allow_self_signed_leaf)
            .collect();
        assert_eq!(ssl, vec![false, false, true, false, false, false, true, false]);

        // Path limits.
        assert_eq!(ClientKind::OpenSsl.policy().max_path_len, None);
        assert_eq!(ClientKind::GnuTls.policy().max_list_len, Some(16));
        assert_eq!(ClientKind::MbedTls.policy().max_path_len, Some(10));
        assert_eq!(ClientKind::CryptoApi.policy().max_path_len, Some(13));
        assert_eq!(ClientKind::Edge.policy().max_path_len, Some(21));
        assert_eq!(ClientKind::Firefox.policy().max_path_len, Some(8));

        // Backtracking: CryptoAPI and the browsers.
        let bt: Vec<bool> = ClientKind::ALL
            .iter()
            .map(|k| k.policy().backtracking)
            .collect();
        assert_eq!(bt, vec![false, false, false, true, true, true, true, true]);

        // AIA retries: Chrome/Edge/Safari only; no-AIA profiles and
        // CryptoAPI are single-shot.
        let retries: Vec<bool> = ClientKind::ALL
            .iter()
            .map(|k| k.policy().retry.retries())
            .collect();
        assert_eq!(
            retries,
            vec![false, false, false, false, true, true, true, false]
        );
        assert_eq!(ClientKind::Chrome.policy().retry, RetryPolicy::retrying(3, 200, 30_000));
        assert_eq!(ClientKind::Edge.policy().retry, RetryPolicy::retrying(3, 200, 30_000));
        assert_eq!(ClientKind::Safari.policy().retry, RetryPolicy::retrying(2, 500, 15_000));
        assert_eq!(ClientKind::CryptoApi.policy().retry, RetryPolicy::none());
    }

    #[test]
    fn library_browser_partition() {
        for k in ClientKind::LIBRARIES {
            assert!(!k.is_browser());
        }
        for k in ClientKind::BROWSERS {
            assert!(k.is_browser());
        }
        assert_eq!(ClientKind::ALL.len(), 8);
    }

    #[test]
    fn firefox_uses_cache_not_aia() {
        let p = ClientKind::Firefox.policy();
        assert!(!p.aia);
        assert!(p.use_intermediate_cache);
    }

    #[test]
    fn coverage_table_shape() {
        let rows = capability_coverage();
        assert_eq!(rows.len(), 14);
        let this_work: usize = rows.iter().filter(|r| r.3).count();
        let bettertls: usize = rows.iter().filter(|r| r.2).count();
        assert_eq!(this_work, 9, "paper tests 9 capabilities");
        assert_eq!(bettertls, 6);
    }
}
