//! Issuance topology graph over a served certificate list (paper §3.1,
//! Figure 2).
//!
//! Nodes are the certificates at their served positions; duplicates keep
//! only the first occurrence (relabelled `Cp[i]`); directed edges run from
//! issuer to subject. All paths are enumerated starting from the leaf
//! (`C0`) and walking issuer-ward.

use ccc_x509::{Certificate, CertificateFingerprint};
use std::collections::HashMap;
use std::sync::Mutex;

/// Memoizing checker for the paper's issuance relationship.
///
/// Certificate A issues certificate B when:
/// 1. A's public key verifies B's signature, **and**
/// 2. A's subject matches B's issuer, **or** A's SKID matches B's AKID
///    (either identity criterion suffices when the other's fields are
///    absent — the paper's flexibility rule).
///
/// Signature verification is the expensive step, so results are memoized
/// by certificate fingerprint pair; corpora share certificates heavily.
#[derive(Debug, Default)]
pub struct IssuanceChecker {
    sig_cache: Mutex<HashMap<(CertificateFingerprint, CertificateFingerprint), bool>>,
}

impl IssuanceChecker {
    /// Fresh checker with an empty cache.
    pub fn new() -> IssuanceChecker {
        IssuanceChecker::default()
    }

    /// Identity-level match: subject/issuer DN equality, or SKID/AKID
    /// equality when both sides carry the fields.
    pub fn identity_match(issuer: &Certificate, subject: &Certificate) -> bool {
        let dn_match = issuer.subject() == subject.issuer();
        let kid_match = match (issuer.skid(), subject.akid_key_id()) {
            (Some(skid), Some(akid)) => skid == akid,
            _ => false,
        };
        dn_match || kid_match
    }

    /// Cached signature check: does `issuer`'s key verify `subject`?
    pub fn signature_verifies(&self, issuer: &Certificate, subject: &Certificate) -> bool {
        let key = (issuer.fingerprint(), subject.fingerprint());
        if let Some(&hit) = self.sig_cache.lock().unwrap().get(&key) {
            return hit;
        }
        let result = subject.verify_signature_with(issuer.public_key());
        self.sig_cache.lock().unwrap().insert(key, result);
        result
    }

    /// The full issuance relationship (criteria 1 ∧ (2 ∨ 3)).
    pub fn issues(&self, issuer: &Certificate, subject: &Certificate) -> bool {
        Self::identity_match(issuer, subject) && self.signature_verifies(issuer, subject)
    }

    /// Number of memoized signature checks.
    pub fn cache_size(&self) -> usize {
        self.sig_cache.lock().unwrap().len()
    }
}

/// A node in the topology graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Served position of the first occurrence of this certificate.
    pub position: usize,
    /// The certificate.
    pub cert: Certificate,
    /// Served positions of later bit-identical occurrences.
    pub duplicate_positions: Vec<usize>,
}

impl Node {
    /// Paper-style label: `C3`, or `C3[2]` for the second duplicate.
    pub fn label(&self) -> String {
        format!("C{}", self.position)
    }
}

/// The issuance topology of a served certificate list.
#[derive(Clone, Debug)]
pub struct TopologyGraph {
    /// Unique certificates in order of first appearance.
    pub nodes: Vec<Node>,
    /// `edges[i]` lists node indices that node `i` ISSUES (children).
    pub issued_by_me: Vec<Vec<usize>>,
    /// `issuers_of[i]` lists node indices that issue node `i` (parents).
    pub issuers_of: Vec<Vec<usize>>,
    /// Total served length including duplicates.
    pub served_len: usize,
}

impl TopologyGraph {
    /// Build the graph for a served list. Self-edges (self-signed
    /// certificates issuing themselves) are not recorded as edges.
    pub fn build(served: &[Certificate], checker: &IssuanceChecker) -> TopologyGraph {
        let mut nodes: Vec<Node> = Vec::new();
        let mut index_of: HashMap<CertificateFingerprint, usize> = HashMap::new();
        for (pos, cert) in served.iter().enumerate() {
            match index_of.get(&cert.fingerprint()) {
                Some(&idx) => nodes[idx].duplicate_positions.push(pos),
                None => {
                    index_of.insert(cert.fingerprint(), nodes.len());
                    nodes.push(Node {
                        position: pos,
                        cert: cert.clone(),
                        duplicate_positions: Vec::new(),
                    });
                }
            }
        }
        let n = nodes.len();
        let mut issued_by_me = vec![Vec::new(); n];
        let mut issuers_of = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                if checker.issues(&nodes[i].cert, &nodes[j].cert) {
                    issued_by_me[i].push(j);
                    issuers_of[j].push(i);
                }
            }
        }
        TopologyGraph {
            nodes,
            issued_by_me,
            issuers_of,
            served_len: served.len(),
        }
    }

    /// Number of unique certificates.
    pub fn unique_len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the served list contained bit-identical duplicates.
    pub fn has_duplicates(&self) -> bool {
        self.nodes.iter().any(|n| !n.duplicate_positions.is_empty())
    }

    /// Total count of duplicate occurrences (served length minus unique).
    pub fn duplicate_count(&self) -> usize {
        self.served_len - self.unique_len()
    }

    /// Node indices reachable from the leaf (node 0) by repeatedly moving
    /// to issuers — i.e. every certificate that participates in some
    /// issuer chain of the leaf, plus the leaf itself.
    pub fn relevant_set(&self) -> Vec<bool> {
        let mut relevant = vec![false; self.nodes.len()];
        if self.nodes.is_empty() {
            return relevant;
        }
        let mut stack = vec![0usize];
        relevant[0] = true;
        while let Some(i) = stack.pop() {
            for &parent in &self.issuers_of[i] {
                if !relevant[parent] {
                    relevant[parent] = true;
                    stack.push(parent);
                }
            }
        }
        relevant
    }

    /// Node indices of certificates unconnected to the leaf's issuance
    /// ancestry (the paper's "irrelevant certificates").
    pub fn irrelevant_nodes(&self) -> Vec<usize> {
        self.relevant_set()
            .iter()
            .enumerate()
            .filter(|(_, &r)| !r)
            .map(|(i, _)| i)
            .collect()
    }

    /// Enumerate all simple issuer paths from the leaf: each path is a list
    /// of node indices starting at node 0 and extending issuer-ward until
    /// no further (non-repeating) issuer exists.
    ///
    /// Cross-signed loops are cut by the simple-path constraint. The number
    /// of paths is capped at `max_paths` as a safety valve for adversarial
    /// topologies (the paper's real-world maximum was 3).
    pub fn leaf_paths(&self, max_paths: usize) -> Vec<Vec<usize>> {
        let mut paths = Vec::new();
        if self.nodes.is_empty() {
            return paths;
        }
        let mut current = vec![0usize];
        let mut on_path = vec![false; self.nodes.len()];
        on_path[0] = true;
        self.extend_path(&mut current, &mut on_path, &mut paths, max_paths);
        paths
    }

    fn extend_path(
        &self,
        current: &mut Vec<usize>,
        on_path: &mut Vec<bool>,
        paths: &mut Vec<Vec<usize>>,
        max_paths: usize,
    ) {
        if paths.len() >= max_paths {
            return;
        }
        let tip = *current.last().expect("path never empty");
        let next: Vec<usize> = self.issuers_of[tip]
            .iter()
            .copied()
            .filter(|&p| !on_path[p])
            .collect();
        if next.is_empty() {
            paths.push(current.clone());
            return;
        }
        for parent in next {
            current.push(parent);
            on_path[parent] = true;
            self.extend_path(current, on_path, paths, max_paths);
            on_path[parent] = false;
            current.pop();
        }
    }

    /// True when a path (as node indices) is in reversed served order at
    /// any link: an issuer certificate appears *before* its subject.
    pub fn path_is_reversed(&self, path: &[usize]) -> bool {
        path.windows(2).any(|w| {
            let subject_pos = self.nodes[w[0]].position;
            let issuer_pos = self.nodes[w[1]].position;
            issuer_pos < subject_pos
        })
    }

    /// Render the graph in a compact text form for reports:
    /// `C0 <- C1 <- C2; irrelevant: C3` style.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let paths = self.leaf_paths(16);
        for (i, path) in paths.iter().enumerate() {
            if i > 0 {
                out.push_str("; ");
            }
            let labels: Vec<String> = path.iter().map(|&n| self.nodes[n].label()).collect();
            out.push_str(&labels.join(" <- "));
        }
        let irrelevant = self.irrelevant_nodes();
        if !irrelevant.is_empty() {
            let labels: Vec<String> = irrelevant.iter().map(|&n| self.nodes[n].label()).collect();
            out.push_str(&format!(" | irrelevant: {}", labels.join(", ")));
        }
        if self.has_duplicates() {
            out.push_str(&format!(" | duplicates: {}", self.duplicate_count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::{CertificateBuilder, DistinguishedName};

    struct Fixture {
        leaf: Certificate,
        int1: Certificate,
        int2: Certificate,
        root: Certificate,
        unrelated: Certificate,
        cross: Certificate,
    }

    fn fixture() -> Fixture {
        let g = Group::simulation_256();
        let root_kp = KeyPair::from_seed(g, b"topo-root");
        let int1_kp = KeyPair::from_seed(g, b"topo-int1");
        let int2_kp = KeyPair::from_seed(g, b"topo-int2");
        let leaf_kp = KeyPair::from_seed(g, b"topo-leaf");
        let other_kp = KeyPair::from_seed(g, b"topo-other");
        let cross_root_kp = KeyPair::from_seed(g, b"topo-cross-root");

        let root_dn = DistinguishedName::cn("Topo Root");
        let int2_dn = DistinguishedName::cn("Topo Int 2");
        let int1_dn = DistinguishedName::cn("Topo Int 1");
        let cross_root_dn = DistinguishedName::cn("Topo Cross Root");

        let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
        let int2 = CertificateBuilder::ca_profile(int2_dn.clone()).issued_by(
            &int2_kp.public,
            root_dn.clone(),
            &root_kp,
        );
        let int1 = CertificateBuilder::ca_profile(int1_dn.clone()).issued_by(
            &int1_kp.public,
            int2_dn.clone(),
            &int2_kp,
        );
        let leaf = CertificateBuilder::leaf_profile("topo.sim").issued_by(
            &leaf_kp.public,
            int1_dn.clone(),
            &int1_kp,
        );
        let unrelated = CertificateBuilder::ca_profile(DistinguishedName::cn("Unrelated"))
            .self_signed(&other_kp);
        // Cross-signed variant of int2 under a different root.
        let cross_root =
            CertificateBuilder::ca_profile(cross_root_dn.clone()).self_signed(&cross_root_kp);
        let cross = CertificateBuilder::ca_profile(int2_dn.clone()).issued_by(
            &int2_kp.public,
            cross_root_dn,
            &cross_root_kp,
        );
        let _ = cross_root;
        Fixture {
            leaf,
            int1,
            int2,
            root,
            unrelated,
            cross,
        }
    }

    #[test]
    fn issuance_checker_criteria() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        assert!(checker.issues(&f.int1, &f.leaf));
        assert!(checker.issues(&f.int2, &f.int1));
        assert!(checker.issues(&f.root, &f.int2));
        assert!(!checker.issues(&f.root, &f.leaf));
        assert!(!checker.issues(&f.leaf, &f.root));
        assert!(!checker.issues(&f.unrelated, &f.leaf));
        // Memoization kicks in.
        assert!(checker.cache_size() > 0);
    }

    #[test]
    fn compliant_chain_single_increasing_path() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        let served = vec![f.leaf.clone(), f.int1.clone(), f.int2.clone(), f.root.clone()];
        let g = TopologyGraph::build(&served, &checker);
        assert_eq!(g.unique_len(), 4);
        assert!(!g.has_duplicates());
        assert!(g.irrelevant_nodes().is_empty());
        let paths = g.leaf_paths(16);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0], vec![0, 1, 2, 3]);
        assert!(!g.path_is_reversed(&paths[0]));
    }

    #[test]
    fn reversed_chain_detected() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        // Reversed tail: leaf, root, int2, int1.
        let served = vec![f.leaf.clone(), f.root.clone(), f.int2.clone(), f.int1.clone()];
        let g = TopologyGraph::build(&served, &checker);
        let paths = g.leaf_paths(16);
        assert_eq!(paths.len(), 1);
        assert!(g.path_is_reversed(&paths[0]));
    }

    #[test]
    fn duplicates_relabelled() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        let served = vec![
            f.leaf.clone(),
            f.int1.clone(),
            f.int1.clone(),
            f.int2.clone(),
        ];
        let g = TopologyGraph::build(&served, &checker);
        assert_eq!(g.unique_len(), 3);
        assert!(g.has_duplicates());
        assert_eq!(g.duplicate_count(), 1);
        assert_eq!(g.nodes[1].duplicate_positions, vec![2]);
    }

    #[test]
    fn irrelevant_cert_detected() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        let served = vec![f.leaf.clone(), f.unrelated.clone(), f.int1.clone(), f.int2.clone()];
        let g = TopologyGraph::build(&served, &checker);
        let irrelevant = g.irrelevant_nodes();
        assert_eq!(irrelevant.len(), 1);
        assert_eq!(g.nodes[irrelevant[0]].cert, f.unrelated);
    }

    #[test]
    fn cross_sign_creates_multiple_paths() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        // leaf <- int1 <- {int2, cross}: two paths (root completes one).
        let served = vec![
            f.leaf.clone(),
            f.int1.clone(),
            f.cross.clone(),
            f.int2.clone(),
            f.root.clone(),
        ];
        let g = TopologyGraph::build(&served, &checker);
        let paths = g.leaf_paths(16);
        assert_eq!(paths.len(), 2);
        // The path through the cross cert: cross appears before int2, so
        // one of them is fine and the ordering question is about links.
        let reversed: Vec<bool> = paths.iter().map(|p| g.path_is_reversed(p)).collect();
        // leaf(0) <- int1(1) <- cross(2) is increasing; leaf <- int1 <-
        // int2(3) <- root(4) is increasing too.
        assert!(reversed.iter().any(|&r| !r));
    }

    #[test]
    fn empty_and_single_lists() {
        let checker = IssuanceChecker::new();
        let g = TopologyGraph::build(&[], &checker);
        assert_eq!(g.unique_len(), 0);
        assert!(g.leaf_paths(16).is_empty());

        let f = fixture();
        let g = TopologyGraph::build(&[f.leaf.clone()], &checker);
        assert_eq!(g.leaf_paths(16), vec![vec![0]]);
        assert!(g.irrelevant_nodes().is_empty());
    }

    #[test]
    fn self_signed_has_no_self_edge() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        let g = TopologyGraph::build(&[f.root.clone()], &checker);
        assert!(g.issuers_of[0].is_empty());
        assert_eq!(g.leaf_paths(16), vec![vec![0]]);
    }

    #[test]
    fn describe_is_readable() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        let served = vec![f.leaf.clone(), f.int1.clone(), f.unrelated.clone()];
        let g = TopologyGraph::build(&served, &checker);
        let desc = g.describe();
        assert!(desc.contains("C0 <- C1"), "{desc}");
        assert!(desc.contains("irrelevant: C2"), "{desc}");
    }
}
