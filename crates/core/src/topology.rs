//! Issuance topology graph over a served certificate list (paper §3.1,
//! Figure 2).
//!
//! Nodes are the certificates at their served positions; duplicates keep
//! only the first occurrence (relabelled `Cp[i]`); directed edges run from
//! issuer to subject. All paths are enumerated starting from the leaf
//! (`C0`) and walking issuer-ward.

use ccc_crypto::{
    verify_batch, verify_batch_policy, verify_route_stats, BatchItem, BatchPolicy, Signature,
    VerifyRouteStats,
};
// Sync primitives come from ccc-mc: plain std re-exports in normal
// builds, scheduler-instrumented shims under the `model-check` feature
// (enforced by ci/check_raw_sync.sh).
use ccc_mc::{AtomicU64, Mutex, OnceLock};
use ccc_x509::{Certificate, CertificateFingerprint, FingerprintBuildHasher, FingerprintMap};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A (issuer fingerprint, subject fingerprint) cache key.
type PairKey = (CertificateFingerprint, CertificateFingerprint);

/// One lock-striped slice of the signature cache.
///
/// The value is an `Arc<OnceLock<bool>>` rather than a plain `bool` so the
/// shard lock is held only for the map operation: the expensive Schnorr
/// verification itself runs *outside* the lock, and `OnceLock` guarantees
/// it runs at most once per pair even when several threads miss on the
/// same key simultaneously (losers block on the winner's result instead of
/// recomputing).
#[derive(Debug)]
struct Shard {
    /// Keys are SHA-256 fingerprint pairs, so the map skips SipHash in
    /// favour of the cheap fingerprint fold (`FingerprintBuildHasher`).
    map: Mutex<HashMap<PairKey, Arc<OnceLock<bool>>, FingerprintBuildHasher>>,
}

impl Shard {
    /// Explicit construction (not `derive(Default)`) so the lock class
    /// the model checker reports for every shard stripe is this site.
    fn new() -> Shard {
        Shard {
            map: Mutex::new(HashMap::default()),
        }
    }
}

/// Point-in-time counters from an [`IssuanceChecker`]
/// (see [`IssuanceChecker::snapshot_stats`]).
///
/// Invariants (exact once all worker threads have been joined):
/// - `hits + misses == lookups`
/// - `verifications + coalesced_waits == misses`
/// - `verifications == entries` (each unique pair is verified exactly once)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total `signature_verifies` calls.
    pub lookups: u64,
    /// Lookups answered from a completed cache entry.
    pub hits: u64,
    /// Lookups that did not find a completed entry (`lookups - hits`).
    pub misses: u64,
    /// Signature verifications actually executed (unique pairs).
    pub verifications: u64,
    /// Misses that waited on a verification already in flight on another
    /// thread instead of recomputing (the duplicate work the old
    /// double-lock design performed).
    pub coalesced_waits: u64,
    /// Signature checks routed through a per-key fixed-base table (the
    /// amortized hot path). Counted process-wide since this checker was
    /// created; includes `verify` calls made outside the cache (e.g.
    /// self-signed short-circuits), so it is not bounded by
    /// `verifications`.
    pub fixed_base_hits: u64,
    /// Signature checks routed through Straus joint multi-exponentiation
    /// (the cold path for keys below the promotion threshold).
    pub cold_multiexps: u64,
    /// Per-key fixed-base tables built (once per promoted key per
    /// process).
    pub tables_built: u64,
    /// Signature checks that ran inside a `verify_batch` flush instead of
    /// one-at-a-time (process-wide since this checker was created, like
    /// the route counters).
    pub batched_verifies: u64,
    /// `verify_batch` flushes issued (each covers `batched_verifies /
    /// batch_flushes` checks on average).
    pub batch_flushes: u64,
    /// Memoized pairs currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Signature verifications avoided by memoization.
    pub fn saved(&self) -> u64 {
        self.lookups.saturating_sub(self.verifications)
    }

    /// Fraction of lookups answered from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Counter delta (`self` at a later time minus `earlier`); `entries`
    /// is the later absolute value.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            lookups: self.lookups.saturating_sub(earlier.lookups),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            verifications: self.verifications.saturating_sub(earlier.verifications),
            coalesced_waits: self.coalesced_waits.saturating_sub(earlier.coalesced_waits),
            fixed_base_hits: self.fixed_base_hits.saturating_sub(earlier.fixed_base_hits),
            cold_multiexps: self.cold_multiexps.saturating_sub(earlier.cold_multiexps),
            tables_built: self.tables_built.saturating_sub(earlier.tables_built),
            batched_verifies: self.batched_verifies.saturating_sub(earlier.batched_verifies),
            batch_flushes: self.batch_flushes.saturating_sub(earlier.batch_flushes),
            entries: self.entries,
        }
    }
}

/// Default shard count (power of two; tuned for up-to-16-thread corpus
/// passes with headroom).
const DEFAULT_SHARDS: usize = 64;

/// Memoizing checker for the paper's issuance relationship.
///
/// Certificate A issues certificate B when:
/// 1. A's public key verifies B's signature, **and**
/// 2. A's subject matches B's issuer, **or** A's SKID matches B's AKID
///    (either identity criterion suffices when the other's fields are
///    absent — the paper's flexibility rule).
///
/// Signature verification is the expensive step, so results are memoized
/// by certificate fingerprint pair; corpora share certificates heavily.
///
/// The cache is **N-way sharded** (one mutex per shard, key → shard by
/// fingerprint bits), so concurrent corpus workers sharing one checker do
/// not serialize on a single lock, and the miss path is
/// **single-acquisition**: the shard lock is taken once to install an
/// in-flight slot, the verification runs outside the lock, and concurrent
/// misses on the same pair coalesce onto one verification (see [`Shard`]).
/// Hit/miss/verification counters are exposed via [`snapshot_stats`]
/// (`IssuanceChecker::snapshot_stats`).
#[derive(Debug)]
pub struct IssuanceChecker {
    shards: Vec<Shard>,
    /// `shards.len() - 1`; shard count is always a power of two.
    mask: u64,
    lookups: AtomicU64,
    hits: AtomicU64,
    verifications: AtomicU64,
    coalesced_waits: AtomicU64,
    /// Process-wide verify-route counters at construction time, so the
    /// route fields this checker reports cover only activity during its
    /// lifetime (the underlying counters are global to the process, like
    /// `keypair_derivations`).
    route_baseline: VerifyRouteStats,
}

impl Default for IssuanceChecker {
    fn default() -> IssuanceChecker {
        IssuanceChecker::with_shards(DEFAULT_SHARDS)
    }
}

impl IssuanceChecker {
    /// Fresh checker with an empty cache and the default shard count.
    pub fn new() -> IssuanceChecker {
        IssuanceChecker::default()
    }

    /// Fresh checker with `shards` lock stripes (rounded up to a power of
    /// two, minimum 1). `with_shards(1)` is the single-mutex baseline the
    /// benches compare against.
    pub fn with_shards(shards: usize) -> IssuanceChecker {
        let count = shards.max(1).next_power_of_two();
        IssuanceChecker {
            shards: (0..count).map(|_| Shard::new()).collect(),
            mask: (count - 1) as u64,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            verifications: AtomicU64::new(0),
            coalesced_waits: AtomicU64::new(0),
            route_baseline: verify_route_stats(),
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Identity-level match: subject/issuer DN equality, or SKID/AKID
    /// equality when both sides carry the fields.
    pub fn identity_match(issuer: &Certificate, subject: &Certificate) -> bool {
        let dn_match = issuer.subject() == subject.issuer();
        let kid_match = match (issuer.skid(), subject.akid_key_id()) {
            (Some(skid), Some(akid)) => skid == akid,
            _ => false,
        };
        dn_match || kid_match
    }

    /// Shard selector: fingerprints are SHA-256 outputs, so any fixed bit
    /// slice is uniformly distributed; mix both halves of the pair so
    /// (A, B) and (B, A) land independently.
    fn shard_for(&self, key: &PairKey) -> &Shard {
        let a = u64::from_le_bytes(key.0 .0[..8].try_into().expect("32-byte fingerprint"));
        let b = u64::from_le_bytes(key.1 .0[8..16].try_into().expect("32-byte fingerprint"));
        let idx = (a ^ b.rotate_left(17)) & self.mask;
        &self.shards[idx as usize]
    }

    /// Cached signature check: does `issuer`'s key verify `subject`?
    pub fn signature_verifies(&self, issuer: &Certificate, subject: &Certificate) -> bool {
        let key = (issuer.fingerprint(), subject.fingerprint());
        // ordering: Relaxed — a pure event counter. fetch_add's atomic RMW
        // alone guarantees no update is lost (the
        // `route_counters_lose_no_updates` model property); nothing reads
        // `lookups` to synchronize with other memory, so no
        // acquire/release pairing is needed.
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_for(&key);

        // Single lock acquisition: either read a completed entry, adopt an
        // in-flight slot, or install a fresh slot to initialize ourselves.
        let slot: Arc<OnceLock<bool>> = {
            let mut map = shard.map.lock().expect("shard lock poisoned");
            match map.get(&key) {
                Some(slot) => {
                    if let Some(&done) = slot.get() {
                        // ordering: Relaxed — event counter; the verdict
                        // itself is published by the OnceLock's internal
                        // acquire/release, not by this counter.
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return done;
                    }
                    Arc::clone(slot)
                }
                None => {
                    let slot = Arc::new(OnceLock::new());
                    map.insert(key, Arc::clone(&slot));
                    slot
                }
            }
        };

        // Miss path, outside the lock. Exactly one thread runs the
        // verification per pair; the rest block here and adopt its result.
        let mut computed = false;
        let result = *slot.get_or_init(|| {
            computed = true;
            // ordering: Relaxed — counts initializer executions. The
            // OnceLock already serializes the closure (exactly one run
            // per slot, checked by the `cache_coalesces_to_one_
            // verification` model property), so the counter needs no
            // ordering of its own.
            self.verifications.fetch_add(1, Ordering::Relaxed);
            subject.verify_signature_with(issuer.public_key())
        });
        if !computed {
            // ordering: Relaxed — event counter for losers of the
            // init race; carries no synchronization.
            self.coalesced_waits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// The full issuance relationship (criteria 1 ∧ (2 ∨ 3)).
    pub fn issues(&self, issuer: &Certificate, subject: &Certificate) -> bool {
        Self::identity_match(issuer, subject) && self.signature_verifies(issuer, subject)
    }

    /// Warm the cache for one served list before the analysis passes
    /// sweep it: enumerate the identity-matched certificate pairs the
    /// topology build will query and verify every not-yet-cached pair
    /// through a single [`verify_batch`] flush (one Pippenger aggregate
    /// instead of per-pair exponentiations). A no-op under
    /// `CCC_VERIFY_BATCH=off`.
    ///
    /// Accounting: prefetch behaves as an **eager lookup** per pair it
    /// claims — the slot install counts one lookup (and therefore one
    /// derived miss), and publishing the verdict runs through the same
    /// computed-flag `get_or_init` as [`signature_verifies`]
    /// (`IssuanceChecker::signature_verifies`), counting one verification
    /// if prefetch's init wins or one coalesced wait if a racing analysis
    /// thread's init won. Pairs already completed or in flight move **no**
    /// counters here (their owner accounts for them), so the
    /// [`CacheStats`] invariants hold exactly under every interleaving,
    /// and `verifications` still equals unique pairs.
    pub fn prefetch_served(&self, served: &[Certificate]) {
        if verify_batch_policy() == BatchPolicy::Off || served.len() < 2 {
            return;
        }
        // Unique certificates in first-appearance order, exactly as the
        // topology build dedups them.
        let mut unique: Vec<&Certificate> = Vec::new();
        let mut seen: FingerprintMap<()> = FingerprintMap::default();
        for cert in served {
            if seen.insert(cert.fingerprint(), ()).is_none() {
                unique.push(cert);
            }
        }
        // Index prospective issuers by subject DN and SKID so pair
        // discovery costs O(certs + matches) instead of the all-pairs
        // DN comparisons that would otherwise dominate small
        // observations (the analyses walk structured chains and never
        // pay that quadratic scan; the prefetch must not either).
        let mut by_subject_dn: HashMap<&ccc_x509::DistinguishedName, Vec<usize>> = HashMap::new();
        let mut by_skid: HashMap<&[u8], Vec<usize>> = HashMap::new();
        for (i, cert) in unique.iter().enumerate() {
            by_subject_dn.entry(cert.subject()).or_default().push(i);
            if let Some(skid) = cert.skid() {
                by_skid.entry(skid).or_default().push(i);
            }
        }
        // Claim a fresh slot for every identity-matched ordered pair
        // nobody has touched yet (one shard-lock acquisition per pair,
        // like the miss path of `signature_verifies`).
        let mut claimed: Vec<(usize, usize, Arc<OnceLock<bool>>)> = Vec::new();
        let mut candidates: Vec<usize> = Vec::new();
        for (j, subject) in unique.iter().enumerate() {
            candidates.clear();
            if let Some(dn_hits) = by_subject_dn.get(subject.issuer()) {
                candidates.extend_from_slice(dn_hits);
            }
            if let Some(kid_hits) = subject.akid_key_id().and_then(|akid| by_skid.get(akid)) {
                for &i in kid_hits {
                    if !candidates.contains(&i) {
                        candidates.push(i);
                    }
                }
            }
            candidates.sort_unstable();
            for &i in &candidates {
                let issuer = &unique[i];
                if i == j {
                    continue;
                }
                debug_assert!(
                    Self::identity_match(issuer, subject),
                    "index candidates must satisfy identity_match"
                );
                let key = (issuer.fingerprint(), subject.fingerprint());
                let shard = self.shard_for(&key);
                {
                    let mut map = shard.map.lock().expect("shard lock poisoned");
                    if map.contains_key(&key) {
                        // Completed or in flight: left entirely to its
                        // owner, no counter movement.
                        continue;
                    }
                    map.insert(key, {
                        let slot = Arc::new(OnceLock::new());
                        claimed.push((i, j, Arc::clone(&slot)));
                        slot
                    });
                }
                // ordering: Relaxed — pure event counter, exactly as in
                // `signature_verifies` (the slot itself is published by
                // the shard mutex).
                self.lookups.fetch_add(1, Ordering::Relaxed);
            }
        }
        if claimed.is_empty() {
            return;
        }
        // Parse the claimed pairs' signatures; unparseable ones are the
        // scalar path's `verify_signature_with` early rejection (verdict
        // false, no arithmetic, no promotion-ordinal movement).
        let parsed: Vec<Option<Signature>> = claimed
            .iter()
            .map(|&(i, j, _)| {
                Signature::from_bytes(
                    unique[j].signature_bytes(),
                    unique[i].public_key().group().scalar_len,
                )
            })
            .collect();
        let mut batch_of: Vec<usize> = Vec::new();
        let mut items: Vec<BatchItem<'_>> = Vec::new();
        for (c, sig) in parsed.iter().enumerate() {
            if let Some(sig) = sig {
                let (i, j, _) = claimed[c];
                items.push((unique[i].public_key(), unique[j].tbs_der(), sig));
                batch_of.push(c);
            }
        }
        let outcome = verify_batch(&items);
        let mut verdicts = vec![false; claimed.len()];
        for (b, &c) in batch_of.iter().enumerate() {
            verdicts[c] = outcome.verdicts[b];
        }
        // Publish through the standard computed-flag pattern: a racing
        // analysis thread may have initialized our slot first (it then
        // counted the verification; we count the coalesced wait — the
        // verdict is identical either way, batch == scalar).
        for ((_, _, slot), verdict) in claimed.iter().zip(&verdicts) {
            let mut computed = false;
            slot.get_or_init(|| {
                computed = true;
                // ordering: Relaxed — counts initializer executions, same
                // as the `signature_verifies` miss path.
                self.verifications.fetch_add(1, Ordering::Relaxed);
                *verdict
            });
            if !computed {
                // ordering: Relaxed — event counter for losers of the
                // init race; carries no synchronization.
                self.coalesced_waits.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of memoized signature checks.
    pub fn cache_size(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().expect("shard lock poisoned").len())
            .sum()
    }

    /// Point-in-time counter snapshot. Exact once concurrent users have
    /// been joined; monotone but possibly momentarily inconsistent while
    /// other threads are mid-lookup.
    pub fn snapshot_stats(&self) -> CacheStats {
        CacheStats {
            entries: self.cache_size(),
            ..self.counters()
        }
    }

    /// Counter-only snapshot: atomics only, no shard locks (`entries` is
    /// left 0). Used on the per-build hot path where taking every shard
    /// lock just to count entries would add contention.
    pub(crate) fn counters(&self) -> CacheStats {
        // ordering: Relaxed — monotone counters read individually; the
        // snapshot is only promised exact after worker threads are
        // joined (the join edge orders the final values), so there is
        // nothing for a stronger load to synchronize with here.
        let lookups = self.lookups.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        let routes = verify_route_stats().since(&self.route_baseline);
        CacheStats {
            lookups,
            hits,
            misses: lookups.saturating_sub(hits),
            verifications: self.verifications.load(Ordering::Relaxed),
            coalesced_waits: self.coalesced_waits.load(Ordering::Relaxed),
            fixed_base_hits: routes.fixed_base_hits,
            cold_multiexps: routes.cold_multiexps,
            tables_built: routes.tables_built,
            batched_verifies: routes.batched_verifies,
            batch_flushes: routes.batch_flushes,
            entries: 0,
        }
    }
}

/// A node in the topology graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Served position of the first occurrence of this certificate.
    pub position: usize,
    /// The certificate.
    pub cert: Certificate,
    /// Served positions of later bit-identical occurrences.
    pub duplicate_positions: Vec<usize>,
}

impl Node {
    /// Paper-style label: `C3`, or `C3[2]` for the second duplicate.
    pub fn label(&self) -> String {
        format!("C{}", self.position)
    }
}

/// The issuance topology of a served certificate list.
#[derive(Clone, Debug)]
pub struct TopologyGraph {
    /// Unique certificates in order of first appearance.
    pub nodes: Vec<Node>,
    /// `edges[i]` lists node indices that node `i` ISSUES (children).
    pub issued_by_me: Vec<Vec<usize>>,
    /// `issuers_of[i]` lists node indices that issue node `i` (parents).
    pub issuers_of: Vec<Vec<usize>>,
    /// Total served length including duplicates.
    pub served_len: usize,
}

impl TopologyGraph {
    /// Build the graph for a served list. Self-edges (self-signed
    /// certificates issuing themselves) are not recorded as edges.
    pub fn build(served: &[Certificate], checker: &IssuanceChecker) -> TopologyGraph {
        let mut nodes: Vec<Node> = Vec::new();
        let mut index_of: FingerprintMap<usize> = FingerprintMap::default();
        for (pos, cert) in served.iter().enumerate() {
            match index_of.get(&cert.fingerprint()) {
                Some(&idx) => nodes[idx].duplicate_positions.push(pos),
                None => {
                    index_of.insert(cert.fingerprint(), nodes.len());
                    nodes.push(Node {
                        position: pos,
                        cert: cert.clone(),
                        duplicate_positions: Vec::new(),
                    });
                }
            }
        }
        let n = nodes.len();
        let mut issued_by_me = vec![Vec::new(); n];
        let mut issuers_of = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                if checker.issues(&nodes[i].cert, &nodes[j].cert) {
                    issued_by_me[i].push(j);
                    issuers_of[j].push(i);
                }
            }
        }
        TopologyGraph {
            nodes,
            issued_by_me,
            issuers_of,
            served_len: served.len(),
        }
    }

    /// Number of unique certificates.
    pub fn unique_len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the served list contained bit-identical duplicates.
    pub fn has_duplicates(&self) -> bool {
        self.nodes.iter().any(|n| !n.duplicate_positions.is_empty())
    }

    /// Total count of duplicate occurrences (served length minus unique).
    pub fn duplicate_count(&self) -> usize {
        self.served_len - self.unique_len()
    }

    /// Node indices reachable from the leaf (node 0) by repeatedly moving
    /// to issuers — i.e. every certificate that participates in some
    /// issuer chain of the leaf, plus the leaf itself.
    pub fn relevant_set(&self) -> Vec<bool> {
        let mut relevant = vec![false; self.nodes.len()];
        if self.nodes.is_empty() {
            return relevant;
        }
        let mut stack = vec![0usize];
        relevant[0] = true;
        while let Some(i) = stack.pop() {
            for &parent in &self.issuers_of[i] {
                if !relevant[parent] {
                    relevant[parent] = true;
                    stack.push(parent);
                }
            }
        }
        relevant
    }

    /// Node indices of certificates unconnected to the leaf's issuance
    /// ancestry (the paper's "irrelevant certificates").
    pub fn irrelevant_nodes(&self) -> Vec<usize> {
        self.relevant_set()
            .iter()
            .enumerate()
            .filter(|(_, &r)| !r)
            .map(|(i, _)| i)
            .collect()
    }

    /// Enumerate all simple issuer paths from the leaf: each path is a list
    /// of node indices starting at node 0 and extending issuer-ward until
    /// no further (non-repeating) issuer exists.
    ///
    /// Cross-signed loops are cut by the simple-path constraint. The number
    /// of paths is capped at `max_paths` as a safety valve for adversarial
    /// topologies (the paper's real-world maximum was 3).
    pub fn leaf_paths(&self, max_paths: usize) -> Vec<Vec<usize>> {
        let mut paths = Vec::new();
        if self.nodes.is_empty() {
            return paths;
        }
        let mut current = vec![0usize];
        let mut on_path = vec![false; self.nodes.len()];
        on_path[0] = true;
        self.extend_path(&mut current, &mut on_path, &mut paths, max_paths);
        paths
    }

    fn extend_path(
        &self,
        current: &mut Vec<usize>,
        on_path: &mut Vec<bool>,
        paths: &mut Vec<Vec<usize>>,
        max_paths: usize,
    ) {
        if paths.len() >= max_paths {
            return;
        }
        let tip = *current.last().expect("path never empty");
        let next: Vec<usize> = self.issuers_of[tip]
            .iter()
            .copied()
            .filter(|&p| !on_path[p])
            .collect();
        if next.is_empty() {
            paths.push(current.clone());
            return;
        }
        for parent in next {
            current.push(parent);
            on_path[parent] = true;
            self.extend_path(current, on_path, paths, max_paths);
            on_path[parent] = false;
            current.pop();
        }
    }

    /// True when a path (as node indices) is in reversed served order at
    /// any link: an issuer certificate appears *before* its subject.
    pub fn path_is_reversed(&self, path: &[usize]) -> bool {
        path.windows(2).any(|w| {
            let subject_pos = self.nodes[w[0]].position;
            let issuer_pos = self.nodes[w[1]].position;
            issuer_pos < subject_pos
        })
    }

    /// Render the graph in a compact text form for reports:
    /// `C0 <- C1 <- C2; irrelevant: C3` style.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let paths = self.leaf_paths(16);
        for (i, path) in paths.iter().enumerate() {
            if i > 0 {
                out.push_str("; ");
            }
            let labels: Vec<String> = path.iter().map(|&n| self.nodes[n].label()).collect();
            out.push_str(&labels.join(" <- "));
        }
        let irrelevant = self.irrelevant_nodes();
        if !irrelevant.is_empty() {
            let labels: Vec<String> = irrelevant.iter().map(|&n| self.nodes[n].label()).collect();
            out.push_str(&format!(" | irrelevant: {}", labels.join(", ")));
        }
        if self.has_duplicates() {
            out.push_str(&format!(" | duplicates: {}", self.duplicate_count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::{CertificateBuilder, DistinguishedName};

    struct Fixture {
        leaf: Certificate,
        int1: Certificate,
        int2: Certificate,
        root: Certificate,
        unrelated: Certificate,
        cross: Certificate,
    }

    fn fixture() -> Fixture {
        let g = Group::simulation_256();
        let root_kp = KeyPair::from_seed(g, b"topo-root");
        let int1_kp = KeyPair::from_seed(g, b"topo-int1");
        let int2_kp = KeyPair::from_seed(g, b"topo-int2");
        let leaf_kp = KeyPair::from_seed(g, b"topo-leaf");
        let other_kp = KeyPair::from_seed(g, b"topo-other");
        let cross_root_kp = KeyPair::from_seed(g, b"topo-cross-root");

        let root_dn = DistinguishedName::cn("Topo Root");
        let int2_dn = DistinguishedName::cn("Topo Int 2");
        let int1_dn = DistinguishedName::cn("Topo Int 1");
        let cross_root_dn = DistinguishedName::cn("Topo Cross Root");

        let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
        let int2 = CertificateBuilder::ca_profile(int2_dn.clone()).issued_by(
            &int2_kp.public,
            root_dn.clone(),
            &root_kp,
        );
        let int1 = CertificateBuilder::ca_profile(int1_dn.clone()).issued_by(
            &int1_kp.public,
            int2_dn.clone(),
            &int2_kp,
        );
        let leaf = CertificateBuilder::leaf_profile("topo.sim").issued_by(
            &leaf_kp.public,
            int1_dn.clone(),
            &int1_kp,
        );
        let unrelated = CertificateBuilder::ca_profile(DistinguishedName::cn("Unrelated"))
            .self_signed(&other_kp);
        // Cross-signed variant of int2 under a different root.
        let cross_root =
            CertificateBuilder::ca_profile(cross_root_dn.clone()).self_signed(&cross_root_kp);
        let cross = CertificateBuilder::ca_profile(int2_dn.clone()).issued_by(
            &int2_kp.public,
            cross_root_dn,
            &cross_root_kp,
        );
        let _ = cross_root;
        Fixture {
            leaf,
            int1,
            int2,
            root,
            unrelated,
            cross,
        }
    }

    #[test]
    fn issuance_checker_criteria() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        assert!(checker.issues(&f.int1, &f.leaf));
        assert!(checker.issues(&f.int2, &f.int1));
        assert!(checker.issues(&f.root, &f.int2));
        assert!(!checker.issues(&f.root, &f.leaf));
        assert!(!checker.issues(&f.leaf, &f.root));
        assert!(!checker.issues(&f.unrelated, &f.leaf));
        // Memoization kicks in.
        assert!(checker.cache_size() > 0);
    }

    #[test]
    fn compliant_chain_single_increasing_path() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        let served = vec![f.leaf.clone(), f.int1.clone(), f.int2.clone(), f.root.clone()];
        let g = TopologyGraph::build(&served, &checker);
        assert_eq!(g.unique_len(), 4);
        assert!(!g.has_duplicates());
        assert!(g.irrelevant_nodes().is_empty());
        let paths = g.leaf_paths(16);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0], vec![0, 1, 2, 3]);
        assert!(!g.path_is_reversed(&paths[0]));
    }

    #[test]
    fn reversed_chain_detected() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        // Reversed tail: leaf, root, int2, int1.
        let served = vec![f.leaf.clone(), f.root.clone(), f.int2.clone(), f.int1.clone()];
        let g = TopologyGraph::build(&served, &checker);
        let paths = g.leaf_paths(16);
        assert_eq!(paths.len(), 1);
        assert!(g.path_is_reversed(&paths[0]));
    }

    #[test]
    fn duplicates_relabelled() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        let served = vec![
            f.leaf.clone(),
            f.int1.clone(),
            f.int1.clone(),
            f.int2.clone(),
        ];
        let g = TopologyGraph::build(&served, &checker);
        assert_eq!(g.unique_len(), 3);
        assert!(g.has_duplicates());
        assert_eq!(g.duplicate_count(), 1);
        assert_eq!(g.nodes[1].duplicate_positions, vec![2]);
    }

    #[test]
    fn irrelevant_cert_detected() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        let served = vec![f.leaf.clone(), f.unrelated.clone(), f.int1.clone(), f.int2.clone()];
        let g = TopologyGraph::build(&served, &checker);
        let irrelevant = g.irrelevant_nodes();
        assert_eq!(irrelevant.len(), 1);
        assert_eq!(g.nodes[irrelevant[0]].cert, f.unrelated);
    }

    #[test]
    fn cross_sign_creates_multiple_paths() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        // leaf <- int1 <- {int2, cross}: two paths (root completes one).
        let served = vec![
            f.leaf.clone(),
            f.int1.clone(),
            f.cross.clone(),
            f.int2.clone(),
            f.root.clone(),
        ];
        let g = TopologyGraph::build(&served, &checker);
        let paths = g.leaf_paths(16);
        assert_eq!(paths.len(), 2);
        // The path through the cross cert: cross appears before int2, so
        // one of them is fine and the ordering question is about links.
        let reversed: Vec<bool> = paths.iter().map(|p| g.path_is_reversed(p)).collect();
        // leaf(0) <- int1(1) <- cross(2) is increasing; leaf <- int1 <-
        // int2(3) <- root(4) is increasing too.
        assert!(reversed.iter().any(|&r| !r));
    }

    #[test]
    fn empty_and_single_lists() {
        let checker = IssuanceChecker::new();
        let g = TopologyGraph::build(&[], &checker);
        assert_eq!(g.unique_len(), 0);
        assert!(g.leaf_paths(16).is_empty());

        let f = fixture();
        let g = TopologyGraph::build(std::slice::from_ref(&f.leaf), &checker);
        assert_eq!(g.leaf_paths(16), vec![vec![0]]);
        assert!(g.irrelevant_nodes().is_empty());
    }

    #[test]
    fn cache_stats_since_saturates_on_fresher_baseline() {
        // Regression: diffing an older snapshot against a fresher
        // baseline (swapped snapshot order in a caller) must clamp every
        // counter delta to zero instead of wrapping toward u64::MAX.
        // `entries` carries the later absolute value by contract.
        let f = fixture();
        let checker = IssuanceChecker::new();
        let before = checker.snapshot_stats();
        let _ = TopologyGraph::build(&[f.leaf.clone(), f.int1.clone(), f.root.clone()], &checker);
        let after = checker.snapshot_stats();
        assert!(after.lookups > before.lookups, "build did no lookups");
        let wrong_order = before.since(&after);
        assert_eq!(wrong_order.lookups, 0);
        assert_eq!(wrong_order.hits, 0);
        assert_eq!(wrong_order.misses, 0);
        assert_eq!(wrong_order.verifications, 0);
        assert_eq!(wrong_order.coalesced_waits, 0);
        assert_eq!(wrong_order.tables_built, 0);
        assert_eq!(wrong_order.batched_verifies, 0);
        assert_eq!(wrong_order.batch_flushes, 0);
        // `entries` is the receiver's absolute value, i.e. `before`'s.
        assert_eq!(wrong_order.entries, before.entries);
    }

    #[test]
    fn self_signed_has_no_self_edge() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        let g = TopologyGraph::build(std::slice::from_ref(&f.root), &checker);
        assert!(g.issuers_of[0].is_empty());
        assert_eq!(g.leaf_paths(16), vec![vec![0]]);
    }

    #[test]
    fn prefetch_served_preserves_invariants_graph_and_policy_gate() {
        use ccc_crypto::{set_verify_batch_policy, BatchPolicy};
        let f = fixture();
        let served = vec![
            f.leaf.clone(),
            f.int1.clone(),
            f.int1.clone(), // duplicate: prefetch must dedupe like the build
            f.int2.clone(),
            f.root.clone(),
            f.unrelated.clone(),
        ];

        // Off: prefetch is a strict no-op (policy mutations stay inside
        // this one sequential test; every other assertion in this module
        // holds under any policy).
        set_verify_batch_policy(BatchPolicy::Off);
        let off_checker = IssuanceChecker::new();
        off_checker.prefetch_served(&served);
        assert_eq!(off_checker.cache_size(), 0);
        assert_eq!(off_checker.snapshot_stats().lookups, 0);

        set_verify_batch_policy(BatchPolicy::Auto);
        let warm = IssuanceChecker::new();
        warm.prefetch_served(&served);
        let after_prefetch = warm.snapshot_stats();
        // Every claimed pair was looked up, missed, and verified once.
        assert!(after_prefetch.lookups > 0);
        assert_eq!(after_prefetch.hits, 0);
        assert_eq!(after_prefetch.verifications, after_prefetch.misses);
        assert_eq!(after_prefetch.verifications as usize, after_prefetch.entries);
        assert!(after_prefetch.batch_flushes >= 1);

        // The graph built on the warmed cache is identical to a cold
        // build, and its lookups are now all hits.
        let warm_graph = TopologyGraph::build(&served, &warm);
        let cold = IssuanceChecker::new();
        let cold_graph = TopologyGraph::build(&served, &cold);
        assert_eq!(warm_graph.issued_by_me, cold_graph.issued_by_me);
        assert_eq!(warm_graph.issuers_of, cold_graph.issuers_of);
        let warm_stats = warm.snapshot_stats();
        let cold_stats = cold.snapshot_stats();
        // Prefetch covered exactly the pairs the build queries: no new
        // verifications, and the counter invariants still hold.
        assert_eq!(warm_stats.verifications, after_prefetch.verifications);
        assert_eq!(warm_stats.verifications, cold_stats.verifications);
        assert_eq!(warm_stats.hits + warm_stats.misses, warm_stats.lookups);
        assert_eq!(
            warm_stats.verifications + warm_stats.coalesced_waits,
            warm_stats.misses
        );
        assert_eq!(warm_stats.verifications as usize, warm_stats.entries);

        // Re-prefetching a warmed cache moves nothing (all pairs are
        // completed entries now). Compare per-checker counters only: the
        // route fields are process-wide and other tests run concurrently.
        warm.prefetch_served(&served);
        let again = warm.snapshot_stats();
        assert_eq!(again.lookups, warm_stats.lookups);
        assert_eq!(again.hits, warm_stats.hits);
        assert_eq!(again.verifications, warm_stats.verifications);
        assert_eq!(again.coalesced_waits, warm_stats.coalesced_waits);
        assert_eq!(again.entries, warm_stats.entries);
    }

    #[test]
    fn describe_is_readable() {
        let f = fixture();
        let checker = IssuanceChecker::new();
        let served = vec![f.leaf.clone(), f.int1.clone(), f.unrelated.clone()];
        let g = TopologyGraph::build(&served, &checker);
        let desc = g.describe();
        assert!(desc.contains("C0 <- C1"), "{desc}");
        assert!(desc.contains("irrelevant: C2"), "{desc}");
    }
}
