//! Aggregate server-side compliance verdict (paper §3.1's three rules).

use crate::completeness::{Completeness, CompletenessAnalysis, CompletenessAnalyzer};
use crate::leaf::{classify_leaf_placement, LeafPlacement};
use crate::order::{analyze_order_with_graph, OrderAnalysis};
use crate::topology::{IssuanceChecker, TopologyGraph};
use ccc_x509::Certificate;

/// The individual non-compliance findings (a chain may exhibit several).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum NonCompliance {
    /// The leaf is not correctly placed first (Table 3 lower rows).
    LeafMisplaced,
    /// Bit-identical duplicate certificates (Table 5).
    DuplicateCertificates,
    /// Certificates unrelated to the leaf's chain (Table 5).
    IrrelevantCertificates,
    /// More than one candidate path (Table 5).
    MultiplePaths,
    /// An issuer precedes its subject (Table 5).
    ReversedSequence,
    /// Missing intermediate certificates (Table 7).
    IncompleteChain,
}

impl NonCompliance {
    /// Paper row label.
    pub fn label(&self) -> &'static str {
        match self {
            NonCompliance::LeafMisplaced => "Leaf Misplaced",
            NonCompliance::DuplicateCertificates => "Duplicate Certificates",
            NonCompliance::IrrelevantCertificates => "Irrelevant Certificates",
            NonCompliance::MultiplePaths => "Multiple Paths",
            NonCompliance::ReversedSequence => "Reversed Sequences",
            NonCompliance::IncompleteChain => "Incomplete Chain",
        }
    }
}

/// Complete compliance report for one (domain, served list) observation.
#[derive(Clone, Debug)]
pub struct ComplianceReport {
    /// Table 3 class.
    pub leaf_placement: LeafPlacement,
    /// Table 5 analysis.
    pub order: OrderAnalysis,
    /// Table 7 analysis.
    pub completeness: CompletenessAnalysis,
    /// All findings.
    pub findings: Vec<NonCompliance>,
}

impl ComplianceReport {
    /// True when the deployment satisfies all three structural rules.
    pub fn is_compliant(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run the full server-side analysis for one observation.
pub fn analyze_compliance(
    domain: &str,
    served: &[Certificate],
    checker: &IssuanceChecker,
    completeness_analyzer: &CompletenessAnalyzer<'_>,
) -> ComplianceReport {
    let graph = TopologyGraph::build(served, checker);
    analyze_compliance_with_graph(domain, served, &graph, completeness_analyzer)
}

/// [`analyze_compliance`] against a topology graph the caller already
/// built for the same served list. The fused pipeline computes the graph
/// once per observation and shares it across passes; results are
/// identical to [`analyze_compliance`], which delegates here.
pub fn analyze_compliance_with_graph(
    domain: &str,
    served: &[Certificate],
    graph: &TopologyGraph,
    completeness_analyzer: &CompletenessAnalyzer<'_>,
) -> ComplianceReport {
    let leaf_placement = classify_leaf_placement(domain, served);
    let order = analyze_order_with_graph(graph);
    let completeness = completeness_analyzer.analyze_graph(graph);

    let mut findings = Vec::new();
    // Only *incorrect placement* violates rule 1; the "Other" class
    // (test/appliance certificates with no host-shaped identity) is
    // reviewed but not counted by the paper.
    if matches!(
        leaf_placement,
        LeafPlacement::IncorrectlyPlacedMatched | LeafPlacement::IncorrectlyPlacedMismatched
    ) {
        findings.push(NonCompliance::LeafMisplaced);
    }
    if order.has_duplicates() {
        findings.push(NonCompliance::DuplicateCertificates);
    }
    if order.has_irrelevant() {
        findings.push(NonCompliance::IrrelevantCertificates);
    }
    if order.has_multiple_paths() {
        findings.push(NonCompliance::MultiplePaths);
    }
    if order.has_reversed() {
        findings.push(NonCompliance::ReversedSequence);
    }
    if completeness.completeness == Completeness::Incomplete {
        findings.push(NonCompliance::IncompleteChain);
    }
    ComplianceReport {
        leaf_placement,
        order,
        completeness,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_netsim::AiaRepository;
    use ccc_rootstore::{CaUniverse, RootPrograms};

    #[test]
    fn compliant_deployment_has_no_findings() {
        let universe = CaUniverse::default_with_seed(31);
        let programs = RootPrograms::from_universe(&universe);
        let aia = AiaRepository::new(universe.aia_publications());
        let checker = IssuanceChecker::new();
        let analyzer = CompletenessAnalyzer::new(&checker, programs.unified(), Some(&aia));

        let int = &universe.roots[0].intermediates[0];
        let kp = ccc_crypto::KeyPair::from_seed(ccc_crypto::Group::simulation_256(), b"cmp-leaf");
        let leaf = ccc_x509::CertificateBuilder::leaf_profile("ok.sim")
            .aia_ca_issuers(int.aia_uri.clone())
            .issued_by(&kp.public, int.cert.subject().clone(), &int.keypair);
        let served = vec![leaf, int.cert.clone()];

        let report = analyze_compliance("ok.sim", &served, &checker, &analyzer);
        assert!(report.is_compliant(), "{:?}", report.findings);
        assert_eq!(report.leaf_placement, LeafPlacement::CorrectlyPlacedMatched);
    }

    #[test]
    fn reversed_and_incomplete_detected_together() {
        let universe = CaUniverse::default_with_seed(31);
        let programs = RootPrograms::from_universe(&universe);
        let aia = AiaRepository::new(universe.aia_publications());
        let checker = IssuanceChecker::new();
        let analyzer = CompletenessAnalyzer::new(&checker, programs.unified(), Some(&aia));

        let int = &universe.roots[4].intermediates[0]; // GoGetSSL-style
        let root = &universe.roots[4];
        let kp = ccc_crypto::KeyPair::from_seed(ccc_crypto::Group::simulation_256(), b"cmp-rev");
        let leaf = ccc_x509::CertificateBuilder::leaf_profile("rev.sim")
            .aia_ca_issuers(int.aia_uri.clone())
            .issued_by(&kp.public, int.cert.subject().clone(), &int.keypair);
        // leaf, root, intermediate: reversed tail.
        let served = vec![leaf, root.cert.clone(), int.cert.clone()];
        let report = analyze_compliance("rev.sim", &served, &checker, &analyzer);
        assert!(report.findings.contains(&NonCompliance::ReversedSequence));
        assert!(!report.findings.contains(&NonCompliance::IncompleteChain));
        assert!(!report.is_compliant());

        // Lone leaf: incomplete.
        let int2 = &universe.roots[1].intermediates[0];
        let kp2 = ccc_crypto::KeyPair::from_seed(ccc_crypto::Group::simulation_256(), b"cmp-inc");
        let lone = ccc_x509::CertificateBuilder::leaf_profile("inc.sim")
            .aia_ca_issuers(int2.aia_uri.clone())
            .issued_by(&kp2.public, int2.cert.subject().clone(), &int2.keypair);
        let report = analyze_compliance("inc.sim", &[lone], &checker, &analyzer);
        assert!(report.findings.contains(&NonCompliance::IncompleteChain));
    }
}
