//! Issuance-order compliance analysis (paper §4.2 / Table 5).

use crate::topology::{IssuanceChecker, TopologyGraph};
use ccc_x509::Certificate;

/// Where duplicates occurred within a chain.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DuplicateBreakdown {
    /// Bit-identical copies of the leaf (node 0) certificate.
    pub leaf: usize,
    /// Copies of intermediate (CA, non-self-issued) certificates.
    pub intermediate: usize,
    /// Copies of root (self-issued) certificates.
    pub root: usize,
}

impl DuplicateBreakdown {
    /// Total duplicate occurrences.
    pub fn total(&self) -> usize {
        self.leaf + self.intermediate + self.root
    }
}

/// The order analysis of one served list.
#[derive(Clone, Debug)]
pub struct OrderAnalysis {
    /// Duplicate occurrences by certificate role.
    pub duplicates: DuplicateBreakdown,
    /// Number of certificates with no issuance relation to the leaf.
    pub irrelevant: usize,
    /// Number of simple issuer paths from the leaf.
    pub path_count: usize,
    /// Number of those paths with at least one reversed link.
    pub reversed_paths: usize,
    /// Whether EVERY path is reversed (the paper's "all paths reversed").
    pub all_paths_reversed: bool,
    /// Whether the single path's positions are exactly 0,1,2,… (the strict
    /// RFC 5246 adjacency requirement).
    pub strictly_sequential: bool,
}

impl OrderAnalysis {
    /// True when the served list satisfies the issuance-order requirement:
    /// no duplicates, no irrelevant certificates, a single path, and
    /// strictly sequential positions.
    pub fn is_compliant(&self) -> bool {
        self.duplicates.total() == 0
            && self.irrelevant == 0
            && self.path_count <= 1
            && self.reversed_paths == 0
            && self.strictly_sequential
    }

    /// Paper Table 5 flags (a chain can belong to several rows).
    pub fn has_duplicates(&self) -> bool {
        self.duplicates.total() > 0
    }

    /// Irrelevant-certificates flag.
    pub fn has_irrelevant(&self) -> bool {
        self.irrelevant > 0
    }

    /// Multiple-paths flag.
    pub fn has_multiple_paths(&self) -> bool {
        self.path_count > 1
    }

    /// Reversed-sequence flag.
    pub fn has_reversed(&self) -> bool {
        self.reversed_paths > 0
    }
}

/// Run the order analysis over a served list.
pub fn analyze_order(served: &[Certificate], checker: &IssuanceChecker) -> OrderAnalysis {
    let graph = TopologyGraph::build(served, checker);
    analyze_order_with_graph(&graph)
}

/// Order analysis over a pre-built topology graph.
pub fn analyze_order_with_graph(graph: &TopologyGraph) -> OrderAnalysis {
    let mut duplicates = DuplicateBreakdown::default();
    for (i, node) in graph.nodes.iter().enumerate() {
        let count = node.duplicate_positions.len();
        if count == 0 {
            continue;
        }
        if i == 0 {
            duplicates.leaf += count;
        } else if node.cert.is_self_issued() {
            duplicates.root += count;
        } else {
            duplicates.intermediate += count;
        }
    }

    let irrelevant = graph.irrelevant_nodes().len();
    let paths = graph.leaf_paths(64);
    let reversed: Vec<bool> = paths.iter().map(|p| graph.path_is_reversed(p)).collect();
    let reversed_count = reversed.iter().filter(|&&r| r).count();

    // Strict adjacency: with one path and no noise, positions must be the
    // exact prefix 0,1,2,…; the root MAY be omitted so the path may stop
    // early, but it must cover every served certificate.
    let strictly_sequential = if paths.len() == 1 {
        let p = &paths[0];
        p.iter().enumerate().all(|(i, &n)| graph.nodes[n].position == i)
            && p.len() == graph.served_len
    } else {
        false
    };

    OrderAnalysis {
        duplicates,
        irrelevant,
        path_count: paths.len(),
        reversed_paths: reversed_count,
        all_paths_reversed: !paths.is_empty() && reversed_count == paths.len(),
        strictly_sequential,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::{CertificateBuilder, DistinguishedName};

    struct Chain {
        leaf: Certificate,
        int: Certificate,
        root: Certificate,
        foreign_root: Certificate,
    }

    fn chain() -> Chain {
        let g = Group::simulation_256();
        let root_kp = KeyPair::from_seed(g, b"ord-root");
        let int_kp = KeyPair::from_seed(g, b"ord-int");
        let leaf_kp = KeyPair::from_seed(g, b"ord-leaf");
        let foreign_kp = KeyPair::from_seed(g, b"ord-foreign");
        let root_dn = DistinguishedName::cn("Ord Root");
        let int_dn = DistinguishedName::cn("Ord Int");
        let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
        let int = CertificateBuilder::ca_profile(int_dn.clone()).issued_by(
            &int_kp.public,
            root_dn,
            &root_kp,
        );
        let leaf = CertificateBuilder::leaf_profile("ord.sim").issued_by(
            &leaf_kp.public,
            int_dn,
            &int_kp,
        );
        let foreign_root = CertificateBuilder::ca_profile(DistinguishedName::cn("Foreign"))
            .self_signed(&foreign_kp);
        Chain {
            leaf,
            int,
            root,
            foreign_root,
        }
    }

    #[test]
    fn compliant_chain_passes() {
        let c = chain();
        let checker = IssuanceChecker::new();
        let a = analyze_order(&[c.leaf.clone(), c.int.clone(), c.root.clone()], &checker);
        assert!(a.is_compliant(), "{a:?}");
        // Root omitted is also compliant.
        let a = analyze_order(&[c.leaf.clone(), c.int.clone()], &checker);
        assert!(a.is_compliant(), "{a:?}");
        // Lone leaf is order-compliant (completeness is a separate check).
        let a = analyze_order(std::slice::from_ref(&c.leaf), &checker);
        assert!(a.is_compliant(), "{a:?}");
    }

    #[test]
    fn duplicate_leaf_detected() {
        let c = chain();
        let checker = IssuanceChecker::new();
        let a = analyze_order(
            &[c.leaf.clone(), c.leaf.clone(), c.int.clone()],
            &checker,
        );
        assert!(!a.is_compliant());
        assert_eq!(a.duplicates.leaf, 1);
        assert_eq!(a.duplicates.total(), 1);
        assert!(a.has_duplicates());
    }

    #[test]
    fn duplicate_roles_distinguished() {
        let c = chain();
        let checker = IssuanceChecker::new();
        let a = analyze_order(
            &[
                c.leaf.clone(),
                c.int.clone(),
                c.int.clone(),
                c.root.clone(),
                c.root.clone(),
                c.root.clone(),
            ],
            &checker,
        );
        assert_eq!(a.duplicates.intermediate, 1);
        assert_eq!(a.duplicates.root, 2);
        assert_eq!(a.duplicates.leaf, 0);
    }

    #[test]
    fn irrelevant_detected() {
        let c = chain();
        let checker = IssuanceChecker::new();
        let a = analyze_order(
            &[c.leaf.clone(), c.foreign_root.clone(), c.int.clone()],
            &checker,
        );
        assert!(a.has_irrelevant());
        assert_eq!(a.irrelevant, 1);
        assert!(!a.is_compliant());
    }

    #[test]
    fn reversed_detected() {
        let c = chain();
        let checker = IssuanceChecker::new();
        let a = analyze_order(&[c.leaf.clone(), c.root.clone(), c.int.clone()], &checker);
        assert!(a.has_reversed());
        assert!(a.all_paths_reversed);
        assert!(!a.is_compliant());
    }

    #[test]
    fn gap_in_sequence_not_strictly_sequential() {
        let c = chain();
        let checker = IssuanceChecker::new();
        // leaf, foreign, int, root: single path 0 <- 2 <- 3, not sequential.
        let a = analyze_order(
            &[c.leaf.clone(), c.foreign_root.clone(), c.int.clone(), c.root.clone()],
            &checker,
        );
        assert!(!a.strictly_sequential);
        assert!(!a.is_compliant());
    }

    #[test]
    fn empty_list() {
        let checker = IssuanceChecker::new();
        let a = analyze_order(&[], &checker);
        assert_eq!(a.path_count, 0);
        assert!(!a.has_reversed());
        // Vacuously "ordered" but not a usable chain; strictly_sequential
        // is false because there is no single path.
        assert!(!a.is_compliant());
    }
}
