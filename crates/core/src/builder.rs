//! The client-side certificate path construction engine.
//!
//! One engine, many policies: every client the paper tests is expressed as
//! a [`BuilderPolicy`] whose knobs correspond to the paper's nine
//! capability dimensions (Table 2) plus the backtracking and
//! partial-validation behaviours its §5.2 case studies expose:
//!
//! - **search scope** — `FullList` clients reorder the served list at
//!   will; `ForwardOnly` models MbedTLS's sequential parent scan, which
//!   skips irrelevant certificates (redundancy elimination ✓) but cannot
//!   reach an issuer that appears *before* its subject (order
//!   reorganization ✗, the paper's I-1);
//! - **priority preferences** — KID matching (KP1/KP2), validity (VP1/
//!   VP2), KeyUsage correctness, BasicConstraints path-length fit;
//! - **restriction settings** — constructed-path length limits,
//!   GnuTLS-style *input list* limits (I-2), self-signed-leaf acceptance;
//! - **completion** — AIA fetching (I-4) and Firefox-style intermediate
//!   caching;
//! - **backtracking** — whether a dead end (untrusted root, invalid
//!   candidate) rolls back to try an alternative path (I-3).

use crate::topology::{CacheStats, IssuanceChecker};
use crate::validate::{validate_path, ValidationOptions};
use ccc_asn1::Time;
use ccc_mc::OnceLock;
use ccc_netsim::{AiaTransport, FetchOutcome};
use ccc_rootstore::RootStore;
use ccc_x509::{
    Certificate, CertificateFingerprint, FingerprintBuildHasher, FingerprintMap, FingerprintSet,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

/// Validity preference among candidate issuers (paper VP footnotes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValidityPriority {
    /// "—": no validity-based discrimination.
    NoPreference,
    /// VP1: the first *currently valid* candidate (list order otherwise).
    FirstValid,
    /// VP2: most recent notBefore, then longest validity, among valid.
    MostRecent,
}

/// Key-identifier preference among candidate issuers (paper KP footnotes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KidPriority {
    /// "—": no KID-based discrimination.
    NoPreference,
    /// KP1: match or absence preferred over mismatch.
    MatchOrAbsentFirst,
    /// KP2: match preferred over absence, absence over mismatch.
    MatchFirst,
}

/// How the candidate pool is enumerated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SearchScope {
    /// Consider every (unused) certificate in the pool, ranked by the
    /// policy's priorities.
    FullList,
    /// Consider only certificates at later served positions than the
    /// current one, in served order (the MbedTLS sequential scan).
    ForwardOnly,
}

/// How a client reacts to transient AIA fetch failures.
///
/// All timing is on the *simulated* clock: backoff and latency accumulate
/// into [`BuildStats::sim_latency_ms`], never into wall time, so retry
/// behaviour is deterministic for a given transport and seed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Maximum fetch attempts per URI (≥ 1; 1 = no retries).
    pub max_attempts: u32,
    /// Base backoff charged to the simulated clock after a transient
    /// failure; doubles per retry (`base << (attempt - 1)`, saturating to
    /// the budget remaining so high attempt counts cannot overflow the
    /// shift or overshoot `budget_ms`).
    pub backoff_base_ms: u64,
    /// Total simulated-time budget for one build. Once the build's
    /// simulated clock passes this, further AIA attempts are abandoned
    /// and the build degrades gracefully to its incomplete-chain verdict.
    pub budget_ms: u64,
}

impl RetryPolicy {
    /// No retries, effectively unlimited budget — the behaviour every
    /// profile had before fault injection existed.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
            budget_ms: u64::MAX,
        }
    }

    /// A bounded retry loop with exponential backoff.
    pub fn retrying(max_attempts: u32, backoff_base_ms: u64, budget_ms: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff_base_ms,
            budget_ms,
        }
    }

    /// Whether this policy ever retries.
    pub fn retries(&self) -> bool {
        self.max_attempts > 1
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// A client chain-construction policy.
#[derive(Clone, Debug)]
pub struct BuilderPolicy {
    /// Display name.
    pub name: String,
    /// Candidate enumeration mode.
    pub scope: SearchScope,
    /// AIA caIssuers fetching.
    pub aia: bool,
    /// Use the context's intermediate cache (Firefox).
    pub use_intermediate_cache: bool,
    /// Validity preference.
    pub validity_priority: ValidityPriority,
    /// KID preference.
    pub kid_priority: KidPriority,
    /// Prefer candidates whose KeyUsage permits certificate signing
    /// (correct or absent over incorrect).
    pub key_usage_priority: bool,
    /// Prefer candidates whose BasicConstraints path length admits the
    /// current chain depth.
    pub basic_constraints_priority: bool,
    /// Prefer trusted (root-store) candidates over untrusted ones when
    /// otherwise tied — the paper's §6.2 recommendation.
    pub trusted_first: bool,
    /// Maximum constructed path length in certificates (leaf and root
    /// included); `None` = effectively unlimited (">52").
    pub max_path_len: Option<usize>,
    /// Maximum *served list* length accepted before construction even
    /// starts (the GnuTLS behaviour behind I-2).
    pub max_list_len: Option<usize>,
    /// Whether a self-signed served leaf is accepted for construction.
    pub allow_self_signed_leaf: bool,
    /// Whether dead ends roll back to alternatives.
    pub backtracking: bool,
    /// Validate candidates (signature, validity, CA bits) during
    /// construction and skip failures (the MbedTLS behaviour).
    pub partial_validation: bool,
    /// Safety valve on total candidate expansions.
    pub max_candidate_expansions: usize,
    /// Reaction to transient AIA fetch failures (only relevant when
    /// `aia` is enabled and the transport injects faults).
    pub retry: RetryPolicy,
}

impl BuilderPolicy {
    /// A permissive, fully capable baseline policy (useful in tests and as
    /// an ablation starting point).
    pub fn full_capability(name: impl Into<String>) -> BuilderPolicy {
        BuilderPolicy {
            name: name.into(),
            scope: SearchScope::FullList,
            aia: true,
            use_intermediate_cache: false,
            validity_priority: ValidityPriority::MostRecent,
            kid_priority: KidPriority::MatchFirst,
            key_usage_priority: true,
            basic_constraints_priority: true,
            trusted_first: true,
            max_path_len: None,
            max_list_len: None,
            allow_self_signed_leaf: false,
            backtracking: true,
            partial_validation: false,
            max_candidate_expansions: 4096,
            retry: RetryPolicy::retrying(3, 200, 30_000),
        }
    }
}

/// Errors a client reports when construction or validation fails — the
/// shared vocabulary the differential harness compares across clients.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ClientError {
    /// The server sent no certificates.
    EmptyList,
    /// Served list longer than the client accepts (GnuTLS I-2).
    TooManyCertificates,
    /// The served leaf is self-signed and the client refuses it.
    SelfSignedLeaf,
    /// Construction exceeded the client's path length limit.
    PathLengthExceeded,
    /// No candidate issuer could be found for some certificate
    /// (UNKNOWN_ISSUER / NOT_TRUSTED family).
    NoIssuerFound,
    /// A path was built but terminates at an untrusted root.
    UntrustedRoot,
    /// A certificate in the path is expired.
    Expired,
    /// A certificate in the path is not yet valid.
    NotYetValid,
    /// A signature along the path failed to verify.
    BadSignature,
    /// An intermediate lacks CA basic constraints.
    NotACa,
    /// An issuer's KeyUsage forbids certificate signing.
    BadKeyUsage,
    /// A pathLenConstraint is violated.
    PathLenConstraintViolated,
    /// The leaf does not cover the requested hostname (post-construction
    /// identity check used by the domain-aware differential harness).
    HostnameMismatch,
}

impl ClientError {
    /// Whether the error is a *construction* failure (vs a validation
    /// failure on a constructed path).
    pub fn is_construction_failure(&self) -> bool {
        matches!(
            self,
            ClientError::EmptyList
                | ClientError::TooManyCertificates
                | ClientError::SelfSignedLeaf
                | ClientError::PathLengthExceeded
                | ClientError::NoIssuerFound
        )
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClientError::EmptyList => "empty certificate list",
            ClientError::TooManyCertificates => "too many certificates in list",
            ClientError::SelfSignedLeaf => "self-signed leaf rejected",
            ClientError::PathLengthExceeded => "path length limit exceeded",
            ClientError::NoIssuerFound => "no issuer found (unknown issuer)",
            ClientError::UntrustedRoot => "path terminates at untrusted root",
            ClientError::Expired => "certificate expired",
            ClientError::NotYetValid => "certificate not yet valid",
            ClientError::BadSignature => "signature verification failed",
            ClientError::NotACa => "issuer is not a CA",
            ClientError::BadKeyUsage => "issuer KeyUsage forbids cert signing",
            ClientError::PathLenConstraintViolated => "pathLenConstraint violated",
            ClientError::HostnameMismatch => "hostname mismatch",
        };
        write!(f, "{s}")
    }
}

/// Everything a build needs besides the served list.
#[derive(Clone, Copy, Debug)]
pub struct BuildContext<'a> {
    /// The client's trust store.
    pub store: &'a RootStore,
    /// AIA fetch transport (used only when the policy enables AIA). A
    /// plain [`ccc_netsim::AiaRepository`] is the zero-fault transport;
    /// wrap it in a [`ccc_netsim::FaultyTransport`] to inject latency and
    /// failures. `Some(&repo)` coerces here unchanged.
    pub aia: Option<&'a dyn AiaTransport>,
    /// Intermediate cache contents (used only when the policy enables it).
    pub cache: &'a [Certificate],
    /// The simulated "now" for validity decisions.
    pub now: Time,
    /// Shared memoizing issuance checker.
    pub checker: &'a IssuanceChecker,
}

/// Counters exposed for the efficiency experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Candidate issuers examined.
    pub candidates_considered: usize,
    /// AIA fetches that *returned a certificate* (successes; a
    /// wrong-certificate response counts — the payload arrived even if it
    /// is useless as an issuer).
    pub aia_fetches: usize,
    /// AIA fetch *attempts*, including dead-URI, transient, and corrupt
    /// responses that returned nothing. Always ≥ `aia_fetches`.
    pub aia_attempts: usize,
    /// Transient-failure retries performed (attempts beyond the first,
    /// per URI).
    pub aia_retries: usize,
    /// Simulated milliseconds spent on AIA fetch latency and retry
    /// backoff during this build (the build's simulated clock).
    pub sim_latency_ms: u64,
    /// The retry budget ran out and at least one AIA completion was
    /// abandoned (the build degraded to its incomplete-chain verdict).
    pub aia_budget_exhausted: bool,
    /// Dead ends rolled back.
    pub backtracks: usize,
    /// Shared signature-cache activity during this build (counter delta
    /// from the context's [`IssuanceChecker`]; `entries` is not tracked
    /// per build and stays 0). When the checker is shared across threads
    /// the delta can include concurrent builds' lookups, so treat it as
    /// attribution only for single-threaded use.
    pub cache: CacheStats,
}

/// `ccc-obs` registry handles for the builder counters, registered once
/// per process and bumped after every completed build. All stable: each
/// field aggregates a per-build deterministic quantity (simulated clock,
/// search work), so the totals are bit-identical for a fixed workload at
/// any worker count.
struct BuildMetrics {
    builds: &'static ccc_obs::Counter,
    accepted: &'static ccc_obs::Counter,
    candidates: &'static ccc_obs::Counter,
    backtracks: &'static ccc_obs::Counter,
    aia_attempts: &'static ccc_obs::Counter,
    aia_fetches: &'static ccc_obs::Counter,
    aia_retries: &'static ccc_obs::Counter,
    budget_exhausted: &'static ccc_obs::Counter,
    sim_latency_total: &'static ccc_obs::Counter,
    sim_latency_hist: &'static ccc_obs::Histogram,
}

fn build_metrics() -> &'static BuildMetrics {
    static METRICS: OnceLock<BuildMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = ccc_obs::MetricsRegistry::global();
        BuildMetrics {
            builds: reg.counter("ccc_builder_builds_total", "Builds processed."),
            accepted: reg.counter(
                "ccc_builder_accepted_total",
                "Builds whose client accepted the chain.",
            ),
            candidates: reg.counter(
                "ccc_builder_candidates_total",
                "Candidate issuers examined across all builds.",
            ),
            backtracks: reg.counter(
                "ccc_builder_backtracks_total",
                "Dead ends rolled back across all builds.",
            ),
            aia_attempts: reg.counter(
                "ccc_builder_aia_attempts_total",
                "AIA fetch attempts, including failed ones.",
            ),
            aia_fetches: reg.counter(
                "ccc_builder_aia_fetches_total",
                "AIA fetches that returned a certificate.",
            ),
            aia_retries: reg.counter(
                "ccc_builder_aia_retries_total",
                "Transient-failure retries performed.",
            ),
            budget_exhausted: reg.counter(
                "ccc_builder_aia_budget_exhausted_total",
                "Builds that abandoned AIA completion on budget exhaustion.",
            ),
            sim_latency_total: reg.counter(
                "ccc_builder_sim_latency_ms_total",
                "Simulated milliseconds spent on AIA latency and backoff.",
            ),
            sim_latency_hist: reg.histogram(
                "ccc_builder_sim_latency_ms",
                "Per-build simulated AIA latency in milliseconds.",
            ),
        }
    })
}

/// Publish one finished build's counters to the process-global registry.
/// Relaxed adds only; per-build values are deterministic, so the sums are
/// worker-count invariant.
fn record_build_metrics(stats: &BuildStats, accepted: bool) {
    let m = build_metrics();
    m.builds.inc();
    if accepted {
        m.accepted.inc();
    }
    m.candidates.add(stats.candidates_considered as u64);
    m.backtracks.add(stats.backtracks as u64);
    m.aia_attempts.add(stats.aia_attempts as u64);
    m.aia_fetches.add(stats.aia_fetches as u64);
    m.aia_retries.add(stats.aia_retries as u64);
    if stats.aia_budget_exhausted {
        m.budget_exhausted.inc();
    }
    m.sim_latency_total.add(stats.sim_latency_ms);
    m.sim_latency_hist.observe(stats.sim_latency_ms);
}

/// Force the builder metric families to register (so an exposition dump
/// covers them even before any build ran).
pub fn touch_build_metrics() {
    let _ = build_metrics();
}

/// The result of one client's attempt on one served list.
#[derive(Clone, Debug)]
pub struct BuildOutcome {
    /// The constructed certificate path (leaf first). On failure this is
    /// the deepest path the first (greedy) attempt reached.
    pub path: Vec<Certificate>,
    /// Success, or the error the client would report.
    pub verdict: Result<(), ClientError>,
    /// Work counters.
    pub stats: BuildStats,
}

impl BuildOutcome {
    /// Convenience: did the client accept the chain?
    pub fn accepted(&self) -> bool {
        self.verdict.is_ok()
    }
}

/// Where a candidate issuer certificate came from.
///
/// Replaces the old sentinel scheme that packed provenance into a
/// `list_pos: usize` (`usize::MAX - 1` = cache, `usize::MAX` =
/// store/AIA). [`order_key`](CandidateOrigin::order_key) reproduces the
/// sentinel total order exactly, so candidate ranking is unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateOrigin {
    /// From the served list, at this (deduplicated) position.
    Served {
        /// Position of the first occurrence in the served list.
        list_pos: usize,
    },
    /// From the client's intermediate cache (Firefox-style).
    Cache,
    /// From the trust store.
    Store,
    /// Fetched via the AIA caIssuers URI.
    Aia,
}

impl CandidateOrigin {
    /// Tie-break ordering key: served positions first (in served order),
    /// then cache, then store/AIA (which tie, as under the old sentinels
    /// `usize::MAX - 1` and `usize::MAX`).
    pub fn order_key(self) -> (u8, usize) {
        match self {
            CandidateOrigin::Served { list_pos } => (0, list_pos),
            CandidateOrigin::Cache => (1, 0),
            CandidateOrigin::Store | CandidateOrigin::Aia => (2, 0),
        }
    }
}

/// One candidate issuer under consideration.
#[derive(Clone, Debug)]
struct Candidate {
    cert: Certificate,
    /// Provenance (drives the last-resort ordering tie-break).
    origin: CandidateOrigin,
    /// Exact membership in the trust store.
    trusted: bool,
}

/// The policy-independent part of the candidate pool: the deduplicated
/// served list with trust-store membership resolved.
///
/// Every engine sharing a [`BuildContext`] starts from the *same* base
/// pool (dedup order and trusted flags depend only on the served list and
/// the store), so a caller fanning one observation out to many engines —
/// the differential harness runs eight — can build this once and hand each
/// engine a clone instead of re-hashing and re-probing the store per
/// engine. Certificates are refcounted, so cloning the seed is cheap.
#[derive(Clone, Debug)]
pub(crate) struct PoolSeed {
    pool: Vec<Candidate>,
    seen: FingerprintSet,
}

impl PoolSeed {
    /// Deduplicate the served list and resolve store membership. This is
    /// the single source of truth for base-pool construction; the legacy
    /// per-engine path in [`ChainEngine::process`] routes through it too.
    pub(crate) fn build(served: &[Certificate], ctx: &BuildContext<'_>) -> PoolSeed {
        let mut pool: Vec<Candidate> = Vec::new();
        let mut seen = FingerprintSet::default();
        for (pos, cert) in served.iter().enumerate() {
            if seen.insert(cert.fingerprint()) {
                pool.push(Candidate {
                    trusted: ctx.store.contains(cert),
                    cert: cert.clone(),
                    origin: CandidateOrigin::Served { list_pos: pos },
                });
            }
        }
        PoolSeed { pool, seen }
    }
}

/// Pre-resolved intermediate-cache candidates (origin
/// [`CandidateOrigin::Cache`], trusted flags probed once).
///
/// The cache contents and the store don't change between observations, so
/// a harness can build this once for its lifetime; at use the entries are
/// still filtered against the per-observation `seen` set, reproducing the
/// legacy per-engine loop bit for bit.
#[derive(Clone, Debug, Default)]
pub(crate) struct CachePool {
    entries: Vec<Candidate>,
}

impl CachePool {
    /// Resolve the cache contents against the store.
    pub(crate) fn build(cache: &[Certificate], store: &RootStore) -> CachePool {
        CachePool {
            entries: cache
                .iter()
                .map(|cert| Candidate {
                    trusted: store.contains(cert),
                    cert: cert.clone(),
                    origin: CandidateOrigin::Cache,
                })
                .collect(),
        }
    }
}

/// Per-served-list scratch shared across engines processing the same list
/// under the same [`BuildContext`].
///
/// Every memo here caches a value that is fully determined by certificate
/// contents plus the shared context — never by the engine's policy — so
/// sharing it across engines cannot change any engine's outcome:
///
/// - **store candidates**: the roots related to a given certificate
///   (subject/SKID lookups filtered by identity match) depend only on
///   that certificate and the store;
/// - **base issuer indices**: which base-pool entries identity-match as
///   issuers of a given certificate depends only on the certificates;
/// - **validations**: [`validate_path`] verdicts — every policy validates
///   a finished path under the same (all-checks-on) options, so the
///   verdict is a function of the path, the store, and the clock.
///
/// Keys are certificate fingerprints, so the scratch stays bounded by the
/// certificates a single served list's searches touch; callers drop it
/// with the observation.
#[derive(Debug, Default)]
pub(crate) struct RunScratch {
    store_candidates: RefCell<FingerprintMap<Vec<Candidate>>>,
    base_issuers: RefCell<FingerprintMap<Vec<u32>>>,
    validations:
        RefCell<HashMap<Vec<CertificateFingerprint>, Result<(), ClientError>, FingerprintBuildHasher>>,
}

/// The chain construction engine: a policy plus entry points.
#[derive(Clone, Debug)]
pub struct ChainEngine {
    /// The policy driving this engine.
    pub policy: BuilderPolicy,
}

impl ChainEngine {
    /// Create an engine from a policy.
    pub fn new(policy: BuilderPolicy) -> ChainEngine {
        ChainEngine { policy }
    }

    /// Process a served certificate list: construct a path and validate it.
    pub fn process(&self, served: &[Certificate], ctx: &BuildContext<'_>) -> BuildOutcome {
        let scratch = RunScratch::default();
        let mut stats = BuildStats::default();
        let cache_before = ctx.checker.counters();
        let (path, verdict) = self.process_inner(served, ctx, &mut stats, None, &scratch);
        stats.cache = ctx.checker.counters().since(&cache_before);
        record_build_metrics(&stats, verdict.is_ok());
        BuildOutcome {
            path,
            verdict,
            stats,
        }
    }

    /// [`process`](Self::process) with a pre-built base pool and scratch
    /// shared across engines. Bit-identical to `process`: the seed is
    /// exactly what [`PoolSeed::build`] returns for `(served, ctx)`,
    /// `cache_pool` resolves `ctx.cache` against `ctx.store`, and the
    /// scratch only memoizes (certificate, store)-determined lookups; the
    /// per-engine work that remains is the policy-dependent search itself.
    pub(crate) fn process_with_seed(
        &self,
        served: &[Certificate],
        ctx: &BuildContext<'_>,
        seed: &PoolSeed,
        cache_pool: &CachePool,
        scratch: &RunScratch,
    ) -> BuildOutcome {
        let mut stats = BuildStats::default();
        let cache_before = ctx.checker.counters();
        let (path, verdict) =
            self.process_inner(served, ctx, &mut stats, Some((seed, cache_pool)), scratch);
        stats.cache = ctx.checker.counters().since(&cache_before);
        record_build_metrics(&stats, verdict.is_ok());
        BuildOutcome {
            path,
            verdict,
            stats,
        }
    }

    /// [`process`](Self::process) body; the caller wraps it with the
    /// signature-cache counter delta. With `seed`, the base pool is
    /// borrowed from the shared [`PoolSeed`] instead of rebuilt.
    fn process_inner(
        &self,
        served: &[Certificate],
        ctx: &BuildContext<'_>,
        stats: &mut BuildStats,
        seed: Option<(&PoolSeed, &CachePool)>,
        scratch: &RunScratch,
    ) -> (Vec<Certificate>, Result<(), ClientError>) {
        let p = &self.policy;

        if served.is_empty() {
            return (Vec::new(), Err(ClientError::EmptyList));
        }
        if let Some(limit) = p.max_list_len {
            if served.len() > limit {
                return (Vec::new(), Err(ClientError::TooManyCertificates));
            }
        }
        let leaf = served[0].clone();
        if !p.allow_self_signed_leaf && leaf.is_self_issued() && ctx.checker.signature_verifies(&leaf, &leaf)
        {
            return (vec![leaf], Err(ClientError::SelfSignedLeaf));
        }

        // Candidate pool: the deduplicated served list is the borrowed
        // `base` (built once per served list when seeded), cache and
        // AIA-fetched certificates join the per-engine `extra` overflow.
        // The search iterates base-then-extra, which reproduces the old
        // single-Vec append order exactly.
        let owned_seed;
        let (base, base_seen): (&[Candidate], &FingerprintSet) = match seed {
            Some((s, _)) => (&s.pool, &s.seen),
            None => {
                owned_seed = PoolSeed::build(served, ctx);
                (&owned_seed.pool, &owned_seed.seen)
            }
        };
        let mut extra: Vec<Candidate> = Vec::new();
        let mut seen: Option<FingerprintSet> = None;
        if p.use_intermediate_cache {
            let mut s = base_seen.clone();
            match seed {
                Some((_, cache_pool)) => {
                    for cand in &cache_pool.entries {
                        if s.insert(cand.cert.fingerprint()) {
                            extra.push(cand.clone());
                        }
                    }
                }
                None => {
                    for cert in ctx.cache {
                        if s.insert(cert.fingerprint()) {
                            extra.push(Candidate {
                                trusted: ctx.store.contains(cert),
                                cert: cert.clone(),
                                origin: CandidateOrigin::Cache,
                            });
                        }
                    }
                }
            }
            seen = Some(s);
        }

        let mut search = Search {
            engine: self,
            ctx,
            base,
            base_seen,
            extra,
            seen,
            scratch,
            stats,
            deepest: vec![leaf.clone()],
            first_error: None,
            expansions: 0,
            aia_memo: HashMap::new(),
        };
        let mut on_path = FingerprintSet::default();
        on_path.insert(leaf.fingerprint());
        let mut path = vec![leaf];
        let result = search.dfs(&mut path, &mut on_path, 0);
        let deepest = std::mem::take(&mut search.deepest);
        let first_error = search.first_error;

        match result {
            Some(success_path) => (success_path, Ok(())),
            None => (
                deepest,
                Err(first_error.unwrap_or(ClientError::NoIssuerFound)),
            ),
        }
    }

    /// Validation options implied by this policy.
    fn validation_options(&self) -> ValidationOptions {
        ValidationOptions {
            enforce_key_usage: true,
            enforce_basic_constraints: true,
            enforce_path_len: true,
            check_signatures: true,
            check_validity: true,
        }
    }
}

/// DFS state for one `process` call.
struct Search<'e, 'c, 's> {
    engine: &'e ChainEngine,
    ctx: &'e BuildContext<'c>,
    /// The shared, immutable base pool (deduplicated served list).
    base: &'e [Candidate],
    /// Fingerprints of the base pool (for dedup against additions).
    base_seen: &'e FingerprintSet,
    /// Per-engine pool overflow: cache candidates, then AIA fetches.
    extra: Vec<Candidate>,
    /// `base_seen` ∪ `extra` fingerprints, materialized lazily — only
    /// engines that actually add certificates (cache preload, successful
    /// AIA fetch) pay for the set.
    seen: Option<FingerprintSet>,
    /// Cross-engine memo for (certificate, store)-determined lookups.
    scratch: &'e RunScratch,
    stats: &'s mut BuildStats,
    deepest: Vec<Certificate>,
    first_error: Option<ClientError>,
    expansions: usize,
    /// Per-build AIA memo: URI → resolved candidate (or None for any
    /// failure). Enforces the "once per URI per build" contract — frontier
    /// revisits during backtracking must not re-fetch dead or
    /// wrong-certificate URIs.
    aia_memo: HashMap<String, Option<Candidate>>,
}

impl Search<'_, '_, '_> {
    fn note_error(&mut self, e: ClientError) {
        if self.first_error.is_none() {
            self.first_error = Some(e);
        }
    }

    fn note_depth(&mut self, path: &[Certificate]) {
        if path.len() > self.deepest.len() {
            self.deepest = path.to_vec();
        }
    }

    /// Extend `path`; returns the successful full path if one is found.
    fn dfs(
        &mut self,
        path: &mut Vec<Certificate>,
        on_path: &mut FingerprintSet,
        depth: usize,
    ) -> Option<Vec<Certificate>> {
        let p = &self.engine.policy;
        self.note_depth(path);
        if self.expansions >= p.max_candidate_expansions {
            return None;
        }
        let current = path.last().expect("path non-empty").clone();

        // Terminal checks: trusted anchor reached?
        if self.ctx.store.contains(&current) {
            return self.finish(path, on_path, depth);
        }
        if current.is_self_issued() && self.ctx.checker.signature_verifies(&current, &current) {
            // Untrusted self-signed terminal: dead end.
            self.note_error(ClientError::UntrustedRoot);
            return None;
        }

        // Gather candidates.
        let mut candidates = self.candidates_for(&current, path.len(), on_path);
        if candidates.is_empty() && p.aia {
            if let Some(fetched) = self.try_aia(&current) {
                candidates = vec![fetched];
            }
        }
        if candidates.is_empty() {
            self.note_error(ClientError::NoIssuerFound);
            return None;
        }

        let try_count = if p.backtracking { candidates.len() } else { 1 };
        for cand in candidates.into_iter().take(try_count) {
            self.expansions += 1;
            self.stats.candidates_considered += 1;
            // Path length limit: appending must stay within bounds.
            if let Some(limit) = p.max_path_len {
                if path.len() + 1 > limit {
                    self.note_error(ClientError::PathLengthExceeded);
                    if p.backtracking {
                        self.stats.backtracks += 1;
                        continue;
                    }
                    return None;
                }
            }
            path.push(cand.cert.clone());
            on_path.insert(cand.cert.fingerprint());
            let result = self.dfs(path, on_path, depth + 1);
            on_path.remove(&cand.cert.fingerprint());
            path.pop();
            match result {
                Some(success) => return Some(success),
                None => {
                    if !p.backtracking {
                        return None;
                    }
                    self.stats.backtracks += 1;
                }
            }
        }
        None
    }

    /// Terminal validation once a trusted anchor tops the path.
    ///
    /// [`ChainEngine::validation_options`] is policy-independent (every
    /// profile validates a finished path with all checks on), so the
    /// verdict for a given certificate sequence is shared through the
    /// scratch: engines converging on the same path — the common case in
    /// a differential run — validate it once.
    fn finish(
        &mut self,
        path: &mut [Certificate],
        _on_path: &mut FingerprintSet,
        _depth: usize,
    ) -> Option<Vec<Certificate>> {
        let p = &self.engine.policy;
        let key: Vec<CertificateFingerprint> = path.iter().map(|c| c.fingerprint()).collect();
        let memo_hit = self.scratch.validations.borrow().get(&key).copied();
        let verdict = match memo_hit {
            Some(v) => v,
            None => {
                let opts = self.engine.validation_options();
                let v =
                    validate_path(path, self.ctx.store, self.ctx.now, self.ctx.checker, &opts);
                self.scratch.validations.borrow_mut().insert(key, v);
                v
            }
        };
        match verdict {
            Ok(()) => Some(path.to_vec()),
            Err(e) => {
                self.note_error(e);
                if p.backtracking {
                    // Treat as dead end; caller continues with siblings.
                    None
                } else {
                    None
                }
            }
        }
    }

    /// The candidate pool in append order: shared base, then per-engine
    /// additions (cache preload, AIA fetches).
    fn pool_iter(&self) -> impl Iterator<Item = &Candidate> {
        self.base.iter().chain(self.extra.iter())
    }

    /// Enumerate and rank candidate issuers for `current`.
    fn candidates_for(
        &self,
        current: &Certificate,
        path_len: usize,
        on_path: &FingerprintSet,
    ) -> Vec<Candidate> {
        let p = &self.engine.policy;
        let mut out: Vec<Candidate> = Vec::new();

        match p.scope {
            SearchScope::FullList => {
                // Base-pool identity matches come from the cross-engine
                // memo (index order == pool order); per-engine extras are
                // scanned directly. Together this reproduces the old
                // base-then-extra filtered scan exactly.
                let fp = current.fingerprint();
                if !self.scratch.base_issuers.borrow().contains_key(&fp) {
                    let idxs: Vec<u32> = self
                        .base
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| IssuanceChecker::identity_match(&c.cert, current))
                        .map(|(i, _)| i as u32)
                        .collect();
                    self.scratch.base_issuers.borrow_mut().insert(fp, idxs);
                }
                let memo = self.scratch.base_issuers.borrow();
                for &idx in memo.get(&fp).expect("inserted above") {
                    let cand = &self.base[idx as usize];
                    if on_path.contains(&cand.cert.fingerprint()) {
                        continue;
                    }
                    out.push(cand.clone());
                }
                drop(memo);
                for cand in &self.extra {
                    if on_path.contains(&cand.cert.fingerprint()) {
                        continue;
                    }
                    if IssuanceChecker::identity_match(&cand.cert, current) {
                        out.push(cand.clone());
                    }
                }
            }
            SearchScope::ForwardOnly => {
                // Sequential scan: candidates strictly after the current
                // certificate's served position, in order; the parent test
                // is the signature itself (partial validation).
                let current_key = self
                    .pool_iter()
                    .find(|c| c.cert == *current)
                    .map(|c| c.origin.order_key())
                    .unwrap_or((0, 0));
                for cand in self.pool_iter() {
                    if cand.origin.order_key() <= current_key
                        || on_path.contains(&cand.cert.fingerprint())
                    {
                        continue;
                    }
                    if self.ctx.checker.signature_verifies(&cand.cert, current) {
                        out.push(cand.clone());
                    }
                }
                out.sort_by_key(|c| c.origin.order_key());
            }
        }

        // Trust store candidates: roots whose subject matches the current
        // issuer DN or whose SKID matches the current AKID, filtered down
        // to the ones that actually relate to the current certificate.
        // These depend only on (current, store), so the gathered list is
        // memoized in the cross-engine scratch; the on-path and
        // already-pooled exclusions below stay per call.
        for sc in self.store_candidates_for(current) {
            if on_path.contains(&sc.cert.fingerprint()) {
                continue;
            }
            if out.iter().any(|c| c.cert == sc.cert) {
                continue;
            }
            out.push(sc);
        }

        if p.partial_validation {
            out.retain(|cand| self.partial_ok(cand, current, path_len));
        }

        if p.scope == SearchScope::FullList {
            let now = self.ctx.now;
            let mut keyed: Vec<(CandidateKey, Candidate)> = out
                .into_iter()
                .map(|cand| (self.rank(&cand, current, path_len, now), cand))
                .collect();
            // Stable by key — ties keep enumeration order, exactly as the
            // old index sort did.
            keyed.sort_by(|a, b| a.0.cmp(&b.0));
            out = keyed.into_iter().map(|(_, cand)| cand).collect();
        }
        out
    }

    /// Trust-store candidates related to `current` (subject/SKID matches
    /// that pass the identity check), via the cross-engine memo.
    fn store_candidates_for(&self, current: &Certificate) -> Vec<Candidate> {
        let fp = current.fingerprint();
        if let Some(hit) = self.scratch.store_candidates.borrow().get(&fp) {
            return hit.clone();
        }
        let mut gathered: Vec<Candidate> = Vec::new();
        for root in self.ctx.store.find_by_subject(current.issuer()) {
            gathered.push(Candidate {
                cert: root.clone(),
                origin: CandidateOrigin::Store,
                trusted: true,
            });
        }
        if let Some(akid) = current.akid_key_id() {
            for root in self.ctx.store.find_by_skid(akid) {
                gathered.push(Candidate {
                    cert: root.clone(),
                    origin: CandidateOrigin::Store,
                    trusted: true,
                });
            }
        }
        gathered.retain(|sc| IssuanceChecker::identity_match(&sc.cert, current));
        self.scratch
            .store_candidates
            .borrow_mut()
            .insert(fp, gathered.clone());
        gathered
    }

    /// MbedTLS-style in-construction checks.
    fn partial_ok(&self, cand: &Candidate, current: &Certificate, path_len: usize) -> bool {
        if !self.ctx.checker.signature_verifies(&cand.cert, current) {
            return false;
        }
        if !cand.cert.validity().contains(self.ctx.now) {
            return false;
        }
        if let Some(ku) = cand.cert.key_usage() {
            if !ku.key_cert_sign {
                return false;
            }
        }
        match cand.cert.basic_constraints() {
            Some(bc) => {
                if !bc.ca {
                    return false;
                }
                if let Some(max) = bc.path_len {
                    // Intermediates below the candidate (excluding leaf).
                    if (path_len as i64 - 1) > max as i64 {
                        return false;
                    }
                }
            }
            None => return false,
        }
        true
    }

    fn rank(
        &self,
        cand: &Candidate,
        current: &Certificate,
        path_len: usize,
        now: Time,
    ) -> CandidateKey {
        let p = &self.engine.policy;
        let trusted_rank = if p.trusted_first && cand.trusted { 0 } else { 1 };

        let kid_state = match (current.akid_key_id(), cand.cert.skid()) {
            (Some(akid), Some(skid)) => {
                if akid == skid {
                    0 // match
                } else {
                    2 // mismatch
                }
            }
            (Some(_), None) => 1, // candidate lacks SKID
            (None, _) => 0,       // nothing to compare
        };
        let kid_rank = match p.kid_priority {
            KidPriority::NoPreference => 0,
            KidPriority::MatchOrAbsentFirst => {
                if kid_state == 2 {
                    1
                } else {
                    0
                }
            }
            KidPriority::MatchFirst => kid_state,
        };

        let ku_rank = if p.key_usage_priority {
            match cand.cert.key_usage() {
                Some(ku) if !ku.key_cert_sign => 1,
                _ => 0,
            }
        } else {
            0
        };

        let bc_rank = if p.basic_constraints_priority {
            match cand.cert.basic_constraints() {
                Some(bc) => {
                    let violated = !bc.ca
                        || bc
                            .path_len
                            .is_some_and(|max| (path_len as i64 - 1) > max as i64);
                    if violated {
                        1
                    } else {
                        0
                    }
                }
                None => 1,
            }
        } else {
            0
        };

        let validity = cand.cert.validity();
        let valid_now = validity.contains(now);
        let validity_key: (i64, i64, i64) = match p.validity_priority {
            ValidityPriority::NoPreference => (0, 0, 0),
            ValidityPriority::FirstValid => (if valid_now { 0 } else { 1 }, 0, 0),
            ValidityPriority::MostRecent => {
                if valid_now {
                    (
                        0,
                        -validity.not_before.unix(),
                        -validity.duration_seconds(),
                    )
                } else {
                    (1, 0, 0)
                }
            }
        };

        CandidateKey {
            trusted_rank,
            kid_rank,
            ku_rank,
            bc_rank,
            validity_key,
            origin_key: cand.origin.order_key(),
        }
    }

    /// Fetch the current certificate's AIA issuer (once per URI per build;
    /// fetched certificates join the pool).
    ///
    /// The per-build [`Search::aia_memo`] holds the final resolution for
    /// every URI this build has touched — including failures — so frontier
    /// revisits during backtracking never re-fetch a dead or
    /// wrong-certificate URI.
    fn try_aia(&mut self, current: &Certificate) -> Option<Candidate> {
        let transport = self.ctx.aia?;
        let uri = current.aia_ca_issuers_uri()?;
        if let Some(memoized) = self.aia_memo.get(uri) {
            return memoized.clone();
        }
        let resolved = self.fetch_with_retry(transport, uri, current);
        self.aia_memo.insert(uri.to_string(), resolved.clone());
        resolved
    }

    /// The bounded retry loop behind [`Self::try_aia`]: transient failures
    /// back off exponentially on the simulated clock up to the policy's
    /// attempt limit; dead/corrupt responses fail immediately; exceeding
    /// the per-build budget abandons AIA completion gracefully.
    fn fetch_with_retry(
        &mut self,
        transport: &dyn AiaTransport,
        uri: &str,
        current: &Certificate,
    ) -> Option<Candidate> {
        let retry = self.engine.policy.retry;
        let mut attempt: u32 = 0;
        loop {
            if self.stats.sim_latency_ms >= retry.budget_ms {
                self.stats.aia_budget_exhausted = true;
                return None;
            }
            attempt += 1;
            self.stats.aia_attempts += 1;
            let response = transport.fetch_aia(uri, attempt);
            self.stats.sim_latency_ms =
                self.stats.sim_latency_ms.saturating_add(response.latency_ms);
            match response.outcome {
                FetchOutcome::Success(fetched) => {
                    self.stats.aia_fetches += 1;
                    if !IssuanceChecker::identity_match(&fetched, current)
                        && !self.ctx.checker.signature_verifies(&fetched, current)
                    {
                        // Wrong certificate served: useless as an issuer.
                        return None;
                    }
                    return Some(self.admit_aia_candidate(fetched));
                }
                // Permanent failures: retrying cannot help.
                FetchOutcome::Dead | FetchOutcome::Corrupt => return None,
                FetchOutcome::Transient => {
                    if attempt >= retry.max_attempts {
                        return None;
                    }
                    self.stats.aia_retries += 1;
                    // Exponential backoff on the simulated clock. The
                    // doubling is `base << (attempt - 1)`; `checked_shl`
                    // (plus a shifted-bits-lost check) saturates
                    // pathological attempt counts to the *remaining
                    // budget* instead of wrapping the shift — a wrapped
                    // backoff corrupted `sim_latency_ms` and made the
                    // budget gate fire with a bogus overshoot.
                    let remaining = retry
                        .budget_ms
                        .saturating_sub(self.stats.sim_latency_ms);
                    let shift = attempt - 1;
                    let doubled = match retry.backoff_base_ms.checked_shl(shift) {
                        Some(scaled) if scaled >> shift == retry.backoff_base_ms => scaled,
                        // Shift ≥ 64 or high bits lost: the doubling has
                        // outgrown u64 (unless the base is 0, where the
                        // true product stays 0).
                        _ if retry.backoff_base_ms == 0 => 0,
                        _ => u64::MAX,
                    };
                    self.stats.sim_latency_ms = self
                        .stats
                        .sim_latency_ms
                        .saturating_add(doubled.min(remaining));
                }
            }
        }
    }

    /// Add a successfully fetched issuer to the per-engine pool
    /// (deduplicated) so later expansions can reuse the fetch.
    fn admit_aia_candidate(&mut self, fetched: Certificate) -> Candidate {
        let candidate = Candidate {
            trusted: self.ctx.store.contains(&fetched),
            cert: fetched,
            origin: CandidateOrigin::Aia,
        };
        // The seen set is materialized on first need.
        if self.seen.is_none() {
            let mut s = self.base_seen.clone();
            for cand in &self.extra {
                s.insert(cand.cert.fingerprint());
            }
            self.seen = Some(s);
        }
        let seen = self.seen.as_mut().expect("materialized above");
        if seen.insert(candidate.cert.fingerprint()) {
            self.extra.push(candidate.clone());
        }
        candidate
    }
}

/// Lexicographic candidate ordering key.
#[derive(PartialEq, Eq, PartialOrd, Ord, Debug)]
struct CandidateKey {
    trusted_rank: u8,
    kid_rank: u8,
    ku_rank: u8,
    bc_rank: u8,
    validity_key: (i64, i64, i64),
    /// [`CandidateOrigin::order_key`] — served order, then cache, then
    /// store/AIA (the old sentinel order).
    origin_key: (u8, usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_netsim::{AiaFailure, AiaRepository, FetchResponse};
    use ccc_x509::{CertificateBuilder, DistinguishedName};

    struct Pki {
        root: Certificate,
        int: Certificate,
        leaf: Certificate,
        store: RootStore,
    }

    fn pki() -> Pki {
        let g = Group::simulation_256();
        let root_kp = KeyPair::from_seed(g, b"eng-root");
        let int_kp = KeyPair::from_seed(g, b"eng-int");
        let leaf_kp = KeyPair::from_seed(g, b"eng-leaf");
        let root_dn = DistinguishedName::cn("Engine Root");
        let int_dn = DistinguishedName::cn("Engine Int");
        let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
        let int = CertificateBuilder::ca_profile(int_dn.clone()).issued_by(
            &int_kp.public,
            root_dn,
            &root_kp,
        );
        let leaf = CertificateBuilder::leaf_profile("engine.sim").issued_by(
            &leaf_kp.public,
            int_dn,
            &int_kp,
        );
        let store = RootStore::new("eng", vec![root.clone()]);
        Pki { root, int, leaf, store }
    }

    fn ctx<'a>(pki: &'a Pki, checker: &'a IssuanceChecker) -> BuildContext<'a> {
        BuildContext {
            store: &pki.store,
            aia: None,
            cache: &[],
            now: Time::from_ymd(2024, 7, 1).unwrap(),
            checker,
        }
    }

    #[test]
    fn empty_list_is_reported() {
        let p = pki();
        let checker = IssuanceChecker::new();
        let engine = ChainEngine::new(BuilderPolicy::full_capability("t"));
        let outcome = engine.process(&[], &ctx(&p, &checker));
        assert_eq!(outcome.verdict, Err(ClientError::EmptyList));
        assert!(outcome.path.is_empty());
    }

    #[test]
    fn trusted_root_appended_from_store() {
        let p = pki();
        let checker = IssuanceChecker::new();
        let engine = ChainEngine::new(BuilderPolicy::full_capability("t"));
        // Root omitted from the served list; the store completes it.
        let served = vec![p.leaf.clone(), p.int.clone()];
        let outcome = engine.process(&served, &ctx(&p, &checker));
        assert!(outcome.accepted());
        assert_eq!(outcome.path.len(), 3);
        assert_eq!(outcome.path[2], p.root);
    }

    #[test]
    fn duplicates_deduplicated_in_pool() {
        let p = pki();
        let checker = IssuanceChecker::new();
        let engine = ChainEngine::new(BuilderPolicy::full_capability("t"));
        let served = vec![
            p.leaf.clone(),
            p.int.clone(),
            p.int.clone(),
            p.int.clone(),
        ];
        let outcome = engine.process(&served, &ctx(&p, &checker));
        assert!(outcome.accepted());
        // The constructed path never repeats a certificate.
        assert_eq!(outcome.path.len(), 3);
    }

    #[test]
    fn expansion_cap_terminates_pathological_search() {
        let p = pki();
        let checker = IssuanceChecker::new();
        let mut policy = BuilderPolicy::full_capability("t");
        policy.max_candidate_expansions = 1;
        let engine = ChainEngine::new(policy);
        let served = vec![p.leaf.clone(), p.int.clone()];
        let outcome = engine.process(&served, &ctx(&p, &checker));
        // One expansion is not enough to finish leaf -> int -> root.
        assert!(!outcome.accepted());
    }

    #[test]
    fn stats_track_candidates() {
        let p = pki();
        let checker = IssuanceChecker::new();
        let engine = ChainEngine::new(BuilderPolicy::full_capability("t"));
        let served = vec![p.leaf.clone(), p.int.clone(), p.root.clone()];
        let outcome = engine.process(&served, &ctx(&p, &checker));
        assert!(outcome.accepted());
        assert!(outcome.stats.candidates_considered >= 2);
        assert_eq!(outcome.stats.aia_fetches, 0);
    }

    #[test]
    fn deepest_path_reported_on_failure() {
        let p = pki();
        let checker = IssuanceChecker::new();
        let engine = ChainEngine::new(BuilderPolicy::full_capability("t"));
        let empty_store = RootStore::new("none", vec![]);
        let served = vec![p.leaf.clone(), p.int.clone()];
        let ctx = BuildContext {
            store: &empty_store,
            aia: None,
            cache: &[],
            now: Time::from_ymd(2024, 7, 1).unwrap(),
            checker: &checker,
        };
        let outcome = engine.process(&served, &ctx);
        assert!(!outcome.accepted());
        // The deepest attempt (leaf + int) is surfaced for diagnostics.
        assert_eq!(outcome.path.len(), 2);
    }

    #[test]
    fn candidate_origin_preserves_sentinel_order() {
        // The legacy encoding: served pos < usize::MAX - 1 (cache)
        // < usize::MAX (store/AIA, tied). order_key must reproduce it.
        let served0 = CandidateOrigin::Served { list_pos: 0 };
        let served9 = CandidateOrigin::Served { list_pos: 9 };
        assert!(served0.order_key() < served9.order_key());
        assert!(served9.order_key() < CandidateOrigin::Cache.order_key());
        assert!(CandidateOrigin::Cache.order_key() < CandidateOrigin::Store.order_key());
        assert_eq!(
            CandidateOrigin::Store.order_key(),
            CandidateOrigin::Aia.order_key()
        );
    }

    #[test]
    fn build_stats_expose_cache_delta() {
        let p = pki();
        let checker = IssuanceChecker::new();
        let engine = ChainEngine::new(BuilderPolicy::full_capability("t"));
        let served = vec![p.leaf.clone(), p.int.clone()];
        let first = engine.process(&served, &ctx(&p, &checker));
        assert!(first.accepted());
        assert!(first.stats.cache.lookups > 0);
        assert!(first.stats.cache.verifications > 0);
        // Second build over the same chain: all lookups hit the cache.
        let second = engine.process(&served, &ctx(&p, &checker));
        assert!(second.accepted());
        assert_eq!(second.stats.cache.verifications, 0);
        assert_eq!(second.stats.cache.hits, second.stats.cache.lookups);
        assert!(second.stats.cache.lookups > 0);
    }

    #[test]
    fn cache_only_used_when_policy_allows() {
        let p = pki();
        let checker = IssuanceChecker::new();
        let served = vec![p.leaf.clone()]; // intermediate missing
        let cache = vec![p.int.clone()];
        let base_ctx = BuildContext {
            store: &p.store,
            aia: None,
            cache: &cache,
            now: Time::from_ymd(2024, 7, 1).unwrap(),
            checker: &checker,
        };
        let mut with_cache = BuilderPolicy::full_capability("cache");
        with_cache.aia = false;
        with_cache.use_intermediate_cache = true;
        let outcome = ChainEngine::new(with_cache).process(&served, &base_ctx);
        assert!(outcome.accepted(), "{:?}", outcome.verdict);

        let mut without_cache = BuilderPolicy::full_capability("nocache");
        without_cache.aia = false;
        without_cache.use_intermediate_cache = false;
        let outcome = ChainEngine::new(without_cache).process(&served, &base_ctx);
        assert_eq!(outcome.verdict, Err(ClientError::NoIssuerFound));
    }

    fn aia_ctx<'a>(
        store: &'a RootStore,
        repo: &'a AiaRepository,
        checker: &'a IssuanceChecker,
    ) -> BuildContext<'a> {
        BuildContext {
            store,
            aia: Some(repo),
            cache: &[],
            now: Time::from_ymd(2024, 7, 1).unwrap(),
            checker,
        }
    }

    /// Regression for the "once per URI per build" contract: two
    /// cross-signed intermediates share the same issuer (absent from the
    /// pool) whose AIA URI is dead, so a backtracking build revisits the
    /// same frontier URI twice. Before memoization that meant two fetches.
    #[test]
    fn dead_aia_uri_fetched_once_per_build() {
        let g = Group::simulation_256();
        let ghost_kp = KeyPair::from_seed(g, b"memo-ghost");
        let int_kp = KeyPair::from_seed(g, b"memo-int");
        let leaf_kp = KeyPair::from_seed(g, b"memo-leaf");
        let ghost_dn = DistinguishedName::cn("Memo Ghost CA");
        let int_dn = DistinguishedName::cn("Memo Shared Int");
        let uri = "http://aia.sim/memo-ghost.crt";
        let int_a = CertificateBuilder::ca_profile(int_dn.clone())
            .aia_ca_issuers(uri)
            .issued_by(&int_kp.public, ghost_dn.clone(), &ghost_kp);
        let int_b = CertificateBuilder::ca_profile(int_dn.clone())
            .validity(
                Time::from_ymd(2023, 1, 1).unwrap(),
                Time::from_ymd(2026, 1, 1).unwrap(),
            )
            .aia_ca_issuers(uri)
            .issued_by(&int_kp.public, ghost_dn, &ghost_kp);
        assert_ne!(int_a, int_b, "cross-signs must be distinct certificates");
        let leaf = CertificateBuilder::leaf_profile("memo.sim").issued_by(
            &leaf_kp.public,
            int_dn,
            &int_kp,
        );

        let store = RootStore::new("empty", vec![]);
        let mut repo = AiaRepository::empty();
        repo.inject_failure(uri, AiaFailure::DeadUri);
        let checker = IssuanceChecker::new();
        let engine = ChainEngine::new(BuilderPolicy::full_capability("memo"));
        let served = vec![leaf, int_a, int_b];
        let outcome = engine.process(&served, &aia_ctx(&store, &repo, &checker));

        assert!(!outcome.accepted());
        assert!(outcome.stats.backtracks > 0, "both cross-signs must be tried");
        assert_eq!(
            repo.fetches(),
            1,
            "a dead URI must be fetched once per build, not once per frontier visit"
        );
        assert_eq!(outcome.stats.aia_attempts, 1);
        assert_eq!(outcome.stats.aia_fetches, 0);
    }

    /// Attempts vs successes: a dead URI is an attempt with no fetch; a
    /// published URI is both. Both reconcile with the repository's own
    /// transfer counter.
    #[test]
    fn aia_attempts_and_fetches_reconcile() {
        let p = pki();
        let g = Group::simulation_256();
        let leaf_kp = KeyPair::from_seed(g, b"acct-leaf");
        let uri = "http://aia.sim/engine-int.crt";
        let leaf = CertificateBuilder::leaf_profile("acct.sim")
            .aia_ca_issuers(uri)
            .issued_by(&leaf_kp.public, DistinguishedName::cn("Engine Int"), &pki_int_kp());
        let engine = ChainEngine::new(BuilderPolicy::full_capability("acct"));

        // Dead URI: one attempt, zero successful fetches — but the
        // repository still saw the transfer attempt.
        let mut dead = AiaRepository::empty();
        dead.inject_failure(uri, AiaFailure::DeadUri);
        let checker = IssuanceChecker::new();
        let outcome = engine.process(
            std::slice::from_ref(&leaf),
            &aia_ctx(&p.store, &dead, &checker),
        );
        assert_eq!(outcome.verdict, Err(ClientError::NoIssuerFound));
        assert_eq!(outcome.stats.aia_attempts, 1);
        assert_eq!(outcome.stats.aia_fetches, 0);
        assert_eq!(dead.fetches(), 1, "dead attempts must be visible");

        // Published URI: one attempt, one successful fetch, chain accepted.
        let mut live = AiaRepository::empty();
        live.publish(uri, p.int.clone());
        let checker = IssuanceChecker::new();
        let outcome = engine.process(&[leaf], &aia_ctx(&p.store, &live, &checker));
        assert!(outcome.accepted(), "{:?}", outcome.verdict);
        assert_eq!(outcome.stats.aia_attempts, 1);
        assert_eq!(outcome.stats.aia_fetches, 1);
        assert_eq!(live.fetches(), 1);
    }

    /// A deterministic test transport: transient for the first
    /// `fail_first` attempts, then serves the certificate.
    #[derive(Debug)]
    struct FlakyTransport {
        cert: Certificate,
        fail_first: u32,
        latency_ms: u64,
    }

    impl AiaTransport for FlakyTransport {
        fn fetch_aia(&self, _uri: &str, attempt: u32) -> FetchResponse {
            if attempt <= self.fail_first {
                FetchResponse {
                    outcome: FetchOutcome::Transient,
                    latency_ms: self.latency_ms,
                }
            } else {
                FetchResponse {
                    outcome: FetchOutcome::Success(self.cert.clone()),
                    latency_ms: self.latency_ms,
                }
            }
        }
    }

    fn pki_int_kp() -> KeyPair {
        KeyPair::from_seed(Group::simulation_256(), b"eng-int")
    }

    /// A leaf issued by the [`pki`] intermediate, carrying an AIA URI.
    fn aia_leaf(domain: &str, uri: &str) -> Certificate {
        let leaf_kp = KeyPair::from_seed(Group::simulation_256(), b"retry-leaf");
        CertificateBuilder::leaf_profile(domain)
            .aia_ca_issuers(uri)
            .issued_by(&leaf_kp.public, DistinguishedName::cn("Engine Int"), &pki_int_kp())
    }

    #[test]
    fn retry_policy_recovers_transient_uris() {
        let p = pki();
        let uri = "http://aia.sim/flaky-int.crt";
        let leaf = aia_leaf("retry.sim", uri);
        let transport = FlakyTransport {
            cert: p.int.clone(),
            fail_first: 2,
            latency_ms: 40,
        };
        let served = [leaf];

        // max_attempts 3 rides out two transient failures.
        let mut policy = BuilderPolicy::full_capability("retry3");
        policy.retry = RetryPolicy::retrying(3, 200, 30_000);
        let checker = IssuanceChecker::new();
        let ctx = BuildContext {
            store: &p.store,
            aia: Some(&transport),
            cache: &[],
            now: Time::from_ymd(2024, 7, 1).unwrap(),
            checker: &checker,
        };
        let outcome = ChainEngine::new(policy).process(&served, &ctx);
        assert!(outcome.accepted(), "{:?}", outcome.verdict);
        assert_eq!(outcome.stats.aia_attempts, 3);
        assert_eq!(outcome.stats.aia_retries, 2);
        assert_eq!(outcome.stats.aia_fetches, 1);
        // 3 × 40ms latency + backoff 200 + 400 on the simulated clock.
        assert_eq!(outcome.stats.sim_latency_ms, 3 * 40 + 200 + 400);
        assert!(!outcome.stats.aia_budget_exhausted);

        // A non-retrying profile loses the same chain.
        let mut policy = BuilderPolicy::full_capability("retry1");
        policy.retry = RetryPolicy::none();
        let checker = IssuanceChecker::new();
        let ctx = BuildContext {
            store: &p.store,
            aia: Some(&transport),
            cache: &[],
            now: Time::from_ymd(2024, 7, 1).unwrap(),
            checker: &checker,
        };
        let outcome = ChainEngine::new(policy).process(&served, &ctx);
        assert_eq!(outcome.verdict, Err(ClientError::NoIssuerFound));
        assert_eq!(outcome.stats.aia_attempts, 1);
        assert_eq!(outcome.stats.aia_retries, 0);
        assert_eq!(outcome.stats.aia_fetches, 0);
    }

    #[test]
    fn exhausted_budget_degrades_to_incomplete_chain() {
        let p = pki();
        let uri = "http://aia.sim/slow-int.crt";
        let leaf = aia_leaf("budget.sim", uri);
        // Always transient within the allowed attempts, and so slow that
        // the first attempt plus its backoff blows the 500ms budget.
        let transport = FlakyTransport {
            cert: p.int.clone(),
            fail_first: 10,
            latency_ms: 300,
        };
        let mut policy = BuilderPolicy::full_capability("budget");
        policy.retry = RetryPolicy::retrying(5, 1_000, 500);
        let checker = IssuanceChecker::new();
        let ctx = BuildContext {
            store: &p.store,
            aia: Some(&transport),
            cache: &[],
            now: Time::from_ymd(2024, 7, 1).unwrap(),
            checker: &checker,
        };
        let outcome = ChainEngine::new(policy).process(&[leaf], &ctx);
        assert_eq!(outcome.verdict, Err(ClientError::NoIssuerFound));
        assert!(outcome.stats.aia_budget_exhausted);
        assert_eq!(outcome.stats.aia_attempts, 1, "budget gate must stop attempt 2");
        assert!(outcome.stats.sim_latency_ms >= 500);
    }

    /// Regression (ISSUE 10 bugfix): the exponential backoff doubles as
    /// `base << (attempt - 1)`; before the fix the shift was clamped and
    /// the doubling could overshoot the retry budget by tens of seconds,
    /// corrupting `sim_latency_ms`. It now saturates to the *remaining*
    /// budget, so the simulated clock lands exactly on `budget_ms`.
    #[test]
    fn high_attempt_backoff_saturates_to_remaining_budget() {
        let p = pki();
        let uri = "http://aia.sim/never-int.crt";
        let leaf = aia_leaf("overflow.sim", uri);
        let transport = FlakyTransport {
            cert: p.int.clone(),
            fail_first: u32::MAX,
            latency_ms: 0,
        };
        let mut policy = BuilderPolicy::full_capability("retry70");
        policy.retry = RetryPolicy::retrying(70, 1, 50_000);
        let budget = policy.retry.budget_ms;
        let checker = IssuanceChecker::new();
        let ctx = BuildContext {
            store: &p.store,
            aia: Some(&transport),
            cache: &[],
            now: Time::from_ymd(2024, 7, 1).unwrap(),
            checker: &checker,
        };
        let outcome = ChainEngine::new(policy).process(&[leaf], &ctx);
        assert_eq!(outcome.verdict, Err(ClientError::NoIssuerFound));
        assert!(outcome.stats.aia_budget_exhausted);
        // Backoffs 1, 2, 4, … total 2^k − 1; the 16th retry's doubling
        // (32_768) is clamped to the 17_233ms remaining, landing the
        // clock exactly on the budget (pre-fix: 65_535, a 31% overshoot).
        assert_eq!(outcome.stats.sim_latency_ms, budget);
        assert_eq!(outcome.stats.aia_attempts, 16);
        assert_eq!(outcome.stats.aia_retries, 16);
    }

    /// Regression (ISSUE 10 bugfix): `max_attempts = 70` drives the shift
    /// past 63 (attempt 65 onward); `checked_shl` must neither panic (the
    /// pre-clamp debug behavior) nor saturate a zero base to a non-zero
    /// backoff.
    #[test]
    fn seventy_attempts_with_zero_base_never_overflow_the_shift() {
        let p = pki();
        let uri = "http://aia.sim/never-int.crt";
        let leaf = aia_leaf("shift.sim", uri);
        let transport = FlakyTransport {
            cert: p.int.clone(),
            fail_first: u32::MAX,
            latency_ms: 0,
        };
        let mut policy = BuilderPolicy::full_capability("retry70z");
        policy.retry = RetryPolicy::retrying(70, 0, u64::MAX);
        let checker = IssuanceChecker::new();
        let ctx = BuildContext {
            store: &p.store,
            aia: Some(&transport),
            cache: &[],
            now: Time::from_ymd(2024, 7, 1).unwrap(),
            checker: &checker,
        };
        let outcome = ChainEngine::new(policy).process(&[leaf], &ctx);
        assert_eq!(outcome.verdict, Err(ClientError::NoIssuerFound));
        // All 70 attempts ran: a zero base doubles to zero forever, so
        // neither the budget gate nor the shift stops the loop early.
        assert_eq!(outcome.stats.aia_attempts, 70);
        assert_eq!(outcome.stats.aia_retries, 69);
        assert_eq!(outcome.stats.sim_latency_ms, 0);
        assert!(!outcome.stats.aia_budget_exhausted);
    }

    #[test]
    fn zero_fault_transport_changes_nothing() {
        // A plain repository behind the trait returns Success/Dead with
        // zero latency, so retrying policies never engage their loop.
        let p = pki();
        let uri = "http://aia.sim/plain-int.crt";
        let leaf = aia_leaf("plain.sim", uri);
        let mut repo = AiaRepository::empty();
        repo.publish(uri, p.int.clone());
        let checker = IssuanceChecker::new();
        let engine = ChainEngine::new(BuilderPolicy::full_capability("plain"));
        let outcome = engine.process(&[leaf], &aia_ctx(&p.store, &repo, &checker));
        assert!(outcome.accepted(), "{:?}", outcome.verdict);
        assert_eq!(outcome.stats.aia_retries, 0);
        assert_eq!(outcome.stats.sim_latency_ms, 0);
        assert!(!outcome.stats.aia_budget_exhausted);
    }
}
