//! Differential testing harness (paper §5.2).
//!
//! Runs all eight client profiles on each served list, groups the verdicts
//! and attributes discrepancies to the paper's four impact classes:
//! I-1 missing order reorganization, I-2 list-length limits, I-3 missing
//! backtracking, I-4 missing AIA completion.

use crate::builder::{
    BuildContext, BuildOutcome, CachePool, ClientError, PoolSeed, RunScratch, SearchScope,
};
use crate::clients::{client_profiles, ClientKind};
use crate::topology::IssuanceChecker;
use ccc_asn1::Time;
use ccc_netsim::AiaTransport;
use ccc_rootstore::RootStore;
use ccc_x509::Certificate;
use std::collections::BTreeMap;

/// Root causes of cross-client discrepancies (paper §5.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum DiscrepancyCause {
    /// I-1: a client without order reorganization failed where reordering
    /// clients succeeded.
    OrderReorganization,
    /// I-2: a client's input list limit rejected a long served list.
    ListLengthLimit,
    /// I-3: non-backtracking clients committed to a bad path.
    Backtracking,
    /// I-4: AIA-capable (or cache-capable) clients completed a chain
    /// others could not.
    AiaCompletion,
    /// Anything else (validity windows, trust store contents, …).
    Other,
}

impl DiscrepancyCause {
    /// Paper label.
    pub fn label(&self) -> &'static str {
        match self {
            DiscrepancyCause::OrderReorganization => "I-1 order reorganization",
            DiscrepancyCause::ListLengthLimit => "I-2 overly long chains",
            DiscrepancyCause::Backtracking => "I-3 backtracking",
            DiscrepancyCause::AiaCompletion => "I-4 AIA completion",
            DiscrepancyCause::Other => "other",
        }
    }
}

/// Result of one differential run.
#[derive(Clone, Debug)]
pub struct DifferentialResult {
    /// Verdicts in Table 9 client order.
    pub outcomes: Vec<(ClientKind, BuildOutcome)>,
    /// Causes inferred for observed discrepancies.
    pub causes: Vec<DiscrepancyCause>,
}

impl DifferentialResult {
    fn passes(&self, filter: impl Fn(ClientKind) -> bool) -> (usize, usize) {
        let mut pass = 0;
        let mut total = 0;
        for (kind, outcome) in &self.outcomes {
            if filter(*kind) {
                total += 1;
                if outcome.accepted() {
                    pass += 1;
                }
            }
        }
        (pass, total)
    }

    /// All four browsers accept.
    pub fn all_browsers_pass(&self) -> bool {
        let (pass, total) = self.passes(|k| k.is_browser());
        pass == total
    }

    /// All four libraries accept.
    pub fn all_libraries_pass(&self) -> bool {
        let (pass, total) = self.passes(|k| !k.is_browser());
        pass == total
    }

    /// Browsers disagree with each other.
    pub fn browsers_discrepant(&self) -> bool {
        let (pass, total) = self.passes(|k| k.is_browser());
        pass != 0 && pass != total
    }

    /// Libraries disagree with each other.
    pub fn libraries_discrepant(&self) -> bool {
        let (pass, total) = self.passes(|k| !k.is_browser());
        pass != 0 && pass != total
    }

    /// Any client failed.
    pub fn any_failure(&self) -> bool {
        self.outcomes.iter().any(|(_, o)| !o.accepted())
    }
}

/// Aggregate over a corpus (the §5.2 headline numbers).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DifferentialReport {
    /// Served lists evaluated.
    pub total: usize,
    /// Lists accepted by all four browsers.
    pub all_browsers_pass: usize,
    /// Lists accepted by all four libraries.
    pub all_libraries_pass: usize,
    /// Lists with browser-vs-browser disagreement.
    pub browser_discrepancies: usize,
    /// Lists with library-vs-library disagreement.
    pub library_discrepancies: usize,
    /// Lists where at least one library failed (availability impact).
    pub library_failures: usize,
    /// Lists where at least one browser failed.
    pub browser_failures: usize,
    /// Discrepancy cause counts (a list may contribute to several).
    pub causes: BTreeMap<DiscrepancyCause, usize>,
    /// Per-client acceptance counts.
    pub per_client_pass: BTreeMap<ClientKind, usize>,
}

impl DifferentialReport {
    /// Fold one result into the aggregate.
    pub fn absorb(&mut self, result: &DifferentialResult) {
        self.total += 1;
        if result.all_browsers_pass() {
            self.all_browsers_pass += 1;
        }
        if result.all_libraries_pass() {
            self.all_libraries_pass += 1;
        }
        if result.browsers_discrepant() {
            self.browser_discrepancies += 1;
        }
        if result.libraries_discrepant() {
            self.library_discrepancies += 1;
        }
        let (lib_pass, lib_total) = result.passes(|k| !k.is_browser());
        if lib_pass < lib_total {
            self.library_failures += 1;
        }
        let (br_pass, br_total) = result.passes(|k| k.is_browser());
        if br_pass < br_total {
            self.browser_failures += 1;
        }
        for cause in &result.causes {
            *self.causes.entry(*cause).or_insert(0) += 1;
        }
        for (kind, outcome) in &result.outcomes {
            if outcome.accepted() {
                *self.per_client_pass.entry(*kind).or_insert(0) += 1;
            }
        }
    }
}

/// The harness: eight engines plus the shared environment.
#[derive(Debug)]
pub struct DifferentialHarness<'a> {
    clients: Vec<(ClientKind, crate::builder::ChainEngine)>,
    store: &'a RootStore,
    /// AIA transport: a plain [`ccc_netsim::AiaRepository`] for the
    /// zero-fault path, or a [`ccc_netsim::FaultyTransport`] to inject
    /// latency and failures into every AIA-capable client.
    aia: Option<&'a dyn AiaTransport>,
    /// Firefox-style intermediate cache contents.
    cache: Vec<Certificate>,
    /// `cache` pre-resolved against `store` (built once; the cache and the
    /// store don't change over the harness lifetime).
    cache_pool: CachePool,
    now: Time,
    checker: &'a IssuanceChecker,
}

impl<'a> DifferentialHarness<'a> {
    /// Build a harness over the standard eight clients.
    pub fn new(
        store: &'a RootStore,
        aia: Option<&'a dyn AiaTransport>,
        cache: Vec<Certificate>,
        now: Time,
        checker: &'a IssuanceChecker,
    ) -> DifferentialHarness<'a> {
        let cache_pool = CachePool::build(&cache, store);
        DifferentialHarness {
            clients: client_profiles(),
            store,
            aia,
            cache,
            cache_pool,
            now,
            checker,
        }
    }

    /// Run all clients on one served list and additionally require the
    /// constructed leaf to cover `domain` (what a browser/library reports
    /// as a hostname error after the chain itself validated). Hostname
    /// failures affect every client identically, so they add availability
    /// impact without adding discrepancies.
    pub fn run_for_domain(&self, served: &[Certificate], domain: &str) -> DifferentialResult {
        let mut result = self.run(served);
        let covers = served
            .first()
            .map(|leaf| crate::leaf::cert_covers_domain(leaf, domain))
            .unwrap_or(false);
        if !covers {
            for (_, outcome) in result.outcomes.iter_mut() {
                if outcome.verdict.is_ok() {
                    outcome.verdict = Err(ClientError::HostnameMismatch);
                }
            }
        }
        result
    }

    /// Run all clients on one served list.
    ///
    /// The base candidate pool (served-list dedup + trust-store probes) is
    /// identical for every engine sharing this harness's context, so it is
    /// built once per served list and cloned into each of the eight
    /// engines rather than rebuilt eight times.
    pub fn run(&self, served: &[Certificate]) -> DifferentialResult {
        let ctx = BuildContext {
            store: self.store,
            aia: self.aia,
            cache: &self.cache,
            now: self.now,
            checker: self.checker,
        };
        let seed = PoolSeed::build(served, &ctx);
        let scratch = RunScratch::default();
        let outcomes: Vec<(ClientKind, BuildOutcome)> = self
            .clients
            .iter()
            .map(|(kind, engine)| {
                (*kind, engine.process_with_seed(served, &ctx, &seed, &self.cache_pool, &scratch))
            })
            .collect();
        let causes = attribute_causes(&outcomes);
        DifferentialResult { outcomes, causes }
    }

    /// Run a whole corpus and aggregate.
    pub fn run_corpus<'s>(
        &self,
        corpus: impl IntoIterator<Item = &'s [Certificate]>,
    ) -> DifferentialReport {
        let mut report = DifferentialReport::default();
        for served in corpus {
            let result = self.run(served);
            report.absorb(&result);
        }
        report
    }
}

/// Infer discrepancy causes from the verdict pattern.
fn attribute_causes(outcomes: &[(ClientKind, BuildOutcome)]) -> Vec<DiscrepancyCause> {
    let any_pass = outcomes.iter().any(|(_, o)| o.accepted());
    let any_fail = outcomes.iter().any(|(_, o)| !o.accepted());
    if !(any_pass && any_fail) {
        return Vec::new();
    }
    let mut causes = Vec::new();
    let get = |kind: ClientKind| -> &BuildOutcome {
        &outcomes
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("all clients present")
            .1
    };

    // I-2: any client rejected the list outright for its length.
    if outcomes
        .iter()
        .any(|(_, o)| o.verdict == Err(ClientError::TooManyCertificates))
    {
        causes.push(DiscrepancyCause::ListLengthLimit);
    }

    // I-1: the forward-only client failed to find an issuer while some
    // full-list client without AIA succeeded (so reordering alone was the
    // differentiator).
    let mbed = get(ClientKind::MbedTls);
    let mbed_policy_forward = ClientKind::MbedTls.policy().scope == SearchScope::ForwardOnly;
    if mbed_policy_forward
        && !mbed.accepted()
        && matches!(
            mbed.verdict,
            Err(ClientError::NoIssuerFound) | Err(ClientError::BadSignature)
        )
        && (get(ClientKind::OpenSsl).accepted() || get(ClientKind::GnuTls).accepted())
    {
        causes.push(DiscrepancyCause::OrderReorganization);
    }

    // I-4: an AIA-or-cache client passed while some no-AIA client failed
    // with an unknown-issuer style error.
    let aia_clients = [
        ClientKind::CryptoApi,
        ClientKind::Chrome,
        ClientKind::Edge,
        ClientKind::Safari,
        ClientKind::Firefox,
    ];
    let no_aia_clients = [ClientKind::OpenSsl, ClientKind::GnuTls, ClientKind::MbedTls];
    let aia_pass = aia_clients.iter().any(|&k| get(k).accepted());
    let no_aia_unknown_issuer = no_aia_clients.iter().any(|&k| {
        matches!(get(k).verdict, Err(ClientError::NoIssuerFound))
    });
    if aia_pass && no_aia_unknown_issuer {
        causes.push(DiscrepancyCause::AiaCompletion);
    }

    // I-3: a backtracking client passed while a non-backtracking client
    // committed to an untrusted/invalid path.
    let backtrackers = [
        ClientKind::CryptoApi,
        ClientKind::Chrome,
        ClientKind::Edge,
        ClientKind::Safari,
        ClientKind::Firefox,
    ];
    let straightliners = [ClientKind::OpenSsl, ClientKind::GnuTls, ClientKind::MbedTls];
    let bt_pass = backtrackers.iter().any(|&k| get(k).accepted());
    let straight_committed = straightliners.iter().any(|&k| {
        matches!(
            get(k).verdict,
            Err(ClientError::UntrustedRoot)
                | Err(ClientError::Expired)
                | Err(ClientError::PathLenConstraintViolated)
                | Err(ClientError::BadKeyUsage)
        )
    });
    if bt_pass && straight_committed {
        causes.push(DiscrepancyCause::Backtracking);
    }

    if causes.is_empty() {
        causes.push(DiscrepancyCause::Other);
    }
    causes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completeness::{CompletenessAnalyzer, IncompleteReason};
    use ccc_netsim::{AiaFailure, AiaRepository};
    use ccc_rootstore::{CaUniverse, RootPrograms};
    use ccc_x509::CertificateBuilder;

    struct Env {
        universe: CaUniverse,
        programs: RootPrograms,
        aia: AiaRepository,
        checker: IssuanceChecker,
    }

    fn env() -> Env {
        let universe = CaUniverse::default_with_seed(41);
        let programs = RootPrograms::from_universe(&universe);
        let aia = AiaRepository::new(universe.aia_publications());
        Env {
            universe,
            programs,
            aia,
            checker: IssuanceChecker::new(),
        }
    }

    fn now() -> Time {
        Time::from_ymd(2024, 7, 1).unwrap()
    }

    fn leaf(env: &Env, ca: usize, int: usize, domain: &str) -> Certificate {
        let intermediate = &env.universe.roots[ca].intermediates[int];
        let kp = ccc_crypto::KeyPair::from_seed(
            ccc_crypto::Group::simulation_256(),
            format!("diff-{domain}").as_bytes(),
        );
        CertificateBuilder::leaf_profile(domain)
            .aia_ca_issuers(intermediate.aia_uri.clone())
            .issued_by(&kp.public, intermediate.cert.subject().clone(), &intermediate.keypair)
    }

    #[test]
    fn compliant_chain_accepted_by_all() {
        let e = env();
        let harness = DifferentialHarness::new(
            e.programs.unified(),
            Some(&e.aia),
            vec![],
            now(),
            &e.checker,
        );
        let int = &e.universe.roots[0].intermediates[0];
        let served = vec![leaf(&e, 0, 0, "all.sim"), int.cert.clone()];
        let result = harness.run(&served);
        for (kind, outcome) in &result.outcomes {
            assert!(outcome.accepted(), "{} failed: {:?}", kind.name(), outcome.verdict);
        }
        assert!(result.causes.is_empty());
    }

    #[test]
    fn reversed_chain_fails_only_mbedtls() {
        let e = env();
        let harness = DifferentialHarness::new(
            e.programs.unified(),
            Some(&e.aia),
            vec![],
            now(),
            &e.checker,
        );
        // 4-cert reversed intermediate order: leaf, int2(parent), int1.
        // Build a 2-intermediate chain within one CA: int1 signs leaf,
        // int1 is signed by... the universe only has root->int, so fake a
        // deeper chain: leaf <- intA ; serve {leaf, root, intA} reversed
        // tail.
        let int = &e.universe.roots[0].intermediates[0];
        let root = &e.universe.roots[0];
        let served = vec![
            leaf(&e, 0, 0, "rev.sim"),
            root.cert.clone(),
            int.cert.clone(),
        ];
        let result = harness.run(&served);
        let mbed = result
            .outcomes
            .iter()
            .find(|(k, _)| *k == ClientKind::MbedTls)
            .unwrap();
        // MbedTLS's forward scan: after the leaf it sees root (sig fails),
        // then int (sig ok); int's issuer is root at an earlier position →
        // not reachable forward → but the root IS in the trust store, so
        // the store lookup rescues it. This chain is therefore accepted.
        assert!(mbed.1.accepted());

        // Now a chain needing a *list* certificate that sits earlier:
        // two intermediates i2 signs i1; serve {leaf, i2's cert, i1}.
        // Here leaf <- i1 <- i2 <- root. i1 appears after i2.
        // Construct i1 as a sub-CA issued by the universe intermediate.
        let g = ccc_crypto::Group::simulation_256();
        let i1_kp = ccc_crypto::KeyPair::from_seed(g, b"diff-subca");
        let i1_dn = ccc_x509::DistinguishedName::cn_o("Sub CA R", "Sim");
        let i1 = CertificateBuilder::ca_profile(i1_dn.clone()).issued_by(
            &i1_kp.public,
            int.cert.subject().clone(),
            &int.keypair,
        );
        let leaf_kp = ccc_crypto::KeyPair::from_seed(g, b"diff-subca-leaf");
        let deep_leaf = CertificateBuilder::leaf_profile("deep.sim").issued_by(
            &leaf_kp.public,
            i1_dn,
            &i1_kp,
        );
        // Served: leaf, int (i1's issuer), i1 — i1 is AFTER its issuer.
        let served = vec![deep_leaf, int.cert.clone(), i1];
        let result = harness.run(&served);
        let mbed = result
            .outcomes
            .iter()
            .find(|(k, _)| *k == ClientKind::MbedTls)
            .unwrap();
        assert!(!mbed.1.accepted(), "MbedTLS should fail reversed deep chain");
        let openssl = result
            .outcomes
            .iter()
            .find(|(k, _)| *k == ClientKind::OpenSsl)
            .unwrap();
        assert!(openssl.1.accepted(), "OpenSSL reorders: {:?}", openssl.1.verdict);
        assert!(result.causes.contains(&DiscrepancyCause::OrderReorganization));
    }

    #[test]
    fn missing_intermediate_splits_aia_clients() {
        let e = env();
        let harness = DifferentialHarness::new(
            e.programs.unified(),
            Some(&e.aia),
            vec![],
            now(),
            &e.checker,
        );
        let served = vec![leaf(&e, 1, 0, "noint.sim")];
        let result = harness.run(&served);
        let verdicts: BTreeMap<ClientKind, bool> = result
            .outcomes
            .iter()
            .map(|(k, o)| (*k, o.accepted()))
            .collect();
        assert!(!verdicts[&ClientKind::OpenSsl]);
        assert!(!verdicts[&ClientKind::GnuTls]);
        assert!(!verdicts[&ClientKind::MbedTls]);
        assert!(verdicts[&ClientKind::CryptoApi]);
        assert!(verdicts[&ClientKind::Chrome]);
        assert!(!verdicts[&ClientKind::Firefox], "no cache preloaded");
        assert!(result.causes.contains(&DiscrepancyCause::AiaCompletion));

        // With the intermediate cached, Firefox recovers.
        let int_cert = e.universe.roots[1].intermediates[0].cert.clone();
        let harness2 = DifferentialHarness::new(
            e.programs.unified(),
            Some(&e.aia),
            vec![int_cert],
            now(),
            &e.checker,
        );
        let result2 = harness2.run(&served);
        let firefox = result2
            .outcomes
            .iter()
            .find(|(k, _)| *k == ClientKind::Firefox)
            .unwrap();
        assert!(firefox.1.accepted());
    }

    /// Satellite e2e: a `WrongCertificate` URI yields exactly one fetch
    /// per AIA client, no usable candidate, and the paper's
    /// wrong-certificate incomplete-chain classification.
    #[test]
    fn wrong_certificate_aia_uri_end_to_end() {
        let mut e = env();
        let intermediate = e.universe.roots[1].intermediates[0].clone();
        // The URI serves an unrelated trusted root instead of the issuer —
        // the CAcert-style misconfiguration the paper measured.
        let unrelated = e.universe.roots[0].cert.clone();
        e.aia.inject_failure(
            intermediate.aia_uri.clone(),
            AiaFailure::WrongCertificate(unrelated),
        );
        let served = vec![leaf(&e, 1, 0, "wrongcert.sim")];

        let harness = DifferentialHarness::new(
            e.programs.unified(),
            Some(&e.aia),
            vec![],
            now(),
            &e.checker,
        );
        e.aia.reset_fetches();
        let result = harness.run(&served);

        // The wrong payload is useless as an issuer: every client fails.
        for (kind, outcome) in &result.outcomes {
            assert!(
                !outcome.accepted(),
                "{} must not accept a chain completed by a wrong certificate",
                kind.name()
            );
        }
        // Exactly one fetch per AIA-capable client (CryptoAPI, Chrome,
        // Edge, Safari) — the wrong certificate is a *successful* transfer
        // (aia_fetches == aia_attempts == 1), never retried as transient.
        assert_eq!(e.aia.fetches(), 4);
        for (kind, outcome) in &result.outcomes {
            let expects_fetch = matches!(
                kind,
                ClientKind::CryptoApi | ClientKind::Chrome | ClientKind::Edge | ClientKind::Safari
            );
            let expected = usize::from(expects_fetch);
            assert_eq!(outcome.stats.aia_attempts, expected, "{}", kind.name());
            assert_eq!(outcome.stats.aia_fetches, expected, "{}", kind.name());
            assert_eq!(outcome.stats.aia_retries, 0, "{}", kind.name());
        }

        // The completeness analyzer classifies the list the same way.
        let analyzer =
            CompletenessAnalyzer::new(&e.checker, e.programs.unified(), Some(&e.aia));
        let analysis = analyzer.analyze(&served);
        assert_eq!(
            analysis.incomplete_reason,
            Some(IncompleteReason::AiaWrongCertificate)
        );
    }

    #[test]
    fn long_list_trips_gnutls_only() {
        let e = env();
        let harness = DifferentialHarness::new(
            e.programs.unified(),
            Some(&e.aia),
            vec![],
            now(),
            &e.checker,
        );
        let int = &e.universe.roots[0].intermediates[0];
        let mut served = vec![leaf(&e, 0, 0, "long.sim")];
        // Pad with 16 copies of the intermediate (duplicates).
        for _ in 0..16 {
            served.push(int.cert.clone());
        }
        assert!(served.len() > 16);
        let result = harness.run(&served);
        let gnutls = result
            .outcomes
            .iter()
            .find(|(k, _)| *k == ClientKind::GnuTls)
            .unwrap();
        assert_eq!(gnutls.1.verdict, Err(ClientError::TooManyCertificates));
        let openssl = result
            .outcomes
            .iter()
            .find(|(k, _)| *k == ClientKind::OpenSsl)
            .unwrap();
        assert!(openssl.1.accepted());
        assert!(result.causes.contains(&DiscrepancyCause::ListLengthLimit));
    }

    #[test]
    fn backtracking_case_untrusted_root_first() {
        let e = env();
        // moex.gov.tw pattern: an untrusted root that identity-matches the
        // terminal intermediate sits in the list ahead of the trusted
        // continuation. Build: leaf <- X (X cross-signed by untrusted gov
        // root AND by trusted root; the gov root cert in the list).
        let g = ccc_crypto::Group::simulation_256();
        let gov_idx = e.universe.roots.iter().position(|r| !r.trusted).unwrap();
        let gov = &e.universe.roots[gov_idx];
        let trusted = &e.universe.roots[0];

        // X: intermediate with the SAME subject+key, two issuer certs.
        let x_kp = ccc_crypto::KeyPair::from_seed(g, b"diff-x");
        let x_dn = ccc_x509::DistinguishedName::cn_o("Cross Int X", "Sim");
        let x_by_gov = CertificateBuilder::ca_profile(x_dn.clone()).issued_by(
            &x_kp.public,
            gov.cert.subject().clone(),
            &gov.keypair,
        );
        let x_by_trusted = CertificateBuilder::ca_profile(x_dn.clone()).issued_by(
            &x_kp.public,
            trusted.cert.subject().clone(),
            &trusted.keypair,
        );
        let leaf_kp = ccc_crypto::KeyPair::from_seed(g, b"diff-x-leaf");
        let x_leaf = CertificateBuilder::leaf_profile("moex.sim").issued_by(
            &leaf_kp.public,
            x_dn,
            &x_kp,
        );
        // Served: leaf, X-by-gov, gov-root, X-by-trusted — greedy clients
        // that take the first matching issuer walk into the untrusted gov
        // branch; backtrackers recover via X-by-trusted.
        let served = vec![
            x_leaf,
            x_by_gov,
            gov.cert.clone(),
            x_by_trusted,
        ];
        let harness = DifferentialHarness::new(
            e.programs.unified(),
            Some(&e.aia),
            vec![],
            now(),
            &e.checker,
        );
        let result = harness.run(&served);
        let verdicts: BTreeMap<ClientKind, bool> = result
            .outcomes
            .iter()
            .map(|(k, o)| (*k, o.accepted()))
            .collect();
        assert!(verdicts[&ClientKind::CryptoApi], "backtracker recovers");
        assert!(verdicts[&ClientKind::Chrome]);
        assert!(
            !verdicts[&ClientKind::OpenSsl] || !verdicts[&ClientKind::GnuTls],
            "at least one straight-line client should walk into the gov branch"
        );
        assert!(result.causes.contains(&DiscrepancyCause::Backtracking));
    }

    #[test]
    fn report_aggregation() {
        let e = env();
        let harness = DifferentialHarness::new(
            e.programs.unified(),
            Some(&e.aia),
            vec![],
            now(),
            &e.checker,
        );
        let int = &e.universe.roots[0].intermediates[0];
        let good = vec![leaf(&e, 0, 0, "agg1.sim"), int.cert.clone()];
        let bad = vec![leaf(&e, 1, 0, "agg2.sim")];
        let corpus: Vec<&[Certificate]> = vec![&good, &bad];
        let report = harness.run_corpus(corpus);
        assert_eq!(report.total, 2);
        assert_eq!(report.all_browsers_pass, 1);
        assert_eq!(report.library_failures, 1);
        assert_eq!(report.per_client_pass[&ClientKind::Chrome], 2);
        assert_eq!(report.per_client_pass[&ClientKind::OpenSsl], 1);
    }
}
