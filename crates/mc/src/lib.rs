//! `ccc-mc`: a loom-style, fully vendored deterministic concurrency model
//! checker for the chain-chaos concurrent cache layer.
//!
//! The crate has two personalities, switched by the `model-check` feature:
//!
//! - **Passthrough (default)**: every shim — [`Mutex`], [`RwLock`],
//!   [`OnceLock`], [`AtomicU64`], [`AtomicUsize`], [`spawn`], [`scope`] —
//!   is a literal `pub use` of its `std` counterpart. Zero cost, zero
//!   behavior change; `tests/passthrough_transparency.rs` pins this with
//!   `TypeId` equality.
//! - **Model check (`--features model-check`)**: the same names resolve to
//!   wrapper types that route every acquire/release/load/store/init
//!   through a cooperative scheduler *while a model run is active on the
//!   current thread tree*, and transparently delegate to `std` otherwise
//!   (so ordinary tests keep working in a feature-unified build).
//!
//! The [`Explorer`] (model-check only) enumerates interleavings of a
//! closure by depth-first search over scheduling choices with
//! configurable preemption bounding and sleep-set/last-access pruning,
//! records every lock-acquisition edge into a [`LockOrderReport`], and on
//! a property failure (panic or deadlock) returns a replayable
//! [`Schedule`] that minimizes to a committed regression test.
//!
//! Exploration semantics are **sequentially consistent**: the checker
//! enumerates interleavings of shim operations, not C11 weak-memory
//! behaviors. The atomics-ordering pass compensates heuristically by
//! recording the `Ordering` each call site *requested* and flagging
//! suspicious pairings (e.g. a `Release` store whose only observed loads
//! are `Relaxed`).

mod report;

pub use report::{
    AtomicSiteSummary, LockClass, LockCycle, LockEdge, LockKind, LockOrderReport, Schedule,
    ScheduleParseError,
};

#[cfg(not(feature = "model-check"))]
mod passthrough {
    //! Zero-cost aliases: the shim *is* `std` when not model checking.
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    pub use std::sync::{
        Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };
    pub use std::thread::{scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};
}

#[cfg(not(feature = "model-check"))]
pub use passthrough::*;

#[cfg(feature = "model-check")]
mod sched;
#[cfg(feature = "model-check")]
mod modeled;
#[cfg(feature = "model-check")]
mod explore;
#[cfg(feature = "model-check")]
pub mod scenarios;

#[cfg(feature = "model-check")]
pub use modeled::{
    scope, spawn, yield_now, AtomicBool, AtomicU64, AtomicUsize, JoinHandle, Mutex, MutexGuard,
    OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard, Scope, ScopedJoinHandle,
};
#[cfg(feature = "model-check")]
pub use std::sync::atomic::Ordering;

#[cfg(feature = "model-check")]
pub use explore::{Exploration, Explorer, Failure, FailureKind};

/// True when this build of the crate has the cooperative scheduler
/// compiled in (`--features model-check`).
pub const MODEL_CHECK_BUILD: bool = cfg!(feature = "model-check");
