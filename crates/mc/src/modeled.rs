//! Model-check build of the shim primitives.
//!
//! Every type here wraps its `std` counterpart (the `std` object still
//! holds the data and provides the real exclusion) and adds one thing:
//! when the current thread is a model task, each acquire/release/
//! load/store/init first parks at a scheduling point so the driver can
//! interleave it. Outside a model run the wrappers delegate straight to
//! `std`, which keeps ordinary tests working in a feature-unified build.
//!
//! Soundness note: model tasks never *block* on the inner `std`
//! primitives — the driver only grants an acquire when the logical object
//! state says it cannot contend — so every interleaving the scheduler
//! picks is executed exactly as chosen.

use crate::report::{LockClass, LockKind};
use crate::sched::{current, ObjId, ObjState, OnceRole, Op, OpWhat, Runtime, TaskCtx};
use std::fmt;
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{Arc, LockResult, Mutex as StdMutex, PoisonError};

/// Synthetic object-id space for join edges (real ids count up from 0).
const JOIN_OBJ_BASE: ObjId = ObjId::MAX / 2;

fn site_of(loc: &'static Location<'static>) -> String {
    format!("{}:{}", loc.file(), loc.line())
}

fn ordering_name(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "Relaxed",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        Ordering::AcqRel => "AcqRel",
        Ordering::SeqCst => "SeqCst",
        _ => "Unknown",
    }
}

/// Lazily binds a shim object to the active run's generation: ids are
/// per-execution so objects created outside a run (statics, leftovers
/// from a previous schedule) still get fresh identities.
struct LazyObj {
    bound: StdMutex<Option<(u64, ObjId)>>,
}

impl LazyObj {
    const fn new() -> LazyObj {
        LazyObj {
            bound: StdMutex::new(None),
        }
    }

    fn bind(
        &self,
        ctx: &TaskCtx,
        state: impl FnOnce() -> ObjState,
        class: impl FnOnce() -> Option<LockClass>,
    ) -> ObjId {
        let mut slot = self.bound.lock().unwrap_or_else(|e| e.into_inner());
        match *slot {
            Some((generation, id)) if generation == ctx.rt.generation => id,
            _ => {
                let id = ctx.rt.bind_object(state, class());
                *slot = Some((ctx.rt.generation, id));
                id
            }
        }
    }
}

fn op(obj: Option<ObjId>, write: bool, what: OpWhat, site: String) -> Op {
    Op {
        obj,
        write,
        what,
        site,
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-checkable `std::sync::Mutex`. The lock *class* (for the
/// lock-order pass) is the [`new`](Mutex::new) call site, lockdep-style:
/// all 16 `KeyRegistry` shard mutexes built on one line are one class.
pub struct Mutex<T: ?Sized> {
    site: &'static Location<'static>,
    obj: LazyObj,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    #[track_caller]
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            site: Location::caller(),
            obj: LazyObj::new(),
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    /// Prefer `Mutex::new` in wired code: the class site of a
    /// default-constructed mutex is this impl, not the caller.
    #[track_caller]
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let acquire = Location::caller();
        match current() {
            Some(ctx) => {
                let id = self.obj.bind(
                    &ctx,
                    || ObjState::Mutex { holder: None },
                    || {
                        Some(LockClass {
                            kind: LockKind::Mutex,
                            site: site_of(self.site),
                        })
                    },
                );
                ctx.rt.yield_op(
                    ctx.id,
                    op(Some(id), true, OpWhat::MutexAcquire, site_of(acquire)),
                );
                // Uncontended by construction; absorb poison left behind by
                // a cancelled execution (the logical protocol, not the std
                // poison bit, is the source of truth during model runs).
                let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    inner: Some(guard),
                    model: Some((ctx, id)),
                })
            }
            None => match self.inner.lock() {
                Ok(guard) => Ok(MutexGuard {
                    inner: Some(guard),
                    model: None,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    inner: Some(poisoned.into_inner()),
                    model: None,
                })),
            },
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct MutexGuard<'a, T: ?Sized + 'a> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(TaskCtx, ObjId)>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((ctx, id)) = self.model.take() {
            // Non-panicking: a cancelled run skips the logical release
            // (the whole execution is being discarded).
            let _ = ctx.rt.yield_op_for_drop(
                ctx.id,
                op(Some(id), true, OpWhat::MutexRelease, String::new()),
            );
        }
        self.inner = None;
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Model-checkable `std::sync::RwLock`; read and write acquisitions share
/// the lock class (the `new` call site).
pub struct RwLock<T: ?Sized> {
    site: &'static Location<'static>,
    obj: LazyObj,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    #[track_caller]
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            site: Location::caller(),
            obj: LazyObj::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    fn bind(&self, ctx: &TaskCtx) -> ObjId {
        self.obj.bind(
            ctx,
            || ObjState::RwLock {
                readers: Default::default(),
                writer: None,
            },
            || {
                Some(LockClass {
                    kind: LockKind::RwLock,
                    site: site_of(self.site),
                })
            },
        )
    }

    #[track_caller]
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let acquire = Location::caller();
        match current() {
            Some(ctx) => {
                let id = self.bind(&ctx);
                ctx.rt.yield_op(
                    ctx.id,
                    op(Some(id), false, OpWhat::RwReadAcquire, site_of(acquire)),
                );
                let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
                Ok(RwLockReadGuard {
                    inner: Some(guard),
                    model: Some((ctx, id)),
                })
            }
            None => match self.inner.read() {
                Ok(guard) => Ok(RwLockReadGuard {
                    inner: Some(guard),
                    model: None,
                }),
                Err(poisoned) => Err(PoisonError::new(RwLockReadGuard {
                    inner: Some(poisoned.into_inner()),
                    model: None,
                })),
            },
        }
    }

    #[track_caller]
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let acquire = Location::caller();
        match current() {
            Some(ctx) => {
                let id = self.bind(&ctx);
                ctx.rt.yield_op(
                    ctx.id,
                    op(Some(id), true, OpWhat::RwWriteAcquire, site_of(acquire)),
                );
                let guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
                Ok(RwLockWriteGuard {
                    inner: Some(guard),
                    model: Some((ctx, id)),
                })
            }
            None => match self.inner.write() {
                Ok(guard) => Ok(RwLockWriteGuard {
                    inner: Some(guard),
                    model: None,
                }),
                Err(poisoned) => Err(PoisonError::new(RwLockWriteGuard {
                    inner: Some(poisoned.into_inner()),
                    model: None,
                })),
            },
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized + 'a> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<(TaskCtx, ObjId)>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((ctx, id)) = self.model.take() {
            let _ = ctx.rt.yield_op_for_drop(
                ctx.id,
                op(Some(id), false, OpWhat::RwReadRelease, String::new()),
            );
        }
        self.inner = None;
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized + 'a> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<(TaskCtx, ObjId)>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((ctx, id)) = self.model.take() {
            let _ = ctx.rt.yield_op_for_drop(
                ctx.id,
                op(Some(id), true, OpWhat::RwWriteRelease, String::new()),
            );
        }
        self.inner = None;
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

// ---------------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------------

/// Model-checkable `std::sync::OnceLock`. `new` stays `const` (the wired
/// code keeps `static G: OnceLock<Group>` etc.), so the lock class for the
/// initialization slot is the *first touch site in the execution* —
/// in practice the `get_or_init` call, as the issue prescribes.
pub struct OnceLock<T> {
    obj: LazyObj,
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    pub const fn new() -> OnceLock<T> {
        OnceLock {
            obj: LazyObj::new(),
            inner: std::sync::OnceLock::new(),
        }
    }

    fn bind(&self, ctx: &TaskCtx, class_site: &'static Location<'static>) -> ObjId {
        self.obj.bind(
            ctx,
            || ObjState::Once {
                status: if self.inner.get().is_some() {
                    crate::sched::OnceStatus::Done
                } else {
                    crate::sched::OnceStatus::Uninit
                },
            },
            || {
                Some(LockClass {
                    kind: LockKind::OnceInit,
                    site: site_of(class_site),
                })
            },
        )
    }

    /// Non-blocking read; never claims initialization.
    #[track_caller]
    pub fn get(&self) -> Option<&T> {
        if let Some(ctx) = current() {
            let loc = Location::caller();
            let id = self.bind(&ctx, loc);
            ctx.rt
                .yield_op(ctx.id, op(Some(id), false, OpWhat::OnceGet, site_of(loc)));
        }
        self.inner.get()
    }

    #[track_caller]
    pub fn set(&self, value: T) -> Result<(), T> {
        match current() {
            Some(ctx) => {
                let loc = Location::caller();
                let id = self.bind(&ctx, loc);
                let grant = ctx.rt.yield_op(
                    ctx.id,
                    op(Some(id), true, OpWhat::OnceAcquire, site_of(loc)),
                );
                match grant.once_role {
                    Some(OnceRole::Claimed) => {
                        let stored = self.inner.set(value);
                        debug_assert!(stored.is_ok(), "model claim implies empty cell");
                        ctx.rt.yield_op(
                            ctx.id,
                            op(Some(id), true, OpWhat::OnceComplete, site_of(loc)),
                        );
                        Ok(())
                    }
                    _ => Err(value),
                }
            }
            None => self.inner.set(value),
        }
    }

    #[track_caller]
    pub fn get_or_init<F>(&self, f: F) -> &T
    where
        F: FnOnce() -> T,
    {
        match current() {
            Some(ctx) => {
                let loc = Location::caller();
                let id = self.bind(&ctx, loc);
                let grant = ctx.rt.yield_op(
                    ctx.id,
                    op(Some(id), true, OpWhat::OnceAcquire, site_of(loc)),
                );
                match grant.once_role {
                    Some(OnceRole::Claimed) => {
                        // The initializer may itself hit scheduling points;
                        // the init slot stays held (lock-order edges flow
                        // from it) until OnceComplete publishes.
                        let value = f();
                        let stored = self.inner.set(value);
                        debug_assert!(stored.is_ok(), "model claim implies empty cell");
                        ctx.rt.yield_op(
                            ctx.id,
                            op(Some(id), true, OpWhat::OnceComplete, site_of(loc)),
                        );
                        self.inner.get().expect("just published")
                    }
                    _ => self.inner.get().expect("granted read implies published"),
                }
            }
            None => self.inner.get_or_init(f),
        }
    }

    pub fn into_inner(self) -> Option<T> {
        self.inner.into_inner()
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> OnceLock<T> {
        OnceLock::new()
    }
}

impl<T: Clone> Clone for OnceLock<T> {
    /// Mirrors `std`: the clone is an independent cell seeded with the
    /// current value. Not a scheduling point (no cross-task interaction —
    /// the clone is unreachable by other tasks until published).
    fn clone(&self) -> OnceLock<T> {
        let cell = OnceLock::new();
        if let Some(value) = self.inner.get() {
            let _ = cell.inner.set(value.clone());
        }
        cell
    }
}

impl<T: PartialEq> PartialEq for OnceLock<T> {
    fn eq(&self, other: &OnceLock<T>) -> bool {
        self.inner.get() == other.inner.get()
    }
}

impl<T: Eq> Eq for OnceLock<T> {}

impl<T: fmt::Debug> fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! atomic_shim {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Model-checkable atomic. Exploration is sequentially
        /// consistent; the *requested* ordering of every op is recorded
        /// for the atomics-ordering notes pass.
        pub struct $name {
            obj: LazyObj,
            inner: $std,
        }

        impl $name {
            pub const fn new(value: $prim) -> $name {
                $name {
                    obj: LazyObj::new(),
                    inner: <$std>::new(value),
                }
            }

            fn point(&self, write: bool, bucket: &'static str, ordering: Ordering, loc: &'static Location<'static>) {
                if let Some(ctx) = current() {
                    let id = self.obj.bind(&ctx, || ObjState::Atomic, || None);
                    ctx.rt.yield_op(
                        ctx.id,
                        op(
                            Some(id),
                            write,
                            OpWhat::Atomic {
                                bucket,
                                ordering: ordering_name(ordering),
                            },
                            site_of(loc),
                        ),
                    );
                }
            }

            #[track_caller]
            pub fn load(&self, ordering: Ordering) -> $prim {
                self.point(false, "load", ordering, Location::caller());
                self.inner.load(ordering)
            }

            #[track_caller]
            pub fn store(&self, value: $prim, ordering: Ordering) {
                self.point(true, "store", ordering, Location::caller());
                self.inner.store(value, ordering)
            }

            #[track_caller]
            pub fn swap(&self, value: $prim, ordering: Ordering) -> $prim {
                self.point(true, "rmw", ordering, Location::caller());
                self.inner.swap(value, ordering)
            }

            #[track_caller]
            pub fn fetch_add(&self, value: $prim, ordering: Ordering) -> $prim {
                self.point(true, "rmw", ordering, Location::caller());
                self.inner.fetch_add(value, ordering)
            }

            #[track_caller]
            pub fn fetch_sub(&self, value: $prim, ordering: Ordering) -> $prim {
                self.point(true, "rmw", ordering, Location::caller());
                self.inner.fetch_sub(value, ordering)
            }

            #[track_caller]
            pub fn fetch_max(&self, value: $prim, ordering: Ordering) -> $prim {
                self.point(true, "rmw", ordering, Location::caller());
                self.inner.fetch_max(value, ordering)
            }

            #[track_caller]
            pub fn fetch_min(&self, value: $prim, ordering: Ordering) -> $prim {
                self.point(true, "rmw", ordering, Location::caller());
                self.inner.fetch_min(value, ordering)
            }

            #[track_caller]
            pub fn compare_exchange(
                &self,
                expected: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.point(true, "rmw", success, Location::caller());
                self.inner.compare_exchange(expected, new, success, failure)
            }

            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }

            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(<$prim>::default())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.inner.fmt(f)
            }
        }
    };
}

atomic_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Model-checkable `AtomicBool` (load/store/swap only; the wired code
/// needs nothing richer).
pub struct AtomicBool {
    obj: LazyObj,
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(value: bool) -> AtomicBool {
        AtomicBool {
            obj: LazyObj::new(),
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    fn point(&self, write: bool, bucket: &'static str, ordering: Ordering, loc: &'static Location<'static>) {
        if let Some(ctx) = current() {
            let id = self.obj.bind(&ctx, || ObjState::Atomic, || None);
            ctx.rt.yield_op(
                ctx.id,
                op(
                    Some(id),
                    write,
                    OpWhat::Atomic {
                        bucket,
                        ordering: ordering_name(ordering),
                    },
                    site_of(loc),
                ),
            );
        }
    }

    #[track_caller]
    pub fn load(&self, ordering: Ordering) -> bool {
        self.point(false, "load", ordering, Location::caller());
        self.inner.load(ordering)
    }

    #[track_caller]
    pub fn store(&self, value: bool, ordering: Ordering) {
        self.point(true, "store", ordering, Location::caller());
        self.inner.store(value, ordering)
    }

    #[track_caller]
    pub fn swap(&self, value: bool, ordering: Ordering) -> bool {
        self.point(true, "rmw", ordering, Location::caller());
        self.inner.swap(value, ordering)
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

enum HandleInner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        rt: Arc<Runtime>,
        task: usize,
        result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
    },
}

/// Join handle compatible with `std::thread::JoinHandle` for the
/// operations the wired code uses (`join`).
pub struct JoinHandle<T>(HandleInner<T>);

impl<T> JoinHandle<T> {
    #[track_caller]
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            HandleInner::Std(handle) => handle.join(),
            HandleInner::Model { rt, task, result } => {
                let ctx = current().expect("model join handle joined on a model task");
                let loc = Location::caller();
                ctx.rt.yield_op(
                    ctx.id,
                    op(
                        Some(JOIN_OBJ_BASE + task as ObjId),
                        false,
                        OpWhat::Join(task),
                        site_of(loc),
                    ),
                );
                drop(rt);
                let taken = result.lock().unwrap_or_else(|e| e.into_inner()).take();
                match taken {
                    Some(outcome) => outcome,
                    None => Err(Box::new("model task finished without a result")),
                }
            }
        }
    }
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            HandleInner::Std(_) => f.write_str("JoinHandle(std)"),
            HandleInner::Model { task, .. } => write!(f, "JoinHandle(model task {task})"),
        }
    }
}

/// Spawn a thread. Inside a model run this registers a new model *task*
/// whose every sync op is scheduled; outside it is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        Some(ctx) => {
            let result: Arc<StdMutex<Option<std::thread::Result<T>>>> =
                Arc::new(StdMutex::new(None));
            let slot = Arc::clone(&result);
            let task = ctx.rt.spawn_task(Box::new(move || {
                let value = f();
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(value));
            }));
            JoinHandle(HandleInner::Model {
                rt: ctx.rt,
                task,
                result,
            })
        }
        None => JoinHandle(HandleInner::Std(std::thread::spawn(f))),
    }
}

/// Cooperative yield: a pure scheduling point inside a model run,
/// `std::thread::yield_now` otherwise.
#[track_caller]
pub fn yield_now() {
    match current() {
        Some(ctx) => {
            let loc = Location::caller();
            ctx.rt
                .yield_op(ctx.id, op(None, false, OpWhat::Yield, site_of(loc)));
        }
        None => std::thread::yield_now(),
    }
}

/// Scoped-thread wrapper. Outside a model run this is
/// `std::thread::scope` with an API-compatible [`Scope`]. *Inside* a
/// model run scoped spawning is unsupported (model scenarios use
/// [`spawn`] with `'static` closures); the call panics with a clear
/// message rather than silently skipping exploration.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    assert!(
        current().is_none(),
        "mc::scope is not supported inside a model run; use mc::spawn with 'static closures"
    );
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// API-compatible stand-in for `std::thread::Scope`.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(f),
        }
    }
}

/// API-compatible stand-in for `std::thread::ScopedJoinHandle`.
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }

    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}
