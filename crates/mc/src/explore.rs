//! The exploration front-end: DFS over schedules, replay, minimization.

use crate::report::{LockOrderReport, Schedule};
use crate::sched::{
    run_execution, DfsNode, ExecEnd, FailKind, ReportAggregator, Strategy, TaskId,
};
use std::sync::Arc;

/// Why a schedule failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// A task panicked (assertion failure: a property was violated).
    Panic,
    /// Every live task was blocked.
    Deadlock,
}

/// A property violation with the schedule that reproduces it.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    /// The panic message or deadlock description.
    pub message: String,
    /// Full decision sequence of the failing execution; feed to
    /// [`Explorer::replay`] (after [`Explorer::minimize`]) to reproduce.
    pub schedule: Schedule,
}

/// Result of [`Explorer::explore`].
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Executions run (completed + pruned).
    pub schedules: u64,
    /// Executions cut short by sleep-set pruning (their interleavings are
    /// covered by other branches).
    pub pruned: u64,
    /// Fixpoint reached: the DFS exhausted every non-equivalent
    /// interleaving within the preemption bound, and the bound never
    /// clipped a branch. `false` whenever [`truncated`](Self::truncated)
    /// is set, a failure stopped the search early, or the schedule cap
    /// was hit.
    pub complete: bool,
    /// The preemption bound skipped at least one branch.
    pub truncated: bool,
    /// First property violation found, if any (DFS order, deterministic).
    pub failure: Option<Failure>,
    /// Lock-acquisition graph and atomics notes aggregated over every
    /// explored execution.
    pub lock_order: LockOrderReport,
}

/// Enumerates interleavings of a closure. The closure runs once per
/// schedule and must be deterministic apart from scheduling (no ambient
/// time/randomness); shared structures under test are created fresh
/// inside it.
#[derive(Clone, Copy, Debug)]
pub struct Explorer {
    preemption_bound: Option<usize>,
    max_schedules: u64,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer::new()
    }
}

impl Explorer {
    /// Unbounded preemptions, 1M-schedule safety cap.
    pub fn new() -> Explorer {
        Explorer {
            preemption_bound: None,
            max_schedules: 1_000_000,
        }
    }

    /// Limit schedules to at most `bound` preemptions (context switches
    /// away from a still-runnable task). Most real bugs surface with
    /// bound ≤ 2; exploration that skips anything reports
    /// `truncated = true`, never a silent "complete".
    pub fn with_preemption_bound(mut self, bound: usize) -> Explorer {
        self.preemption_bound = Some(bound);
        self
    }

    /// Remove the preemption bound (full DPOR-pruned state space).
    pub fn unbounded(mut self) -> Explorer {
        self.preemption_bound = None;
        self
    }

    /// Safety cap on executions; hitting it sets `complete = false`.
    pub fn with_max_schedules(mut self, cap: u64) -> Explorer {
        self.max_schedules = cap;
        self
    }

    /// Run the DFS to fixpoint (or first failure / cap).
    pub fn explore<F>(&self, f: F) -> Exploration
    where
        F: Fn() + Send + Sync + 'static,
    {
        let root: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut stack: Vec<DfsNode> = Vec::new();
        let mut truncated = false;
        let mut schedules = 0u64;
        let mut pruned = 0u64;
        let mut aggregator = ReportAggregator::default();
        let mut failure = None;
        let mut exhausted = false;
        while schedules < self.max_schedules {
            let exec = {
                let mut strategy = Strategy::Dfs {
                    stack: &mut stack,
                    preemption_bound: self.preemption_bound,
                    truncated: &mut truncated,
                };
                run_execution(Arc::clone(&root), &mut strategy)
            };
            schedules += 1;
            aggregator.absorb(&exec);
            match exec.end {
                ExecEnd::Failed { kind, message } => {
                    failure = Some(Failure {
                        kind: match kind {
                            FailKind::Panic => FailureKind::Panic,
                            FailKind::Deadlock => FailureKind::Deadlock,
                        },
                        message,
                        schedule: Schedule::new(exec.decisions),
                    });
                    break;
                }
                ExecEnd::Pruned => pruned += 1,
                ExecEnd::Completed => {}
            }
            if !backtrack(&mut stack, self.preemption_bound, &mut truncated) {
                exhausted = true;
                break;
            }
        }
        Exploration {
            schedules,
            pruned,
            complete: failure.is_none() && exhausted && !truncated,
            truncated,
            failure: failure.clone(),
            lock_order: aggregator.into_report(),
        }
    }

    /// Re-run one execution forcing `schedule` as a prefix (deterministic
    /// defaults afterwards). Returns the failure it reproduces, if any.
    pub fn replay<F>(&self, schedule: &Schedule, f: F) -> Option<Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let root: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        replay_once(&root, schedule)
    }

    /// Shrink a failing schedule to the shortest prefix that still fails
    /// under default continuation. Returns the input unchanged if it does
    /// not reproduce (e.g. the code under test changed).
    pub fn minimize<F>(&self, schedule: &Schedule, f: F) -> Schedule
    where
        F: Fn() + Send + Sync + 'static,
    {
        let root: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        if replay_once(&root, schedule).is_none() {
            return schedule.clone();
        }
        for len in 0..schedule.len() {
            let prefix = Schedule::new(schedule.choices[..len].to_vec());
            if replay_once(&root, &prefix).is_some() {
                return prefix;
            }
        }
        schedule.clone()
    }
}

fn replay_once(root: &Arc<dyn Fn() + Send + Sync>, schedule: &Schedule) -> Option<Failure> {
    let prefix: Vec<TaskId> = schedule.choices.clone();
    let mut strategy = Strategy::Replay { prefix: &prefix };
    let exec = run_execution(Arc::clone(root), &mut strategy);
    match exec.end {
        ExecEnd::Failed { kind, message } => Some(Failure {
            kind: match kind {
                FailKind::Panic => FailureKind::Panic,
                FailKind::Deadlock => FailureKind::Deadlock,
            },
            message,
            schedule: Schedule::new(exec.decisions),
        }),
        _ => None,
    }
}

/// Advance the DFS stack to the next unexplored branch. Returns `false`
/// when the whole tree is exhausted.
fn backtrack(
    stack: &mut Vec<DfsNode>,
    preemption_bound: Option<usize>,
    truncated: &mut bool,
) -> bool {
    loop {
        let Some(node) = stack.last_mut() else {
            return false;
        };
        let mut next = None;
        for t in node.candidates() {
            if node.tried.contains(&t) || node.base_sleep.contains(&t) {
                continue;
            }
            let cost = usize::from(node.is_preemption(t));
            if let Some(bound) = preemption_bound {
                if node.preemptions_before + cost > bound {
                    *truncated = true;
                    continue;
                }
            }
            next = Some(t);
            break;
        }
        match next {
            Some(t) => {
                node.tried.push(t);
                return true;
            }
            None => {
                stack.pop();
            }
        }
    }
}
