//! Self-contained demonstration scenarios over the shim primitives.
//!
//! These exist for three reasons: they are the crate's own regression
//! suite (the wired-crate scenarios live in `ccc-crypto`/`ccc-core`
//! model tests), they seed the **intentional lost-update bug** the
//! acceptance criteria require the checker to catch, and the `mc-explore`
//! binary runs them twice in CI to diff explored-schedule counts for
//! determinism.

use crate::explore::{Explorer, Exploration};
use crate::modeled::{spawn, AtomicU64, Mutex, OnceLock};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Intentionally broken counter: `increment` is a load/store pair instead
/// of a fetch-add, so two concurrent increments can lose an update. The
/// model checker must find this (a committed minimized schedule replays
/// it forever after).
#[derive(Debug, Default)]
pub struct RacyCounter {
    value: AtomicU64,
}

impl RacyCounter {
    /// The seeded bug: read-modify-write without atomicity.
    pub fn increment(&self) {
        // ordering: Relaxed is *not* the bug here — the lost update comes
        // from splitting the RMW, which no ordering fixes.
        let v = self.value.load(Ordering::Relaxed);
        self.value.store(v + 1, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The corrected counter: a single atomic RMW per increment.
#[derive(Debug, Default)]
pub struct SafeCounter {
    value: AtomicU64,
}

impl SafeCounter {
    pub fn increment(&self) {
        // ordering: Relaxed — pure monotonic counter; no other memory is
        // published through it.
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Property: two concurrent `RacyCounter::increment`s still sum to 2.
/// This is FALSE — exploration finds the interleaving where both tasks
/// load 0 before either stores.
pub fn racy_counter_property() {
    let counter = Arc::new(RacyCounter::default());
    let (a, b) = (Arc::clone(&counter), Arc::clone(&counter));
    let t1 = spawn(move || a.increment());
    let t2 = spawn(move || b.increment());
    t1.join().expect("task 1");
    t2.join().expect("task 2");
    assert_eq!(counter.get(), 2, "lost update: racy counter dropped an increment");
}

/// Property: two concurrent `SafeCounter::increment`s sum to 2 (true in
/// every interleaving).
pub fn safe_counter_property() {
    let counter = Arc::new(SafeCounter::default());
    let (a, b) = (Arc::clone(&counter), Arc::clone(&counter));
    let t1 = spawn(move || a.increment());
    let t2 = spawn(move || b.increment());
    t1.join().expect("task 1");
    t2.join().expect("task 2");
    assert_eq!(counter.get(), 2);
}

/// Property: `OnceLock` coalescing — with N concurrent `get_or_init`
/// calls, the initializer runs exactly once and every task observes the
/// same value.
pub fn once_coalesce_property() {
    let cell: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
    let inits = Arc::new(SafeCounter::default());
    let handles: Vec<_> = (0..2)
        .map(|i| {
            let cell = Arc::clone(&cell);
            let inits = Arc::clone(&inits);
            spawn(move || {
                *cell.get_or_init(|| {
                    inits.increment();
                    40 + i
                })
            })
        })
        .collect();
    let seen: Vec<u64> = handles
        .into_iter()
        .map(|h| h.join().expect("init task"))
        .collect();
    assert_eq!(inits.get(), 1, "initializer ran more than once");
    assert!(
        seen.windows(2).all(|w| w[0] == w[1]),
        "tasks observed different values: {seen:?}"
    );
}

/// Inconsistent nesting under an outer gate: task 1 takes `a` then `b`,
/// task 2 takes `b` then `a`, but both hold `gate` around the nested
/// section so no schedule actually deadlocks. The lock-order pass still
/// reports the a⇄b class cycle — exactly the latent hazard lockdep-style
/// analysis exists to catch before the gate is ever removed.
pub fn gated_lock_inversion() {
    #[derive(Debug)]
    struct Demo {
        gate: Mutex<()>,
        a: Mutex<u32>,
        b: Mutex<u32>,
    }
    let demo = Arc::new(Demo {
        gate: Mutex::new(()),
        a: Mutex::new(0),
        b: Mutex::new(0),
    });
    let d1 = Arc::clone(&demo);
    let d2 = Arc::clone(&demo);
    let t1 = spawn(move || {
        let _g = d1.gate.lock().expect("gate");
        let mut a = d1.a.lock().expect("a");
        let mut b = d1.b.lock().expect("b");
        *a += 1;
        *b += 1;
    });
    let t2 = spawn(move || {
        let _g = d2.gate.lock().expect("gate");
        let mut b = d2.b.lock().expect("b");
        let mut a = d2.a.lock().expect("a");
        *b += 1;
        *a += 1;
    });
    t1.join().expect("task 1");
    t2.join().expect("task 2");
}

/// Genuine deadlock: the same inversion with the gate removed. The
/// explorer finds the schedule where each task holds one lock and blocks
/// on the other, reported as [`FailureKind::Deadlock`](crate::FailureKind).
pub fn ungated_lock_inversion() {
    let locks = Arc::new((Mutex::new(0u32), Mutex::new(0u32)));
    let l1 = Arc::clone(&locks);
    let l2 = Arc::clone(&locks);
    let t1 = spawn(move || {
        let mut a = l1.0.lock().expect("a");
        let mut b = l1.1.lock().expect("b");
        *a += 1;
        *b += 1;
    });
    let t2 = spawn(move || {
        let mut b = l2.1.lock().expect("b");
        let mut a = l2.0.lock().expect("a");
        *b += 1;
        *a += 1;
    });
    t1.join().expect("task 1");
    t2.join().expect("task 2");
}

/// One named scenario run, for the determinism harness.
#[derive(Debug)]
pub struct ScenarioOutcome {
    pub name: &'static str,
    pub exploration: Exploration,
    /// Whether this scenario is *expected* to fail (seeded bugs).
    pub expect_failure: bool,
}

/// Run the whole built-in suite under `bound` preemptions. Output order
/// and contents are deterministic; `mc-explore` prints this twice in CI
/// and diffs the schedule counts.
pub fn run_suite(bound: usize) -> Vec<ScenarioOutcome> {
    let explorer = Explorer::new().with_preemption_bound(bound);
    vec![
        ScenarioOutcome {
            name: "racy-counter",
            exploration: explorer.explore(racy_counter_property),
            expect_failure: true,
        },
        ScenarioOutcome {
            name: "safe-counter",
            exploration: explorer.explore(safe_counter_property),
            expect_failure: false,
        },
        ScenarioOutcome {
            name: "once-coalesce",
            exploration: explorer.explore(once_coalesce_property),
            expect_failure: false,
        },
        ScenarioOutcome {
            name: "gated-lock-inversion",
            exploration: explorer.explore(gated_lock_inversion),
            expect_failure: false,
        },
        ScenarioOutcome {
            name: "ungated-lock-inversion",
            exploration: explorer.explore(ungated_lock_inversion),
            expect_failure: true,
        },
    ]
}
