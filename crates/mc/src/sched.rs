//! The cooperative scheduler behind the `model-check` build.
//!
//! Execution model: every model task runs on its own OS thread, but a
//! single *token* gates execution — exactly one task runs user code at a
//! time, and the driver (the thread inside `Explorer::explore`) decides
//! who gets the token at every *scheduling point* (each shim
//! acquire/release/load/store/init). Between scheduling points a task
//! runs uninterrupted, which is sound because only shim operations touch
//! shared state.
//!
//! Interleavings are enumerated by re-running the closure once per
//! schedule: executions are deterministic functions of the choice
//! sequence, so a depth-first search over choices visits every
//! interleaving. Pruning:
//!
//! - **Sleep sets** (Godefroid): after a branch `t` is fully explored at a
//!   node, `t` sleeps for the node's later branches and stays asleep down
//!   those branches until a *dependent* operation runs. Dependence is
//!   last-access-style: two operations commute unless they touch the same
//!   object and at least one writes.
//! - **Preemption bounding**: switching away from a still-runnable task
//!   costs one unit of the configured budget; branches that would exceed
//!   it are skipped and the exploration is flagged as bound-truncated
//!   (never silently "complete").

use crate::report::{AtomicSiteSummary, LockClass, LockEdge, LockKind, LockOrderReport};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

pub(crate) type TaskId = usize;
pub(crate) type ObjId = u64;

/// Monotone run-generation counter: object identities are lazily bound to
/// a generation so shim objects created *outside* a run (or surviving
/// from a previous execution) get fresh ids in the next one.
static RUN_GENERATION: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_generation() -> u64 {
    // ordering: Relaxed — the counter only needs uniqueness, and each
    // generation value is handed to exactly one Runtime on one thread.
    RUN_GENERATION.fetch_add(1, AtomicOrdering::Relaxed)
}

/// Panic payload used to unwind tasks when an execution is being torn
/// down (failure found, branch pruned). Task wrappers catch it and mark
/// the task finished without recording a failure.
pub(crate) struct CancelToken;

/// What kind of shared object an id denotes (drives enabledness).
#[derive(Debug)]
pub(crate) enum ObjState {
    Mutex {
        holder: Option<TaskId>,
    },
    RwLock {
        readers: BTreeSet<TaskId>,
        writer: Option<TaskId>,
    },
    Once {
        status: OnceStatus,
    },
    Atomic,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum OnceStatus {
    Uninit,
    Initializing(TaskId),
    Done,
}

/// The operation a task declares at a scheduling point.
#[derive(Clone, Debug)]
pub(crate) struct Op {
    pub obj: Option<ObjId>,
    /// True when the op does not commute with other ops on the same
    /// object (anything but a pure read).
    pub write: bool,
    pub what: OpWhat,
    /// Caller source location (`crates/crypto/src/intern.rs:182`).
    pub site: String,
}

#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum OpWhat {
    /// First scheduling point of every task; always enabled.
    Begin,
    /// Explicit `yield_now`; always enabled.
    Yield,
    MutexAcquire,
    MutexRelease,
    RwReadAcquire,
    RwReadRelease,
    RwWriteAcquire,
    RwWriteRelease,
    /// `OnceLock` read or init claim (resolved at grant time).
    OnceAcquire,
    /// Non-blocking `OnceLock::get`: observes the cell without claiming
    /// initialization; always enabled.
    OnceGet,
    /// Initializer finished; publishes the value.
    OnceComplete,
    /// Atomic op; `bucket` is load/store/rmw, `ordering` the requested
    /// `Ordering`, recorded for the atomics-notes pass.
    Atomic {
        bucket: &'static str,
        ordering: &'static str,
    },
    /// Join on another model task; enabled once it finished.
    Join(TaskId),
}

/// Driver's answer to a granted [`OpWhat::OnceAcquire`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum OnceRole {
    /// This task claimed initialization: run the closure, then declare
    /// [`OpWhat::OnceComplete`].
    Claimed,
    /// The cell is already initialized: read it.
    Read,
}

#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Grant {
    pub once_role: Option<OnceRole>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// OS thread spawned but not yet parked at its `Begin` point.
    Starting,
    /// Parked at a scheduling point with a pending op.
    Parked,
    /// Holds the token and is executing user code.
    Running,
    Finished,
}

struct TaskSlot {
    status: Status,
    pending: Option<Op>,
    grant: Option<Grant>,
}

/// Why an execution ended.
#[derive(Clone, Debug)]
pub(crate) enum ExecEnd {
    /// All tasks ran to completion.
    Completed,
    /// Sleep-set pruning: every enabled task was asleep, so the branch is
    /// covered elsewhere.
    Pruned,
    /// A property failed: a task panicked, or every live task blocked.
    Failed { kind: FailKind, message: String },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum FailKind {
    Panic,
    Deadlock,
}

pub(crate) struct ExecResult {
    pub end: ExecEnd,
    /// The choice made at every scheduling point, in order.
    pub decisions: Vec<TaskId>,
    /// Lock classes observed this execution.
    pub classes: Vec<LockClass>,
    /// `(from class, to class, acquire site)` → distinct instance pairs.
    pub edges: BTreeMap<(usize, usize, String), BTreeSet<(ObjId, ObjId)>>,
    /// Atomic op site → orderings per bucket.
    pub atomics: BTreeMap<String, [BTreeSet<&'static str>; 3]>,
}

struct RunInner {
    tasks: Vec<TaskSlot>,
    objects: BTreeMap<ObjId, ObjState>,
    /// Deduplicated lock classes; `class_of` maps object → class index.
    classes: Vec<LockClass>,
    class_index: BTreeMap<(LockKind, String), usize>,
    class_of: BTreeMap<ObjId, usize>,
    next_obj: ObjId,
    /// Task allowed to take the token next.
    token: Option<TaskId>,
    /// Task currently executing user code.
    running: Option<TaskId>,
    decisions: Vec<TaskId>,
    failure: Option<(FailKind, String)>,
    cancelling: bool,
    /// Locks currently held per task (acquisition order).
    lock_stacks: Vec<Vec<ObjId>>,
    edges: BTreeMap<(usize, usize, String), BTreeSet<(ObjId, ObjId)>>,
    atomics: BTreeMap<String, [BTreeSet<&'static str>; 3]>,
    /// OS thread handles, joined at execution teardown.
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Per-execution coordination shared by the driver and every task thread.
pub(crate) struct Runtime {
    inner: Mutex<RunInner>,
    cv: Condvar,
    pub(crate) generation: u64,
}

thread_local! {
    static CURRENT: RefCell<Option<TaskCtx>> = const { RefCell::new(None) };
}

/// The ambient model-task identity of the current OS thread.
#[derive(Clone)]
pub(crate) struct TaskCtx {
    pub rt: Arc<Runtime>,
    pub id: TaskId,
}

pub(crate) fn current() -> Option<TaskCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Lock the runtime state, absorbing poisoning: tasks unwind through
/// scheduling points by design (cancellation), and the state stays
/// consistent because mutations happen only under driver control.
fn lock_inner(rt: &Runtime) -> MutexGuard<'_, RunInner> {
    rt.inner.lock().unwrap_or_else(|e| e.into_inner())
}

/// Property failures unwind model tasks by design; the default panic hook
/// would spam a backtrace per explored failing schedule. Silence it for
/// model task threads only (the payload still carries the message into
/// the `Failure`).
fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model_task = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("mc-task-"));
            if !in_model_task {
                previous(info);
            }
        }));
    });
}

impl Runtime {
    pub(crate) fn new() -> Arc<Runtime> {
        install_quiet_panic_hook();
        Arc::new(Runtime {
            inner: Mutex::new(RunInner {
                tasks: Vec::new(),
                objects: BTreeMap::new(),
                classes: Vec::new(),
                class_index: BTreeMap::new(),
                class_of: BTreeMap::new(),
                next_obj: 0,
                token: None,
                running: None,
                decisions: Vec::new(),
                failure: None,
                cancelling: false,
                lock_stacks: Vec::new(),
                edges: BTreeMap::new(),
                atomics: BTreeMap::new(),
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
            generation: next_generation(),
        })
    }

    /// Register a shared object the first time it is touched in this
    /// run's generation. `class` names the lock class (mutex/rwlock by
    /// construction site, once-init by first initializer site); atomics
    /// carry no class.
    pub(crate) fn bind_object(
        self: &Arc<Runtime>,
        state: impl FnOnce() -> ObjState,
        class: Option<LockClass>,
    ) -> ObjId {
        let mut inner = lock_inner(self);
        let id = inner.next_obj;
        inner.next_obj += 1;
        inner.objects.insert(id, state());
        if let Some(class) = class {
            let key = (class.kind, class.site.clone());
            let idx = match inner.class_index.get(&key) {
                Some(&idx) => idx,
                None => {
                    let idx = inner.classes.len();
                    inner.classes.push(class);
                    inner.class_index.insert(key, idx);
                    idx
                }
            };
            inner.class_of.insert(id, idx);
        }
        id
    }

    /// Register a new task (thread not yet parked). Returns its id.
    fn register_task(self: &Arc<Runtime>) -> TaskId {
        let mut inner = lock_inner(self);
        let id = inner.tasks.len();
        inner.tasks.push(TaskSlot {
            status: Status::Starting,
            pending: None,
            grant: None,
        });
        inner.lock_stacks.push(Vec::new());
        id
    }

    /// Spawn a model task running `body`. Callable from the driver (root
    /// task) or from a running task (child tasks).
    pub(crate) fn spawn_task(self: &Arc<Runtime>, body: Box<dyn FnOnce() + Send>) -> TaskId {
        let id = self.register_task();
        let rt = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("mc-task-{id}"))
            .spawn(move || {
                CURRENT.with(|c| {
                    *c.borrow_mut() = Some(TaskCtx {
                        rt: Arc::clone(&rt),
                        id,
                    })
                });
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // First scheduling point: the task does nothing until
                    // the driver picks it.
                    rt.yield_op(
                        id,
                        Op {
                            obj: None,
                            write: false,
                            what: OpWhat::Begin,
                            site: String::new(),
                        },
                    );
                    body();
                }));
                let mut inner = lock_inner(&rt);
                if let Err(payload) = outcome {
                    if !payload.is::<CancelToken>() && inner.failure.is_none() {
                        let message = panic_message(payload.as_ref());
                        inner.failure = Some((FailKind::Panic, message));
                        inner.cancelling = true;
                    }
                }
                inner.tasks[id].status = Status::Finished;
                if inner.running == Some(id) {
                    inner.running = None;
                }
                drop(inner);
                rt.cv.notify_all();
            })
            .expect("spawn model task thread");
        lock_inner(self).handles.push(handle);
        self.cv.notify_all();
        id
    }

    /// Park at a scheduling point and wait for the token. Panics with
    /// [`CancelToken`] if the execution is being torn down — callers in
    /// drop paths must use [`yield_op_for_drop`](Self::yield_op_for_drop).
    pub(crate) fn yield_op(self: &Arc<Runtime>, me: TaskId, op: Op) -> Grant {
        match self.yield_op_inner(me, op) {
            Some(grant) => grant,
            None => std::panic::panic_any(CancelToken),
        }
    }

    /// Non-panicking variant for guard `Drop` impls: returns `None` when
    /// the run is cancelling (the logical release is skipped; the whole
    /// execution is being discarded).
    pub(crate) fn yield_op_for_drop(self: &Arc<Runtime>, me: TaskId, op: Op) -> Option<Grant> {
        self.yield_op_inner(me, op)
    }

    fn yield_op_inner(self: &Arc<Runtime>, me: TaskId, op: Op) -> Option<Grant> {
        let mut inner = lock_inner(self);
        if inner.cancelling {
            return None;
        }
        inner.tasks[me].pending = Some(op);
        inner.tasks[me].status = Status::Parked;
        if inner.running == Some(me) {
            inner.running = None;
        }
        self.cv.notify_all();
        loop {
            if inner.cancelling {
                return None;
            }
            if inner.token == Some(me) {
                break;
            }
            inner = self
                .cv
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
        inner.token = None;
        inner.running = Some(me);
        inner.tasks[me].status = Status::Running;
        let grant = inner.tasks[me].grant.take().unwrap_or_default();
        Some(grant)
    }

    /// Record a failure from task context (used by the deadlock path and
    /// assertion helpers running on the driver).
    fn fail(inner: &mut RunInner, kind: FailKind, message: String) {
        if inner.failure.is_none() {
            inner.failure = Some((kind, message));
        }
        inner.cancelling = true;
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked (non-string payload)".to_string()
    }
}

/// Operation signature used by the independence relation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct OpSig {
    obj: Option<ObjId>,
    write: bool,
}

/// Last-access independence: ops commute unless they touch the same
/// object and at least one writes.
pub(crate) fn independent(a: OpSig, b: OpSig) -> bool {
    match (a.obj, b.obj) {
        (Some(x), Some(y)) if x == y => !(a.write || b.write),
        _ => true,
    }
}

/// One node of the persistent DFS stack (a scheduling point on the
/// current path, with the bookkeeping needed to enumerate alternatives).
#[derive(Clone, Debug)]
pub(crate) struct DfsNode {
    /// Sleep set inherited from the parent branch.
    pub base_sleep: BTreeSet<TaskId>,
    /// Branches taken so far, in order; the last one is the branch the
    /// current execution follows.
    pub tried: Vec<TaskId>,
    /// Enabled tasks at this point (recomputed and verified on replay).
    pub enabled: Vec<TaskId>,
    /// Pending-op signatures of the enabled tasks.
    pub sigs: BTreeMap<TaskId, OpSig>,
    /// Cumulative preemptions on the path *before* this choice.
    pub preemptions_before: usize,
    /// The task that ran into this scheduling point (preemption
    /// accounting: switching away from it while it stays enabled costs 1).
    pub prev_task: Option<TaskId>,
}

impl DfsNode {
    /// The sleep set in effect when the `k`-th branch was taken.
    fn sleep_at(&self, k: usize) -> BTreeSet<TaskId> {
        let mut s = self.base_sleep.clone();
        s.extend(self.tried[..k].iter().copied());
        s
    }

    /// Sleep set to pass to the child of the current (last-tried) branch.
    pub(crate) fn child_sleep(&self) -> BTreeSet<TaskId> {
        let k = self.tried.len() - 1;
        let chosen = self.tried[k];
        let chosen_sig = self.sigs[&chosen];
        self.sleep_at(k)
            .into_iter()
            .filter(|t| independent(self.sigs[t], chosen_sig))
            .collect()
    }

    /// Whether taking `t` next would be a preemption.
    pub(crate) fn is_preemption(&self, t: TaskId) -> bool {
        match self.prev_task {
            Some(p) => p != t && self.enabled.contains(&p),
            None => false,
        }
    }

    /// Candidate order shared with replay defaults: continue the previous
    /// task when possible, then ascending ids.
    pub(crate) fn candidates(&self) -> Vec<TaskId> {
        candidate_order(&self.enabled, self.prev_task)
    }
}

/// Deterministic candidate order: the previously running task first (no
/// preemption), then the rest ascending.
pub(crate) fn candidate_order(enabled: &[TaskId], prev: Option<TaskId>) -> Vec<TaskId> {
    let mut out = Vec::with_capacity(enabled.len());
    if let Some(p) = prev {
        if enabled.contains(&p) {
            out.push(p);
        }
    }
    for &t in enabled {
        if Some(t) != prev {
            out.push(t);
        }
    }
    out
}

/// How the driver chooses at each scheduling point.
pub(crate) enum Strategy<'a> {
    /// DFS exploration against the persistent stack.
    Dfs {
        stack: &'a mut Vec<DfsNode>,
        preemption_bound: Option<usize>,
        truncated: &'a mut bool,
    },
    /// Forced prefix, then defaults (replay of a serialized schedule).
    Replay { prefix: &'a [TaskId] },
}

/// Run one execution of `root` to completion under `strategy`.
pub(crate) fn run_execution(
    root: Arc<dyn Fn() + Send + Sync>,
    strategy: &mut Strategy<'_>,
) -> ExecResult {
    let rt = Runtime::new();
    {
        let root = Arc::clone(&root);
        rt.spawn_task(Box::new(move || root()));
    }
    drive(&rt, strategy);
    teardown(&rt)
}

/// The scheduling loop: waits for quiescence, picks the next task, applies
/// the op's state transition, grants the token. Returns when the
/// execution completed, failed, or was pruned.
fn drive(rt: &Arc<Runtime>, strategy: &mut Strategy<'_>) {
    let mut depth = 0usize;
    // Sleep set flowing down the current path (DFS mode only).
    let mut cur_sleep: BTreeSet<TaskId> = BTreeSet::new();
    let mut preemptions = 0usize;
    let mut prev_task: Option<TaskId> = None;
    loop {
        let mut inner = lock_inner(rt);
        // Quiesce: nobody running, nobody mid-spawn.
        loop {
            if inner.cancelling {
                // Failure already recorded; drain below.
                drop(inner);
                return;
            }
            let busy = inner.running.is_some()
                || inner.tasks.iter().any(|t| t.status == Status::Starting);
            if !busy {
                break;
            }
            inner = rt.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        let parked: Vec<TaskId> = inner
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Parked)
            .map(|(i, _)| i)
            .collect();
        if parked.is_empty() {
            // Every task finished: execution complete.
            return;
        }
        let enabled: Vec<TaskId> = parked
            .iter()
            .copied()
            .filter(|&t| {
                let op = inner.tasks[t].pending.as_ref().expect("parked task has op");
                op_enabled(&inner, op)
            })
            .collect();
        if enabled.is_empty() {
            let description = parked
                .iter()
                .map(|&t| {
                    let op = inner.tasks[t].pending.as_ref().expect("parked task has op");
                    format!("task {t} blocked on {:?} at {}", op.what, op.site)
                })
                .collect::<Vec<_>>()
                .join("; ");
            Runtime::fail(&mut inner, FailKind::Deadlock, format!("deadlock: {description}"));
            drop(inner);
            rt.cv.notify_all();
            return;
        }
        let sigs: BTreeMap<TaskId, OpSig> = enabled
            .iter()
            .map(|&t| {
                let op = inner.tasks[t].pending.as_ref().expect("parked task has op");
                (t, op_sig(&inner, op))
            })
            .collect();
        // Choose.
        let chosen = match strategy {
            Strategy::Dfs {
                stack,
                preemption_bound,
                truncated,
            } => {
                if depth < stack.len() {
                    // Descend the committed path.
                    let node = &stack[depth];
                    assert_eq!(
                        node.enabled, enabled,
                        "nondeterministic execution: enabled set diverged at depth {depth}"
                    );
                    let chosen = *node.tried.last().expect("committed node has a branch");
                    if node.is_preemption(chosen) {
                        preemptions += 1;
                    }
                    cur_sleep = node.child_sleep();
                    chosen
                } else {
                    // Fresh territory: pick the first non-sleeping,
                    // bound-respecting candidate.
                    let node = DfsNode {
                        base_sleep: cur_sleep.clone(),
                        tried: Vec::new(),
                        enabled: enabled.clone(),
                        sigs: sigs.clone(),
                        preemptions_before: preemptions,
                        prev_task,
                    };
                    let mut pick = None;
                    for t in node.candidates() {
                        if node.base_sleep.contains(&t) {
                            continue;
                        }
                        let cost = usize::from(node.is_preemption(t));
                        if let Some(bound) = preemption_bound {
                            if preemptions + cost > *bound {
                                **truncated = true;
                                continue;
                            }
                        }
                        pick = Some(t);
                        break;
                    }
                    match pick {
                        Some(t) => {
                            let mut node = node;
                            node.tried.push(t);
                            if node.is_preemption(t) {
                                preemptions += 1;
                            }
                            cur_sleep = node.child_sleep();
                            stack.push(node);
                            t
                        }
                        None => {
                            // Every enabled task is asleep (or clipped by
                            // the bound): this branch is covered
                            // elsewhere. Abort the execution.
                            inner.cancelling = true;
                            drop(inner);
                            rt.cv.notify_all();
                            return;
                        }
                    }
                }
            }
            Strategy::Replay { prefix } => {
                if depth < prefix.len() {
                    let t = prefix[depth];
                    assert!(
                        enabled.contains(&t),
                        "schedule replay diverged: task {t} not enabled at step {depth} \
                         (enabled: {enabled:?}) — the schedule predates a code change"
                    );
                    t
                } else {
                    candidate_order(&enabled, prev_task)[0]
                }
            }
        };
        depth += 1;
        inner.decisions.push(chosen);
        let op = inner.tasks[chosen]
            .pending
            .take()
            .expect("chosen task has op");
        let grant = apply_op(&mut inner, chosen, &op);
        prev_task = Some(chosen);
        inner.tasks[chosen].grant = Some(grant);
        // Mark the task running *now*: the driver must not observe the
        // post-grant state as quiescent before the task thread wakes.
        inner.tasks[chosen].status = Status::Running;
        inner.running = Some(chosen);
        inner.token = Some(chosen);
        drop(inner);
        rt.cv.notify_all();
    }
}

/// Wait for every task thread to exit and package the run's results.
fn teardown(rt: &Arc<Runtime>) -> ExecResult {
    // Wake anyone still parked (cancellation path).
    rt.cv.notify_all();
    loop {
        let mut inner = lock_inner(rt);
        let all_finished = inner.tasks.iter().all(|t| t.status == Status::Finished);
        if all_finished {
            let handles = std::mem::take(&mut inner.handles);
            let end = match (&inner.failure, inner.cancelling) {
                (Some((kind, message)), _) => ExecEnd::Failed {
                    kind: *kind,
                    message: message.clone(),
                },
                (None, true) => ExecEnd::Pruned,
                (None, false) => ExecEnd::Completed,
            };
            let result = ExecResult {
                end,
                decisions: inner.decisions.clone(),
                classes: inner.classes.clone(),
                edges: inner.edges.clone(),
                atomics: inner.atomics.clone(),
            };
            drop(inner);
            for h in handles {
                let _ = h.join();
            }
            return result;
        }
        let _unused = rt.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
    }
}

fn op_enabled(inner: &RunInner, op: &Op) -> bool {
    match &op.what {
        OpWhat::Begin
        | OpWhat::Yield
        | OpWhat::MutexRelease
        | OpWhat::RwReadRelease
        | OpWhat::RwWriteRelease
        | OpWhat::OnceComplete
        | OpWhat::OnceGet
        | OpWhat::Atomic { .. } => true,
        OpWhat::MutexAcquire => {
            matches!(obj(inner, op), ObjState::Mutex { holder: None })
        }
        OpWhat::RwReadAcquire => {
            matches!(obj(inner, op), ObjState::RwLock { writer: None, .. })
        }
        OpWhat::RwWriteAcquire => matches!(
            obj(inner, op),
            ObjState::RwLock {
                writer: None,
                readers
            } if readers.is_empty()
        ),
        OpWhat::OnceAcquire => !matches!(
            obj(inner, op),
            ObjState::Once {
                status: OnceStatus::Initializing(_)
            }
        ),
        OpWhat::Join(t) => inner.tasks[*t].status == Status::Finished,
    }
}

fn obj<'a>(inner: &'a RunInner, op: &Op) -> &'a ObjState {
    let id = op.obj.expect("object-bearing op");
    inner.objects.get(&id).expect("object bound before use")
}

fn op_sig(inner: &RunInner, op: &Op) -> OpSig {
    let write = match &op.what {
        // A once-read commutes with other once-reads; a claim does not.
        OpWhat::OnceAcquire => !matches!(
            obj(inner, op),
            ObjState::Once {
                status: OnceStatus::Done
            }
        ),
        _ => op.write,
    };
    OpSig { obj: op.obj, write }
}

/// Apply the state transition for a granted op and record lock-order /
/// atomics facts. Runs under the driver with the token free, so the
/// transition is atomic with respect to every task.
fn apply_op(inner: &mut RunInner, t: TaskId, op: &Op) -> Grant {
    match &op.what {
        OpWhat::Begin | OpWhat::Yield | OpWhat::OnceGet => Grant::default(),
        OpWhat::MutexAcquire => {
            let id = op.obj.expect("mutex op has object");
            record_acquisition(inner, t, id, &op.site);
            match inner.objects.get_mut(&id) {
                Some(ObjState::Mutex { holder }) => {
                    debug_assert!(holder.is_none());
                    *holder = Some(t);
                }
                _ => unreachable!("mutex object"),
            }
            inner.lock_stacks[t].push(id);
            Grant::default()
        }
        OpWhat::MutexRelease => {
            let id = op.obj.expect("mutex op has object");
            if let Some(ObjState::Mutex { holder }) = inner.objects.get_mut(&id) {
                *holder = None;
            }
            release_from_stack(inner, t, id);
            Grant::default()
        }
        OpWhat::RwReadAcquire => {
            let id = op.obj.expect("rwlock op has object");
            record_acquisition(inner, t, id, &op.site);
            if let Some(ObjState::RwLock { readers, .. }) = inner.objects.get_mut(&id) {
                readers.insert(t);
            }
            inner.lock_stacks[t].push(id);
            Grant::default()
        }
        OpWhat::RwReadRelease => {
            let id = op.obj.expect("rwlock op has object");
            if let Some(ObjState::RwLock { readers, .. }) = inner.objects.get_mut(&id) {
                readers.remove(&t);
            }
            release_from_stack(inner, t, id);
            Grant::default()
        }
        OpWhat::RwWriteAcquire => {
            let id = op.obj.expect("rwlock op has object");
            record_acquisition(inner, t, id, &op.site);
            if let Some(ObjState::RwLock { writer, .. }) = inner.objects.get_mut(&id) {
                *writer = Some(t);
            }
            inner.lock_stacks[t].push(id);
            Grant::default()
        }
        OpWhat::RwWriteRelease => {
            let id = op.obj.expect("rwlock op has object");
            if let Some(ObjState::RwLock { writer, .. }) = inner.objects.get_mut(&id) {
                *writer = None;
            }
            release_from_stack(inner, t, id);
            Grant::default()
        }
        OpWhat::OnceAcquire => {
            let id = op.obj.expect("once op has object");
            let status = match inner.objects.get(&id) {
                Some(ObjState::Once { status }) => *status,
                _ => unreachable!("once object"),
            };
            match status {
                OnceStatus::Done => Grant {
                    once_role: Some(OnceRole::Read),
                },
                OnceStatus::Uninit => {
                    record_acquisition(inner, t, id, &op.site);
                    if let Some(ObjState::Once { status }) = inner.objects.get_mut(&id) {
                        *status = OnceStatus::Initializing(t);
                    }
                    inner.lock_stacks[t].push(id);
                    Grant {
                        once_role: Some(OnceRole::Claimed),
                    }
                }
                OnceStatus::Initializing(_) => unreachable!("disabled op granted"),
            }
        }
        OpWhat::OnceComplete => {
            let id = op.obj.expect("once op has object");
            if let Some(ObjState::Once { status }) = inner.objects.get_mut(&id) {
                *status = OnceStatus::Done;
            }
            release_from_stack(inner, t, id);
            Grant::default()
        }
        OpWhat::Atomic { bucket, ordering } => {
            let buckets = inner.atomics.entry(op.site.clone()).or_default();
            let slot = match *bucket {
                "load" => 0,
                "store" => 1,
                _ => 2,
            };
            buckets[slot].insert(*ordering);
            Grant::default()
        }
        OpWhat::Join(_) => Grant::default(),
    }
}

/// Record lock-order edges from every lock `t` currently holds to the
/// lock it is acquiring.
fn record_acquisition(inner: &mut RunInner, t: TaskId, acquired: ObjId, site: &str) {
    let Some(&to_class) = inner.class_of.get(&acquired) else {
        return;
    };
    let held: Vec<ObjId> = inner.lock_stacks[t].clone();
    for h in held {
        let Some(&from_class) = inner.class_of.get(&h) else {
            continue;
        };
        inner
            .edges
            .entry((from_class, to_class, site.to_string()))
            .or_default()
            .insert((h, acquired));
    }
}

fn release_from_stack(inner: &mut RunInner, t: TaskId, id: ObjId) {
    if let Some(pos) = inner.lock_stacks[t].iter().rposition(|&o| o == id) {
        inner.lock_stacks[t].remove(pos);
    }
}

/// Merge per-execution lock/atomic facts across an exploration.
#[derive(Default)]
pub(crate) struct ReportAggregator {
    classes: Vec<LockClass>,
    class_index: BTreeMap<(LockKind, String), usize>,
    /// `(from, to, site)` → max distinct instance pairs seen in one run.
    edges: BTreeMap<(usize, usize, String), u64>,
    atomics: BTreeMap<String, [BTreeSet<&'static str>; 3]>,
}

impl ReportAggregator {
    pub(crate) fn absorb(&mut self, exec: &ExecResult) {
        // Remap the run-local class indices into the global table.
        let remap: Vec<usize> = exec
            .classes
            .iter()
            .map(|c| {
                let key = (c.kind, c.site.clone());
                match self.class_index.get(&key) {
                    Some(&i) => i,
                    None => {
                        let i = self.classes.len();
                        self.classes.push(c.clone());
                        self.class_index.insert(key, i);
                        i
                    }
                }
            })
            .collect();
        for ((from, to, site), pairs) in &exec.edges {
            let key = (remap[*from], remap[*to], site.clone());
            let count = pairs.len() as u64;
            let entry = self.edges.entry(key).or_insert(0);
            *entry = (*entry).max(count);
        }
        for (site, buckets) in &exec.atomics {
            let agg = self.atomics.entry(site.clone()).or_default();
            for (slot, orderings) in buckets.iter().enumerate() {
                agg[slot].extend(orderings.iter().copied());
            }
        }
    }

    pub(crate) fn into_report(self) -> LockOrderReport {
        // Sort classes for a stable report, remapping edges once more.
        let mut order: Vec<usize> = (0..self.classes.len()).collect();
        order.sort_by(|&a, &b| self.classes[a].cmp(&self.classes[b]));
        let mut position = vec![0usize; self.classes.len()];
        for (new_idx, &old_idx) in order.iter().enumerate() {
            position[old_idx] = new_idx;
        }
        let classes: Vec<LockClass> = order.iter().map(|&i| self.classes[i].clone()).collect();
        let mut edges: Vec<LockEdge> = self
            .edges
            .into_iter()
            .map(|((from, to, site), observations)| LockEdge {
                from: position[from],
                to: position[to],
                acquire_site: site,
                observations,
            })
            .collect();
        edges.sort();
        let atomics = self
            .atomics
            .into_iter()
            .map(|(site, buckets)| AtomicSiteSummary {
                site,
                load_orderings: buckets[0].iter().map(|s| s.to_string()).collect(),
                store_orderings: buckets[1].iter().map(|s| s.to_string()).collect(),
                rmw_orderings: buckets[2].iter().map(|s| s.to_string()).collect(),
            })
            .collect();
        let mut report = LockOrderReport {
            classes,
            edges,
            cycles: Vec::new(),
            atomics,
        };
        report.detect_cycles();
        report
    }
}
