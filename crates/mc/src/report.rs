//! Schedule serialization and the lock-order / atomics-ordering report.
//!
//! These types are compiled in **both** build modes: under `model-check`
//! the explorer produces them, and without the feature downstream tooling
//! (the `ccc-lint` SARIF bridge, golden-snapshot tests) can still parse,
//! construct, and render them.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A serialized interleaving: the task id chosen at each scheduling
/// point, in order. The textual form is a comma-separated id list
/// (`"0,1,1,0"`), stable enough to commit as a regression artifact and
/// feed back to `Explorer::replay`.
///
/// A schedule is a *prefix*: replay forces the recorded choices and
/// continues with the deterministic default (lowest-id enabled task) once
/// the prefix is exhausted, which is what makes trailing-default
/// minimization sound.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Schedule {
    /// Chosen task id per scheduling point.
    pub choices: Vec<usize>,
}

impl Schedule {
    /// An empty schedule (pure default execution).
    pub fn new(choices: Vec<usize>) -> Schedule {
        Schedule { choices }
    }

    /// Number of recorded scheduling points.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// True when no choices are recorded.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Error parsing a [`Schedule`] from its textual form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScheduleParseError {
    /// The offending token.
    pub token: String,
}

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule token {:?}", self.token)
    }
}

impl std::error::Error for ScheduleParseError {}

impl FromStr for Schedule {
    type Err = ScheduleParseError;

    /// Parse `"0,1,1,0"`. Whitespace around tokens is tolerated; an empty
    /// or all-whitespace string is the empty schedule. Lines starting with
    /// `#` are comments (so committed `.txt` schedules can say what they
    /// reproduce).
    fn from_str(s: &str) -> Result<Schedule, ScheduleParseError> {
        let mut choices = Vec::new();
        for line in s.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            for token in line.split(',') {
                let token = token.trim();
                if token.is_empty() {
                    continue;
                }
                match token.parse::<usize>() {
                    Ok(c) => choices.push(c),
                    Err(_) => {
                        return Err(ScheduleParseError {
                            token: token.to_string(),
                        })
                    }
                }
            }
        }
        Ok(Schedule { choices })
    }
}

/// What kind of lock-like object a [`LockClass`] describes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LockKind {
    /// An `mc::Mutex`.
    Mutex,
    /// An `mc::RwLock` (read and write acquisitions share the class).
    RwLock,
    /// An `mc::OnceLock` initialization slot (`get_or_init` holds the
    /// class for the duration of the initializer).
    OnceInit,
}

impl LockKind {
    /// Human label used in messages and SARIF.
    pub fn label(self) -> &'static str {
        match self {
            LockKind::Mutex => "mutex",
            LockKind::RwLock => "rwlock",
            LockKind::OnceInit => "once-init",
        }
    }
}

/// A lock *class*: every lock instance constructed at the same source
/// location (lockdep-style). The 16 `KeyRegistry` shard mutexes are one
/// class; a cycle within a class (self-edge) means instances of the same
/// class nest, which deadlocks unless acquisition is index-ordered.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LockClass {
    /// What kind of primitive this class groups.
    pub kind: LockKind,
    /// Construction site (`crates/crypto/src/intern.rs:256`) for mutexes
    /// and rwlocks; first-initializer site for once-init classes.
    pub site: String,
}

impl fmt::Display for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind.label(), self.site)
    }
}

/// One directed acquisition edge: a task acquired `to` while holding
/// `from`, observed in at least one explored schedule.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LockEdge {
    /// Index into [`LockOrderReport::classes`] of the held lock.
    pub from: usize,
    /// Index into [`LockOrderReport::classes`] of the acquired lock.
    pub to: usize,
    /// Source location of the acquisition that created the edge.
    pub acquire_site: String,
    /// Distinct `(held instance, acquired instance)` pairs that produced
    /// this edge across the exploration.
    pub observations: u64,
}

/// Atomic access summary for one source location, used by the
/// atomics-ordering notes pass. Orderings are recorded as requested by
/// the caller even though exploration itself is sequentially consistent.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AtomicSiteSummary {
    /// The call site (`crates/crypto/src/intern.rs:182`).
    pub site: String,
    /// Orderings observed on plain loads, deduplicated, sorted.
    pub load_orderings: Vec<String>,
    /// Orderings observed on plain stores, deduplicated, sorted.
    pub store_orderings: Vec<String>,
    /// Orderings observed on read-modify-write ops, deduplicated, sorted.
    pub rmw_orderings: Vec<String>,
}

impl AtomicSiteSummary {
    /// Compact single-line description (`loads{Relaxed} rmws{Relaxed}`).
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for (label, orderings) in [
            ("loads", &self.load_orderings),
            ("stores", &self.store_orderings),
            ("rmws", &self.rmw_orderings),
        ] {
            if !orderings.is_empty() {
                parts.push(format!("{label}{{{}}}", orderings.join(",")));
            }
        }
        parts.join(" ")
    }
}

/// A cycle in the lock-order graph: class indices in traversal order
/// (first index repeated implicitly; a single-element cycle is a
/// same-class self-edge).
pub type LockCycle = Vec<usize>;

/// The dynamic lock-order report aggregated across every explored
/// schedule of an exploration.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LockOrderReport {
    /// Lock classes, sorted by `(kind, site)`; edge and cycle indices
    /// point here.
    pub classes: Vec<LockClass>,
    /// Acquisition edges, deduplicated by `(from, to, acquire_site)`,
    /// sorted.
    pub edges: Vec<LockEdge>,
    /// Elementary cycles found in the class graph, canonicalized (each
    /// rotated to start at its smallest index, deduplicated, sorted).
    pub cycles: Vec<LockCycle>,
    /// Per-site atomic ordering summaries, sorted by site.
    pub atomics: Vec<AtomicSiteSummary>,
}

impl LockOrderReport {
    /// True when no lock-order cycle was observed.
    pub fn is_acyclic(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Render a cycle as `mutex@a.rs:1 -> mutex@b.rs:2 -> mutex@a.rs:1`.
    pub fn describe_cycle(&self, cycle: &[usize]) -> String {
        let mut out = String::new();
        for &idx in cycle.iter().chain(cycle.first()) {
            if !out.is_empty() {
                out.push_str(" -> ");
            }
            out.push_str(&self.classes[idx].to_string());
        }
        out
    }

    /// Recompute [`cycles`](Self::cycles) from [`edges`](Self::edges).
    ///
    /// Finds one canonical elementary cycle per strongly connected
    /// component with ≥ 2 nodes, plus every self-edge. That is enough for
    /// reporting: any SCC with a cycle surfaces exactly once, and the
    /// output is deterministic (indices ascending, shortest
    /// representative found by BFS from the smallest node).
    pub fn detect_cycles(&mut self) {
        let n = self.classes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if !adj[e.from].contains(&e.to) {
                adj[e.from].push(e.to);
            }
        }
        for targets in &mut adj {
            targets.sort_unstable();
        }
        let mut cycles: Vec<LockCycle> = Vec::new();
        // Self-edges first: a class that nests within itself.
        for (i, targets) in adj.iter().enumerate() {
            if targets.contains(&i) {
                cycles.push(vec![i]);
            }
        }
        // Tarjan SCCs; any component of size ≥ 2 is cyclic.
        for scc in tarjan_sccs(&adj) {
            if scc.len() < 2 {
                continue;
            }
            if let Some(cycle) = shortest_cycle_through(&adj, &scc) {
                cycles.push(cycle);
            }
        }
        cycles.sort();
        cycles.dedup();
        self.cycles = cycles;
    }
}

/// Iterative Tarjan strongly-connected components; returns components as
/// sorted node lists, in deterministic order.
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, edge cursor).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor < adj[v].len() {
                let w = adj[v][*cursor];
                *cursor += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack non-empty");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// Shortest cycle through the smallest node of `scc` (BFS back to the
/// start), restricted to component members. Returns node indices in
/// traversal order starting at the smallest node.
fn shortest_cycle_through(adj: &[Vec<usize>], scc: &[usize]) -> Option<LockCycle> {
    let start = *scc.first()?;
    let member: std::collections::BTreeSet<usize> = scc.iter().copied().collect();
    // BFS from start; parent map lets us reconstruct the path.
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v] {
            if !member.contains(&w) {
                continue;
            }
            if w == start {
                // Reconstruct start -> ... -> v, the cycle closes v -> start.
                let mut path = vec![v];
                let mut cur = v;
                while cur != start {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(w) {
                slot.insert(v);
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(kind: LockKind, site: &str) -> LockClass {
        LockClass {
            kind,
            site: site.to_string(),
        }
    }

    fn edge(from: usize, to: usize) -> LockEdge {
        LockEdge {
            from,
            to,
            acquire_site: format!("test.rs:{to}"),
            observations: 1,
        }
    }

    #[test]
    fn schedule_roundtrip_and_comments() {
        let s: Schedule = "0,1,1,0".parse().expect("parses");
        assert_eq!(s.choices, vec![0, 1, 1, 0]);
        assert_eq!(s.to_string(), "0,1,1,0");
        let commented: Schedule = "# repro for lost update\n0, 2,\n1\n".parse().expect("parses");
        assert_eq!(commented.choices, vec![0, 2, 1]);
        assert!("0,x".parse::<Schedule>().is_err());
        assert!("".parse::<Schedule>().expect("empty ok").is_empty());
    }

    #[test]
    fn two_class_cycle_detected() {
        let mut r = LockOrderReport {
            classes: vec![class(LockKind::Mutex, "a.rs:1"), class(LockKind::Mutex, "b.rs:2")],
            edges: vec![edge(0, 1), edge(1, 0)],
            ..Default::default()
        };
        r.detect_cycles();
        assert_eq!(r.cycles, vec![vec![0, 1]]);
        assert!(!r.is_acyclic());
        assert_eq!(
            r.describe_cycle(&r.cycles[0]),
            "mutex@a.rs:1 -> mutex@b.rs:2 -> mutex@a.rs:1"
        );
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let mut r = LockOrderReport {
            classes: vec![class(LockKind::Mutex, "shard.rs:9")],
            edges: vec![edge(0, 0)],
            ..Default::default()
        };
        r.detect_cycles();
        assert_eq!(r.cycles, vec![vec![0]]);
    }

    #[test]
    fn dag_is_acyclic() {
        let mut r = LockOrderReport {
            classes: vec![
                class(LockKind::Mutex, "a.rs:1"),
                class(LockKind::OnceInit, "b.rs:2"),
                class(LockKind::RwLock, "c.rs:3"),
            ],
            edges: vec![edge(0, 1), edge(0, 2), edge(1, 2)],
            ..Default::default()
        };
        r.detect_cycles();
        assert!(r.is_acyclic());
    }

    #[test]
    fn three_node_cycle_found_once() {
        let mut r = LockOrderReport {
            classes: vec![
                class(LockKind::Mutex, "a.rs:1"),
                class(LockKind::Mutex, "b.rs:2"),
                class(LockKind::Mutex, "c.rs:3"),
            ],
            edges: vec![edge(0, 1), edge(1, 2), edge(2, 0)],
            ..Default::default()
        };
        r.detect_cycles();
        assert_eq!(r.cycles, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn atomic_summary_describe() {
        let s = AtomicSiteSummary {
            site: "x.rs:5".to_string(),
            load_orderings: vec!["Relaxed".to_string()],
            store_orderings: vec![],
            rmw_orderings: vec!["Relaxed".to_string()],
        };
        assert_eq!(s.describe(), "loads{Relaxed} rmws{Relaxed}");
    }
}
