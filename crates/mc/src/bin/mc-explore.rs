//! Deterministic exploration harness for CI.
//!
//! Runs the built-in scenario suite under a preemption bound and prints
//! one line per scenario: name, executions explored, pruned count,
//! completeness, and failure kind. CI runs this twice and diffs the
//! output — any divergence means the explorer lost determinism.
//!
//! Usage:
//! - `mc-explore [preemption-bound]` (default 2): run the suite.
//! - `mc-explore minimize <scenario>`: explore the named scenario
//!   unbounded, minimize the counterexample, and print it in committed
//!   `.txt` form (the workflow in DESIGN.md §15).

use ccc_mc::scenarios::{
    gated_lock_inversion, once_coalesce_property, racy_counter_property, run_suite,
    safe_counter_property, ungated_lock_inversion,
};
use ccc_mc::Explorer;

fn scenario_fn(name: &str) -> fn() {
    match name {
        "racy-counter" => racy_counter_property,
        "safe-counter" => safe_counter_property,
        "once-coalesce" => once_coalesce_property,
        "gated-lock-inversion" => gated_lock_inversion,
        "ungated-lock-inversion" => ungated_lock_inversion,
        other => {
            eprintln!("unknown scenario {other:?}");
            std::process::exit(2);
        }
    }
}

fn minimize(name: &str) {
    let explorer = Explorer::new();
    let property = scenario_fn(name);
    let exploration = explorer.explore(property);
    let Some(failure) = exploration.failure else {
        eprintln!("{name}: no failure found (nothing to minimize)");
        std::process::exit(1);
    };
    let minimized = explorer.minimize(&failure.schedule, property);
    println!("# scenario: {name}");
    println!("# kind: {:?}", failure.kind);
    println!(
        "# minimized from {} to {} choices",
        failure.schedule.len(),
        minimized.len()
    );
    println!("{minimized}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("minimize") {
        match args.get(1) {
            Some(name) => minimize(name),
            None => {
                eprintln!("usage: mc-explore minimize <scenario>");
                std::process::exit(2);
            }
        }
        return;
    }
    let bound = args
        .first()
        .map(|s| s.parse::<usize>().expect("preemption bound must be a number"))
        .unwrap_or(2);
    println!("# mc-explore suite, preemption bound {bound}");
    let mut failed_expectations = 0u32;
    for outcome in run_suite(bound) {
        let e = &outcome.exploration;
        let status = match (&e.failure, outcome.expect_failure) {
            (Some(f), true) => format!("caught {:?} (schedule {})", f.kind, f.schedule),
            (None, false) => "ok".to_string(),
            (Some(f), false) => {
                failed_expectations += 1;
                format!("UNEXPECTED {:?}: {}", f.kind, f.message)
            }
            (None, true) => {
                failed_expectations += 1;
                "MISSED seeded bug".to_string()
            }
        };
        println!(
            "{name} schedules={schedules} pruned={pruned} complete={complete} truncated={truncated} cycles={cycles} {status}",
            name = outcome.name,
            schedules = e.schedules,
            pruned = e.pruned,
            complete = e.complete,
            truncated = e.truncated,
            cycles = e.lock_order.cycles.len(),
        );
    }
    if failed_expectations > 0 {
        eprintln!("mc-explore: {failed_expectations} scenario expectation(s) violated");
        std::process::exit(1);
    }
}
