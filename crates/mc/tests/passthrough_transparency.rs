//! Pins the zero-overhead claim: without `model-check`, every shim is the
//! *same type* as its `std` counterpart — not a wrapper, an alias. If any
//! `TypeId` here ever diverges, the passthrough build stopped being free.

#![cfg(not(feature = "model-check"))]

use std::any::TypeId;
use std::mem::size_of;

#[test]
fn shims_are_literal_std_type_aliases() {
    assert_eq!(
        TypeId::of::<ccc_mc::Mutex<Vec<u8>>>(),
        TypeId::of::<std::sync::Mutex<Vec<u8>>>()
    );
    assert_eq!(
        TypeId::of::<ccc_mc::RwLock<String>>(),
        TypeId::of::<std::sync::RwLock<String>>()
    );
    assert_eq!(
        TypeId::of::<ccc_mc::OnceLock<u64>>(),
        TypeId::of::<std::sync::OnceLock<u64>>()
    );
    assert_eq!(
        TypeId::of::<ccc_mc::AtomicU64>(),
        TypeId::of::<std::sync::atomic::AtomicU64>()
    );
    assert_eq!(
        TypeId::of::<ccc_mc::AtomicUsize>(),
        TypeId::of::<std::sync::atomic::AtomicUsize>()
    );
    assert_eq!(
        TypeId::of::<ccc_mc::AtomicBool>(),
        TypeId::of::<std::sync::atomic::AtomicBool>()
    );
    assert!(!ccc_mc::MODEL_CHECK_BUILD);
}

#[test]
fn shim_sizes_match_std() {
    assert_eq!(size_of::<ccc_mc::Mutex<u64>>(), size_of::<std::sync::Mutex<u64>>());
    assert_eq!(size_of::<ccc_mc::AtomicU64>(), 8);
    assert_eq!(
        size_of::<ccc_mc::OnceLock<u64>>(),
        size_of::<std::sync::OnceLock<u64>>()
    );
}

#[test]
fn spawn_is_std_spawn() {
    // Function-item identity: mc::spawn::<F, T> must monomorphize from the
    // exact same generic fn as std::thread::spawn.
    fn probe() -> u32 {
        7
    }
    let f: fn(fn() -> u32) -> std::thread::JoinHandle<u32> = ccc_mc::spawn::<fn() -> u32, u32>;
    let handle = f(probe);
    assert_eq!(handle.join().expect("join"), 7);
}

#[test]
fn report_types_available_without_feature() {
    // The SARIF bridge in ccc-lint consumes these in every build mode.
    let schedule: ccc_mc::Schedule = "0,1,0".parse().expect("parse");
    assert_eq!(schedule.to_string(), "0,1,0");
    let report = ccc_mc::LockOrderReport::default();
    assert!(report.is_acyclic());
}
