//! Replays every committed schedule in `tests/schedules/*.txt` and
//! asserts each still reproduces its failure. These files are minimized
//! counterexamples (see DESIGN.md §15 for the workflow); if a code change
//! legitimately kills one, regenerate it with
//! `mc-explore minimize <scenario>` rather than deleting it.

#![cfg(feature = "model-check")]

use ccc_mc::scenarios::{
    gated_lock_inversion, once_coalesce_property, racy_counter_property, safe_counter_property,
    ungated_lock_inversion,
};
use ccc_mc::{Explorer, FailureKind, Schedule};

fn scenario_fn(name: &str) -> fn() {
    match name {
        "racy-counter" => racy_counter_property,
        "safe-counter" => safe_counter_property,
        "once-coalesce" => once_coalesce_property,
        "gated-lock-inversion" => gated_lock_inversion,
        "ungated-lock-inversion" => ungated_lock_inversion,
        other => panic!("schedule file names unknown scenario {other:?}"),
    }
}

fn expected_kind(text: &str) -> FailureKind {
    for line in text.lines() {
        if let Some(kind) = line.strip_prefix("# kind: ") {
            return match kind.trim() {
                "Panic" => FailureKind::Panic,
                "Deadlock" => FailureKind::Deadlock,
                other => panic!("unknown failure kind {other:?}"),
            };
        }
    }
    panic!("schedule file missing `# kind:` header");
}

fn scenario_name(text: &str) -> String {
    for line in text.lines() {
        if let Some(name) = line.strip_prefix("# scenario: ") {
            return name.trim().to_string();
        }
    }
    panic!("schedule file missing `# scenario:` header");
}

#[test]
fn committed_schedules_still_reproduce() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/schedules");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/schedules exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no committed schedules found in {dir:?}");
    let explorer = Explorer::new();
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("read schedule");
        let name = scenario_name(&text);
        let kind = expected_kind(&text);
        let schedule: Schedule = text.parse().expect("parse schedule");
        assert!(!schedule.is_empty(), "{path:?} holds an empty schedule");
        let failure = explorer
            .replay(&schedule, scenario_fn(&name))
            .unwrap_or_else(|| panic!("{path:?} no longer reproduces a failure"));
        assert_eq!(failure.kind, kind, "{path:?} reproduced the wrong failure kind");
    }
}
