//! Exploration behavior of the built-in scenarios (model-check builds
//! only; tier-1 `cargo test -q` skips this file entirely).

#![cfg(feature = "model-check")]

use ccc_mc::scenarios::{
    gated_lock_inversion, once_coalesce_property, racy_counter_property, run_suite,
    safe_counter_property, ungated_lock_inversion,
};
use ccc_mc::{Explorer, FailureKind, LockKind, Schedule};

#[test]
fn seeded_lost_update_is_caught_and_minimizes() {
    let explorer = Explorer::new();
    let exploration = explorer.explore(racy_counter_property);
    let failure = exploration.failure.expect("seeded racy counter bug must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure message: {}",
        failure.message
    );
    // The counterexample replays from its serialized form...
    let parsed: Schedule = failure.schedule.to_string().parse().expect("roundtrip");
    let replayed = explorer
        .replay(&parsed, racy_counter_property)
        .expect("serialized schedule must reproduce");
    assert_eq!(replayed.kind, FailureKind::Panic);
    // ...and minimizes to a strictly shorter prefix that still fails.
    let minimized = explorer.minimize(&failure.schedule, racy_counter_property);
    assert!(minimized.len() < failure.schedule.len());
    let again = explorer
        .replay(&minimized, racy_counter_property)
        .expect("minimized schedule must reproduce");
    assert_eq!(again.kind, FailureKind::Panic);
}

#[test]
fn safe_counter_explores_to_fixpoint_without_failure() {
    let exploration = Explorer::new().explore(safe_counter_property);
    assert!(exploration.failure.is_none());
    assert!(exploration.complete, "unbounded exploration must reach fixpoint");
    assert!(!exploration.truncated);
    assert!(exploration.schedules >= 2, "must explore both increment orders");
}

#[test]
fn once_coalescing_holds_in_every_interleaving() {
    let exploration = Explorer::new().explore(once_coalesce_property);
    assert!(exploration.failure.is_none(), "{:?}", exploration.failure);
    assert!(exploration.complete);
    // The init slot shows up as a once-init lock class.
    assert!(exploration
        .lock_order
        .classes
        .iter()
        .any(|c| c.kind == LockKind::OnceInit));
}

#[test]
fn gated_inversion_reports_cycle_without_deadlock() {
    let exploration = Explorer::new().explore(gated_lock_inversion);
    assert!(exploration.failure.is_none(), "the gate prevents any deadlock");
    assert!(exploration.complete);
    assert!(!exploration.lock_order.is_acyclic(), "a⇄b class cycle must be reported");
    let cycle = &exploration.lock_order.cycles[0];
    let description = exploration.lock_order.describe_cycle(cycle);
    assert!(description.contains("mutex@"), "cycle names classes: {description}");
    assert_eq!(cycle.len(), 2, "the a⇄b inversion is a two-class cycle");
}

#[test]
fn ungated_inversion_deadlocks_with_replayable_schedule() {
    let explorer = Explorer::new();
    let exploration = explorer.explore(ungated_lock_inversion);
    let failure = exploration.failure.expect("deadlock must be found");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.message.contains("deadlock"));
    let minimized = explorer.minimize(&failure.schedule, ungated_lock_inversion);
    let replayed = explorer
        .replay(&minimized, ungated_lock_inversion)
        .expect("minimized deadlock schedule reproduces");
    assert_eq!(replayed.kind, FailureKind::Deadlock);
}

#[test]
fn exploration_is_deterministic_across_runs() {
    let first = run_suite(2);
    let second = run_suite(2);
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(second.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.exploration.schedules, b.exploration.schedules, "{}", a.name);
        assert_eq!(a.exploration.pruned, b.exploration.pruned, "{}", a.name);
        assert_eq!(a.exploration.complete, b.exploration.complete, "{}", a.name);
        assert_eq!(
            a.exploration.failure.as_ref().map(|f| f.schedule.to_string()),
            b.exploration.failure.as_ref().map(|f| f.schedule.to_string()),
            "{}",
            a.name
        );
        assert_eq!(a.exploration.lock_order, b.exploration.lock_order, "{}", a.name);
    }
}

#[test]
fn preemption_bound_zero_still_finds_nothing_wrong_with_safe_code() {
    // Bound 0 = pure run-to-completion schedules; must be a subset and
    // flagged truncated when alternatives were clipped.
    let exploration = Explorer::new()
        .with_preemption_bound(0)
        .explore(safe_counter_property);
    assert!(exploration.failure.is_none());
}

#[test]
fn shims_delegate_to_std_outside_model_runs() {
    // Feature-unified builds run ordinary tests too: the shims must work
    // as plain primitives when no explorer is driving.
    let m = ccc_mc::Mutex::new(1u32);
    *m.lock().expect("lock") += 1;
    let cell: ccc_mc::OnceLock<u32> = ccc_mc::OnceLock::new();
    assert_eq!(*cell.get_or_init(|| 5), 5);
    assert_eq!(cell.get(), Some(&5));
    let counter = ccc_mc::AtomicU64::new(0);
    counter.fetch_add(3, ccc_mc::Ordering::Relaxed);
    assert_eq!(counter.load(ccc_mc::Ordering::Relaxed), 3);
    let handle = ccc_mc::spawn(|| 11u8);
    assert_eq!(handle.join().expect("join"), 11);
    let total = ccc_mc::scope(|scope| {
        let h1 = scope.spawn(|| 2u32);
        let h2 = scope.spawn(|| 3u32);
        h1.join().expect("h1") + h2.join().expect("h2")
    });
    assert_eq!(total, 5);
}
