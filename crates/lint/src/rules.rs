//! The lint rule trait, the concrete rules, and the static registry.
//!
//! Rule IDs are **stable identifiers** — they appear in baselines, SARIF
//! uploads, and dashboards, so they are never renamed, only retired. The
//! prefix encodes the default severity (`e_` error, `w_` warn, `i_` info,
//! `n_` notice), mirroring zlint's convention.
//!
//! Severity contract: an `Error` rule fires **iff** the chain is
//! non-compliant per `ccc_core::analyze_compliance` — chain-scope error
//! rules read the `ComplianceReport` directly, and cert-scope error rules
//! only flag defects the synthetic corpus never plants in compliant
//! chains. `LintSummary` (`crate::LintSummary`) cross-checks the
//! equivalence on every corpus pass.

use crate::diag::{ChainContext, Finding, Severity};
use ccc_core::{IssuanceChecker, NonCompliance};

/// What a rule inspects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RuleScope {
    /// One certificate at a time (position-aware).
    Certificate,
    /// The served list as a whole (topology, order, completeness).
    Chain,
}

impl RuleScope {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            RuleScope::Certificate => "cert",
            RuleScope::Chain => "chain",
        }
    }
}

/// A single static-analysis rule.
///
/// Rules are stateless unit structs; all inputs arrive via
/// [`ChainContext`] so evaluation is a pure function and corpus lints
/// parallelize without coordination.
pub trait LintRule: Sync {
    /// Stable rule identifier (never renamed).
    fn id(&self) -> &'static str;
    /// Default severity (encoded in the ID prefix).
    fn severity(&self) -> Severity;
    /// What the rule inspects.
    fn scope(&self) -> RuleScope;
    /// One-line description (SARIF `shortDescription`).
    fn description(&self) -> &'static str;
    /// RFC / CA-Browser-Forum citation backing the rule.
    fn citation(&self) -> &'static str;
    /// Evaluate against one observation, appending findings.
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>);
}

// ---------------------------------------------------------------------------
// Certificate-scope rules
// ---------------------------------------------------------------------------

/// `e_validity_window_inverted`
struct ValidityWindowInverted;

impl LintRule for ValidityWindowInverted {
    fn id(&self) -> &'static str {
        "e_validity_window_inverted"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Certificate
    }
    fn description(&self) -> &'static str {
        "notAfter precedes notBefore; the certificate can never be valid"
    }
    fn citation(&self) -> &'static str {
        "RFC 5280 §4.1.2.5"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for (i, cert) in ctx.served.iter().enumerate() {
            let v = cert.validity();
            if v.is_inverted() {
                out.push(ctx.finding_at_validity(
                    self,
                    i,
                    format!(
                        "validity window inverted: notBefore {} is after notAfter {}",
                        v.not_before, v.not_after
                    ),
                ));
            }
        }
    }
}

/// `w_cert_expired`
struct CertExpired;

impl LintRule for CertExpired {
    fn id(&self) -> &'static str {
        "w_cert_expired"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Certificate
    }
    fn description(&self) -> &'static str {
        "certificate was expired at scan time"
    }
    fn citation(&self) -> &'static str {
        "RFC 5280 §4.1.2.5; RFC 5280 §6.1.3(a)(2)"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for (i, cert) in ctx.served.iter().enumerate() {
            let v = cert.validity();
            if !v.is_inverted() && ctx.now > v.not_after {
                out.push(ctx.finding_at_validity(
                    self,
                    i,
                    format!("certificate expired: notAfter {} is before scan time {}", v.not_after, ctx.now),
                ));
            }
        }
    }
}

/// `w_cert_not_yet_valid`
struct CertNotYetValid;

impl LintRule for CertNotYetValid {
    fn id(&self) -> &'static str {
        "w_cert_not_yet_valid"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Certificate
    }
    fn description(&self) -> &'static str {
        "certificate validity begins after scan time"
    }
    fn citation(&self) -> &'static str {
        "RFC 5280 §4.1.2.5; RFC 5280 §6.1.3(a)(2)"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for (i, cert) in ctx.served.iter().enumerate() {
            let v = cert.validity();
            if !v.is_inverted() && ctx.now < v.not_before {
                out.push(ctx.finding_at_validity(
                    self,
                    i,
                    format!(
                        "certificate not yet valid: notBefore {} is after scan time {}",
                        v.not_before, ctx.now
                    ),
                ));
            }
        }
    }
}

/// `e_ca_without_basic_constraints`
struct CaWithoutBasicConstraints;

impl LintRule for CaWithoutBasicConstraints {
    fn id(&self) -> &'static str {
        "e_ca_without_basic_constraints"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Certificate
    }
    fn description(&self) -> &'static str {
        "certificate issues another chain member but does not assert BasicConstraints cA"
    }
    fn citation(&self) -> &'static str {
        "RFC 5280 §4.2.1.9; CABF BR §7.1.2.5"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for (n, node) in ctx.graph.nodes.iter().enumerate() {
            if !ctx.graph.issued_by_me[n].is_empty() && !node.cert.is_ca() {
                out.push(ctx.finding_at(
                    self,
                    node.position,
                    format!(
                        "{} issues {} other certificate(s) in this chain but lacks BasicConstraints cA=TRUE",
                        node.label(),
                        ctx.graph.issued_by_me[n].len()
                    ),
                ));
            }
        }
    }
}

/// `w_ca_without_key_cert_sign`
struct CaWithoutKeyCertSign;

impl LintRule for CaWithoutKeyCertSign {
    fn id(&self) -> &'static str {
        "w_ca_without_key_cert_sign"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Certificate
    }
    fn description(&self) -> &'static str {
        "CA certificate carries KeyUsage without keyCertSign"
    }
    fn citation(&self) -> &'static str {
        "RFC 5280 §4.2.1.3"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for (i, cert) in ctx.served.iter().enumerate() {
            if let (true, Some(ku)) = (cert.is_ca(), cert.key_usage()) {
                if !ku.key_cert_sign {
                    out.push(ctx.finding_at(
                        self,
                        i,
                        "CA certificate's KeyUsage extension does not assert keyCertSign",
                    ));
                }
            }
        }
    }
}

/// `w_ca_missing_skid`
struct CaMissingSkid;

impl LintRule for CaMissingSkid {
    fn id(&self) -> &'static str {
        "w_ca_missing_skid"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Certificate
    }
    fn description(&self) -> &'static str {
        "CA certificate lacks a Subject Key Identifier"
    }
    fn citation(&self) -> &'static str {
        "RFC 5280 §4.2.1.2 (MUST for conforming CAs)"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for (i, cert) in ctx.served.iter().enumerate() {
            if cert.is_ca() && cert.skid().is_none() {
                out.push(ctx.finding_at(
                    self,
                    i,
                    "CA certificate has no SubjectKeyIdentifier extension",
                ));
            }
        }
    }
}

/// `w_missing_akid`
struct MissingAkid;

impl LintRule for MissingAkid {
    fn id(&self) -> &'static str {
        "w_missing_akid"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Certificate
    }
    fn description(&self) -> &'static str {
        "non-self-issued certificate lacks an Authority Key Identifier"
    }
    fn citation(&self) -> &'static str {
        "RFC 5280 §4.2.1.1"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for (i, cert) in ctx.served.iter().enumerate() {
            if !cert.is_self_issued() && cert.akid_key_id().is_none() {
                out.push(ctx.finding_at(
                    self,
                    i,
                    "certificate has no AuthorityKeyIdentifier key id; issuer matching falls back to DN comparison",
                ));
            }
        }
    }
}

/// `i_aia_missing`
struct AiaMissing;

impl LintRule for AiaMissing {
    fn id(&self) -> &'static str {
        "i_aia_missing"
    }
    fn severity(&self) -> Severity {
        Severity::Info
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Certificate
    }
    fn description(&self) -> &'static str {
        "non-root certificate lacks an AIA caIssuers pointer"
    }
    fn citation(&self) -> &'static str {
        "RFC 5280 §4.2.2.1; CABF BR §7.1.2.7.7"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for (i, cert) in ctx.served.iter().enumerate() {
            if !cert.is_self_issued() && cert.aia_ca_issuers_uri().is_none() {
                out.push(ctx.finding_at(
                    self,
                    i,
                    "no AIA caIssuers URI; clients cannot fetch the issuer if the chain is incomplete",
                ));
            }
        }
    }
}

/// `w_leaf_missing_san`
struct LeafMissingSan;

impl LintRule for LeafMissingSan {
    fn id(&self) -> &'static str {
        "w_leaf_missing_san"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Certificate
    }
    fn description(&self) -> &'static str {
        "first served certificate has no SubjectAltName DNS entries"
    }
    fn citation(&self) -> &'static str {
        "CABF BR §7.1.2.7.12; RFC 6125 §6.4.4"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        let Some(first) = ctx.served.first() else {
            return;
        };
        let has_dns = first
            .san()
            .map(|san| san.dns_names().next().is_some())
            .unwrap_or(false);
        if !has_dns {
            out.push(ctx.finding_at(
                self,
                0,
                "leaf-position certificate has no SAN dNSName; modern clients ignore the CN",
            ));
        }
    }
}

/// `n_leaf_validity_exceeds_398_days`
struct LeafValidityTooLong;

/// CABF ballot SC31 lifetime limit, in inclusive seconds.
const MAX_LEAF_VALIDITY_SECONDS: i64 = 398 * 86_400;

impl LintRule for LeafValidityTooLong {
    fn id(&self) -> &'static str {
        "n_leaf_validity_exceeds_398_days"
    }
    fn severity(&self) -> Severity {
        Severity::Notice
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Certificate
    }
    fn description(&self) -> &'static str {
        "leaf validity period exceeds 398 days"
    }
    fn citation(&self) -> &'static str {
        "CABF BR §6.3.2"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        let Some(first) = ctx.served.first() else {
            return;
        };
        let v = first.validity();
        if !v.is_inverted() && v.duration_seconds() > MAX_LEAF_VALIDITY_SECONDS {
            out.push(ctx.finding_at_validity(
                self,
                0,
                format!(
                    "leaf validity period is {} days (limit 398)",
                    v.duration_seconds() / 86_400
                ),
            ));
        }
    }
}

/// `w_nonpositive_serial`
struct NonPositiveSerial;

impl LintRule for NonPositiveSerial {
    fn id(&self) -> &'static str {
        "w_nonpositive_serial"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Certificate
    }
    fn description(&self) -> &'static str {
        "serial number is zero or empty"
    }
    fn citation(&self) -> &'static str {
        "RFC 5280 §4.1.2.2 (positive integer required)"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for (i, cert) in ctx.served.iter().enumerate() {
            let serial = cert.serial();
            if serial.is_empty() || serial.iter().all(|&b| b == 0) {
                out.push(ctx.finding_at(self, i, "serial number must be a positive integer"));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Chain-scope rules
// ---------------------------------------------------------------------------

/// `e_leaf_not_first`
struct LeafNotFirst;

impl LintRule for LeafNotFirst {
    fn id(&self) -> &'static str {
        "e_leaf_not_first"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Chain
    }
    fn description(&self) -> &'static str {
        "the end-entity certificate is not the first certificate sent"
    }
    fn citation(&self) -> &'static str {
        "RFC 5246 §7.4.2; RFC 8446 §4.4.2"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        if ctx.report.findings.contains(&NonCompliance::LeafMisplaced) {
            out.push(ctx.finding(
                self,
                format!(
                    "leaf placement is '{}': the server's own certificate must be sent first",
                    ctx.report.leaf_placement.label()
                ),
            ));
        }
    }
}

/// `e_chain_duplicate_certificates`
struct ChainDuplicateCertificates;

impl LintRule for ChainDuplicateCertificates {
    fn id(&self) -> &'static str {
        "e_chain_duplicate_certificates"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Chain
    }
    fn description(&self) -> &'static str {
        "the served list contains bit-identical duplicate certificates"
    }
    fn citation(&self) -> &'static str {
        "RFC 5246 §7.4.2; RFC 8446 §4.4.2"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        if ctx
            .report
            .findings
            .contains(&NonCompliance::DuplicateCertificates)
        {
            let d = &ctx.report.order.duplicates;
            out.push(ctx.finding(
                self,
                format!(
                    "{} duplicate occurrence(s): {} leaf, {} intermediate, {} root",
                    d.total(),
                    d.leaf,
                    d.intermediate,
                    d.root
                ),
            ));
        }
    }
}

/// `w_chain_contains_duplicate` — the per-occurrence companion of
/// `e_chain_duplicate_certificates` (one finding per repeated position,
/// so baselines and SARIF consumers can track individual copies).
struct ChainContainsDuplicate;

impl LintRule for ChainContainsDuplicate {
    fn id(&self) -> &'static str {
        "w_chain_contains_duplicate"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Chain
    }
    fn description(&self) -> &'static str {
        "a certificate at this position repeats an earlier chain member"
    }
    fn citation(&self) -> &'static str {
        "RFC 5246 §7.4.2; RFC 8446 §4.4.2"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for (n, node) in ctx.graph.nodes.iter().enumerate() {
            let role = if n == 0 {
                "leaf"
            } else if node.cert.is_self_issued() {
                "root"
            } else {
                "intermediate"
            };
            for &pos in &node.duplicate_positions {
                out.push(ctx.finding_at(
                    self,
                    pos,
                    format!(
                        "position {pos} repeats the {role} certificate first served at position {}",
                        node.position
                    ),
                ));
            }
        }
    }
}

/// `e_chain_irrelevant_certificates`
struct ChainIrrelevantCertificates;

impl LintRule for ChainIrrelevantCertificates {
    fn id(&self) -> &'static str {
        "e_chain_irrelevant_certificates"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Chain
    }
    fn description(&self) -> &'static str {
        "the served list contains certificates unrelated to the leaf's issuance"
    }
    fn citation(&self) -> &'static str {
        "RFC 5246 §7.4.2; RFC 8446 §4.4.2"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        if !ctx
            .report
            .findings
            .contains(&NonCompliance::IrrelevantCertificates)
        {
            return;
        }
        for n in ctx.graph.irrelevant_nodes() {
            let node = &ctx.graph.nodes[n];
            out.push(ctx.finding_at(
                self,
                node.position,
                format!(
                    "certificate '{}' has no issuance relationship with the leaf",
                    node.cert.subject()
                ),
            ));
        }
    }
}

/// `e_chain_multiple_paths`
struct ChainMultiplePaths;

impl LintRule for ChainMultiplePaths {
    fn id(&self) -> &'static str {
        "e_chain_multiple_paths"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Chain
    }
    fn description(&self) -> &'static str {
        "more than one candidate issuance path leaves the leaf"
    }
    fn citation(&self) -> &'static str {
        "RFC 5246 §7.4.2 (a single ordered chain is expected)"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        if ctx.report.findings.contains(&NonCompliance::MultiplePaths) {
            out.push(ctx.finding(
                self,
                format!(
                    "{} candidate paths from the leaf (cross-signing or redundant issuers in the served list)",
                    ctx.report.order.path_count
                ),
            ));
        }
    }
}

/// `e_chain_reversed_order`
struct ChainReversedOrder;

impl LintRule for ChainReversedOrder {
    fn id(&self) -> &'static str {
        "e_chain_reversed_order"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Chain
    }
    fn description(&self) -> &'static str {
        "an issuer certificate precedes its subject in the served list"
    }
    fn citation(&self) -> &'static str {
        "RFC 5246 §7.4.2; RFC 8446 §4.4.2"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        if ctx.report.findings.contains(&NonCompliance::ReversedSequence) {
            out.push(ctx.finding(
                self,
                format!(
                    "{} of {} candidate path(s) have at least one reversed link{}",
                    ctx.report.order.reversed_paths,
                    ctx.report.order.path_count,
                    if ctx.report.order.all_paths_reversed {
                        " (all paths reversed)"
                    } else {
                        ""
                    }
                ),
            ));
        }
    }
}

/// `e_chain_incomplete`
struct ChainIncomplete;

impl LintRule for ChainIncomplete {
    fn id(&self) -> &'static str {
        "e_chain_incomplete"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Chain
    }
    fn description(&self) -> &'static str {
        "intermediate certificates are missing; no served path reaches a trust anchor"
    }
    fn citation(&self) -> &'static str {
        "RFC 5246 §7.4.2; RFC 8446 §4.4.2"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        if ctx.report.findings.contains(&NonCompliance::IncompleteChain) {
            let c = &ctx.report.completeness;
            let detail = if c.aia_completable {
                format!(
                    "recoverable via AIA ({} missing intermediate(s))",
                    c.missing_intermediates
                )
            } else {
                format!("not recoverable via AIA ({:?})", c.incomplete_reason)
            };
            out.push(ctx.finding(self, format!("chain is incomplete; {detail}")));
        }
    }
}

/// `w_root_included`
struct RootIncluded;

impl LintRule for RootIncluded {
    fn id(&self) -> &'static str {
        "w_root_included"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Chain
    }
    fn description(&self) -> &'static str {
        "a self-signed root is included in the served list"
    }
    fn citation(&self) -> &'static str {
        "RFC 8446 §4.4.2 (the root MAY be omitted); CABF BR §7.1.2.1"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for (i, cert) in ctx.served.iter().enumerate() {
            if i > 0 && ctx.is_self_signed(cert) {
                out.push(ctx.finding_at(
                    self,
                    i,
                    "self-signed root served; clients already hold trust anchors, sending it wastes bytes",
                ));
            }
        }
    }
}

/// `e_path_len_violated`
struct PathLenViolated;

impl LintRule for PathLenViolated {
    fn id(&self) -> &'static str {
        "e_path_len_violated"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Chain
    }
    fn description(&self) -> &'static str {
        "a CA's pathLenConstraint is exceeded by the served chain"
    }
    fn citation(&self) -> &'static str {
        "RFC 5280 §4.2.1.9"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for path in ctx.graph.leaf_paths(64) {
            // path[0] is the leaf; walking issuer-ward, path[i] signs
            // path[i-1]. pathLenConstraint bounds the number of
            // non-self-issued *intermediate* certificates between the CA
            // and the end entity (the leaf itself does not count).
            for (i, &node) in path.iter().enumerate().skip(1) {
                let cert = &ctx.graph.nodes[node].cert;
                let Some(bc) = cert.basic_constraints() else {
                    continue;
                };
                let (true, Some(limit)) = (bc.ca, bc.path_len) else {
                    continue;
                };
                let below = path[1..i]
                    .iter()
                    .filter(|&&n| !ctx.graph.nodes[n].cert.is_self_issued())
                    .count();
                if below > limit as usize {
                    out.push(ctx.finding_at(
                        self,
                        ctx.graph.nodes[node].position,
                        format!(
                            "pathLenConstraint={limit} but {below} non-self-issued intermediate(s) follow toward the leaf"
                        ),
                    ));
                }
            }
        }
    }
}

/// `e_kid_mismatch`
struct KidMismatch;

impl LintRule for KidMismatch {
    fn id(&self) -> &'static str {
        "e_kid_mismatch"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Chain
    }
    fn description(&self) -> &'static str {
        "signature verifies but the subject's AKID disagrees with the issuer's SKID"
    }
    fn citation(&self) -> &'static str {
        "RFC 5280 §4.2.1.1"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        for (i, children) in ctx.graph.issued_by_me.iter().enumerate() {
            let issuer = &ctx.graph.nodes[i].cert;
            let Some(skid) = issuer.skid() else { continue };
            for &j in children {
                let subject = &ctx.graph.nodes[j].cert;
                if let Some(akid) = subject.akid_key_id() {
                    if akid != skid {
                        out.push(ctx.finding_at(
                            self,
                            ctx.graph.nodes[j].position,
                            format!(
                                "issuer {} signs this certificate but its AKID does not match that issuer's SKID",
                                ctx.graph.nodes[i].label()
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// `n_chain_aia_completable`
struct ChainAiaCompletable;

impl LintRule for ChainAiaCompletable {
    fn id(&self) -> &'static str {
        "n_chain_aia_completable"
    }
    fn severity(&self) -> Severity {
        Severity::Notice
    }
    fn scope(&self) -> RuleScope {
        RuleScope::Chain
    }
    fn description(&self) -> &'static str {
        "the incomplete chain can be repaired by AIA fetching"
    }
    fn citation(&self) -> &'static str {
        "RFC 5280 §4.2.2.1 (paper §4.3, Table 7)"
    }
    fn check(&self, ctx: &ChainContext<'_>, out: &mut Vec<Finding>) {
        let c = &ctx.report.completeness;
        if ctx.report.findings.contains(&NonCompliance::IncompleteChain) && c.aia_completable {
            out.push(ctx.finding(
                self,
                format!(
                    "AIA descent recovers the {} missing intermediate(s); AIA-aware clients will still build this chain",
                    c.missing_intermediates
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The full rule registry, in stable evaluation order (certificate-scope
/// rules first, then chain-scope). Plain static slice — adding a rule is
/// one unit struct plus one line here.
static REGISTRY: &[&dyn LintRule] = &[
    // Certificate scope.
    &ValidityWindowInverted,
    &CertExpired,
    &CertNotYetValid,
    &CaWithoutBasicConstraints,
    &CaWithoutKeyCertSign,
    &CaMissingSkid,
    &MissingAkid,
    &AiaMissing,
    &LeafMissingSan,
    &LeafValidityTooLong,
    &NonPositiveSerial,
    // Chain scope.
    &LeafNotFirst,
    &ChainDuplicateCertificates,
    &ChainContainsDuplicate,
    &ChainIrrelevantCertificates,
    &ChainMultiplePaths,
    &ChainReversedOrder,
    &ChainIncomplete,
    &RootIncluded,
    &PathLenViolated,
    &KidMismatch,
    &ChainAiaCompletable,
];

/// The registered rules in evaluation order.
pub fn registry() -> &'static [&'static dyn LintRule] {
    REGISTRY
}

/// Look a rule up by its stable ID.
pub fn rule_by_id(id: &str) -> Option<&'static dyn LintRule> {
    REGISTRY.iter().copied().find(|r| r.id() == id)
}

/// Convenience used by tests: evaluate the whole registry against a
/// pre-built context.
pub fn run_registry(ctx: &ChainContext<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for rule in REGISTRY {
        rule.check(ctx, &mut out);
    }
    out
}

/// `true` when the rule's ID prefix agrees with its severity — enforced
/// by a unit test so the naming convention cannot drift.
#[cfg(test)]
fn id_prefix_matches(rule: &dyn LintRule) -> bool {
    let expected = match rule.severity() {
        Severity::Error => "e_",
        Severity::Warn => "w_",
        Severity::Info => "i_",
        Severity::Notice => "n_",
    };
    rule.id().starts_with(expected)
}

/// Internal consistency helper used by the engine: does this checker see
/// the issuance relation for an (issuer, subject) pair? Re-exported so
/// doc examples can exercise rules directly.
pub fn issuance_holds(
    checker: &IssuanceChecker,
    issuer: &ccc_x509::Certificate,
    subject: &ccc_x509::Certificate,
) -> bool {
    checker.issues(issuer, subject)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_has_at_least_fourteen_rules_with_unique_stable_ids() {
        assert!(registry().len() >= 14, "{} rules", registry().len());
        let ids: BTreeSet<&str> = registry().iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), registry().len(), "duplicate rule IDs");
        for rule in registry() {
            assert!(id_prefix_matches(*rule), "{} prefix vs severity", rule.id());
            assert!(!rule.citation().is_empty(), "{} has no citation", rule.id());
            assert!(!rule.description().is_empty());
        }
    }

    #[test]
    fn registry_spans_both_scopes() {
        let cert = registry()
            .iter()
            .filter(|r| r.scope() == RuleScope::Certificate)
            .count();
        let chain = registry()
            .iter()
            .filter(|r| r.scope() == RuleScope::Chain)
            .count();
        assert!(cert >= 5, "{cert} cert-scope rules");
        assert!(chain >= 5, "{chain} chain-scope rules");
    }

    #[test]
    fn rule_lookup_by_id() {
        assert!(rule_by_id("e_chain_reversed_order").is_some());
        assert!(rule_by_id("no_such_rule").is_none());
        let r = rule_by_id("w_root_included").unwrap();
        assert_eq!(r.severity(), Severity::Warn);
        assert_eq!(r.scope(), RuleScope::Chain);
    }
}
