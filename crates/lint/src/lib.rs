//! `ccc-lint` — a zlint-style static-analysis pass over certificates and
//! served chains.
//!
//! The analyzers in `ccc-core` answer the paper's aggregate questions
//! ("how many chains are reversed?"); this crate answers the *per-chain*
//! question a compiler answers about a source file: exactly which rules
//! does this deployment violate, where, and how severely. The shape is
//! deliberately that of a static-analysis engine:
//!
//! - a [`LintRule`] trait plus a plain static [`registry`] (no inventory
//!   magic — one slice of `&'static dyn LintRule`) with **stable rule
//!   IDs** (`e_chain_reversed_order`, `w_root_included`, …), severities,
//!   and RFC/CABF citations;
//! - a [`LintEngine`] that evaluates the registry against one served
//!   chain, reusing the shared sharded
//!   [`IssuanceChecker`](ccc_core::IssuanceChecker) so signature-dependent
//!   rules never re-verify a (issuer, subject) pair, and
//!   [`LintSummary`] which lints a whole generated corpus across
//!   `CCC_THREADS` workers with bit-identical results per thread count;
//! - three renderers: human text ([`render::render_text`]), JSON lines
//!   ([`render::render_jsonl`]), and SARIF 2.1.0
//!   ([`render::render_sarif`]) — all hand-rolled, no serde;
//! - a [`Baseline`] mechanism suppressing known findings by
//!   `(rule-id, fingerprint)` so CI fails only on *new* findings.
//!
//! Severity contract: the engine and `ccc_core::analyze_compliance` are
//! mutual test oracles — a chain is non-compliant **iff** linting it
//! yields at least one `Error`-severity finding (checked per corpus pass
//! by [`LintSummary`] and in CI by the `table_lint` binary).

pub mod baseline;
pub mod concurrency;
pub mod diag;
pub mod engine;
pub mod json;
pub mod render;
pub mod rules;

pub use baseline::Baseline;
pub use concurrency::{lock_order_findings, render_lock_order_sarif};
pub use diag::{ChainContext, Finding, Severity};
pub use engine::{rule_for_noncompliance, LintEngine, LintSummary};
pub use render::{render_sarif_with, SarifRule, SarifTool};
pub use rules::{registry, rule_by_id, LintRule, RuleScope};
