//! Bridge from the `ccc-mc` dynamic lock-order pass to the lint
//! diagnostic machinery.
//!
//! The model checker aggregates a [`LockOrderReport`] across every
//! explored schedule; this module projects it onto [`Finding`]s so the
//! existing renderers (text, JSONL, SARIF) and baseline mechanism apply
//! unchanged. Two rules:
//!
//! - [`RULE_LOCK_ORDER_CYCLE`] (error): a cycle in the lock acquisition-
//!   order graph — a potential deadlock even if no explored schedule
//!   actually deadlocked (lockdep's insight: the *order* inversion is the
//!   bug, the hang needs unlucky timing).
//! - [`RULE_ATOMIC_ORDERING`] (notice): the memory orderings requested at
//!   each instrumented atomic site, surfaced so ordering choices are
//!   reviewable artifacts rather than silent defaults. Exploration
//!   itself is sequentially consistent; the note records what the source
//!   *asked for*.
//!
//! The artifact URI scheme is `mc://<site>` — a source location instead
//! of a queried domain, mirroring how the chain rules use
//! `chain://<domain>`.

use crate::diag::{Finding, Severity};
use crate::render::{render_sarif_with, SarifRule, SarifTool};
use ccc_mc::LockOrderReport;

/// Rule ID for lock acquisition-order cycles.
pub const RULE_LOCK_ORDER_CYCLE: &str = "e_lock_order_cycle";
/// Rule ID for per-site atomic ordering notes.
pub const RULE_ATOMIC_ORDERING: &str = "n_atomic_ordering";

/// The rules table for lock-order SARIF output, in `ruleIndex` order.
pub fn lock_order_rules() -> [SarifRule<'static>; 2] {
    [
        SarifRule {
            id: RULE_LOCK_ORDER_CYCLE,
            description: "cycle in the dynamic lock acquisition-order graph (potential deadlock)",
            level: "error",
            citation: "ccc-mc lock-order pass; cf. Linux lockdep",
            scope: "process",
        },
        SarifRule {
            id: RULE_ATOMIC_ORDERING,
            description: "memory orderings requested at an instrumented atomic site",
            level: "note",
            citation: "ccc-mc atomics-ordering notes",
            scope: "site",
        },
    ]
}

/// Project a [`LockOrderReport`] onto lint [`Finding`]s: one error per
/// cycle, one notice per instrumented atomic site. Deterministic for a
/// given report (the report's own vectors are already canonically
/// sorted).
pub fn lock_order_findings(report: &LockOrderReport) -> Vec<Finding> {
    let mut findings = Vec::with_capacity(report.cycles.len() + report.atomics.len());
    for cycle in &report.cycles {
        let description = report.describe_cycle(cycle);
        // Anchor the finding at the cycle's first (smallest-index) class
        // site; the full path lives in the message and fingerprint.
        let site = cycle
            .first()
            .map(|&idx| report.classes[idx].site.clone())
            .unwrap_or_default();
        findings.push(Finding {
            rule_id: RULE_LOCK_ORDER_CYCLE,
            severity: Severity::Error,
            domain: site.clone(),
            message: format!("lock-order cycle: {description}"),
            cert_index: None,
            byte_offset: None,
            byte_length: None,
            fingerprint: Finding::fingerprint_for(RULE_LOCK_ORDER_CYCLE, &site, &description),
        });
    }
    for summary in &report.atomics {
        findings.push(Finding {
            rule_id: RULE_ATOMIC_ORDERING,
            severity: Severity::Notice,
            domain: summary.site.clone(),
            message: format!("atomic orderings: {}", summary.describe()),
            cert_index: None,
            byte_offset: None,
            byte_length: None,
            fingerprint: Finding::fingerprint_for(
                RULE_ATOMIC_ORDERING,
                &summary.site,
                &summary.describe(),
            ),
        });
    }
    findings
}

/// Full SARIF 2.1.0 document for a lock-order report, through the same
/// renderer as chain findings ([`render_sarif_with`]).
pub fn render_lock_order_sarif(report: &LockOrderReport) -> String {
    render_sarif_with(
        SarifTool {
            name: "ccc-mc-lockorder",
            version: env!("CARGO_PKG_VERSION"),
            information_uri: "https://example.invalid/chain-chaos",
        },
        "mc",
        &lock_order_rules(),
        &lock_order_findings(report),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};
    use ccc_mc::{AtomicSiteSummary, LockClass, LockEdge, LockKind};

    /// A fixed two-class inversion with one atomic site — the same shape
    /// `gated_lock_inversion` produces, but hand-built so this test (and
    /// the golden snapshot in tests/snapshots.rs) does not depend on the
    /// `model-check` feature.
    pub(crate) fn fixture_report() -> LockOrderReport {
        let mut report = LockOrderReport {
            classes: vec![
                LockClass {
                    kind: LockKind::Mutex,
                    site: "crates/mc/src/scenarios.rs:10".to_string(),
                },
                LockClass {
                    kind: LockKind::Mutex,
                    site: "crates/mc/src/scenarios.rs:11".to_string(),
                },
            ],
            edges: vec![
                LockEdge {
                    from: 0,
                    to: 1,
                    acquire_site: "crates/mc/src/scenarios.rs:20".to_string(),
                    observations: 4,
                },
                LockEdge {
                    from: 1,
                    to: 0,
                    acquire_site: "crates/mc/src/scenarios.rs:30".to_string(),
                    observations: 4,
                },
            ],
            cycles: Vec::new(),
            atomics: vec![AtomicSiteSummary {
                site: "crates/mc/src/scenarios.rs:40".to_string(),
                load_orderings: vec!["Relaxed".to_string()],
                store_orderings: Vec::new(),
                rmw_orderings: vec!["Relaxed".to_string()],
            }],
        };
        report.detect_cycles();
        report
    }

    #[test]
    fn cycle_becomes_error_finding() {
        let report = fixture_report();
        let findings = lock_order_findings(&report);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].rule_id, RULE_LOCK_ORDER_CYCLE);
        assert_eq!(findings[0].severity, Severity::Error);
        assert!(findings[0].message.contains("mutex@"));
        assert!(findings[0].message.contains(" -> "));
        assert_eq!(findings[1].rule_id, RULE_ATOMIC_ORDERING);
        assert_eq!(findings[1].severity, Severity::Notice);
        assert!(findings[1].message.contains("rmws{Relaxed}"));
    }

    #[test]
    fn acyclic_report_yields_only_notes() {
        let mut report = fixture_report();
        report.edges.pop();
        report.detect_cycles();
        let findings = lock_order_findings(&report);
        assert!(findings
            .iter()
            .all(|f| f.rule_id == RULE_ATOMIC_ORDERING && f.severity == Severity::Notice));
    }

    #[test]
    fn sarif_document_is_valid_and_uses_mc_scheme() {
        let doc = json::parse(&render_lock_order_sarif(&fixture_report())).unwrap();
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Value::as_array).unwrap();
        let driver = runs[0].get("tool").and_then(|t| t.get("driver")).unwrap();
        assert_eq!(
            driver.get("name").and_then(Value::as_str),
            Some("ccc-mc-lockorder")
        );
        let rules = driver.get("rules").and_then(Value::as_array).unwrap();
        assert_eq!(rules.len(), 2);
        let results = runs[0].get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 2);
        for result in results {
            let idx = result.get("ruleIndex").and_then(Value::as_f64).unwrap() as usize;
            let id = result.get("ruleId").and_then(Value::as_str).unwrap();
            assert_eq!(rules[idx].get("id").and_then(Value::as_str), Some(id));
            let uri = result
                .get("locations")
                .and_then(Value::as_array)
                .and_then(|l| l[0].get("physicalLocation"))
                .and_then(|p| p.get("artifactLocation"))
                .and_then(|a| a.get("uri"))
                .and_then(Value::as_str)
                .unwrap();
            assert!(uri.starts_with("mc://"), "{uri}");
        }
    }

    #[test]
    fn fingerprints_distinguish_cycles() {
        let report = fixture_report();
        let findings = lock_order_findings(&report);
        let mut prints: Vec<&str> = findings.iter().map(|f| f.fingerprint.as_str()).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), findings.len());
    }
}
