//! Diagnostic primitives: severity ladder, findings, and the per-chain
//! evaluation context handed to every rule.

use ccc_asn1::{Encoder, Time};
use ccc_core::{ComplianceReport, IssuanceChecker, TopologyGraph};
use ccc_x509::Certificate;
use std::fmt;

/// Severity ladder, ordered from least to most severe so
/// `severity >= Severity::Warn` filters read naturally.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Informational observation worth surfacing (SARIF `note`).
    Notice,
    /// Non-actionable context (SARIF `note`).
    Info,
    /// Violates a SHOULD or best practice (SARIF `warning`).
    Warn,
    /// Violates a MUST; the chain is non-compliant (SARIF `error`).
    Error,
}

impl Severity {
    /// All severities, most severe first (table order).
    pub const ALL: [Severity; 4] = [
        Severity::Error,
        Severity::Warn,
        Severity::Info,
        Severity::Notice,
    ];

    /// Human label, matches the rule-ID prefix convention
    /// (`e_`/`w_`/`i_`/`n_`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
            Severity::Notice => "notice",
        }
    }

    /// SARIF 2.1.0 `level` value.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warning",
            Severity::Info | Severity::Notice => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured diagnostic emitted by a rule.
///
/// Equality is structural; corpus lint summaries compare whole finding
/// vectors to assert bit-identical results across thread counts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Stable rule ID (`e_chain_reversed_order`, …).
    pub rule_id: &'static str,
    /// Severity copied from the rule (denormalized for renderers).
    pub severity: Severity,
    /// The queried domain the chain was served for (the lint "artifact").
    pub domain: String,
    /// Human-readable explanation, deterministic for a given chain.
    pub message: String,
    /// Index of the offending certificate in the served list, when the
    /// finding is attributable to one certificate.
    pub cert_index: Option<usize>,
    /// Byte offset of the relevant DER region within the *concatenated*
    /// served-chain DER stream, when available.
    pub byte_offset: Option<usize>,
    /// Length in bytes of that region.
    pub byte_length: Option<usize>,
    /// Stable content fingerprint: `sha256(rule ‖ domain ‖ site)[..16]`
    /// hex. Baselines suppress by `(rule_id, fingerprint)`.
    pub fingerprint: String,
}

impl Finding {
    /// Stable content fingerprint shared by chain rules and the
    /// concurrency bridge (`crate::concurrency`).
    pub(crate) fn fingerprint_for(rule_id: &str, domain: &str, site: &str) -> String {
        let mut material = Vec::with_capacity(rule_id.len() + domain.len() + site.len() + 2);
        material.extend_from_slice(rule_id.as_bytes());
        material.push(0);
        material.extend_from_slice(domain.as_bytes());
        material.push(0);
        material.extend_from_slice(site.as_bytes());
        let digest = ccc_crypto::sha256(&material);
        digest[..8].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} [{}]", self.severity, self.message, self.rule_id)?;
        if let Some(i) = self.cert_index {
            write!(f, " (cert #{i})")?;
        }
        Ok(())
    }
}

/// Everything a rule may inspect about one (domain, served list)
/// observation. Built once per chain by the [`LintEngine`]
/// (`crate::LintEngine`); rules are pure functions of this context, which
/// is what makes corpus linting embarrassingly parallel and
/// thread-count-invariant.
#[derive(Debug)]
pub struct ChainContext<'a> {
    /// The queried domain.
    pub domain: &'a str,
    /// The served certificate list, in wire order.
    pub served: &'a [Certificate],
    /// Issuance topology over `served` (duplicates collapsed).
    pub graph: &'a TopologyGraph,
    /// The aggregate compliance verdict for the same observation — chain
    /// rules read this directly, which is what guarantees the
    /// "non-compliant ⇔ ≥1 error finding" equivalence by construction.
    pub report: &'a ComplianceReport,
    /// The simulated scan instant (never the ambient clock).
    pub now: Time,
    /// The shared signature cache. Rules that need signature facts (e.g.
    /// the self-signed-root check) route through this instead of
    /// re-running Schnorr verification per chain — under the fused
    /// pipeline the same `(cert, cert)` pair is already memoized by the
    /// compliance analysis.
    pub checker: &'a IssuanceChecker,
    /// `der_offsets[i]` is the byte offset of `served[i]` within the
    /// concatenated served DER stream; one extra trailing entry holds the
    /// total length.
    pub der_offsets: Vec<usize>,
}

impl<'a> ChainContext<'a> {
    /// Assemble a context (computes the concatenated-DER offsets).
    pub fn new(
        domain: &'a str,
        served: &'a [Certificate],
        graph: &'a TopologyGraph,
        report: &'a ComplianceReport,
        now: Time,
        checker: &'a IssuanceChecker,
    ) -> ChainContext<'a> {
        let mut der_offsets = Vec::with_capacity(served.len() + 1);
        let mut offset = 0usize;
        for cert in served {
            der_offsets.push(offset);
            offset += cert.to_der().len();
        }
        der_offsets.push(offset);
        ChainContext {
            domain,
            served,
            graph,
            report,
            now,
            checker,
            der_offsets,
        }
    }

    /// Cache-routed equivalent of [`Certificate::is_self_signed`]: same
    /// predicate, but the Schnorr verification is memoized on the shared
    /// checker under the `(cert, cert)` pair key.
    pub fn is_self_signed(&self, cert: &Certificate) -> bool {
        cert.is_self_issued() && self.checker.signature_verifies(cert, cert)
    }

    /// Chain-level finding (no specific certificate).
    pub fn finding(
        &self,
        rule: &dyn crate::rules::LintRule,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            rule_id: rule.id(),
            severity: rule.severity(),
            domain: self.domain.to_string(),
            message: message.into(),
            cert_index: None,
            byte_offset: None,
            byte_length: None,
            fingerprint: Finding::fingerprint_for(rule.id(), self.domain, "chain"),
        }
    }

    /// Finding attributed to `served[index]`, with byte-range provenance
    /// covering that certificate in the concatenated DER stream.
    pub fn finding_at(
        &self,
        rule: &dyn crate::rules::LintRule,
        index: usize,
        message: impl Into<String>,
    ) -> Finding {
        let site = format!("cert:{index}:{}", self.served[index].fingerprint());
        Finding {
            rule_id: rule.id(),
            severity: rule.severity(),
            domain: self.domain.to_string(),
            message: message.into(),
            cert_index: Some(index),
            byte_offset: Some(self.der_offsets[index]),
            byte_length: Some(self.der_offsets[index + 1] - self.der_offsets[index]),
            fingerprint: Finding::fingerprint_for(rule.id(), self.domain, &site),
        }
    }

    /// Like [`finding_at`](Self::finding_at), but narrowed to the byte
    /// range of the certificate's `Validity` SEQUENCE when it can be
    /// located inside the DER (it always can for well-formed input; the
    /// fallback is the whole certificate).
    pub fn finding_at_validity(
        &self,
        rule: &dyn crate::rules::LintRule,
        index: usize,
        message: impl Into<String>,
    ) -> Finding {
        let mut f = self.finding_at(rule, index, message);
        if let Some((start, len)) = validity_byte_range(&self.served[index]) {
            f.byte_offset = Some(self.der_offsets[index] + start);
            f.byte_length = Some(len);
        }
        f
    }

    /// Served position of the first occurrence of graph node `n`.
    pub fn node_position(&self, n: usize) -> usize {
        self.graph.nodes[n].position
    }
}

/// Locate the `Validity` SEQUENCE of a certificate inside its own DER by
/// re-encoding the parsed window and searching for the byte pattern
/// (validity encodings are long and high-entropy enough that the first
/// match is the field itself). Returns `(offset, length)`.
pub fn validity_byte_range(cert: &Certificate) -> Option<(usize, usize)> {
    let v = cert.validity();
    let mut enc = Encoder::new();
    enc.sequence(|val| {
        val.time(v.not_before);
        val.time(v.not_after);
    });
    let pattern = enc.finish();
    let der = cert.to_der();
    if pattern.is_empty() || pattern.len() > der.len() {
        return None;
    }
    der.windows(pattern.len())
        .position(|w| w == pattern)
        .map(|start| (start, pattern.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_order_and_labels() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
        assert!(Severity::Info > Severity::Notice);
        assert_eq!(Severity::Error.sarif_level(), "error");
        assert_eq!(Severity::Warn.sarif_level(), "warning");
        assert_eq!(Severity::Notice.sarif_level(), "note");
        assert_eq!(Severity::Warn.label(), "warn");
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = Finding::fingerprint_for("e_x", "d.sim", "chain");
        let b = Finding::fingerprint_for("e_x", "d.sim", "chain");
        let c = Finding::fingerprint_for("e_y", "d.sim", "chain");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn validity_range_found_in_der() {
        let kp = ccc_crypto::KeyPair::from_seed(ccc_crypto::Group::simulation_256(), b"diag");
        let cert = ccc_x509::CertificateBuilder::leaf_profile("diag.sim").self_signed(&kp);
        let (start, len) = validity_byte_range(&cert).expect("validity present");
        let der = cert.to_der();
        assert!(start + len <= der.len());
        // The region is a SEQUENCE (0x30).
        assert_eq!(der[start], 0x30);
    }
}
