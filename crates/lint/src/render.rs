//! Finding renderers: human text, JSON lines, and SARIF 2.1.0.
//!
//! All three are hand-rolled (no serde) and deterministic: identical
//! finding vectors render to identical bytes, which is what makes the
//! golden snapshot tests meaningful.

use crate::diag::{Finding, Severity};
use crate::json::escape;
use crate::rules::registry;
use std::fmt::Write as _;

/// Human-readable rendering: one line per finding plus a severity recap.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = write!(out, "{}: {} [{}]", f.severity.label(), f.message, f.rule_id);
        if let Some(i) = f.cert_index {
            let _ = write!(out, " (cert #{i}");
            if let (Some(off), Some(len)) = (f.byte_offset, f.byte_length) {
                let _ = write!(out, ", bytes {off}..{})", off + len);
            } else {
                out.push(')');
            }
        }
        out.push('\n');
    }
    let mut recap = format!("{} finding(s)", findings.len());
    for severity in Severity::ALL {
        let n = findings.iter().filter(|f| f.severity == severity).count();
        let _ = write!(recap, ", {n} {}", severity.label());
    }
    let _ = writeln!(out, "{recap}");
    out
}

/// JSON-lines rendering: one self-contained object per finding.
pub fn render_jsonl(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"domain\":\"{}\",\"message\":\"{}\"",
            escape(f.rule_id),
            f.severity.label(),
            escape(&f.domain),
            escape(&f.message)
        );
        match f.cert_index {
            Some(i) => {
                let _ = write!(out, ",\"cert\":{i}");
            }
            None => out.push_str(",\"cert\":null"),
        }
        match (f.byte_offset, f.byte_length) {
            (Some(off), Some(len)) => {
                let _ = write!(out, ",\"byteOffset\":{off},\"byteLength\":{len}");
            }
            _ => out.push_str(",\"byteOffset\":null,\"byteLength\":null"),
        }
        let _ = writeln!(out, ",\"fingerprint\":\"{}\"}}", escape(&f.fingerprint));
    }
    out
}

/// SARIF `tool.driver` identity for [`render_sarif_with`].
#[derive(Clone, Copy, Debug)]
pub struct SarifTool<'a> {
    /// `tool.driver.name`.
    pub name: &'a str,
    /// `tool.driver.version`.
    pub version: &'a str,
    /// `tool.driver.informationUri`.
    pub information_uri: &'a str,
}

/// One `tool.driver.rules` entry for [`render_sarif_with`] — a renderer-
/// neutral projection of rule metadata, so producers other than the lint
/// registry (e.g. the `ccc-mc` lock-order pass) can emit SARIF through
/// the same machinery.
#[derive(Clone, Copy, Debug)]
pub struct SarifRule<'a> {
    /// Stable rule ID.
    pub id: &'a str,
    /// `shortDescription.text`.
    pub description: &'a str,
    /// `defaultConfiguration.level` (`error`/`warning`/`note`).
    pub level: &'a str,
    /// Spec/provenance citation (`properties.citation`).
    pub citation: &'a str,
    /// Rule scope label (`properties.scope`).
    pub scope: &'a str,
}

/// SARIF 2.1.0 rendering against the lint registry.
///
/// The `tool.driver.rules` array always lists the *complete* registry (in
/// registry order), so `ruleIndex` is stable and consumers can show
/// metadata for rules that did not fire. Each result carries the queried
/// domain as the artifact (`chain://<domain>`) and, when the finding is
/// certificate-attributed, a byte region into the concatenated served DER
/// stream.
pub fn render_sarif(findings: &[Finding]) -> String {
    let rules: Vec<SarifRule<'_>> = registry()
        .iter()
        .map(|rule| SarifRule {
            id: rule.id(),
            description: rule.description(),
            level: rule.severity().sarif_level(),
            citation: rule.citation(),
            scope: rule.scope().label(),
        })
        .collect();
    render_sarif_with(
        SarifTool {
            name: "ccc-lint",
            version: env!("CARGO_PKG_VERSION"),
            information_uri: "https://example.invalid/chain-chaos",
        },
        "chain",
        &rules,
        findings,
    )
}

/// Generalized SARIF 2.1.0 rendering: any tool identity, artifact URI
/// `scheme`, and rules table. [`render_sarif`] is this with the lint
/// registry and the `chain://` scheme (byte-identical to the historical
/// output); the concurrency bridge ([`crate::concurrency`]) reuses it for
/// lock-order reports.
pub fn render_sarif_with(
    tool: SarifTool<'_>,
    scheme: &str,
    rules: &[SarifRule<'_>],
    findings: &[Finding],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n",
    );
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    let _ = writeln!(
        out,
        "          \"name\": \"{}\",\n          \"version\": \"{}\",\n          \"informationUri\": \"{}\",\n          \"rules\": [",
        escape(tool.name),
        escape(tool.version),
        escape(tool.information_uri)
    );
    for (i, rule) in rules.iter().enumerate() {
        let comma = if i + 1 < rules.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \"defaultConfiguration\": {{\"level\": \"{}\"}}, \"properties\": {{\"citation\": \"{}\", \"scope\": \"{}\"}}}}{comma}",
            escape(rule.id),
            escape(rule.description),
            rule.level,
            escape(rule.citation),
            rule.scope
        );
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let rule_index = rules.iter().position(|r| r.id == f.rule_id).unwrap_or(0);
        let comma = if i + 1 < findings.len() { "," } else { "" };
        let mut location = format!(
            "{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{scheme}://{}\"}}",
            escape(&f.domain)
        );
        if let (Some(off), Some(len)) = (f.byte_offset, f.byte_length) {
            let _ = write!(
                location,
                ", \"region\": {{\"byteOffset\": {off}, \"byteLength\": {len}}}"
            );
        }
        location.push_str("}}");
        let _ = writeln!(
            out,
            "        {{\"ruleId\": \"{}\", \"ruleIndex\": {rule_index}, \"level\": \"{}\", \"message\": {{\"text\": \"{}\"}}, \"partialFingerprints\": {{\"cccFinding/v1\": \"{}\"}}, \"locations\": [{location}]}}{comma}",
            escape(f.rule_id),
            f.severity.sarif_level(),
            escape(&f.message),
            escape(&f.fingerprint)
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule_id: "e_chain_reversed_order",
                severity: Severity::Error,
                domain: "d.sim".to_string(),
                message: "1 of 1 path(s) reversed".to_string(),
                cert_index: None,
                byte_offset: None,
                byte_length: None,
                fingerprint: "00aa".to_string(),
            },
            Finding {
                rule_id: "w_root_included",
                severity: Severity::Warn,
                domain: "d.sim".to_string(),
                message: "self-signed \"root\" served".to_string(),
                cert_index: Some(2),
                byte_offset: Some(1024),
                byte_length: Some(512),
                fingerprint: "00bb".to_string(),
            },
        ]
    }

    #[test]
    fn text_lines_and_recap() {
        let text = render_text(&sample());
        assert!(text.contains("error: 1 of 1 path(s) reversed [e_chain_reversed_order]"));
        assert!(text.contains("(cert #2, bytes 1024..1536)"));
        assert!(text.ends_with("2 finding(s), 1 error, 1 warn, 0 info, 0 notice\n"));
    }

    #[test]
    fn jsonl_each_line_parses() {
        let text = render_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("rule").and_then(Value::as_str),
            Some("e_chain_reversed_order")
        );
        assert_eq!(first.get("cert"), Some(&Value::Null));
        let second = json::parse(lines[1]).unwrap();
        assert_eq!(second.get("cert").and_then(Value::as_f64), Some(2.0));
        assert_eq!(second.get("byteLength").and_then(Value::as_f64), Some(512.0));
        // The embedded quotes survived escaping.
        assert_eq!(
            second.get("message").and_then(Value::as_str),
            Some("self-signed \"root\" served")
        );
    }

    #[test]
    fn sarif_shape_is_valid() {
        let doc = json::parse(&render_sarif(&sample())).unwrap();
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Value::as_array).unwrap();
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get("tool").and_then(|t| t.get("driver")).unwrap();
        assert_eq!(driver.get("name").and_then(Value::as_str), Some("ccc-lint"));
        let rules = driver.get("rules").and_then(Value::as_array).unwrap();
        assert_eq!(rules.len(), registry().len());
        let results = runs[0].get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 2);
        // ruleIndex points back into the rules table.
        for result in results {
            let idx = result.get("ruleIndex").and_then(Value::as_f64).unwrap() as usize;
            let id = result.get("ruleId").and_then(Value::as_str).unwrap();
            assert_eq!(rules[idx].get("id").and_then(Value::as_str), Some(id));
        }
        // The cert-attributed result carries a byte region.
        let region = results[1]
            .get("locations")
            .and_then(Value::as_array)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .unwrap();
        assert_eq!(region.get("byteOffset").and_then(Value::as_f64), Some(1024.0));
    }

    #[test]
    fn empty_findings_still_render() {
        assert_eq!(render_jsonl(&[]), "");
        assert!(render_text(&[]).starts_with("0 finding(s)"));
        let doc = json::parse(&render_sarif(&[])).unwrap();
        let runs = doc.get("runs").and_then(Value::as_array).unwrap();
        let results = runs[0].get("results").and_then(Value::as_array).unwrap();
        assert!(results.is_empty());
    }
}
