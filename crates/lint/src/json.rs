//! Minimal hand-rolled JSON support (no serde).
//!
//! Two halves: [`escape`] for the JSONL/SARIF renderers, and a small
//! recursive-descent [`parse`] used by the baseline loader — and by the
//! snapshot tests, which parse the crate's own SARIF output to validate
//! its shape instead of string-matching.

use std::fmt;

/// Escape a string for inclusion inside JSON double quotes (the quotes
/// themselves are not added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Objects preserve key order (baselines are
/// serialized deterministically, so round-trips are byte-stable).
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64; baselines only use small ints).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object as an ordered key/value list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "\"{}\"", escape(s)),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse a complete JSON document. Errors carry the byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match b {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(Value::Str(parse_string(bytes, pos)?)),
        b't' => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        b'f' => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        b'n' => parse_keyword(bytes, pos, "null", Value::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => Err(format!("unexpected byte 0x{b:02x} at {pos}", pos = *pos)),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        // Surrogate pairs are not needed for baselines;
                        // replace unpaired surrogates rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape '\\{}'", esc as char)),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence beginning at b.
                let len = utf8_len(b);
                let start = *pos - 1;
                let end = start + len;
                let chunk = bytes
                    .get(start..end)
                    .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{0001}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"version":1,"items":[{"a":"x","n":42,"ok":true},null,-3.5]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("version").and_then(Value::as_f64), Some(1.0));
        let items = v.get("items").and_then(Value::as_array).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("a").and_then(Value::as_str), Some("x"));
        assert_eq!(items[0].get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(items[1], Value::Null);
        assert_eq!(items[2].as_f64(), Some(-3.5));
        // Display → parse round-trips structurally.
        let again = parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn parse_string_escapes() {
        let v = parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_unicode_passthrough() {
        let v = parse("\"caf\u{e9} \u{2713}\"").unwrap();
        assert_eq!(v.as_str(), Some("café ✓"));
    }
}
