//! Finding baselines: suppress known findings so CI fails only on *new*
//! ones.
//!
//! A baseline is a set of `(rule-id, fingerprint)` pairs. Fingerprints are
//! content-derived (see [`Finding`]), so a baseline survives re-ordering,
//! corpus re-generation with the same seed, and renderer changes — it
//! breaks only when the underlying observation changes.

use crate::diag::Finding;
use crate::json::{self, Value};
use std::collections::BTreeSet;

/// Current on-disk format version.
const VERSION: u64 = 1;

/// A set of suppressed `(rule-id, fingerprint)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    suppressions: BTreeSet<(String, String)>,
}

impl Baseline {
    /// An empty baseline (suppresses nothing).
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Baseline covering every finding in `findings`.
    pub fn from_findings<'a>(findings: impl IntoIterator<Item = &'a Finding>) -> Baseline {
        let suppressions = findings
            .into_iter()
            .map(|f| (f.rule_id.to_string(), f.fingerprint.clone()))
            .collect();
        Baseline { suppressions }
    }

    /// Parse the JSON baseline format:
    ///
    /// ```json
    /// {"version":1,"suppressions":[{"rule":"e_x","fingerprint":"ab..."}]}
    /// ```
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text)?;
        let version = doc
            .get("version")
            .and_then(Value::as_f64)
            .ok_or("baseline: missing 'version'")?;
        if version as u64 != VERSION {
            return Err(format!("baseline: unsupported version {version}"));
        }
        let items = doc
            .get("suppressions")
            .and_then(Value::as_array)
            .ok_or("baseline: missing 'suppressions' array")?;
        let mut suppressions = BTreeSet::new();
        for (i, item) in items.iter().enumerate() {
            let rule = item
                .get("rule")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("baseline: suppression #{i} missing 'rule'"))?;
            let fingerprint = item
                .get("fingerprint")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("baseline: suppression #{i} missing 'fingerprint'"))?;
            suppressions.insert((rule.to_string(), fingerprint.to_string()));
        }
        Ok(Baseline { suppressions })
    }

    /// Serialize deterministically (sorted by rule, then fingerprint) with
    /// one suppression per line, so baselines diff cleanly in review.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"suppressions\": [");
        for (i, (rule, fingerprint)) in self.suppressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"fingerprint\": \"{}\"}}",
                json::escape(rule),
                json::escape(fingerprint)
            ));
        }
        if !self.suppressions.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Is this finding suppressed?
    pub fn is_suppressed(&self, finding: &Finding) -> bool {
        self.suppressions
            .contains(&(finding.rule_id.to_string(), finding.fingerprint.clone()))
    }

    /// Drop suppressed findings, keeping order.
    pub fn filter(&self, findings: Vec<Finding>) -> Vec<Finding> {
        if self.suppressions.is_empty() {
            return findings;
        }
        findings
            .into_iter()
            .filter(|f| !self.is_suppressed(f))
            .collect()
    }

    /// Number of suppressions.
    pub fn len(&self) -> usize {
        self.suppressions.len()
    }

    /// True when nothing is suppressed.
    pub fn is_empty(&self) -> bool {
        self.suppressions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn finding(rule_id: &'static str, fingerprint: &str) -> Finding {
        Finding {
            rule_id,
            severity: Severity::Error,
            domain: "d.sim".to_string(),
            message: "m".to_string(),
            cert_index: None,
            byte_offset: None,
            byte_length: None,
            fingerprint: fingerprint.to_string(),
        }
    }

    #[test]
    fn round_trip_and_filtering() {
        let a = finding("e_chain_incomplete", "00aa");
        let b = finding("e_chain_incomplete", "00bb");
        let c = finding("e_kid_mismatch", "00aa");
        let baseline = Baseline::from_findings([&a, &c]);
        assert_eq!(baseline.len(), 2);
        assert!(baseline.is_suppressed(&a));
        assert!(!baseline.is_suppressed(&b));
        assert!(baseline.is_suppressed(&c));

        let text = baseline.to_json();
        let reparsed = Baseline::parse(&text).unwrap();
        assert_eq!(baseline, reparsed);

        let kept = baseline.filter(vec![a, b.clone(), c]);
        assert_eq!(kept, vec![b]);
    }

    #[test]
    fn empty_baseline_round_trips() {
        let baseline = Baseline::empty();
        assert!(baseline.is_empty());
        let reparsed = Baseline::parse(&baseline.to_json()).unwrap();
        assert!(reparsed.is_empty());
    }

    #[test]
    fn rejects_bad_versions_and_shapes() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse(r#"{"version":2,"suppressions":[]}"#).is_err());
        assert!(Baseline::parse(r#"{"version":1}"#).is_err());
        assert!(
            Baseline::parse(r#"{"version":1,"suppressions":[{"rule":"e_x"}]}"#).is_err()
        );
        assert!(Baseline::parse("not json").is_err());
    }

    #[test]
    fn serialization_is_sorted_and_line_per_entry() {
        let b = finding("w_b", "02");
        let a = finding("e_a", "01");
        let baseline = Baseline::from_findings([&b, &a]);
        let text = baseline.to_json();
        let first = text.find("e_a").unwrap();
        let second = text.find("w_b").unwrap();
        assert!(first < second, "{text}");
        assert_eq!(text.matches("\n    {").count(), 2);
    }
}
