//! The lint engine: per-chain evaluation and parallel corpus-wide passes.
//!
//! [`LintEngine`] evaluates the full rule registry against one served
//! chain. [`LintSummary`] runs the engine over a generated corpus across
//! `CCC_THREADS` workers with bit-identical results for every thread count
//! (rank-ordered chunks, partials merged in thread-index order), and
//! cross-checks the severity contract on every chain: a chain is
//! non-compliant per [`ccc_core::analyze_compliance`] **iff** linting it yields at
//! least one `Error`-severity finding.

use crate::diag::{ChainContext, Finding, Severity};
use crate::rules::registry;
use ccc_asn1::Time;
use ccc_core::{
    analyze_compliance_with_graph, ComplianceReport, CompletenessAnalyzer, IssuanceChecker,
    NonCompliance, TopologyGraph,
};
use ccc_netsim::AiaRepository;
use ccc_rootstore::RootStore;
use ccc_testgen::corpus::scan_time;
use ccc_testgen::Corpus;
use ccc_x509::Certificate;
use std::collections::BTreeMap;

/// The Error-severity rule that fires for each aggregate
/// [`NonCompliance`] finding — the explicit half of the
/// "non-compliant ⇔ ≥1 error finding" contract. The other half (no Error
/// rule fires on compliant chains) is enforced by [`LintSummary`]'s
/// per-chain cross-check and the corpus proptests.
pub fn rule_for_noncompliance(nc: NonCompliance) -> &'static str {
    match nc {
        NonCompliance::LeafMisplaced => "e_leaf_not_first",
        NonCompliance::DuplicateCertificates => "e_chain_duplicate_certificates",
        NonCompliance::IrrelevantCertificates => "e_chain_irrelevant_certificates",
        NonCompliance::MultiplePaths => "e_chain_multiple_paths",
        NonCompliance::ReversedSequence => "e_chain_reversed_order",
        NonCompliance::IncompleteChain => "e_chain_incomplete",
    }
}

/// Worker-thread count for corpus lints: `CCC_THREADS` env override, else
/// detected parallelism capped at 16 (mirrors the bench harness; results
/// are bit-identical regardless).
fn threads_from_env() -> usize {
    if let Some(n) = std::env::var("CCC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Evaluates the rule registry against served chains.
///
/// Holds the shared sharded [`IssuanceChecker`], so the topology rebuild
/// performed for linting after `analyze_compliance` is all cache hits,
/// and signature-dependent rules never re-verify an (issuer, subject)
/// pair.
#[derive(Clone, Copy, Debug)]
pub struct LintEngine<'a> {
    checker: &'a IssuanceChecker,
    analyzer: CompletenessAnalyzer<'a>,
    now: Time,
}

impl<'a> LintEngine<'a> {
    /// Build an engine. `aia` of `None` models a lint run without the AIA
    /// repository (incomplete chains then report as non-recoverable).
    pub fn new(
        checker: &'a IssuanceChecker,
        store: &'a RootStore,
        aia: Option<&'a AiaRepository>,
        now: Time,
    ) -> LintEngine<'a> {
        LintEngine {
            checker,
            analyzer: CompletenessAnalyzer::new(checker, store, aia),
            now,
        }
    }

    /// The simulated scan instant the engine evaluates at.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The shared signature cache this engine lints against.
    pub fn checker(&self) -> &'a IssuanceChecker {
        self.checker
    }

    /// The completeness analyzer this engine computes compliance reports
    /// with (same configuration as the compliance pass: one shared
    /// report is valid for both).
    pub fn analyzer(&self) -> &CompletenessAnalyzer<'a> {
        &self.analyzer
    }

    /// Lint one (domain, served list) observation.
    pub fn lint_chain(&self, domain: &str, served: &[Certificate]) -> Vec<Finding> {
        self.lint_chain_with_report(domain, served).1
    }

    /// Lint one observation and also return the aggregate compliance
    /// report the chain-scope rules consumed.
    pub fn lint_chain_with_report(
        &self,
        domain: &str,
        served: &[Certificate],
    ) -> (ComplianceReport, Vec<Finding>) {
        // Single graph build serves both the compliance analysis and the
        // rule context (cache hits on the shared checker either way).
        let graph = TopologyGraph::build(served, self.checker);
        let report = analyze_compliance_with_graph(domain, served, &graph, &self.analyzer);
        let findings = self.lint_prepared(domain, served, &graph, &report);
        (report, findings)
    }

    /// Run the rule registry against artifacts the caller already built
    /// for this observation (the fused pipeline shares one
    /// [`TopologyGraph`] and one [`ComplianceReport`] across passes).
    /// [`LintEngine::lint_chain_with_report`] delegates here, so results
    /// are identical by construction.
    pub fn lint_prepared(
        &self,
        domain: &str,
        served: &[Certificate],
        graph: &TopologyGraph,
        report: &ComplianceReport,
    ) -> Vec<Finding> {
        let ctx = ChainContext::new(domain, served, graph, report, self.now, self.checker);
        let mut findings = Vec::new();
        for rule in registry() {
            rule.check(&ctx, &mut findings);
        }
        findings
    }
}

/// Whole-corpus lint statistics.
///
/// Keeps histograms plus the full Error-severity finding list (errors are
/// a small minority by construction); Warn/Info/Notice findings are
/// counted but not retained, which keeps 100k-domain passes cheap.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintSummary {
    /// Domains linted.
    pub total: usize,
    /// Findings across all severities.
    pub findings_total: usize,
    /// Finding count per rule ID.
    pub rule_hits: BTreeMap<&'static str, usize>,
    /// Chains with ≥1 finding per rule ID.
    pub chains_by_rule: BTreeMap<&'static str, usize>,
    /// Finding count per severity.
    pub severity_hits: BTreeMap<Severity, usize>,
    /// Chains non-compliant per `analyze_compliance`.
    pub noncompliant_chains: usize,
    /// Chains with ≥1 Error-severity finding.
    pub chains_with_error: usize,
    /// Violations of the "non-compliant ⇔ ≥1 error finding" contract
    /// (always empty; a non-empty list is a bug in the registry).
    pub consistency_violations: Vec<String>,
    /// Every Error-severity finding, in rank order.
    pub error_findings: Vec<Finding>,
}

impl LintSummary {
    /// One lint pass over `corpus` with a fresh checker.
    pub fn compute(corpus: &Corpus) -> LintSummary {
        let checker = IssuanceChecker::new();
        Self::compute_with_checker(corpus, &checker)
    }

    /// Lint pass against a caller-supplied shared checker (reuse the cache
    /// across an analysis pass and a lint pass). Worker count comes from
    /// `CCC_THREADS` (else detected cores, capped at 16).
    pub fn compute_with_checker(corpus: &Corpus, checker: &IssuanceChecker) -> LintSummary {
        Self::compute_with_threads(corpus, checker, threads_from_env())
    }

    /// Lint pass with an explicit worker count. The result is
    /// **bit-identical** for every `threads` value: workers own
    /// rank-ordered chunks and partials merge in thread-index order.
    pub fn compute_with_threads(
        corpus: &Corpus,
        checker: &IssuanceChecker,
        threads: usize,
    ) -> LintSummary {
        if threads <= 1 || corpus.spec.domains < 256 {
            return Self::compute_range(corpus, checker, 0, corpus.spec.domains);
        }
        let chunk = corpus.spec.domains.div_ceil(threads);
        // ccc_mc::scope is std::thread::scope in normal builds; the shim
        // keeps ci/check_raw_sync.sh's raw-primitive ban satisfied for
        // this wired crate.
        let partials: Vec<LintSummary> = ccc_mc::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(corpus.spec.domains);
                    scope.spawn(move || Self::compute_range(corpus, checker, start, end))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("lint worker"))
                .collect()
        });
        let mut total = LintSummary::default();
        for p in partials {
            total.merge(p);
        }
        total
    }

    /// Sequential lint over a rank range against a shared checker.
    pub fn compute_range(
        corpus: &Corpus,
        checker: &IssuanceChecker,
        start: usize,
        end: usize,
    ) -> LintSummary {
        let engine = LintEngine::new(
            checker,
            corpus.programs.unified(),
            Some(&corpus.aia),
            scan_time(),
        );
        let mut s = LintSummary {
            total: end.saturating_sub(start),
            ..Default::default()
        };
        for rank in start..end {
            let obs = corpus.observation(rank);
            let (report, findings) = engine.lint_chain_with_report(&obs.domain, &obs.served);
            s.absorb_chain(&obs.domain, &report, findings);
        }
        s
    }

    /// Fold one linted chain into the summary, running the consistency
    /// cross-check.
    pub fn absorb_chain(
        &mut self,
        domain: &str,
        report: &ComplianceReport,
        findings: Vec<Finding>,
    ) {
        self.findings_total += findings.len();
        let mut seen_rules: Vec<&'static str> = Vec::new();
        let mut has_error = false;
        for f in &findings {
            *self.rule_hits.entry(f.rule_id).or_insert(0) += 1;
            *self.severity_hits.entry(f.severity).or_insert(0) += 1;
            if !seen_rules.contains(&f.rule_id) {
                seen_rules.push(f.rule_id);
                *self.chains_by_rule.entry(f.rule_id).or_insert(0) += 1;
            }
            if f.severity == Severity::Error {
                has_error = true;
            }
        }
        if !report.is_compliant() {
            self.noncompliant_chains += 1;
        }
        if has_error {
            self.chains_with_error += 1;
        }
        // The ⇔ contract, checked in both directions.
        if has_error == report.is_compliant() {
            self.consistency_violations.push(format!(
                "{domain}: compliant={} but error findings present={has_error}",
                report.is_compliant()
            ));
        }
        for nc in &report.findings {
            let rule_id = rule_for_noncompliance(*nc);
            if !seen_rules.contains(&rule_id) {
                self.consistency_violations.push(format!(
                    "{domain}: non-compliance {nc:?} did not fire {rule_id}"
                ));
            }
        }
        self.error_findings
            .extend(findings.into_iter().filter(|f| f.severity == Severity::Error));
    }

    /// Fold a worker partial into this summary (rank-chunk order matters
    /// for `error_findings`/`consistency_violations`: merge partials in
    /// ascending rank order to keep results thread-count invariant).
    /// Public so `ccc-bench`'s fused pipeline `LintPass` can reuse it.
    pub fn merge(&mut self, other: LintSummary) {
        self.total += other.total;
        self.findings_total += other.findings_total;
        for (k, v) in other.rule_hits {
            *self.rule_hits.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.chains_by_rule {
            *self.chains_by_rule.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.severity_hits {
            *self.severity_hits.entry(k).or_insert(0) += v;
        }
        self.noncompliant_chains += other.noncompliant_chains;
        self.chains_with_error += other.chains_with_error;
        self.consistency_violations
            .extend(other.consistency_violations);
        self.error_findings.extend(other.error_findings);
    }

    /// True when every chain satisfied the "non-compliant ⇔ ≥1 error
    /// finding" contract.
    pub fn is_consistent(&self) -> bool {
        self.consistency_violations.is_empty()
    }

    /// Finding count at a given severity.
    pub fn severity_count(&self, severity: Severity) -> usize {
        self.severity_hits.get(&severity).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{rule_by_id, RuleScope};
    use ccc_rootstore::{CaUniverse, RootPrograms};
    use ccc_testgen::CorpusSpec;

    fn corpus(domains: usize) -> Corpus {
        // The bench harness's scan seed (SCAN_SEED = 833).
        Corpus::new(CorpusSpec::calibrated(833, domains))
    }

    #[test]
    fn noncompliance_mapping_targets_error_chain_rules() {
        let variants = [
            NonCompliance::LeafMisplaced,
            NonCompliance::DuplicateCertificates,
            NonCompliance::IrrelevantCertificates,
            NonCompliance::MultiplePaths,
            NonCompliance::ReversedSequence,
            NonCompliance::IncompleteChain,
        ];
        for nc in variants {
            let rule = rule_by_id(rule_for_noncompliance(nc))
                .unwrap_or_else(|| panic!("{nc:?} maps to unregistered rule"));
            assert_eq!(rule.severity(), Severity::Error, "{nc:?}");
            assert_eq!(rule.scope(), RuleScope::Chain, "{nc:?}");
        }
    }

    #[test]
    fn clean_chain_yields_no_error_findings() {
        let universe = CaUniverse::default_with_seed(77);
        let programs = RootPrograms::from_universe(&universe);
        let aia = AiaRepository::new(universe.aia_publications());
        let checker = IssuanceChecker::new();
        let engine = LintEngine::new(&checker, programs.unified(), Some(&aia), scan_time());

        let int = &universe.roots[0].intermediates[0];
        let kp = ccc_crypto::KeyPair::from_seed(ccc_crypto::Group::simulation_256(), b"eng-ok");
        let leaf = ccc_x509::CertificateBuilder::leaf_profile("ok.sim")
            .aia_ca_issuers(int.aia_uri.clone())
            .issued_by(&kp.public, int.cert.subject().clone(), &int.keypair);
        let served = vec![leaf, int.cert.clone()];

        let (report, findings) = engine.lint_chain_with_report("ok.sim", &served);
        assert!(report.is_compliant(), "{:?}", report.findings);
        assert!(
            findings.iter().all(|f| f.severity != Severity::Error),
            "{findings:?}"
        );
    }

    #[test]
    fn reversed_chain_fires_the_mapped_error_rule() {
        let universe = CaUniverse::default_with_seed(77);
        let programs = RootPrograms::from_universe(&universe);
        let aia = AiaRepository::new(universe.aia_publications());
        let checker = IssuanceChecker::new();
        let engine = LintEngine::new(&checker, programs.unified(), Some(&aia), scan_time());

        let int = &universe.roots[0].intermediates[0];
        let root = &universe.roots[0];
        let kp = ccc_crypto::KeyPair::from_seed(ccc_crypto::Group::simulation_256(), b"eng-rev");
        let leaf = ccc_x509::CertificateBuilder::leaf_profile("rev.sim")
            .aia_ca_issuers(int.aia_uri.clone())
            .issued_by(&kp.public, int.cert.subject().clone(), &int.keypair);
        let served = vec![leaf, root.cert.clone(), int.cert.clone()];

        let (report, findings) = engine.lint_chain_with_report("rev.sim", &served);
        assert!(report.findings.contains(&NonCompliance::ReversedSequence));
        assert!(findings.iter().any(|f| f.rule_id == "e_chain_reversed_order"));
        // The root-included warning also fires (position 1 is self-signed).
        assert!(findings.iter().any(|f| f.rule_id == "w_root_included"));
    }

    #[test]
    fn corpus_lint_upholds_the_equivalence_contract() {
        let c = corpus(300);
        let s = LintSummary::compute(&c);
        assert_eq!(s.total, 300);
        assert!(s.is_consistent(), "{:?}", s.consistency_violations);
        assert_eq!(s.noncompliant_chains, s.chains_with_error);
        assert_eq!(
            s.error_findings.len(),
            s.severity_count(Severity::Error),
            "retained error findings match the histogram"
        );
        // The corpus plants defects, so something fired.
        assert!(s.findings_total > 0);
        assert!(s.noncompliant_chains > 0);
    }

    #[test]
    fn corpus_lint_is_thread_count_invariant() {
        let c = corpus(600);
        let checker = IssuanceChecker::new();
        let one = LintSummary::compute_with_threads(&c, &checker, 1);
        let four = LintSummary::compute_with_threads(&c, &checker, 4);
        assert_eq!(one, four);
    }
}
