//! Golden snapshot tests for the JSONL and SARIF renderers.
//!
//! The linted chain is fully synthetic and seed-deterministic, so the
//! rendered bytes are stable across machines and thread counts. To
//! regenerate after an intentional renderer/rule change:
//!
//! ```text
//! CCC_BLESS=1 cargo test -p ccc-lint --test snapshots
//! ```

use ccc_core::IssuanceChecker;
use ccc_lint::json::{self, Value};
use ccc_lint::{registry, render, LintEngine, Severity};
use ccc_netsim::AiaRepository;
use ccc_rootstore::{CaUniverse, RootPrograms};
use ccc_testgen::corpus::scan_time;
use ccc_x509::Certificate;
use std::path::PathBuf;

/// The fixed chain: leaf under root 0's first intermediate, served as
/// `[leaf, root, intermediate]` — reversed tail plus an included root, so
/// both Error- and Warn-severity rules fire.
fn fixture_chain() -> (String, Vec<Certificate>, CaUniverse) {
    let universe = CaUniverse::default_with_seed(42);
    let int = &universe.roots[0].intermediates[0];
    let kp = ccc_crypto::KeyPair::from_seed(ccc_crypto::Group::simulation_256(), b"lint-golden");
    let leaf = ccc_x509::CertificateBuilder::leaf_profile("golden.sim")
        .aia_ca_issuers(int.aia_uri.clone())
        .issued_by(&kp.public, int.cert.subject().clone(), &int.keypair);
    let served = vec![leaf, universe.roots[0].cert.clone(), int.cert.clone()];
    ("golden.sim".to_string(), served, universe)
}

fn lint_fixture() -> Vec<ccc_lint::Finding> {
    let (domain, served, universe) = fixture_chain();
    let programs = RootPrograms::from_universe(&universe);
    let aia = AiaRepository::new(universe.aia_publications());
    let checker = IssuanceChecker::new();
    let engine = LintEngine::new(&checker, programs.unified(), Some(&aia), scan_time());
    engine.lint_chain(&domain, &served)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("CCC_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir has parent"))
            .expect("create golden dir");
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with CCC_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "{name} drifted from its golden snapshot; if intentional, re-bless with CCC_BLESS=1"
    );
}

#[test]
fn fixture_chain_fires_expected_rules() {
    let findings = lint_fixture();
    let ids: Vec<&str> = findings.iter().map(|f| f.rule_id).collect();
    assert!(ids.contains(&"e_chain_reversed_order"), "{ids:?}");
    assert!(ids.contains(&"w_root_included"), "{ids:?}");
    assert!(findings.iter().any(|f| f.severity == Severity::Error));
}

#[test]
fn jsonl_snapshot_is_stable() {
    check_golden("chain.jsonl", &render::render_jsonl(&lint_fixture()));
}

#[test]
fn sarif_snapshot_is_stable() {
    check_golden("chain.sarif.json", &render::render_sarif(&lint_fixture()));
}

/// A fixed lock-order report with one two-class inversion cycle and one
/// atomics site — the shape the ccc-mc `gated_lock_inversion` scenario
/// produces, hand-built so the snapshot does not require the
/// `model-check` feature to regenerate.
fn lock_order_fixture() -> ccc_mc::LockOrderReport {
    use ccc_mc::{AtomicSiteSummary, LockClass, LockEdge, LockKind, LockOrderReport};
    let mut report = LockOrderReport {
        classes: vec![
            LockClass {
                kind: LockKind::Mutex,
                site: "crates/mc/src/scenarios.rs:10".to_string(),
            },
            LockClass {
                kind: LockKind::Mutex,
                site: "crates/mc/src/scenarios.rs:11".to_string(),
            },
        ],
        edges: vec![
            LockEdge {
                from: 0,
                to: 1,
                acquire_site: "crates/mc/src/scenarios.rs:20".to_string(),
                observations: 4,
            },
            LockEdge {
                from: 1,
                to: 0,
                acquire_site: "crates/mc/src/scenarios.rs:30".to_string(),
                observations: 4,
            },
        ],
        cycles: Vec::new(),
        atomics: vec![AtomicSiteSummary {
            site: "crates/mc/src/scenarios.rs:40".to_string(),
            load_orderings: vec!["Relaxed".to_string()],
            store_orderings: Vec::new(),
            rmw_orderings: vec!["Relaxed".to_string()],
        }],
    };
    report.detect_cycles();
    report
}

#[test]
fn lock_order_sarif_snapshot_is_stable() {
    check_golden(
        "lockorder.sarif.json",
        &ccc_lint::render_lock_order_sarif(&lock_order_fixture()),
    );
}

#[test]
fn text_snapshot_is_stable() {
    check_golden("chain.txt", &render::render_text(&lint_fixture()));
}

/// Programmatic SARIF 2.1.0 shape validation, independent of the golden
/// bytes: required top-level fields, rules metadata for the whole
/// registry, results referencing valid ruleIndex values and severities.
#[test]
fn sarif_output_validates_structurally() {
    let sarif = render::render_sarif(&lint_fixture());
    let doc = json::parse(&sarif).expect("SARIF output is valid JSON");

    assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
    assert!(doc
        .get("$schema")
        .and_then(Value::as_str)
        .is_some_and(|s| s.contains("sarif-2.1.0")));

    let runs = doc.get("runs").and_then(Value::as_array).expect("runs[]");
    assert_eq!(runs.len(), 1);
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(driver.get("name").and_then(Value::as_str), Some("ccc-lint"));

    let rules = driver.get("rules").and_then(Value::as_array).expect("rules[]");
    assert_eq!(rules.len(), registry().len());
    for (rule_meta, rule) in rules.iter().zip(registry()) {
        assert_eq!(rule_meta.get("id").and_then(Value::as_str), Some(rule.id()));
        assert!(rule_meta
            .get("shortDescription")
            .and_then(|d| d.get("text"))
            .and_then(Value::as_str)
            .is_some_and(|t| !t.is_empty()));
        let level = rule_meta
            .get("defaultConfiguration")
            .and_then(|c| c.get("level"))
            .and_then(Value::as_str)
            .expect("defaultConfiguration.level");
        assert!(matches!(level, "error" | "warning" | "note"), "{level}");
    }

    let results = runs[0]
        .get("results")
        .and_then(Value::as_array)
        .expect("results[]");
    assert!(!results.is_empty());
    for result in results {
        let rule_id = result.get("ruleId").and_then(Value::as_str).expect("ruleId");
        let idx = result
            .get("ruleIndex")
            .and_then(Value::as_f64)
            .expect("ruleIndex") as usize;
        assert_eq!(rules[idx].get("id").and_then(Value::as_str), Some(rule_id));
        assert!(result
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Value::as_str)
            .is_some());
        let locations = result
            .get("locations")
            .and_then(Value::as_array)
            .expect("locations[]");
        let uri = locations[0]
            .get("physicalLocation")
            .and_then(|p| p.get("artifactLocation"))
            .and_then(|a| a.get("uri"))
            .and_then(Value::as_str)
            .expect("artifact uri");
        assert!(uri.starts_with("chain://"), "{uri}");
    }
}

/// Each JSONL line is a standalone JSON object with the full field set.
#[test]
fn jsonl_output_validates_structurally() {
    let findings = lint_fixture();
    let text = render::render_jsonl(&findings);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), findings.len());
    for (line, finding) in lines.iter().zip(&findings) {
        let obj = json::parse(line).expect("JSONL line parses");
        assert_eq!(obj.get("rule").and_then(Value::as_str), Some(finding.rule_id));
        assert_eq!(
            obj.get("severity").and_then(Value::as_str),
            Some(finding.severity.label())
        );
        assert_eq!(obj.get("domain").and_then(Value::as_str), Some("golden.sim"));
        assert_eq!(
            obj.get("fingerprint").and_then(Value::as_str),
            Some(finding.fingerprint.as_str())
        );
        for key in ["message", "cert", "byteOffset", "byteLength"] {
            assert!(obj.get(key).is_some(), "missing {key}");
        }
    }
}
