//! Property and invariance tests for corpus-wide linting.
//!
//! The two load-bearing properties:
//! 1. **Equivalence**: a chain is non-compliant per `analyze_compliance`
//!    iff linting yields ≥1 Error-severity finding — over arbitrary corpus
//!    seeds, not just the scan seed.
//! 2. **Thread invariance**: `LintSummary` is bit-identical for every
//!    `CCC_THREADS` worker count.

use ccc_core::IssuanceChecker;
use ccc_lint::{LintSummary, Severity};
use ccc_testgen::{Corpus, CorpusSpec};
use proptest::prelude::*;
use ccc_mc::OnceLock;

/// Shared 1000-domain scan corpus (seed 833, the bench harness seed);
/// built once, reused by the heavier tests below.
fn scan_corpus_1k() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| Corpus::new(CorpusSpec::calibrated(833, 1000)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Equivalence holds for arbitrary corpus seeds: every compliant
    // chain lints clean of errors, every non-compliant chain produces at
    // least one error finding, and the mapped chain rule fires.
    #[test]
    fn lint_compliance_equivalence_over_seeds(seed in 1u64..5000) {
        let corpus = Corpus::new(CorpusSpec::calibrated(seed, 64));
        let checker = IssuanceChecker::new();
        let s = LintSummary::compute_range(&corpus, &checker, 0, 64);
        prop_assert!(s.is_consistent(), "{:?}", s.consistency_violations);
        prop_assert_eq!(s.noncompliant_chains, s.chains_with_error);
        prop_assert_eq!(s.error_findings.len(), s.severity_count(Severity::Error));
    }

    // Partial-range lints compose: linting [0, n) equals merging the
    // histograms of [0, k) and [k, n) — the associativity the threaded
    // pass relies on.
    #[test]
    fn range_splits_compose(split in 1usize..63) {
        let corpus = Corpus::new(CorpusSpec::calibrated(97, 64));
        let checker = IssuanceChecker::new();
        let whole = LintSummary::compute_range(&corpus, &checker, 0, 64);
        let left = LintSummary::compute_range(&corpus, &checker, 0, split);
        let right = LintSummary::compute_range(&corpus, &checker, split, 64);
        prop_assert_eq!(
            whole.findings_total,
            left.findings_total + right.findings_total
        );
        prop_assert_eq!(
            whole.noncompliant_chains,
            left.noncompliant_chains + right.noncompliant_chains
        );
        prop_assert_eq!(
            whole.error_findings.len(),
            left.error_findings.len() + right.error_findings.len()
        );
    }
}

/// The ISSUE's 1k-domain cross-check: the full scan corpus at 1000
/// domains upholds the equivalence contract and produces a sane
/// severity mix.
#[test]
fn scan_corpus_1k_lint_is_consistent() {
    let corpus = scan_corpus_1k();
    let checker = IssuanceChecker::new();
    let s = LintSummary::compute_with_checker(corpus, &checker);
    assert_eq!(s.total, 1000);
    assert!(s.is_consistent(), "{:?}", s.consistency_violations);
    assert_eq!(s.noncompliant_chains, s.chains_with_error);
    // The calibrated corpus plants every defect class at low rates; at 1k
    // domains some errors and plenty of notices/warnings exist.
    assert!(s.severity_count(Severity::Error) > 0);
    assert!(s.findings_total > s.severity_count(Severity::Error));
}

/// Bit-identical results for CCC_THREADS ∈ {1, 3, 8}: same histograms,
/// same retained error findings, same order.
#[test]
fn lint_summary_is_thread_count_invariant() {
    let corpus = scan_corpus_1k();
    let checker = IssuanceChecker::new();
    let one = LintSummary::compute_with_threads(corpus, &checker, 1);
    let three = LintSummary::compute_with_threads(corpus, &checker, 3);
    let eight = LintSummary::compute_with_threads(corpus, &checker, 8);
    assert_eq!(one, three);
    assert_eq!(one, eight);
}

/// Fingerprints are content-derived: two independent passes over the
/// same corpus produce identical error-finding fingerprints, so a
/// baseline written by one run suppresses the other.
#[test]
fn baselines_transfer_between_runs() {
    let corpus = scan_corpus_1k();
    let first = LintSummary::compute_with_threads(corpus, &IssuanceChecker::new(), 2);
    let second = LintSummary::compute_with_threads(corpus, &IssuanceChecker::new(), 5);
    let baseline = ccc_lint::Baseline::from_findings(first.error_findings.iter());
    let remaining = baseline.filter(second.error_findings);
    assert!(remaining.is_empty(), "{} unsuppressed", remaining.len());
}
