//! End-to-end: a real ccc-mc exploration's lock-order report renders
//! through the lint SARIF bridge (model-check builds only).

#![cfg(feature = "model-check")]

use ccc_lint::concurrency::{lock_order_findings, render_lock_order_sarif, RULE_LOCK_ORDER_CYCLE};
use ccc_lint::json::{self, Value};
use ccc_mc::{scenarios, Explorer};

#[test]
fn explored_inversion_renders_as_sarif_error() {
    let exploration = Explorer::new().explore(scenarios::gated_lock_inversion);
    assert!(exploration.failure.is_none(), "{:?}", exploration.failure);
    assert_eq!(exploration.lock_order.cycles.len(), 1);

    let findings = lock_order_findings(&exploration.lock_order);
    assert!(findings
        .iter()
        .any(|f| f.rule_id == RULE_LOCK_ORDER_CYCLE && f.message.contains("scenarios.rs")));

    let doc = json::parse(&render_lock_order_sarif(&exploration.lock_order))
        .expect("bridge SARIF parses");
    let results = doc
        .get("runs")
        .and_then(Value::as_array)
        .and_then(|r| r[0].get("results"))
        .and_then(Value::as_array)
        .expect("results[]");
    assert!(results.iter().any(|r| {
        r.get("ruleId").and_then(Value::as_str) == Some(RULE_LOCK_ORDER_CYCLE)
            && r.get("level").and_then(Value::as_str) == Some("error")
    }));
}
