//! Administrator deployment behaviours.
//!
//! The bridge between what a CA delivers ([`crate::ca::IssuedBundle`]) and
//! what a server is given ([`crate::httpserver::DeploymentFiles`]). Each
//! behaviour models a configuration pattern the paper attributes real
//! non-compliance to: naive file merges that inherit a reversed bundle,
//! leaf certificates pasted into the chain file (duplicate leaves on old
//! Apache), dropped bundles (incomplete chains), stale leftovers from
//! previous renewals, foreign chains from co-hosted domains, and
//! copy-paste multiplication of the bundle (the ns3.link 29-certificate
//! pattern).

use crate::ca::IssuedBundle;
use crate::httpserver::{DeploymentFiles, FileLayout, HttpServerKind};
use ccc_x509::Certificate;
use std::fmt;

/// A deployment behaviour (one per corpus domain).
#[derive(Clone, Debug)]
pub enum AdminBehavior {
    /// Follow the CA/server guidance: compliant chain, root omitted.
    FollowGuide,
    /// Concatenate the delivered files verbatim (inherits any bundle
    /// reversal or included root).
    NaiveMerge,
    /// Paste the leaf into the chain file too (duplicate leaf).
    LeafInChainFile,
    /// Deploy only the leaf file, no bundle (incomplete chain).
    DropBundle,
    /// Leave `n` previous leaf certificates in the file ahead of cleanup
    /// (webcanny.com pattern: multiple leaves, newest first).
    StaleLeaves(Vec<Certificate>),
    /// Append another (unrelated) chain managed by the same admin
    /// (archives.gov.tw pattern).
    AppendForeignChain(Vec<Certificate>),
    /// Paste the bundle `n` extra times (ns3.link duplication pattern).
    DuplicateBundle(usize),
    /// Reverse the *entire* served list, leaf last.
    ReverseEverything,
    /// Deploy a chain for the wrong host (leaf CN/SAN does not match).
    WrongHostChain(Vec<Certificate>),
}

impl fmt::Display for AdminBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            AdminBehavior::FollowGuide => "follow-guide",
            AdminBehavior::NaiveMerge => "naive-merge",
            AdminBehavior::LeafInChainFile => "leaf-in-chain-file",
            AdminBehavior::DropBundle => "drop-bundle",
            AdminBehavior::StaleLeaves(_) => "stale-leaves",
            AdminBehavior::AppendForeignChain(_) => "append-foreign-chain",
            AdminBehavior::DuplicateBundle(_) => "duplicate-bundle",
            AdminBehavior::ReverseEverything => "reverse-everything",
            AdminBehavior::WrongHostChain(_) => "wrong-host-chain",
        };
        write!(f, "{label}")
    }
}

/// Errors an administrator can hit before even reaching the server.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdminError {
    /// The behaviour needed a ca-bundle but the CA did not provide one.
    NoBundleAvailable,
}

impl fmt::Display for AdminError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdminError::NoBundleAvailable => write!(f, "CA provided no ca-bundle file"),
        }
    }
}

impl std::error::Error for AdminError {}

/// Assemble deployment files for `server` from the CA delivery, applying
/// the behaviour. Never fails: behaviours degrade gracefully when a file
/// is missing (e.g. a naive merge without a bundle deploys just the leaf,
/// which is exactly how incomplete TAIWAN-CA chains arise).
pub fn assemble(
    bundle: &IssuedBundle,
    behavior: &AdminBehavior,
    server: HttpServerKind,
) -> DeploymentFiles {
    // The certificates the CA delivered, in delivered order.
    let delivered_chain: Vec<Certificate> = bundle
        .fullchain
        .clone()
        .unwrap_or_else(|| {
            let mut v = vec![bundle.leaf.clone()];
            if let Some(cb) = &bundle.ca_bundle {
                v.extend(cb.iter().cloned());
            }
            v
        });

    let (mut cert_file, mut chain_file): (Vec<Certificate>, Option<Vec<Certificate>>) =
        match behavior {
            AdminBehavior::FollowGuide => {
                // A careful admin produces the compliant chain regardless
                // of delivery order.
                let compliant = bundle.compliant_chain();
                match server.file_layout() {
                    FileLayout::SeparateLeafAndBundle => {
                        (vec![compliant[0].clone()], Some(compliant[1..].to_vec()))
                    }
                    _ => (compliant, None),
                }
            }
            AdminBehavior::NaiveMerge => match server.file_layout() {
                FileLayout::SeparateLeafAndBundle => (
                    vec![bundle.leaf.clone()],
                    bundle.ca_bundle.clone().or_else(|| {
                        bundle
                            .fullchain
                            .as_ref()
                            .map(|fc| fc[1..].to_vec())
                    }),
                ),
                _ => (delivered_chain.clone(), None),
            },
            AdminBehavior::LeafInChainFile => {
                let mut chain = vec![bundle.leaf.clone()];
                if let Some(cb) = &bundle.ca_bundle {
                    chain.extend(cb.iter().cloned());
                } else if let Some(fc) = &bundle.fullchain {
                    chain.extend(fc[1..].iter().cloned());
                }
                (vec![bundle.leaf.clone()], Some(chain))
            }
            AdminBehavior::DropBundle => (vec![bundle.leaf.clone()], None),
            AdminBehavior::StaleLeaves(old_leaves) => {
                // Newest leaf first, then progressively older ones, then
                // the chain.
                let mut file = vec![bundle.leaf.clone()];
                file.extend(old_leaves.iter().cloned());
                let rest: Option<Vec<Certificate>> = bundle
                    .ca_bundle
                    .clone()
                    .or_else(|| bundle.fullchain.as_ref().map(|fc| fc[1..].to_vec()));
                match server.file_layout() {
                    FileLayout::SeparateLeafAndBundle => (file, rest),
                    _ => {
                        if let Some(rest) = rest {
                            file.extend(rest);
                        }
                        (file, None)
                    }
                }
            }
            AdminBehavior::AppendForeignChain(foreign) => {
                let mut file = delivered_chain.clone();
                file.extend(foreign.iter().cloned());
                (file, None)
            }
            AdminBehavior::DuplicateBundle(times) => {
                let mut file = vec![bundle.leaf.clone()];
                let unit: Vec<Certificate> = bundle
                    .ca_bundle
                    .clone()
                    .or_else(|| bundle.fullchain.as_ref().map(|fc| fc[1..].to_vec()))
                    .unwrap_or_default();
                for _ in 0..=*times {
                    file.extend(unit.iter().cloned());
                }
                (file, None)
            }
            AdminBehavior::ReverseEverything => {
                let mut file = bundle.compliant_chain();
                if let Some(cb) = &bundle.ca_bundle {
                    // include the root when it was delivered
                    for c in cb {
                        if !file.contains(c) {
                            file.push(c.clone());
                        }
                    }
                }
                file.reverse();
                (file, None)
            }
            AdminBehavior::WrongHostChain(other_chain) => (other_chain.clone(), None),
        };

    // The admin holds the private key for the issued leaf; the key check
    // passes exactly when that leaf ends up first in the served list.
    let first_served = cert_file.first();
    let key_matches_first_cert = match behavior {
        AdminBehavior::WrongHostChain(_) => true, // they hold that host's key
        _ => first_served == Some(&bundle.leaf),
    };

    // Normalize empties.
    if let Some(cf) = &chain_file {
        if cf.is_empty() {
            chain_file = None;
        }
    }
    if cert_file.is_empty() {
        cert_file = vec![bundle.leaf.clone()];
    }

    DeploymentFiles {
        cert_file,
        chain_file,
        key_matches_first_cert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CaProfile;
    use ccc_asn1::Time;
    use ccc_crypto::Drbg;
    use ccc_rootstore::CaUniverse;

    fn issue(profile_name: &str, domain: &str) -> IssuedBundle {
        let u = CaUniverse::default_with_seed(13);
        let profiles = CaProfile::all();
        let p = profiles.iter().find(|p| p.name == profile_name).unwrap();
        p.issue(
            &u,
            0,
            domain,
            Time::from_ymd(2024, 2, 1).unwrap(),
            Time::from_ymd(2024, 11, 1).unwrap(),
            &mut Drbg::from_u64(77),
            false,
        )
    }

    #[test]
    fn follow_guide_is_compliant_everywhere() {
        let bundle = issue("GoGetSSL", "fg.sim"); // reversed delivery
        for server in [HttpServerKind::ApacheOld, HttpServerKind::Nginx, HttpServerKind::Iis] {
            let files = assemble(&bundle, &AdminBehavior::FollowGuide, server);
            let served = server.deploy(&files).unwrap();
            assert_eq!(served[0], bundle.leaf);
            assert!(served[0].verify_signature_with(served[1].public_key()));
        }
    }

    #[test]
    fn naive_merge_inherits_reversal() {
        let bundle = issue("GoGetSSL", "nm.sim");
        let files = assemble(&bundle, &AdminBehavior::NaiveMerge, HttpServerKind::Nginx);
        let served = HttpServerKind::Nginx.deploy(&files).unwrap();
        // leaf, root, intermediate — reversed tail straight from the bundle.
        assert_eq!(served.len(), 3);
        assert_eq!(served[0], bundle.leaf);
        assert!(served[1].is_self_issued(), "root ended up before intermediate");
        assert_eq!(served[2], bundle.intermediate);
    }

    #[test]
    fn naive_merge_of_compliant_bundle_is_compliant() {
        let bundle = issue("ZeroSSL", "zc.sim");
        let files = assemble(&bundle, &AdminBehavior::NaiveMerge, HttpServerKind::Nginx);
        let served = HttpServerKind::Nginx.deploy(&files).unwrap();
        assert_eq!(served, vec![bundle.leaf.clone(), bundle.intermediate.clone()]);
    }

    #[test]
    fn leaf_in_chain_file_duplicates_leaf_on_old_apache() {
        let bundle = issue("ZeroSSL", "dup.sim");
        let files = assemble(&bundle, &AdminBehavior::LeafInChainFile, HttpServerKind::ApacheOld);
        let served = HttpServerKind::ApacheOld.deploy(&files).unwrap();
        assert_eq!(served.iter().filter(|c| **c == bundle.leaf).count(), 2);
        // Azure rejects the same files.
        assert!(HttpServerKind::AzureAppGateway.deploy(&files).is_err());
    }

    #[test]
    fn drop_bundle_serves_lone_leaf() {
        let bundle = issue("Digicert", "in.sim");
        let files = assemble(&bundle, &AdminBehavior::DropBundle, HttpServerKind::Nginx);
        let served = HttpServerKind::Nginx.deploy(&files).unwrap();
        assert_eq!(served, vec![bundle.leaf.clone()]);
    }

    #[test]
    fn duplicate_bundle_multiplies_intermediates() {
        let bundle = issue("GoGetSSL", "ns3.sim");
        let files = assemble(
            &bundle,
            &AdminBehavior::DuplicateBundle(13),
            HttpServerKind::Nginx,
        );
        let served = HttpServerKind::Nginx.deploy(&files).unwrap();
        // 1 leaf + 14 copies of the 2-cert bundle = 29 certificates — the
        // ns3.link pattern.
        assert_eq!(served.len(), 29);
    }

    #[test]
    fn reverse_everything_puts_leaf_last() {
        let bundle = issue("ZeroSSL", "rev.sim");
        let files = assemble(&bundle, &AdminBehavior::ReverseEverything, HttpServerKind::Nginx);
        // Leaf is not first → the key check fails on upload.
        assert!(!files.key_matches_first_cert);
        assert_eq!(
            HttpServerKind::Nginx.deploy(&files).unwrap_err(),
            crate::httpserver::DeployError::KeyMismatch
        );
    }

    #[test]
    fn stale_leaves_lead_with_newest() {
        let old = issue("ZeroSSL", "stale.sim").leaf;
        let bundle = issue("ZeroSSL", "stale.sim2");
        let files = assemble(
            &bundle,
            &AdminBehavior::StaleLeaves(vec![old.clone()]),
            HttpServerKind::Nginx,
        );
        let served = HttpServerKind::Nginx.deploy(&files).unwrap();
        assert_eq!(served[0], bundle.leaf);
        assert_eq!(served[1], old);
    }

    #[test]
    fn foreign_chain_appended_after_own() {
        let foreign = issue("Digicert", "foreign.sim");
        let bundle = issue("ZeroSSL", "own.sim");
        let files = assemble(
            &bundle,
            &AdminBehavior::AppendForeignChain(foreign.compliant_chain()),
            HttpServerKind::Nginx,
        );
        let served = HttpServerKind::Nginx.deploy(&files).unwrap();
        assert_eq!(served[0], bundle.leaf);
        assert!(served.contains(&foreign.leaf));
    }
}
