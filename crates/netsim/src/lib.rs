//! Network and deployment simulation substrate.
//!
//! The paper's measurements touch four external systems that chain-chaos
//! replaces with faithful in-process models:
//!
//! - [`aia`]: the AIA fetch path (caIssuers URIs → issuer certificates),
//!   with the same failure classes the paper observed (missing AIA field,
//!   dead URI, wrong certificate served);
//! - [`tlsmsg`]: real RFC 5246 / RFC 8446 Certificate-message framing, so
//!   the certificate *list* travels in its actual wire format;
//! - [`ca`]: CA / reseller issuance pipelines (Table 6) — which files a
//!   subscriber receives and in what order;
//! - [`httpserver`]: HTTP server deployment models (Table 4) — file
//!   layouts, private-key matching, duplicate-leaf checks;
//! - [`admin`]: the administrator behaviours that convert issued files
//!   into deployed chains (naive merges, stale leftovers, omissions);
//! - [`handshake`]: a minimal TCP loopback "TLS-like" handshake that
//!   carries the Certificate message end-to-end;
//! - [`fault`]: deterministic network-fault injection over the AIA path
//!   (seeded per-URI latency, transient/dead/corrupt URIs) behind the
//!   [`AiaTransport`] trait.

pub mod admin;
pub mod aia;
pub mod ca;
pub mod fault;
pub mod handshake;
pub mod httpserver;
pub mod tlsmsg;

pub use admin::{AdminBehavior, AdminError};
pub use aia::{AiaFailure, AiaRepository};
pub use ca::{CaProfile, IssuedBundle};
pub use fault::{
    touch_fetch_metrics, AiaTransport, FaultPlan, FaultyTransport, FetchOutcome, FetchResponse,
    TransportCosts, UriFault,
};
pub use httpserver::{DeployError, DeploymentFiles, DeploymentOutcome, HttpServerKind};
