//! CA / reseller issuance pipelines (the paper's Table 6).
//!
//! Each profile models *which files* a certificate subscriber receives and
//! in what order the bundle certificates appear. The paper traced reversed
//! server chains (Table 5/11) to resellers that deliver the ca-bundle with
//! intermediates and root in reverse issuance order; administrators who
//! naively concatenate the files then deploy reversed chains.

use ccc_asn1::Time;
use ccc_crypto::{Drbg, Group, KeyPair};
use ccc_rootstore::CaUniverse;
use ccc_x509::{Certificate, CertificateBuilder};

/// How much installation guidance the CA provides.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstallGuide {
    /// No guidance.
    None,
    /// Guides for Apache and IIS only (the Trustico pattern).
    ApacheIisOnly,
    /// Guides for all common servers.
    AllServers,
}

/// A CA or reseller issuance profile (Table 6 semantics plus the market
/// weight used when sampling the corpus, calibrated to Table 11 totals).
#[derive(Clone, Debug)]
pub struct CaProfile {
    /// Display name (paper's Table 11 row).
    pub name: &'static str,
    /// Index of this CA's root in the default universe population.
    pub universe_root: usize,
    /// Supports fully automated issuance+deployment (ACME).
    pub automated: bool,
    /// Delivers a fullchain.pem (leaf + intermediates, compliant order).
    pub provides_fullchain: bool,
    /// Delivers a ca-bundle.pem (intermediates, maybe root).
    pub provides_ca_bundle: bool,
    /// The ca-bundle includes the root certificate.
    pub root_in_bundle: bool,
    /// The ca-bundle lists certificates in REVERSE issuance order.
    pub bundle_reversed: bool,
    /// Installation guidance offered.
    pub install_guide: InstallGuide,
    /// Relative market share among Tranco-like domains (Table 11 totals,
    /// normalized by the corpus sampler).
    pub market_weight: f64,
}

impl CaProfile {
    /// The eight profiles of the paper's Table 11, with Table 6 file
    /// behaviours. Universe root indices follow
    /// [`ccc_rootstore::UniverseSpec::default_population`] order.
    pub fn all() -> Vec<CaProfile> {
        vec![
            CaProfile {
                name: "Let's Encrypt",
                universe_root: 0,
                automated: true,
                provides_fullchain: true,
                provides_ca_bundle: false,
                root_in_bundle: false,
                bundle_reversed: false,
                install_guide: InstallGuide::AllServers,
                market_weight: 400_737.0,
            },
            CaProfile {
                name: "Digicert",
                universe_root: 1,
                automated: false,
                provides_fullchain: false,
                provides_ca_bundle: true,
                root_in_bundle: false,
                bundle_reversed: false,
                install_guide: InstallGuide::AllServers,
                market_weight: 60_894.0,
            },
            CaProfile {
                name: "Sectigo Limited",
                universe_root: 2,
                automated: false,
                provides_fullchain: false,
                provides_ca_bundle: true,
                root_in_bundle: false,
                bundle_reversed: false,
                install_guide: InstallGuide::AllServers,
                market_weight: 48_042.0,
            },
            CaProfile {
                name: "ZeroSSL",
                universe_root: 3,
                automated: true,
                provides_fullchain: false,
                provides_ca_bundle: true,
                root_in_bundle: false,
                bundle_reversed: false,
                install_guide: InstallGuide::AllServers,
                market_weight: 8_219.0,
            },
            CaProfile {
                name: "GoGetSSL",
                universe_root: 4,
                automated: false,
                provides_fullchain: false,
                provides_ca_bundle: true,
                root_in_bundle: true,
                bundle_reversed: true,
                install_guide: InstallGuide::None,
                market_weight: 1_617.0,
            },
            CaProfile {
                name: "TAIWAN-CA",
                universe_root: 5,
                automated: false,
                provides_fullchain: false,
                provides_ca_bundle: false, // omits the needed intermediate
                root_in_bundle: false,
                bundle_reversed: false,
                install_guide: InstallGuide::None,
                market_weight: 492.0,
            },
            CaProfile {
                name: "cyber_Folks S.A.",
                universe_root: 6,
                automated: false,
                provides_fullchain: false,
                provides_ca_bundle: true,
                root_in_bundle: true,
                bundle_reversed: true,
                install_guide: InstallGuide::None,
                market_weight: 142.0,
            },
            CaProfile {
                name: "Trustico",
                universe_root: 7,
                automated: false,
                provides_fullchain: false,
                provides_ca_bundle: true,
                root_in_bundle: true,
                bundle_reversed: true,
                install_guide: InstallGuide::ApacheIisOnly,
                market_weight: 108.0,
            },
        ]
    }

    /// The long tail of CAs outside the paper's Table 11 rows. Used by the
    /// corpus so aggregate (Table 5) marginals come out right; its defect
    /// rates are calibrated in `ccc-testgen`. Behaves like a typical
    /// manual CA: compliant ca-bundle, no fullchain, no automation.
    pub fn other_cas() -> CaProfile {
        CaProfile {
            name: "Other CAs",
            universe_root: 8, // "Commercial CA A Sim"
            automated: false,
            provides_fullchain: false,
            provides_ca_bundle: true,
            root_in_bundle: false,
            bundle_reversed: false,
            install_guide: InstallGuide::AllServers,
            market_weight: 386_085.0,
        }
    }

    /// Issue a certificate for `domain` from this CA's intermediate
    /// `int_idx`, returning the file set the subscriber receives.
    ///
    /// `no_akid_leaf_issuer` selects the intermediate variant without AKID
    /// for the bundle (used by the corpus to model terminal intermediates
    /// that cannot be matched to roots without AIA).
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        &self,
        universe: &CaUniverse,
        int_idx: usize,
        domain: &str,
        not_before: Time,
        not_after: Time,
        drbg: &mut Drbg,
        no_akid_intermediate: bool,
    ) -> IssuedBundle {
        let leaf_kp = KeyPair::from_seed(
            Group::simulation_256(),
            &drbg.fork(&format!("leaf/{domain}")).bytes(32),
        );
        self.issue_with_keypair(
            universe,
            int_idx,
            domain,
            not_before,
            not_after,
            &leaf_kp,
            no_akid_intermediate,
        )
    }

    /// Like [`Self::issue`] but with a caller-supplied leaf key pair
    /// (corpus generation reuses a small key pool for speed; chain
    /// structure is unaffected because uniqueness comes from DN/serial).
    #[allow(clippy::too_many_arguments)]
    pub fn issue_with_keypair(
        &self,
        universe: &CaUniverse,
        int_idx: usize,
        domain: &str,
        not_before: Time,
        not_after: Time,
        leaf_kp: &KeyPair,
        no_akid_intermediate: bool,
    ) -> IssuedBundle {
        let root = &universe.roots[self.universe_root];
        let int = &root.intermediates[int_idx % root.intermediates.len()];
        let leaf = CertificateBuilder::leaf_profile(domain)
            .validity(not_before, not_after)
            .aia_ca_issuers(int.aia_uri.clone())
            .issued_by(&leaf_kp.public, int.cert.subject().clone(), &int.keypair);

        let int_cert = if no_akid_intermediate {
            int.cert_no_akid.clone()
        } else {
            int.cert.clone()
        };

        let fullchain = self
            .provides_fullchain
            .then(|| vec![leaf.clone(), int_cert.clone()]);
        let ca_bundle = self.provides_ca_bundle.then(|| {
            // Compliant bundle order: intermediates in issuance order
            // (closest to leaf first), root last when included.
            let mut bundle = vec![int_cert.clone()];
            if self.root_in_bundle {
                bundle.push(root.cert.clone());
            }
            if self.bundle_reversed {
                bundle.reverse();
            }
            bundle
        });
        IssuedBundle {
            profile_name: self.name,
            domain: domain.to_string(),
            leaf,
            intermediate: int_cert,
            root: root.cert.clone(),
            fullchain,
            ca_bundle,
            automated: self.automated,
        }
    }
}

/// The file set a subscriber receives from a CA.
#[derive(Clone, Debug)]
pub struct IssuedBundle {
    /// Which CA issued it.
    pub profile_name: &'static str,
    /// Subscriber domain.
    pub domain: String,
    /// The leaf certificate (always delivered on its own).
    pub leaf: Certificate,
    /// The direct issuer intermediate (as delivered in the bundle, i.e.
    /// possibly the no-AKID variant).
    pub intermediate: Certificate,
    /// The root above the intermediate (not always delivered).
    pub root: Certificate,
    /// fullchain.pem content, if provided (leaf first, compliant).
    pub fullchain: Option<Vec<Certificate>>,
    /// ca-bundle.pem content, if provided (order per profile).
    pub ca_bundle: Option<Vec<Certificate>>,
    /// Whether issuance+deployment is automated end-to-end.
    pub automated: bool,
}

impl IssuedBundle {
    /// The correct, compliant chain to deploy (leaf, intermediate), root
    /// omitted.
    pub fn compliant_chain(&self) -> Vec<Certificate> {
        vec![self.leaf.clone(), self.intermediate.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CaUniverse, Vec<CaProfile>) {
        (CaUniverse::default_with_seed(3), CaProfile::all())
    }

    fn window() -> (Time, Time) {
        (
            Time::from_ymd(2024, 1, 1).unwrap(),
            Time::from_ymd(2024, 12, 31).unwrap(),
        )
    }

    #[test]
    fn lets_encrypt_provides_compliant_fullchain() {
        let (u, profiles) = setup();
        let (nb, na) = window();
        let mut drbg = Drbg::from_u64(1);
        let bundle = profiles[0].issue(&u, 0, "le.sim", nb, na, &mut drbg, false);
        let fc = bundle.fullchain.expect("LE provides fullchain");
        assert_eq!(fc.len(), 2);
        assert_eq!(fc[0], bundle.leaf);
        assert!(fc[0].verify_signature_with(fc[1].public_key()));
        assert!(bundle.ca_bundle.is_none());
        assert!(bundle.automated);
    }

    #[test]
    fn gogetssl_bundle_is_reversed_with_root() {
        let (u, profiles) = setup();
        let (nb, na) = window();
        let mut drbg = Drbg::from_u64(2);
        let gogetssl = profiles.iter().find(|p| p.name == "GoGetSSL").unwrap();
        let bundle = gogetssl.issue(&u, 0, "gg.sim", nb, na, &mut drbg, false);
        let cb = bundle.ca_bundle.expect("bundle provided");
        assert_eq!(cb.len(), 2);
        // Reversed: root first, then intermediate.
        assert!(cb[0].is_self_issued(), "root should come first (reversed)");
        assert_eq!(cb[1], bundle.intermediate);
        assert!(bundle.fullchain.is_none());
    }

    #[test]
    fn zerossl_bundle_is_compliant_order() {
        let (u, profiles) = setup();
        let (nb, na) = window();
        let mut drbg = Drbg::from_u64(3);
        let zerossl = profiles.iter().find(|p| p.name == "ZeroSSL").unwrap();
        let bundle = zerossl.issue(&u, 0, "zs.sim", nb, na, &mut drbg, false);
        let cb = bundle.ca_bundle.unwrap();
        assert_eq!(cb.len(), 1);
        assert_eq!(cb[0], bundle.intermediate);
    }

    #[test]
    fn taiwan_ca_provides_no_bundle() {
        let (u, profiles) = setup();
        let (nb, na) = window();
        let mut drbg = Drbg::from_u64(4);
        let twca = profiles.iter().find(|p| p.name == "TAIWAN-CA").unwrap();
        let bundle = twca.issue(&u, 0, "tw.sim", nb, na, &mut drbg, false);
        assert!(bundle.ca_bundle.is_none());
        assert!(bundle.fullchain.is_none());
    }

    #[test]
    fn leaf_verifies_and_has_aia() {
        let (u, profiles) = setup();
        let (nb, na) = window();
        let mut drbg = Drbg::from_u64(5);
        let bundle = profiles[1].issue(&u, 1, "dc.sim", nb, na, &mut drbg, false);
        assert!(bundle
            .leaf
            .verify_signature_with(bundle.intermediate.public_key()));
        assert!(bundle.leaf.aia_ca_issuers_uri().is_some());
        assert_eq!(
            bundle.leaf.san().unwrap().dns_names().collect::<Vec<_>>(),
            vec!["dc.sim"]
        );
    }

    #[test]
    fn no_akid_variant_respected() {
        let (u, profiles) = setup();
        let (nb, na) = window();
        let mut drbg = Drbg::from_u64(6);
        let bundle = profiles[2].issue(&u, 0, "na.sim", nb, na, &mut drbg, true);
        assert!(bundle.intermediate.akid().is_none());
        assert!(bundle
            .leaf
            .verify_signature_with(bundle.intermediate.public_key()));
    }

    #[test]
    fn issuance_is_deterministic_per_seed() {
        let (u, profiles) = setup();
        let (nb, na) = window();
        let a = profiles[0].issue(&u, 0, "d.sim", nb, na, &mut Drbg::from_u64(9), false);
        let b = profiles[0].issue(&u, 0, "d.sim", nb, na, &mut Drbg::from_u64(9), false);
        assert_eq!(a.leaf, b.leaf);
        let c = profiles[0].issue(&u, 0, "d.sim", nb, na, &mut Drbg::from_u64(10), false);
        assert_ne!(a.leaf, c.leaf);
    }

    #[test]
    fn market_weights_match_table11_shares() {
        let profiles = CaProfile::all();
        let le = profiles.iter().find(|p| p.name == "Let's Encrypt").unwrap();
        let total: f64 = profiles.iter().map(|p| p.market_weight).sum();
        // Let's Encrypt dominates (~77% of the Table 11 population).
        assert!(le.market_weight / total > 0.7);
    }
}
