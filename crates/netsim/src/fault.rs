//! Deterministic network-fault injection for the AIA fetch path.
//!
//! The paper's I-4 impact class shows AIA completion is the capability
//! whose failure most directly costs availability: 579 measured caIssuers
//! URIs were dead or served the wrong certificate. Real fetch paths also
//! exhibit *transient* failures and latency, which interact with client
//! retry policies. This module models those behaviours without touching
//! wall-clock time:
//!
//! - [`AiaTransport`] abstracts "fetch the certificate at this URI" so the
//!   chain builder can talk to either the plain [`AiaRepository`] or a
//!   fault-injecting wrapper;
//! - [`FaultPlan`] is a *pure function* from (seed, URI) to a fault class
//!   and a simulated latency — no per-URI mutable state, no wall time — so
//!   every decision is reproducible regardless of thread interleaving;
//! - [`FaultyTransport`] applies a plan on top of a repository, with
//!   per-class cost accounting for the chaos experiments.
//!
//! Determinism argument: a fetch outcome depends only on
//! `(plan.seed, uri, attempt)`. The builder threads the attempt number in
//! and accumulates latency on its own per-build simulated clock
//! (`BuildStats.sim_latency_ms`), so two sweeps with the same corpus seed
//! and the same plan seed produce bit-identical results for any worker
//! count.

use crate::aia::AiaRepository;
use ccc_crypto::Drbg;
use ccc_x509::Certificate;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// `ccc-obs` registry handles for the per-fault-class outcome counters,
/// shared by every [`FaultyTransport`] in the process. All stable: each
/// fetch outcome is a pure function of `(plan seed, URI, attempt)` and
/// the attempt set is per-build deterministic, so the class totals are
/// worker-count invariant (unlike the per-transport [`TransportCosts`],
/// which additionally attribute costs to one transport instance).
struct FetchMetrics {
    attempts: &'static ccc_obs::Counter,
    success: &'static ccc_obs::Counter,
    transient: &'static ccc_obs::Counter,
    dead: &'static ccc_obs::Counter,
    corrupt: &'static ccc_obs::Counter,
    latency_ms: &'static ccc_obs::Counter,
}

fn fetch_metrics() -> &'static FetchMetrics {
    static METRICS: OnceLock<FetchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = ccc_obs::MetricsRegistry::global();
        let class = |name: &'static str| {
            reg.counter(
                &format!("ccc_netsim_fetch_outcomes_total{{class=\"{name}\"}}"),
                "Fault-injected fetch attempts by outcome class.",
            )
        };
        FetchMetrics {
            attempts: reg.counter(
                "ccc_netsim_fetch_attempts_total",
                "Fetch attempts routed through a fault-injecting transport.",
            ),
            success: class("success"),
            transient: class("transient"),
            dead: class("dead"),
            corrupt: class("corrupt"),
            latency_ms: reg.counter(
                "ccc_netsim_sim_latency_ms_total",
                "Simulated latency charged across all fault-injected attempts.",
            ),
        }
    })
}

/// Force the netsim fetch metric families to register (so an exposition
/// dump covers them even for fault-free runs).
pub fn touch_fetch_metrics() {
    let _ = fetch_metrics();
}

/// What one fetch attempt returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FetchOutcome {
    /// The URI resolved to a (parseable) certificate. A wrong-certificate
    /// injection still surfaces here — the *caller* discovers the mismatch
    /// when the certificate fails to act as an issuer.
    Success(Certificate),
    /// Permanent failure: connection refused / 404. Retrying is useless.
    Dead,
    /// Transient failure (timeout, connection reset): a later attempt to
    /// the same URI may succeed.
    Transient,
    /// The URI resolved but served truncated/corrupt DER that does not
    /// parse as a certificate. Permanent for this URI.
    Corrupt,
}

/// One fetch attempt's outcome plus its simulated cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchResponse {
    /// The payload or failure class.
    pub outcome: FetchOutcome,
    /// Simulated round-trip cost of this attempt in milliseconds. The
    /// caller adds it to its own simulated clock; no wall time is read.
    pub latency_ms: u64,
}

impl FetchResponse {
    /// A zero-latency response (the plain in-memory repository).
    pub fn instant(outcome: FetchOutcome) -> FetchResponse {
        FetchResponse {
            outcome,
            latency_ms: 0,
        }
    }
}

/// The transport the chain builder fetches AIA issuers through.
///
/// `Sync` because builds run on worker threads borrowing one transport;
/// `Debug` because the transport rides inside `BuildContext`, which derives
/// it. `attempt` is 1-based and lets implementations model
/// fail-first-N-attempts URIs as a pure function (no interior mutability
/// needed for the decision itself).
pub trait AiaTransport: Sync + fmt::Debug {
    /// Fetch the certificate at `uri`; `attempt` is the 1-based attempt
    /// number within one build's retry loop for this URI.
    fn fetch_aia(&self, uri: &str, attempt: u32) -> FetchResponse;
}

/// The plain repository is the zero-fault, zero-latency transport: every
/// published URI succeeds instantly, everything else is permanently dead.
/// This keeps all existing (non-chaos) behaviour byte-identical.
impl AiaTransport for AiaRepository {
    fn fetch_aia(&self, uri: &str, _attempt: u32) -> FetchResponse {
        match self.fetch(uri) {
            Some(cert) => FetchResponse::instant(FetchOutcome::Success(cert)),
            None => FetchResponse::instant(FetchOutcome::Dead),
        }
    }
}

/// The fault class a plan assigns to one URI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UriFault {
    /// Fetches succeed (subject to the underlying repository).
    Healthy,
    /// The first `fail_attempts` attempts fail transiently; later attempts
    /// reach the repository.
    Transient {
        /// How many leading attempts fail.
        fail_attempts: u32,
    },
    /// Every attempt fails permanently.
    Dead,
    /// Every attempt returns unparseable DER.
    Corrupt,
}

/// A seeded, deterministic fault plan.
///
/// Classification and latency are drawn from a DRBG forked per URI, so the
/// decision for a URI depends only on `(seed, uri)` — never on fetch
/// order, thread count, or wall time. Draw order inside the fork is fixed
/// (latency jitter, then the class roll, then the transient depth), which
/// keeps plans stable if rates change between scenarios sharing a seed.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed for per-URI draws.
    pub seed: u64,
    /// Probability a URI fails its first attempts transiently.
    pub transient_rate: f64,
    /// Probability a URI is permanently dead.
    pub dead_rate: f64,
    /// Probability a URI serves corrupt DER.
    pub corrupt_rate: f64,
    /// Upper bound on leading transient failures per URI (each transient
    /// URI draws its depth uniformly from `1..=max_transient_failures`).
    pub max_transient_failures: u32,
    /// Base simulated round-trip latency per attempt.
    pub base_latency_ms: u64,
    /// Additional per-URI latency drawn uniformly from
    /// `0..=latency_jitter_ms`.
    pub latency_jitter_ms: u64,
}

impl FaultPlan {
    /// The zero-fault plan: every fetch healthy, zero latency. Wrapping a
    /// repository with this plan is behaviourally identical to using the
    /// repository directly (the equivalence is pinned by tests).
    pub fn zero(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            dead_rate: 0.0,
            corrupt_rate: 0.0,
            max_transient_failures: 0,
            base_latency_ms: 0,
            latency_jitter_ms: 0,
        }
    }

    /// A plan injecting faults on roughly `rate` of all URIs, split
    /// 60% transient / 30% dead / 10% corrupt — the shape of the paper's
    /// observed failure mix, with transience dominating as in real scan
    /// error budgets.
    pub fn with_fault_rate(seed: u64, rate: f64) -> FaultPlan {
        let rate = rate.clamp(0.0, 1.0);
        FaultPlan {
            seed,
            transient_rate: 0.6 * rate,
            dead_rate: 0.3 * rate,
            corrupt_rate: 0.1 * rate,
            max_transient_failures: 2,
            base_latency_ms: 20,
            latency_jitter_ms: 80,
        }
    }

    /// True when the plan can never alter a fetch.
    pub fn is_zero(&self) -> bool {
        self.transient_rate == 0.0
            && self.dead_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.base_latency_ms == 0
            && self.latency_jitter_ms == 0
    }

    /// Per-attempt simulated latency for `uri` (base plus per-URI jitter).
    pub fn latency_for(&self, uri: &str) -> u64 {
        let (latency, _) = self.draws(uri);
        latency
    }

    /// The fault class assigned to `uri` — a pure function of
    /// `(self.seed, uri)`.
    pub fn classify(&self, uri: &str) -> UriFault {
        let (_, fault) = self.draws(uri);
        fault
    }

    /// Both per-URI draws, in the fixed order: latency jitter, class
    /// roll, transient depth.
    fn draws(&self, uri: &str) -> (u64, UriFault) {
        let mut rng = Drbg::from_u64(self.seed).fork(uri);
        let latency = if self.latency_jitter_ms > 0 {
            self.base_latency_ms + rng.below(self.latency_jitter_ms + 1)
        } else {
            let _ = rng.next_u64(); // keep draw order fixed across plans
            self.base_latency_ms
        };
        let roll = rng.unit_f64();
        let fault = if roll < self.transient_rate {
            let max = self.max_transient_failures.max(1) as u64;
            UriFault::Transient {
                fail_attempts: (1 + rng.below(max)) as u32,
            }
        } else if roll < self.transient_rate + self.dead_rate {
            UriFault::Dead
        } else if roll < self.transient_rate + self.dead_rate + self.corrupt_rate {
            UriFault::Corrupt
        } else {
            UriFault::Healthy
        };
        (latency, fault)
    }
}

/// Cumulative fetch-cost counters for one [`FaultyTransport`].
///
/// Totals only (atomically summed), so they are reproducible across
/// thread interleavings; per-build attribution lives in `BuildStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportCosts {
    /// Total fetch attempts routed through the transport.
    pub attempts: u64,
    /// Attempts answered with a transient failure.
    pub transient_failures: u64,
    /// Attempts answered permanently dead by the plan.
    pub dead_hits: u64,
    /// Attempts answered with corrupt DER.
    pub corrupt_hits: u64,
    /// Simulated latency charged across all attempts, in milliseconds.
    pub latency_ms: u64,
}

/// An [`AiaTransport`] applying a [`FaultPlan`] on top of a repository.
#[derive(Debug)]
pub struct FaultyTransport<'r> {
    repo: &'r AiaRepository,
    plan: FaultPlan,
    attempts: AtomicU64,
    transient_failures: AtomicU64,
    dead_hits: AtomicU64,
    corrupt_hits: AtomicU64,
    latency_ms: AtomicU64,
}

impl<'r> FaultyTransport<'r> {
    /// Wrap `repo` with `plan`.
    pub fn new(repo: &'r AiaRepository, plan: FaultPlan) -> FaultyTransport<'r> {
        FaultyTransport {
            repo,
            plan,
            attempts: AtomicU64::new(0),
            transient_failures: AtomicU64::new(0),
            dead_hits: AtomicU64::new(0),
            corrupt_hits: AtomicU64::new(0),
            latency_ms: AtomicU64::new(0),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the cumulative cost counters.
    pub fn costs(&self) -> TransportCosts {
        TransportCosts {
            attempts: self.attempts.load(Ordering::Relaxed),
            transient_failures: self.transient_failures.load(Ordering::Relaxed),
            dead_hits: self.dead_hits.load(Ordering::Relaxed),
            corrupt_hits: self.corrupt_hits.load(Ordering::Relaxed),
            latency_ms: self.latency_ms.load(Ordering::Relaxed),
        }
    }

    fn resolve(&self, uri: &str, latency_ms: u64) -> FetchResponse {
        let outcome = match self.repo.fetch(uri) {
            Some(cert) => FetchOutcome::Success(cert),
            None => FetchOutcome::Dead,
        };
        FetchResponse {
            outcome,
            latency_ms,
        }
    }
}

impl AiaTransport for FaultyTransport<'_> {
    fn fetch_aia(&self, uri: &str, attempt: u32) -> FetchResponse {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        let (latency_ms, fault) = self.plan.draws(uri);
        self.latency_ms.fetch_add(latency_ms, Ordering::Relaxed);
        let response = match fault {
            UriFault::Healthy => self.resolve(uri, latency_ms),
            UriFault::Transient { fail_attempts } => {
                if attempt <= fail_attempts {
                    self.transient_failures.fetch_add(1, Ordering::Relaxed);
                    FetchResponse {
                        outcome: FetchOutcome::Transient,
                        latency_ms,
                    }
                } else {
                    self.resolve(uri, latency_ms)
                }
            }
            UriFault::Dead => {
                self.dead_hits.fetch_add(1, Ordering::Relaxed);
                FetchResponse {
                    outcome: FetchOutcome::Dead,
                    latency_ms,
                }
            }
            UriFault::Corrupt => {
                self.corrupt_hits.fetch_add(1, Ordering::Relaxed);
                FetchResponse {
                    outcome: FetchOutcome::Corrupt,
                    latency_ms,
                }
            }
        };
        // Process-global outcome tallies (class of the response the
        // *caller* sees: a healthy URI missing from the repository counts
        // as dead here even though the plan never touched it).
        let m = fetch_metrics();
        m.attempts.inc();
        m.latency_ms.add(latency_ms);
        match response.outcome {
            FetchOutcome::Success(_) => m.success.inc(),
            FetchOutcome::Transient => m.transient.inc(),
            FetchOutcome::Dead => m.dead.inc(),
            FetchOutcome::Corrupt => m.corrupt.inc(),
        }
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::{CertificateBuilder, DistinguishedName};

    fn cert(name: &str, seed: &[u8]) -> Certificate {
        let kp = KeyPair::from_seed(Group::simulation_256(), seed);
        CertificateBuilder::ca_profile(DistinguishedName::cn(name)).self_signed(&kp)
    }

    #[test]
    fn classification_is_deterministic_per_uri() {
        let plan = FaultPlan::with_fault_rate(7, 0.5);
        for i in 0..50 {
            let uri = format!("http://aia.sim/{i}.crt");
            assert_eq!(plan.classify(&uri), plan.classify(&uri));
            assert_eq!(plan.latency_for(&uri), plan.latency_for(&uri));
        }
        // A different seed reshuffles assignments.
        let other = FaultPlan::with_fault_rate(8, 0.5);
        let differs = (0..50).any(|i| {
            let uri = format!("http://aia.sim/{i}.crt");
            plan.classify(&uri) != other.classify(&uri)
        });
        assert!(differs, "seed must influence classification");
    }

    #[test]
    fn zero_plan_matches_plain_repository() {
        let mut repo = AiaRepository::empty();
        let c = cert("A", b"fault-1");
        repo.publish("http://aia.sim/a.crt", c.clone());
        let transport = FaultyTransport::new(&repo, FaultPlan::zero(1));
        assert!(transport.plan().is_zero());
        let good = transport.fetch_aia("http://aia.sim/a.crt", 1);
        assert_eq!(good.outcome, FetchOutcome::Success(c));
        assert_eq!(good.latency_ms, 0);
        let bad = transport.fetch_aia("http://aia.sim/missing.crt", 1);
        assert_eq!(bad.outcome, FetchOutcome::Dead);
        // Underlying repository accounting still works through the wrapper.
        assert_eq!(repo.fetches(), 2);
    }

    #[test]
    fn transient_uri_fails_first_attempts_then_recovers() {
        let mut repo = AiaRepository::empty();
        let c = cert("T", b"fault-2");
        // Find a URI the plan classifies as transient.
        let plan = FaultPlan {
            transient_rate: 1.0,
            ..FaultPlan::with_fault_rate(3, 1.0)
        };
        let uri = "http://aia.sim/transient.crt";
        let UriFault::Transient { fail_attempts } = plan.classify(uri) else {
            panic!("rate-1.0 plan must classify transient");
        };
        assert!(fail_attempts >= 1 && fail_attempts <= plan.max_transient_failures);
        repo.publish(uri, c.clone());
        let transport = FaultyTransport::new(&repo, plan);
        for attempt in 1..=fail_attempts {
            assert_eq!(
                transport.fetch_aia(uri, attempt).outcome,
                FetchOutcome::Transient
            );
        }
        assert_eq!(
            transport.fetch_aia(uri, fail_attempts + 1).outcome,
            FetchOutcome::Success(c)
        );
        // Transient attempts never reached the repository.
        assert_eq!(repo.fetches(), 1);
        let costs = transport.costs();
        assert_eq!(costs.attempts, u64::from(fail_attempts) + 1);
        assert_eq!(costs.transient_failures, u64::from(fail_attempts));
    }

    #[test]
    fn fault_rate_mix_covers_all_classes() {
        let plan = FaultPlan::with_fault_rate(11, 1.0);
        let mut transient = 0;
        let mut dead = 0;
        let mut corrupt = 0;
        for i in 0..200 {
            match plan.classify(&format!("http://aia.sim/{i}.crt")) {
                UriFault::Transient { .. } => transient += 1,
                UriFault::Dead => dead += 1,
                UriFault::Corrupt => corrupt += 1,
                UriFault::Healthy => panic!("rate 1.0 leaves no healthy URIs"),
            }
        }
        assert!(transient > dead, "transient dominates the 60/30/10 split");
        assert!(dead > corrupt);
        assert!(corrupt > 0);
    }

    #[test]
    fn latency_is_bounded_by_base_plus_jitter() {
        let plan = FaultPlan::with_fault_rate(5, 0.2);
        for i in 0..100 {
            let l = plan.latency_for(&format!("http://aia.sim/{i}.crt"));
            assert!(l >= plan.base_latency_ms);
            assert!(l <= plan.base_latency_ms + plan.latency_jitter_ms);
        }
    }

    #[test]
    fn repository_is_a_zero_latency_transport() {
        let mut repo = AiaRepository::empty();
        let c = cert("R", b"fault-3");
        repo.publish("http://aia.sim/r.crt", c.clone());
        let t: &dyn AiaTransport = &repo;
        assert_eq!(
            t.fetch_aia("http://aia.sim/r.crt", 1),
            FetchResponse::instant(FetchOutcome::Success(c))
        );
        assert_eq!(
            t.fetch_aia("http://aia.sim/gone.crt", 3),
            FetchResponse::instant(FetchOutcome::Dead)
        );
    }
}
