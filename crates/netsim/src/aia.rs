//! Simulated AIA (Authority Information Access) fetching.
//!
//! Real clients resolve missing issuers by HTTP-fetching the caIssuers URI
//! from the AIA extension. This module replaces the HTTP transport with an
//! in-memory repository while preserving the client-visible behaviour,
//! including the three failure classes the paper measured: AIA field
//! absent (a property of the certificate, not the repository), dead URI,
//! and a URI serving the wrong certificate (e.g. the CAcert class3 root
//! serving itself instead of its issuer).

use ccc_x509::Certificate;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Injected failure for a URI.
#[derive(Clone, Debug)]
pub enum AiaFailure {
    /// The URI does not resolve (connection refused / 404).
    DeadUri,
    /// The URI serves this certificate instead of the real issuer.
    WrongCertificate(Certificate),
}

/// In-memory AIA repository with failure injection and fetch accounting.
#[derive(Debug, Default)]
pub struct AiaRepository {
    entries: HashMap<String, Certificate>,
    failures: HashMap<String, AiaFailure>,
    fetch_count: AtomicU64,
}

impl AiaRepository {
    /// Empty repository (all fetches fail).
    pub fn empty() -> AiaRepository {
        AiaRepository::default()
    }

    /// Build from published (URI → certificate) pairs.
    pub fn new(entries: HashMap<String, Certificate>) -> AiaRepository {
        AiaRepository {
            entries,
            failures: HashMap::new(),
            fetch_count: AtomicU64::new(0),
        }
    }

    /// Publish a certificate at a URI.
    pub fn publish(&mut self, uri: impl Into<String>, cert: Certificate) {
        self.entries.insert(uri.into(), cert);
    }

    /// Inject a failure for a URI (overrides any publication).
    pub fn inject_failure(&mut self, uri: impl Into<String>, failure: AiaFailure) {
        self.failures.insert(uri.into(), failure);
    }

    /// Remove a publication (URI becomes dead).
    pub fn unpublish(&mut self, uri: &str) {
        self.entries.remove(uri);
    }

    /// Fetch the certificate at `uri`, honouring injected failures.
    ///
    /// Returns `None` for dead/unknown URIs. A `WrongCertificate` injection
    /// returns the wrong certificate — the *caller* discovers the mismatch
    /// when the fetched certificate fails to act as an issuer, exactly as a
    /// real client would.
    pub fn fetch(&self, uri: &str) -> Option<Certificate> {
        self.fetch_count.fetch_add(1, Ordering::Relaxed);
        match self.failures.get(uri) {
            Some(AiaFailure::DeadUri) => None,
            Some(AiaFailure::WrongCertificate(cert)) => Some(cert.clone()),
            None => self.entries.get(uri).cloned(),
        }
    }

    /// Number of fetches performed so far (for efficiency experiments).
    pub fn fetches(&self) -> u64 {
        self.fetch_count.load(Ordering::Relaxed)
    }

    /// Reset the fetch counter.
    pub fn reset_fetches(&self) {
        self.fetch_count.store(0, Ordering::Relaxed);
    }

    /// Number of published URIs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::{CertificateBuilder, DistinguishedName};

    fn cert(name: &str, seed: &[u8]) -> Certificate {
        let kp = KeyPair::from_seed(Group::simulation_256(), seed);
        CertificateBuilder::ca_profile(DistinguishedName::cn(name)).self_signed(&kp)
    }

    #[test]
    fn publish_and_fetch() {
        let mut repo = AiaRepository::empty();
        let c = cert("A", b"aia-1");
        repo.publish("http://aia.sim/a.crt", c.clone());
        assert_eq!(repo.fetch("http://aia.sim/a.crt"), Some(c));
        assert_eq!(repo.fetch("http://aia.sim/missing.crt"), None);
        assert_eq!(repo.fetches(), 2);
    }

    #[test]
    fn dead_uri_injection() {
        let mut repo = AiaRepository::empty();
        let c = cert("A", b"aia-2");
        repo.publish("http://aia.sim/a.crt", c);
        repo.inject_failure("http://aia.sim/a.crt", AiaFailure::DeadUri);
        assert_eq!(repo.fetch("http://aia.sim/a.crt"), None);
    }

    #[test]
    fn wrong_certificate_injection() {
        let mut repo = AiaRepository::empty();
        let right = cert("Right", b"aia-3");
        let wrong = cert("Wrong", b"aia-4");
        repo.publish("http://aia.sim/a.crt", right.clone());
        repo.inject_failure(
            "http://aia.sim/a.crt",
            AiaFailure::WrongCertificate(wrong.clone()),
        );
        assert_eq!(repo.fetch("http://aia.sim/a.crt"), Some(wrong));
    }

    #[test]
    fn unpublish_makes_uri_dead() {
        let mut repo = AiaRepository::empty();
        repo.publish("http://aia.sim/a.crt", cert("A", b"aia-5"));
        repo.unpublish("http://aia.sim/a.crt");
        assert_eq!(repo.fetch("http://aia.sim/a.crt"), None);
    }

    #[test]
    fn fetch_counter_reset() {
        let repo = AiaRepository::empty();
        repo.fetch("x");
        repo.fetch("y");
        assert_eq!(repo.fetches(), 2);
        repo.reset_fetches();
        assert_eq!(repo.fetches(), 0);
    }
}
