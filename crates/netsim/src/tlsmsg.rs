//! TLS Certificate message framing.
//!
//! Encodes/decodes the certificate list exactly as it appears on the wire:
//!
//! - TLS 1.2 (RFC 5246 §7.4.2): `Certificate` handshake message — handshake
//!   type 11, 24-bit length, then a 24-bit certificate_list length and each
//!   certificate as a 24-bit length + DER.
//! - TLS 1.3 (RFC 8446 §4.4.2): adds a certificate_request_context and a
//!   per-entry (empty here) extensions block.

use ccc_x509::{Certificate, X509Error};
use std::fmt;

/// Handshake message type for Certificate.
pub const HANDSHAKE_TYPE_CERTIFICATE: u8 = 11;

/// Framing errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TlsMsgError {
    /// Input shorter than a declared length.
    Truncated,
    /// Handshake type byte was not Certificate(11).
    NotCertificateMessage(u8),
    /// Declared lengths are inconsistent.
    LengthMismatch,
    /// A certificate entry failed to parse.
    BadCertificate(X509Error),
    /// A list or message exceeded the 2^24-1 framing limit.
    TooLarge,
}

impl fmt::Display for TlsMsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsMsgError::Truncated => write!(f, "certificate message truncated"),
            TlsMsgError::NotCertificateMessage(t) => {
                write!(f, "handshake type {t} is not Certificate(11)")
            }
            TlsMsgError::LengthMismatch => write!(f, "inconsistent certificate message lengths"),
            TlsMsgError::BadCertificate(e) => write!(f, "bad certificate entry: {e}"),
            TlsMsgError::TooLarge => write!(f, "certificate list exceeds 2^24-1 bytes"),
        }
    }
}

impl std::error::Error for TlsMsgError {}

fn push_u24(out: &mut Vec<u8>, v: usize) -> Result<(), TlsMsgError> {
    if v > 0xff_ffff {
        return Err(TlsMsgError::TooLarge);
    }
    out.push((v >> 16) as u8);
    out.push((v >> 8) as u8);
    out.push(v as u8);
    Ok(())
}

fn read_u24(data: &[u8], pos: &mut usize) -> Result<usize, TlsMsgError> {
    if data.len() < *pos + 3 {
        return Err(TlsMsgError::Truncated);
    }
    let v = ((data[*pos] as usize) << 16) | ((data[*pos + 1] as usize) << 8) | data[*pos + 2] as usize;
    *pos += 3;
    Ok(v)
}

/// Encode a TLS 1.2 Certificate handshake message from a certificate list.
pub fn encode_tls12(certs: &[Certificate]) -> Result<Vec<u8>, TlsMsgError> {
    let mut list = Vec::new();
    for cert in certs {
        push_u24(&mut list, cert.to_der().len())?;
        list.extend_from_slice(cert.to_der());
    }
    let mut body = Vec::with_capacity(list.len() + 3);
    push_u24(&mut body, list.len())?;
    body.extend_from_slice(&list);
    let mut msg = Vec::with_capacity(body.len() + 4);
    msg.push(HANDSHAKE_TYPE_CERTIFICATE);
    push_u24(&mut msg, body.len())?;
    msg.extend_from_slice(&body);
    Ok(msg)
}

/// Decode a TLS 1.2 Certificate handshake message into its certificate
/// list (in wire order, exactly as served).
pub fn decode_tls12(msg: &[u8]) -> Result<Vec<Certificate>, TlsMsgError> {
    let mut pos = 0usize;
    if msg.is_empty() {
        return Err(TlsMsgError::Truncated);
    }
    if msg[0] != HANDSHAKE_TYPE_CERTIFICATE {
        return Err(TlsMsgError::NotCertificateMessage(msg[0]));
    }
    pos += 1;
    let body_len = read_u24(msg, &mut pos)?;
    if msg.len() != pos + body_len {
        return Err(TlsMsgError::LengthMismatch);
    }
    let list_len = read_u24(msg, &mut pos)?;
    if body_len != list_len + 3 {
        return Err(TlsMsgError::LengthMismatch);
    }
    let end = pos + list_len;
    let mut certs = Vec::new();
    while pos < end {
        let cert_len = read_u24(msg, &mut pos)?;
        if pos + cert_len > end {
            return Err(TlsMsgError::Truncated);
        }
        let cert = Certificate::from_der(&msg[pos..pos + cert_len])
            .map_err(TlsMsgError::BadCertificate)?;
        pos += cert_len;
        certs.push(cert);
    }
    Ok(certs)
}

/// Encode a TLS 1.3 Certificate handshake message (empty request context,
/// empty per-entry extensions).
pub fn encode_tls13(certs: &[Certificate]) -> Result<Vec<u8>, TlsMsgError> {
    let mut list = Vec::new();
    for cert in certs {
        push_u24(&mut list, cert.to_der().len())?;
        list.extend_from_slice(cert.to_der());
        // extensions<0..2^16-1>: empty.
        list.push(0);
        list.push(0);
    }
    let mut body = Vec::with_capacity(list.len() + 4);
    body.push(0); // certificate_request_context length
    push_u24(&mut body, list.len())?;
    body.extend_from_slice(&list);
    let mut msg = Vec::with_capacity(body.len() + 4);
    msg.push(HANDSHAKE_TYPE_CERTIFICATE);
    push_u24(&mut msg, body.len())?;
    msg.extend_from_slice(&body);
    Ok(msg)
}

/// Decode a TLS 1.3 Certificate handshake message.
pub fn decode_tls13(msg: &[u8]) -> Result<Vec<Certificate>, TlsMsgError> {
    let mut pos = 0usize;
    if msg.is_empty() {
        return Err(TlsMsgError::Truncated);
    }
    if msg[0] != HANDSHAKE_TYPE_CERTIFICATE {
        return Err(TlsMsgError::NotCertificateMessage(msg[0]));
    }
    pos += 1;
    let body_len = read_u24(msg, &mut pos)?;
    if msg.len() != pos + body_len {
        return Err(TlsMsgError::LengthMismatch);
    }
    // certificate_request_context
    if msg.len() < pos + 1 {
        return Err(TlsMsgError::Truncated);
    }
    let ctx_len = msg[pos] as usize;
    pos += 1 + ctx_len;
    let list_len = read_u24(msg, &mut pos)?;
    let end = pos + list_len;
    if end > msg.len() {
        return Err(TlsMsgError::Truncated);
    }
    let mut certs = Vec::new();
    while pos < end {
        let cert_len = read_u24(msg, &mut pos)?;
        if pos + cert_len > end {
            return Err(TlsMsgError::Truncated);
        }
        let cert = Certificate::from_der(&msg[pos..pos + cert_len])
            .map_err(TlsMsgError::BadCertificate)?;
        pos += cert_len;
        // extensions
        if pos + 2 > end {
            return Err(TlsMsgError::Truncated);
        }
        let ext_len = ((msg[pos] as usize) << 8) | msg[pos + 1] as usize;
        pos += 2 + ext_len;
        if pos > end {
            return Err(TlsMsgError::Truncated);
        }
        certs.push(cert);
    }
    Ok(certs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::{CertificateBuilder, DistinguishedName};

    fn chain() -> Vec<Certificate> {
        let g = Group::simulation_256();
        let root_kp = KeyPair::from_seed(g, b"tls-root");
        let leaf_kp = KeyPair::from_seed(g, b"tls-leaf");
        let root_dn = DistinguishedName::cn("TLS Root");
        let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
        let leaf =
            CertificateBuilder::leaf_profile("tls.sim").issued_by(&leaf_kp.public, root_dn, &root_kp);
        vec![leaf, root]
    }

    #[test]
    fn tls12_roundtrip_preserves_order() {
        let certs = chain();
        let msg = encode_tls12(&certs).unwrap();
        assert_eq!(msg[0], HANDSHAKE_TYPE_CERTIFICATE);
        let decoded = decode_tls12(&msg).unwrap();
        assert_eq!(decoded, certs);

        // Reversed order survives framing untouched (framing must not fix it).
        let mut reversed = certs.clone();
        reversed.reverse();
        let msg = encode_tls12(&reversed).unwrap();
        assert_eq!(decode_tls12(&msg).unwrap(), reversed);
    }

    #[test]
    fn tls13_roundtrip() {
        let certs = chain();
        let msg = encode_tls13(&certs).unwrap();
        assert_eq!(decode_tls13(&msg).unwrap(), certs);
    }

    #[test]
    fn empty_list_roundtrips() {
        let msg = encode_tls12(&[]).unwrap();
        assert!(decode_tls12(&msg).unwrap().is_empty());
        let msg = encode_tls13(&[]).unwrap();
        assert!(decode_tls13(&msg).unwrap().is_empty());
    }

    #[test]
    fn wrong_type_rejected() {
        let certs = chain();
        let mut msg = encode_tls12(&certs).unwrap();
        msg[0] = 2; // ServerHello
        assert_eq!(decode_tls12(&msg).unwrap_err(), TlsMsgError::NotCertificateMessage(2));
    }

    #[test]
    fn truncation_rejected() {
        let certs = chain();
        let msg = encode_tls12(&certs).unwrap();
        for cut in [1usize, 4, 7, msg.len() - 1] {
            assert!(decode_tls12(&msg[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn length_mismatch_rejected() {
        let certs = chain();
        let mut msg = encode_tls12(&certs).unwrap();
        msg[3] = msg[3].wrapping_add(1); // corrupt outer length
        assert!(decode_tls12(&msg).is_err());
    }

    #[test]
    fn garbage_certificate_rejected() {
        // A message framing one "certificate" of 4 junk bytes.
        let mut list = Vec::new();
        push_u24(&mut list, 4).unwrap();
        list.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        let mut body = Vec::new();
        push_u24(&mut body, list.len()).unwrap();
        body.extend_from_slice(&list);
        let mut msg = vec![HANDSHAKE_TYPE_CERTIFICATE];
        push_u24(&mut msg, body.len()).unwrap();
        msg.extend_from_slice(&body);
        match decode_tls12(&msg) {
            Err(TlsMsgError::BadCertificate(_)) => {}
            other => panic!("expected BadCertificate, got {other:?}"),
        }
    }
}
