//! TLS Certificate message framing.
//!
//! Encodes/decodes the certificate list exactly as it appears on the wire:
//!
//! - TLS 1.2 (RFC 5246 §7.4.2): `Certificate` handshake message — handshake
//!   type 11, 24-bit length, then a 24-bit certificate_list length and each
//!   certificate as a 24-bit length + DER.
//! - TLS 1.3 (RFC 8446 §4.4.2): adds a certificate_request_context and a
//!   per-entry (empty here) extensions block.

use ccc_x509::{Certificate, X509Error};
use std::fmt;

/// Handshake message type for Certificate.
pub const HANDSHAKE_TYPE_CERTIFICATE: u8 = 11;

/// Framing errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TlsMsgError {
    /// Input shorter than a declared length.
    Truncated,
    /// Handshake type byte was not Certificate(11).
    NotCertificateMessage(u8),
    /// Declared lengths are inconsistent.
    LengthMismatch,
    /// A certificate entry failed to parse.
    BadCertificate(X509Error),
    /// A list or message exceeded the 2^24-1 framing limit.
    TooLarge,
}

impl fmt::Display for TlsMsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsMsgError::Truncated => write!(f, "certificate message truncated"),
            TlsMsgError::NotCertificateMessage(t) => {
                write!(f, "handshake type {t} is not Certificate(11)")
            }
            TlsMsgError::LengthMismatch => write!(f, "inconsistent certificate message lengths"),
            TlsMsgError::BadCertificate(e) => write!(f, "bad certificate entry: {e}"),
            TlsMsgError::TooLarge => write!(f, "certificate list exceeds 2^24-1 bytes"),
        }
    }
}

impl std::error::Error for TlsMsgError {}

fn push_u24(out: &mut Vec<u8>, v: usize) -> Result<(), TlsMsgError> {
    if v > 0xff_ffff {
        return Err(TlsMsgError::TooLarge);
    }
    out.push((v >> 16) as u8);
    out.push((v >> 8) as u8);
    out.push(v as u8);
    Ok(())
}

/// Checked cursor advance: `pos + n` without overflow (adversarial
/// lengths can push a naive cursor past `usize::MAX`; any overflow means
/// the declared structure cannot fit in the input, i.e. truncation).
fn advance(pos: usize, n: usize) -> Result<usize, TlsMsgError> {
    pos.checked_add(n).ok_or(TlsMsgError::Truncated)
}

fn read_u24(data: &[u8], pos: &mut usize) -> Result<usize, TlsMsgError> {
    let end = advance(*pos, 3)?;
    let bytes = data.get(*pos..end).ok_or(TlsMsgError::Truncated)?;
    let v = ((bytes[0] as usize) << 16) | ((bytes[1] as usize) << 8) | bytes[2] as usize;
    *pos = end;
    Ok(v)
}

/// Pre-size the certificate vec from the declared list length: every
/// entry costs at least a 3-byte length header, so `list_len / 3` bounds
/// the entry count; the cap keeps a hostile 2^24-1 declaration from
/// reserving more than a sane chain's worth up front (the vec still
/// grows organically if a real list is longer).
fn presize_certs(list_len: usize) -> Vec<Certificate> {
    const CERT_ENTRY_MIN_BYTES: usize = 3;
    const PRESIZE_CAP: usize = 64;
    Vec::with_capacity((list_len / CERT_ENTRY_MIN_BYTES).min(PRESIZE_CAP))
}

/// Encode a TLS 1.2 Certificate handshake message from a certificate list.
pub fn encode_tls12(certs: &[Certificate]) -> Result<Vec<u8>, TlsMsgError> {
    let mut list = Vec::new();
    for cert in certs {
        push_u24(&mut list, cert.to_der().len())?;
        list.extend_from_slice(cert.to_der());
    }
    let mut body = Vec::with_capacity(list.len() + 3);
    push_u24(&mut body, list.len())?;
    body.extend_from_slice(&list);
    let mut msg = Vec::with_capacity(body.len() + 4);
    msg.push(HANDSHAKE_TYPE_CERTIFICATE);
    push_u24(&mut msg, body.len())?;
    msg.extend_from_slice(&body);
    Ok(msg)
}

/// Decode a TLS 1.2 Certificate handshake message into its certificate
/// list (in wire order, exactly as served).
pub fn decode_tls12(msg: &[u8]) -> Result<Vec<Certificate>, TlsMsgError> {
    let mut pos = 0usize;
    if msg.is_empty() {
        return Err(TlsMsgError::Truncated);
    }
    if msg[0] != HANDSHAKE_TYPE_CERTIFICATE {
        return Err(TlsMsgError::NotCertificateMessage(msg[0]));
    }
    pos += 1;
    let body_len = read_u24(msg, &mut pos)?;
    if Some(msg.len()) != pos.checked_add(body_len) {
        return Err(TlsMsgError::LengthMismatch);
    }
    let list_len = read_u24(msg, &mut pos)?;
    if list_len.checked_add(3) != Some(body_len) {
        return Err(TlsMsgError::LengthMismatch);
    }
    let end = advance(pos, list_len)?;
    let mut certs = presize_certs(list_len);
    while pos < end {
        let cert_len = read_u24(msg, &mut pos)?;
        let cert_end = advance(pos, cert_len)?;
        if cert_end > end {
            return Err(TlsMsgError::Truncated);
        }
        let cert =
            Certificate::from_der(&msg[pos..cert_end]).map_err(TlsMsgError::BadCertificate)?;
        pos = cert_end;
        certs.push(cert);
    }
    Ok(certs)
}

/// Encode a TLS 1.3 Certificate handshake message (empty request context,
/// empty per-entry extensions).
pub fn encode_tls13(certs: &[Certificate]) -> Result<Vec<u8>, TlsMsgError> {
    let mut list = Vec::new();
    for cert in certs {
        push_u24(&mut list, cert.to_der().len())?;
        list.extend_from_slice(cert.to_der());
        // extensions<0..2^16-1>: empty.
        list.push(0);
        list.push(0);
    }
    let mut body = Vec::with_capacity(list.len() + 4);
    body.push(0); // certificate_request_context length
    push_u24(&mut body, list.len())?;
    body.extend_from_slice(&list);
    let mut msg = Vec::with_capacity(body.len() + 4);
    msg.push(HANDSHAKE_TYPE_CERTIFICATE);
    push_u24(&mut msg, body.len())?;
    msg.extend_from_slice(&body);
    Ok(msg)
}

/// Decode a TLS 1.3 Certificate handshake message.
pub fn decode_tls13(msg: &[u8]) -> Result<Vec<Certificate>, TlsMsgError> {
    let mut pos = 0usize;
    if msg.is_empty() {
        return Err(TlsMsgError::Truncated);
    }
    if msg[0] != HANDSHAKE_TYPE_CERTIFICATE {
        return Err(TlsMsgError::NotCertificateMessage(msg[0]));
    }
    pos += 1;
    let body_len = read_u24(msg, &mut pos)?;
    if Some(msg.len()) != pos.checked_add(body_len) {
        return Err(TlsMsgError::LengthMismatch);
    }
    // certificate_request_context
    let ctx_len = *msg.get(pos).ok_or(TlsMsgError::Truncated)? as usize;
    pos = advance(pos, 1 + ctx_len)?;
    let list_len = read_u24(msg, &mut pos)?;
    let end = advance(pos, list_len)?;
    if end > msg.len() {
        return Err(TlsMsgError::Truncated);
    }
    let mut certs = presize_certs(list_len);
    while pos < end {
        let cert_len = read_u24(msg, &mut pos)?;
        let cert_end = advance(pos, cert_len)?;
        if cert_end > end {
            return Err(TlsMsgError::Truncated);
        }
        let cert =
            Certificate::from_der(&msg[pos..cert_end]).map_err(TlsMsgError::BadCertificate)?;
        pos = cert_end;
        // extensions<0..2^16-1>
        let ext_end = advance(pos, 2)?;
        if ext_end > end {
            return Err(TlsMsgError::Truncated);
        }
        let ext_len = ((msg[pos] as usize) << 8) | msg[pos + 1] as usize;
        pos = advance(ext_end, ext_len)?;
        if pos > end {
            return Err(TlsMsgError::Truncated);
        }
        certs.push(cert);
    }
    Ok(certs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::{CertificateBuilder, DistinguishedName};

    fn chain() -> Vec<Certificate> {
        let g = Group::simulation_256();
        let root_kp = KeyPair::from_seed(g, b"tls-root");
        let leaf_kp = KeyPair::from_seed(g, b"tls-leaf");
        let root_dn = DistinguishedName::cn("TLS Root");
        let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
        let leaf =
            CertificateBuilder::leaf_profile("tls.sim").issued_by(&leaf_kp.public, root_dn, &root_kp);
        vec![leaf, root]
    }

    #[test]
    fn tls12_roundtrip_preserves_order() {
        let certs = chain();
        let msg = encode_tls12(&certs).unwrap();
        assert_eq!(msg[0], HANDSHAKE_TYPE_CERTIFICATE);
        let decoded = decode_tls12(&msg).unwrap();
        assert_eq!(decoded, certs);

        // Reversed order survives framing untouched (framing must not fix it).
        let mut reversed = certs.clone();
        reversed.reverse();
        let msg = encode_tls12(&reversed).unwrap();
        assert_eq!(decode_tls12(&msg).unwrap(), reversed);
    }

    #[test]
    fn tls13_roundtrip() {
        let certs = chain();
        let msg = encode_tls13(&certs).unwrap();
        assert_eq!(decode_tls13(&msg).unwrap(), certs);
    }

    #[test]
    fn empty_list_roundtrips() {
        let msg = encode_tls12(&[]).unwrap();
        assert!(decode_tls12(&msg).unwrap().is_empty());
        let msg = encode_tls13(&[]).unwrap();
        assert!(decode_tls13(&msg).unwrap().is_empty());
    }

    #[test]
    fn wrong_type_rejected() {
        let certs = chain();
        let mut msg = encode_tls12(&certs).unwrap();
        msg[0] = 2; // ServerHello
        assert_eq!(decode_tls12(&msg).unwrap_err(), TlsMsgError::NotCertificateMessage(2));
    }

    #[test]
    fn truncation_rejected() {
        let certs = chain();
        let msg = encode_tls12(&certs).unwrap();
        for cut in [1usize, 4, 7, msg.len() - 1] {
            assert!(decode_tls12(&msg[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn length_mismatch_rejected() {
        let certs = chain();
        let mut msg = encode_tls12(&certs).unwrap();
        msg[3] = msg[3].wrapping_add(1); // corrupt outer length
        assert!(decode_tls12(&msg).is_err());
    }

    #[test]
    fn read_u24_near_usize_max_cursor_is_truncated() {
        // A cursor already pushed near usize::MAX must not overflow when
        // advanced by the 3-byte read; it reports truncation instead.
        let data = [0u8; 8];
        let mut pos = usize::MAX - 1;
        assert_eq!(read_u24(&data, &mut pos), Err(TlsMsgError::Truncated));
        // Cursor unchanged on failure.
        assert_eq!(pos, usize::MAX - 1);
    }

    #[test]
    fn max_u24_lengths_on_tiny_input_do_not_panic_or_allocate() {
        // Outer body length declared as 2^24-1 on a 4-byte message.
        let msg = [HANDSHAKE_TYPE_CERTIFICATE, 0xff, 0xff, 0xff];
        assert_eq!(decode_tls12(&msg), Err(TlsMsgError::LengthMismatch));
        assert_eq!(decode_tls13(&msg), Err(TlsMsgError::LengthMismatch));

        // Consistent outer length but max-u24 inner list length: the
        // declared list cannot fit, and pre-sizing must stay capped (a
        // hostile declaration must not reserve 16 MiB worth of entries).
        let mut msg = vec![HANDSHAKE_TYPE_CERTIFICATE];
        push_u24(&mut msg, 3).unwrap(); // body = just the list length
        msg.extend_from_slice(&[0xff, 0xff, 0xff]); // list_len = 0xffffff
        assert_eq!(decode_tls12(&msg), Err(TlsMsgError::LengthMismatch));

        let cap = presize_certs(0xff_ffff).capacity();
        assert!(cap <= 64, "presize cap leaked: {cap}");
    }

    #[test]
    fn tls12_max_cert_len_inside_short_list_is_truncated() {
        // Well-formed outer framing, one entry claiming 2^24-1 bytes.
        let mut list = Vec::new();
        push_u24(&mut list, 0xff_ffff).unwrap();
        let mut body = Vec::new();
        push_u24(&mut body, list.len()).unwrap();
        body.extend_from_slice(&list);
        let mut msg = vec![HANDSHAKE_TYPE_CERTIFICATE];
        push_u24(&mut msg, body.len()).unwrap();
        msg.extend_from_slice(&body);
        assert_eq!(decode_tls12(&msg), Err(TlsMsgError::Truncated));
    }

    #[test]
    fn tls13_corrupt_context_and_extension_lengths_are_truncated() {
        // ctx_len = 0xff with no context bytes behind it.
        let mut body = vec![0xffu8];
        let mut msg = vec![HANDSHAKE_TYPE_CERTIFICATE];
        push_u24(&mut msg, body.len()).unwrap();
        msg.extend_from_slice(&body);
        assert_eq!(decode_tls13(&msg), Err(TlsMsgError::Truncated));

        // Valid message, then corrupt a per-entry ext_len to 0xffff so the
        // cursor would run past the list end.
        let certs = chain();
        let good = encode_tls13(&certs).unwrap();
        // First entry's ext bytes sit right after its DER; find them by
        // re-walking the framing.
        let mut pos = 1 + 3 + 1; // type, body_len, ctx_len(0)
        pos += 3; // list_len
        let cert_len = ((good[pos] as usize) << 16)
            | ((good[pos + 1] as usize) << 8)
            | good[pos + 2] as usize;
        let ext_at = pos + 3 + cert_len;
        let mut bad = good.clone();
        bad[ext_at] = 0xff;
        bad[ext_at + 1] = 0xff;
        assert_eq!(decode_tls13(&bad), Err(TlsMsgError::Truncated));

        // And a max-u24 list length over a truncated tail.
        body = vec![0u8]; // empty context
        body.extend_from_slice(&[0xff, 0xff, 0xff]); // list_len = 0xffffff
        msg = vec![HANDSHAKE_TYPE_CERTIFICATE];
        push_u24(&mut msg, body.len()).unwrap();
        msg.extend_from_slice(&body);
        assert_eq!(decode_tls13(&msg), Err(TlsMsgError::Truncated));
    }

    #[test]
    fn garbage_certificate_rejected() {
        // A message framing one "certificate" of 4 junk bytes.
        let mut list = Vec::new();
        push_u24(&mut list, 4).unwrap();
        list.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        let mut body = Vec::new();
        push_u24(&mut body, list.len()).unwrap();
        body.extend_from_slice(&list);
        let mut msg = vec![HANDSHAKE_TYPE_CERTIFICATE];
        push_u24(&mut msg, body.len()).unwrap();
        msg.extend_from_slice(&body);
        match decode_tls12(&msg) {
            Err(TlsMsgError::BadCertificate(_)) => {}
            other => panic!("expected BadCertificate, got {other:?}"),
        }
    }
}
