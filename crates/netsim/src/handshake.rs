//! Minimal TCP loopback handshake carrying the Certificate message.
//!
//! Not a TLS implementation — a transport harness that moves a real
//! RFC 5246 Certificate handshake message over a real socket so the
//! examples exercise the full serve → frame → parse → chain-build path.
//! Blocking `std::net` is used deliberately: a single request/response
//! exchange gains nothing from an async runtime.

use crate::tlsmsg::{self, TlsMsgError};
use ccc_x509::Certificate;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;

/// Handshake transport errors.
#[derive(Debug)]
pub enum HandshakeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent a malformed Certificate message.
    Framing(TlsMsgError),
    /// One or more individual connections failed while the server kept
    /// serving the rest; each entry is `(connection index, error)`.
    Connections(Vec<(usize, HandshakeError)>),
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::Io(e) => write!(f, "handshake I/O error: {e}"),
            HandshakeError::Framing(e) => write!(f, "handshake framing error: {e}"),
            HandshakeError::Connections(errs) => {
                write!(f, "{} connection(s) failed:", errs.len())?;
                for (idx, e) in errs {
                    write!(f, " [#{idx}: {e}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for HandshakeError {}

impl From<std::io::Error> for HandshakeError {
    fn from(e: std::io::Error) -> Self {
        HandshakeError::Io(e)
    }
}

impl From<TlsMsgError> for HandshakeError {
    fn from(e: TlsMsgError) -> Self {
        HandshakeError::Framing(e)
    }
}

/// A one-shot certificate server bound to an ephemeral loopback port.
#[derive(Debug)]
pub struct CertServer {
    addr: SocketAddr,
    handle: Option<JoinHandle<Result<(), HandshakeError>>>,
}

impl CertServer {
    /// Spawn a server that serves `certs` to exactly `connections`
    /// clients, then exits.
    ///
    /// A connection that errors mid-exchange (client hangs up, write
    /// fails) does not abort the remaining connections: the error is
    /// recorded against that connection's index and the listener keeps
    /// accepting. [`join`](Self::join) surfaces all recorded failures as
    /// [`HandshakeError::Connections`].
    pub fn spawn(certs: Vec<Certificate>, connections: usize) -> Result<CertServer, HandshakeError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let msg = tlsmsg::encode_tls12(&certs)?;
        let handle = std::thread::spawn(move || -> Result<(), HandshakeError> {
            let mut failures: Vec<(usize, HandshakeError)> = Vec::new();
            for index in 0..connections {
                let served = (|| -> Result<(), HandshakeError> {
                    let (mut stream, _) = listener.accept()?;
                    stream.write_all(&msg)?;
                    stream.flush()?;
                    // Closing the stream signals end-of-message.
                    Ok(())
                })();
                if let Err(e) = served {
                    failures.push((index, e));
                }
            }
            if failures.is_empty() {
                Ok(())
            } else {
                Err(HandshakeError::Connections(failures))
            }
        });
        Ok(CertServer {
            addr,
            handle: Some(handle),
        })
    }

    /// Address to connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the server thread to finish serving.
    pub fn join(mut self) -> Result<(), HandshakeError> {
        match self.handle.take() {
            Some(h) => h.join().expect("server thread panicked"),
            None => Ok(()),
        }
    }
}

/// Connect to a certificate server and retrieve the served certificate
/// list in wire order.
pub fn fetch_certificate_list(addr: SocketAddr) -> Result<Vec<Certificate>, HandshakeError> {
    let mut stream = TcpStream::connect(addr)?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    Ok(tlsmsg::decode_tls12(&buf)?)
}

/// Convenience: serve `certs` once over a real loopback socket and return
/// what a client receives.
pub fn loopback_roundtrip(certs: &[Certificate]) -> Result<Vec<Certificate>, HandshakeError> {
    let server = CertServer::spawn(certs.to_vec(), 1)?;
    let received = fetch_certificate_list(server.addr())?;
    server.join()?;
    Ok(received)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::{CertificateBuilder, DistinguishedName};

    fn chain() -> Vec<Certificate> {
        let g = Group::simulation_256();
        let ca_kp = KeyPair::from_seed(g, b"hsk-ca");
        let leaf_kp = KeyPair::from_seed(g, b"hsk-leaf");
        let ca_dn = DistinguishedName::cn("Handshake CA");
        let ca = CertificateBuilder::ca_profile(ca_dn.clone()).self_signed(&ca_kp);
        let leaf = CertificateBuilder::leaf_profile("handshake.sim")
            .issued_by(&leaf_kp.public, ca_dn, &ca_kp);
        vec![leaf, ca]
    }

    #[test]
    fn loopback_preserves_wire_order() {
        let certs = chain();
        let received = loopback_roundtrip(&certs).unwrap();
        assert_eq!(received, certs);

        let mut reversed = certs;
        reversed.reverse();
        let received = loopback_roundtrip(&reversed).unwrap();
        assert_eq!(received, reversed);
    }

    #[test]
    fn multiple_clients_served() {
        let certs = chain();
        let server = CertServer::spawn(certs.clone(), 3).unwrap();
        for _ in 0..3 {
            let received = fetch_certificate_list(server.addr()).unwrap();
            assert_eq!(received, certs);
        }
        server.join().unwrap();
    }

    #[test]
    fn empty_chain_roundtrips() {
        let received = loopback_roundtrip(&[]).unwrap();
        assert!(received.is_empty());
    }

    #[test]
    fn connection_error_does_not_abort_remaining_clients() {
        // A message far larger than any socket buffer, so writing to a
        // client that hung up reliably fails mid-exchange (RST → EPIPE /
        // ECONNRESET) instead of being absorbed by the kernel.
        let pair = chain();
        let certs: Vec<Certificate> = std::iter::repeat(pair)
            .take(8_000)
            .flatten()
            .collect();
        let server = CertServer::spawn(certs.clone(), 2).unwrap();

        // Connection 0: connect and hang up without reading anything.
        drop(TcpStream::connect(server.addr()).unwrap());

        // Connection 1 must still be served in full despite the failure.
        let received = fetch_certificate_list(server.addr()).unwrap();
        assert_eq!(received.len(), certs.len());
        assert_eq!(received, certs);

        // join surfaces exactly the one failed connection, by index.
        match server.join() {
            Err(HandshakeError::Connections(errs)) => {
                assert_eq!(errs.len(), 1, "{errs:?}");
                assert_eq!(errs[0].0, 0);
                assert!(matches!(errs[0].1, HandshakeError::Io(_)));
            }
            other => panic!("expected per-connection error report, got {other:?}"),
        }
    }
}
