//! HTTP server certificate deployment models (the paper's Table 4).
//!
//! Each server kind models: the certificate file layout it expects (SF1 =
//! separate leaf + chain files, SF2 = single fullchain file, SF3 = PFX
//! container), whether it verifies the private key against the first
//! certificate, and whether it rejects duplicate leaf certificates at
//! upload time (Azure Application Gateway / IIS do; Apache, Nginx and AWS
//! ELB do not).

use ccc_x509::Certificate;
use std::fmt;

/// Certificate file layout a server expects (Table 4's SF1/SF2/SF3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileLayout {
    /// SF1: CertificateFile.pem (leaf only) + Ca-bundle.pem + key.
    SeparateLeafAndBundle,
    /// SF2: FullChain.pem + key.
    FullChain,
    /// SF3: PFX container with the whole chain.
    Pfx,
}

/// HTTP server kinds evaluated by the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum HttpServerKind {
    /// Apache < 2.4.8: SSLCertificateFile + SSLCertificateChainFile.
    ApacheOld,
    /// Apache >= 2.4.8: full chain in SSLCertificateFile.
    ApacheNew,
    /// Nginx: fullchain in ssl_certificate.
    Nginx,
    /// Microsoft-Azure-Application-Gateway: PFX upload with checks.
    AzureAppGateway,
    /// IIS: PFX via certificate store.
    Iis,
    /// AWS Elastic Load Balancer: separate cert + chain fields.
    AwsElb,
    /// Cloudflare edge (fully automated unless custom certs uploaded).
    Cloudflare,
    /// Anything else (fingerprinting bucket "Other").
    Other,
}

impl HttpServerKind {
    /// All kinds, in the paper's Table 10 column order.
    pub const ALL: [HttpServerKind; 8] = [
        HttpServerKind::ApacheOld,
        HttpServerKind::ApacheNew,
        HttpServerKind::Nginx,
        HttpServerKind::AzureAppGateway,
        HttpServerKind::Cloudflare,
        HttpServerKind::Iis,
        HttpServerKind::AwsElb,
        HttpServerKind::Other,
    ];

    /// Server header label (the Nmap fingerprint bucket).
    pub fn display_name(&self) -> &'static str {
        match self {
            HttpServerKind::ApacheOld | HttpServerKind::ApacheNew => "Apache",
            HttpServerKind::Nginx => "Nginx",
            HttpServerKind::AzureAppGateway => "Azure",
            HttpServerKind::Iis => "IIS",
            HttpServerKind::AwsElb => "AWS ELB",
            HttpServerKind::Cloudflare => "cloudflare",
            HttpServerKind::Other => "Other",
        }
    }

    /// Whether the platform offers automated certificate management.
    pub fn supports_automation(&self) -> bool {
        !matches!(self, HttpServerKind::Iis | HttpServerKind::Other)
    }

    /// Expected file layout.
    pub fn file_layout(&self) -> FileLayout {
        match self {
            HttpServerKind::ApacheOld | HttpServerKind::AwsElb => {
                FileLayout::SeparateLeafAndBundle
            }
            HttpServerKind::ApacheNew | HttpServerKind::Nginx | HttpServerKind::Cloudflare
            | HttpServerKind::Other => FileLayout::FullChain,
            HttpServerKind::AzureAppGateway | HttpServerKind::Iis => FileLayout::Pfx,
        }
    }

    /// Whether upload-time validation rejects duplicate leaf certificates.
    pub fn checks_duplicate_leaf(&self) -> bool {
        matches!(
            self,
            HttpServerKind::AzureAppGateway | HttpServerKind::Iis
        )
    }

    /// Whether upload-time validation rejects duplicate intermediates or
    /// roots (no surveyed server does — Table 4's last row).
    pub fn checks_duplicate_intermediate(&self) -> bool {
        false
    }

    /// Attempt to deploy `files`. Returns the certificate list the server
    /// will serve in the TLS handshake, or the configuration error shown
    /// to the administrator.
    pub fn deploy(&self, files: &DeploymentFiles) -> Result<Vec<Certificate>, DeployError> {
        let served = match self.file_layout() {
            FileLayout::SeparateLeafAndBundle => {
                let mut v = files.cert_file.clone();
                if let Some(chain) = &files.chain_file {
                    v.extend(chain.iter().cloned());
                }
                v
            }
            FileLayout::FullChain | FileLayout::Pfx => {
                // Single container: cert_file carries everything; a
                // separately supplied chain_file is appended by admins who
                // misunderstand the layout.
                let mut v = files.cert_file.clone();
                if let Some(chain) = &files.chain_file {
                    v.extend(chain.iter().cloned());
                }
                v
            }
        };
        let leaf = served.first().ok_or(DeployError::NoCertificate)?;
        // Every surveyed server verifies the private key against the first
        // certificate ("SSL_CTX_use_PrivateKey failed").
        if !files.key_matches_first_cert {
            return Err(DeployError::KeyMismatch);
        }
        if self.checks_duplicate_leaf() {
            let dup = served.iter().skip(1).any(|c| c == leaf);
            if dup {
                return Err(DeployError::DuplicateLeaf);
            }
        }
        Ok(served)
    }
}

impl fmt::Display for HttpServerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpServerKind::ApacheOld => write!(f, "Apache(<2.4.8)"),
            HttpServerKind::ApacheNew => write!(f, "Apache(>=2.4.8)"),
            other => write!(f, "{}", other.display_name()),
        }
    }
}

/// The files an administrator hands to the server.
#[derive(Clone, Debug)]
pub struct DeploymentFiles {
    /// The primary certificate file (leaf only under SF1; the whole chain
    /// under SF2/SF3).
    pub cert_file: Vec<Certificate>,
    /// The chain/bundle file (SF1's Ca-bundle.pem), when supplied.
    pub chain_file: Option<Vec<Certificate>>,
    /// Whether the private key corresponds to the first served certificate
    /// (modeled as a boolean: the simulation tracks key possession, not
    /// key bytes).
    pub key_matches_first_cert: bool,
}

/// Upload-time configuration errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeployError {
    /// No certificate supplied.
    NoCertificate,
    /// Private key does not match the first certificate
    /// ("SSL_CTX_use_PrivateKey failed").
    KeyMismatch,
    /// Duplicate leaf rejected at upload (Azure/IIS behaviour).
    DuplicateLeaf,
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::NoCertificate => write!(f, "no certificate supplied"),
            DeployError::KeyMismatch => write!(f, "SSL_CTX_use_PrivateKey failed: key mismatch"),
            DeployError::DuplicateLeaf => {
                write!(f, "upload rejected: duplicate leaf certificate")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// The outcome of a deployment attempt, bundling the server kind with the
/// result (used by the Table 4 regeneration binary).
#[derive(Clone, Debug)]
pub struct DeploymentOutcome {
    /// Server that processed the upload.
    pub server: HttpServerKind,
    /// Served chain or rejection.
    pub result: Result<Vec<Certificate>, DeployError>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::{CertificateBuilder, DistinguishedName};

    fn chain() -> (Certificate, Certificate) {
        let g = Group::simulation_256();
        let ca_kp = KeyPair::from_seed(g, b"hs-ca");
        let leaf_kp = KeyPair::from_seed(g, b"hs-leaf");
        let ca_dn = DistinguishedName::cn("HS CA");
        let ca = CertificateBuilder::ca_profile(ca_dn.clone()).self_signed(&ca_kp);
        let leaf =
            CertificateBuilder::leaf_profile("hs.sim").issued_by(&leaf_kp.public, ca_dn, &ca_kp);
        (leaf, ca)
    }

    #[test]
    fn separate_files_concatenate() {
        let (leaf, ca) = chain();
        let files = DeploymentFiles {
            cert_file: vec![leaf.clone()],
            chain_file: Some(vec![ca.clone()]),
            key_matches_first_cert: true,
        };
        let served = HttpServerKind::ApacheOld.deploy(&files).unwrap();
        assert_eq!(served, vec![leaf, ca]);
    }

    #[test]
    fn key_mismatch_rejected_everywhere() {
        let (leaf, ca) = chain();
        let files = DeploymentFiles {
            cert_file: vec![leaf],
            chain_file: Some(vec![ca]),
            key_matches_first_cert: false,
        };
        for kind in HttpServerKind::ALL {
            assert_eq!(kind.deploy(&files).unwrap_err(), DeployError::KeyMismatch, "{kind}");
        }
    }

    #[test]
    fn azure_and_iis_reject_duplicate_leaf() {
        let (leaf, ca) = chain();
        let files = DeploymentFiles {
            cert_file: vec![leaf.clone()],
            chain_file: Some(vec![leaf.clone(), ca.clone()]),
            key_matches_first_cert: true,
        };
        assert_eq!(
            HttpServerKind::AzureAppGateway.deploy(&files).unwrap_err(),
            DeployError::DuplicateLeaf
        );
        assert_eq!(
            HttpServerKind::Iis.deploy(&files).unwrap_err(),
            DeployError::DuplicateLeaf
        );
        // Apache/Nginx/ELB accept the duplicate.
        assert!(HttpServerKind::ApacheOld.deploy(&files).is_ok());
        assert!(HttpServerKind::Nginx.deploy(&files).is_ok());
        assert!(HttpServerKind::AwsElb.deploy(&files).is_ok());
    }

    #[test]
    fn duplicate_intermediates_never_checked() {
        let (leaf, ca) = chain();
        let files = DeploymentFiles {
            cert_file: vec![leaf],
            chain_file: Some(vec![ca.clone(), ca.clone(), ca.clone()]),
            key_matches_first_cert: true,
        };
        for kind in HttpServerKind::ALL {
            assert!(!kind.checks_duplicate_intermediate());
            let served = kind.deploy(&files).unwrap();
            assert_eq!(served.len(), 4, "{kind}");
        }
    }

    #[test]
    fn empty_deployment_rejected() {
        let files = DeploymentFiles {
            cert_file: vec![],
            chain_file: None,
            key_matches_first_cert: true,
        };
        assert_eq!(
            HttpServerKind::Nginx.deploy(&files).unwrap_err(),
            DeployError::NoCertificate
        );
    }

    #[test]
    fn layouts_match_table4() {
        assert_eq!(
            HttpServerKind::ApacheOld.file_layout(),
            FileLayout::SeparateLeafAndBundle
        );
        assert_eq!(HttpServerKind::ApacheNew.file_layout(), FileLayout::FullChain);
        assert_eq!(HttpServerKind::Nginx.file_layout(), FileLayout::FullChain);
        assert_eq!(HttpServerKind::AzureAppGateway.file_layout(), FileLayout::Pfx);
        assert_eq!(HttpServerKind::Iis.file_layout(), FileLayout::Pfx);
        assert_eq!(
            HttpServerKind::AwsElb.file_layout(),
            FileLayout::SeparateLeafAndBundle
        );
        assert!(!HttpServerKind::Iis.supports_automation());
        assert!(HttpServerKind::Nginx.supports_automation());
    }
}
