//! OBJECT IDENTIFIER values and the OID registry used by chain-chaos.

use crate::{Error, Result};
use std::fmt;

/// An object identifier (sequence of arcs).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Oid(Vec<u64>);

impl Oid {
    /// Build from arcs. Panics if fewer than two arcs or the first two arcs
    /// are out of range (first must be 0..=2; second < 40 when first < 2).
    pub fn new(arcs: &[u64]) -> Oid {
        assert!(arcs.len() >= 2, "OID needs at least two arcs");
        assert!(arcs[0] <= 2, "first OID arc must be 0, 1 or 2");
        if arcs[0] < 2 {
            assert!(arcs[1] < 40, "second OID arc must be < 40 for roots 0/1");
        }
        Oid(arcs.to_vec())
    }

    /// The arcs.
    pub fn arcs(&self) -> &[u64] {
        &self.0
    }

    /// Encode the content octets (without tag/length).
    pub fn encode_content(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let first = self.0[0] * 40 + self.0[1];
        push_base128(&mut out, first);
        for &arc in &self.0[2..] {
            push_base128(&mut out, arc);
        }
        out
    }

    /// Decode from content octets.
    pub fn decode_content(content: &[u8]) -> Result<Oid> {
        if content.is_empty() {
            return Err(Error::InvalidValue("empty OID"));
        }
        let mut arcs = Vec::new();
        let mut iter = content.iter().copied().peekable();
        let mut first = true;
        while iter.peek().is_some() {
            let mut value: u64 = 0;
            let mut any = false;
            loop {
                let b = iter.next().ok_or(Error::InvalidValue("truncated OID arc"))?;
                if !any && b == 0x80 {
                    return Err(Error::InvalidValue("non-minimal OID arc"));
                }
                any = true;
                value = value
                    .checked_shl(7)
                    .and_then(|v| v.checked_add((b & 0x7f) as u64))
                    .ok_or(Error::InvalidValue("OID arc overflow"))?;
                if b & 0x80 == 0 {
                    break;
                }
            }
            if first {
                let (a, b) = if value < 40 {
                    (0, value)
                } else if value < 80 {
                    (1, value - 40)
                } else {
                    (2, value - 80)
                };
                arcs.push(a);
                arcs.push(b);
                first = false;
            } else {
                arcs.push(value);
            }
        }
        Ok(Oid(arcs))
    }
}

fn push_base128(out: &mut Vec<u8>, mut value: u64) {
    let mut stack = [0u8; 10];
    let mut n = 0;
    loop {
        stack[n] = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            break;
        }
    }
    for i in (0..n).rev() {
        let mut b = stack[i];
        if i != 0 {
            b |= 0x80;
        }
        out.push(b);
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, arc) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{arc}")?;
        }
        Ok(())
    }
}

/// Well-known OIDs used by the X.509 layer.
pub mod oids {
    use super::Oid;
    use std::sync::OnceLock;

    macro_rules! oid_const {
        ($(#[$doc:meta])* $name:ident, $($arc:literal),+) => {
            $(#[$doc])*
            pub fn $name() -> &'static Oid {
                static O: OnceLock<Oid> = OnceLock::new();
                O.get_or_init(|| Oid::new(&[$($arc),+]))
            }
        };
    }

    oid_const!(/// id-at-commonName (2.5.4.3).
        common_name, 2, 5, 4, 3);
    oid_const!(/// id-at-countryName (2.5.4.6).
        country_name, 2, 5, 4, 6);
    oid_const!(/// id-at-organizationName (2.5.4.10).
        organization_name, 2, 5, 4, 10);
    oid_const!(/// id-at-organizationalUnitName (2.5.4.11).
        organizational_unit_name, 2, 5, 4, 11);

    oid_const!(/// id-ce-subjectKeyIdentifier (2.5.29.14).
        subject_key_identifier, 2, 5, 29, 14);
    oid_const!(/// id-ce-keyUsage (2.5.29.15).
        key_usage, 2, 5, 29, 15);
    oid_const!(/// id-ce-subjectAltName (2.5.29.17).
        subject_alt_name, 2, 5, 29, 17);
    oid_const!(/// id-ce-basicConstraints (2.5.29.19).
        basic_constraints, 2, 5, 29, 19);
    oid_const!(/// id-ce-authorityKeyIdentifier (2.5.29.35).
        authority_key_identifier, 2, 5, 29, 35);
    oid_const!(/// id-ce-extKeyUsage (2.5.29.37).
        ext_key_usage, 2, 5, 29, 37);

    oid_const!(/// id-pe-authorityInfoAccess (1.3.6.1.5.5.7.1.1).
        authority_info_access, 1, 3, 6, 1, 5, 5, 7, 1, 1);
    oid_const!(/// id-ad-ocsp (1.3.6.1.5.5.7.48.1).
        ad_ocsp, 1, 3, 6, 1, 5, 5, 7, 48, 1);
    oid_const!(/// id-ad-caIssuers (1.3.6.1.5.5.7.48.2).
        ad_ca_issuers, 1, 3, 6, 1, 5, 5, 7, 48, 2);
    oid_const!(/// id-kp-serverAuth (1.3.6.1.5.5.7.3.1).
        kp_server_auth, 1, 3, 6, 1, 5, 5, 7, 3, 1);
    oid_const!(/// id-kp-clientAuth (1.3.6.1.5.5.7.3.2).
        kp_client_auth, 1, 3, 6, 1, 5, 5, 7, 3, 2);

    // chain-chaos private arc (1.3.6.1.4.1.59999.*) for the synthetic
    // Schnorr algorithm identifiers; 59999 is an unassigned-looking PEN used
    // only inside this simulation.
    oid_const!(/// Schnorr public key over the 256-bit simulation group.
        schnorr_sim256_key, 1, 3, 6, 1, 4, 1, 59999, 1, 1);
    oid_const!(/// Schnorr public key over the RFC 3526 1536-bit group.
        schnorr_rfc3526_key, 1, 3, 6, 1, 4, 1, 59999, 1, 2);
    oid_const!(/// SHA-256-Schnorr signature algorithm (sim-256 group).
        schnorr_sim256_sig, 1, 3, 6, 1, 4, 1, 59999, 2, 1);
    oid_const!(/// SHA-256-Schnorr signature algorithm (RFC 3526 group).
        schnorr_rfc3526_sig, 1, 3, 6, 1, 4, 1, 59999, 2, 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known_oid() {
        // 1.2.840.113549 → 2a 86 48 86 f7 0d
        let oid = Oid::new(&[1, 2, 840, 113549]);
        assert_eq!(oid.encode_content(), vec![0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d]);
    }

    #[test]
    fn roundtrip() {
        for arcs in [
            vec![2u64, 5, 4, 3],
            vec![1, 3, 6, 1, 5, 5, 7, 1, 1],
            vec![2, 5, 29, 35],
            vec![1, 3, 6, 1, 4, 1, 59999, 2, 1],
            vec![2, 999, 3], // first arc 2 allows second >= 40
        ] {
            let oid = Oid::new(&arcs);
            let enc = oid.encode_content();
            let dec = Oid::decode_content(&enc).unwrap();
            assert_eq!(dec.arcs(), arcs.as_slice());
        }
    }

    #[test]
    fn display() {
        assert_eq!(Oid::new(&[2, 5, 29, 14]).to_string(), "2.5.29.14");
    }

    #[test]
    fn decode_rejects_empty_and_nonminimal() {
        assert!(Oid::decode_content(&[]).is_err());
        // Leading 0x80 in an arc is non-minimal.
        assert!(Oid::decode_content(&[0x2a, 0x80, 0x01]).is_err());
        // Truncated continuation.
        assert!(Oid::decode_content(&[0x2a, 0x86]).is_err());
    }

    #[test]
    #[should_panic]
    fn new_rejects_single_arc() {
        let _ = Oid::new(&[1]);
    }

    #[test]
    #[should_panic]
    fn new_rejects_bad_second_arc() {
        let _ = Oid::new(&[0, 40]);
    }
}
