//! DER encoder.

use crate::{Oid, Tag, Time};

/// An append-only DER encoder.
///
/// Values are appended in order; nested constructed values are built with
/// [`Encoder::sequence`]/[`Encoder::write_constructed`], which encode the
/// children into a scratch buffer so lengths come out definite and minimal.
#[derive(Default, Clone, Debug)]
pub struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Finish and return the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Append a complete TLV with the given tag and content octets.
    pub fn write_tlv(&mut self, tag: Tag, content: &[u8]) {
        self.out.push(tag.to_byte());
        write_length(&mut self.out, content.len());
        self.out.extend_from_slice(content);
    }

    /// Append raw pre-encoded DER (must already be a well-formed TLV run).
    pub fn write_raw(&mut self, der: &[u8]) {
        self.out.extend_from_slice(der);
    }

    /// Append a constructed value whose children are written by `f`.
    pub fn write_constructed(&mut self, tag: Tag, f: impl FnOnce(&mut Encoder)) {
        let mut inner = Encoder::new();
        f(&mut inner);
        self.write_tlv(tag, &inner.out);
    }

    /// Append a SEQUENCE whose children are written by `f`.
    pub fn sequence(&mut self, f: impl FnOnce(&mut Encoder)) {
        self.write_constructed(Tag::SEQUENCE, f);
    }

    /// Append a SET whose children are written by `f`.
    ///
    /// Note: DER requires SET OF elements to be sorted; the X.509 layer only
    /// emits single-element SETs (one attribute per RDN) so no sort is done
    /// here.
    pub fn set(&mut self, f: impl FnOnce(&mut Encoder)) {
        self.write_constructed(Tag::SET, f);
    }

    /// Append an EXPLICIT context tag wrapping children written by `f`.
    pub fn explicit(&mut self, number: u8, f: impl FnOnce(&mut Encoder)) {
        self.write_constructed(Tag::context_constructed(number), f);
    }

    /// Append a BOOLEAN.
    pub fn boolean(&mut self, v: bool) {
        self.write_tlv(Tag::BOOLEAN, &[if v { 0xff } else { 0x00 }]);
    }

    /// Append NULL.
    pub fn null(&mut self) {
        self.write_tlv(Tag::NULL, &[]);
    }

    /// Append an INTEGER from big-endian unsigned magnitude bytes
    /// (canonical two's-complement form is produced; empty input encodes 0).
    pub fn integer_unsigned(&mut self, magnitude_be: &[u8]) {
        let content = unsigned_to_der_integer(magnitude_be);
        self.write_tlv(Tag::INTEGER, &content);
    }

    /// Append an INTEGER from an `i64`.
    pub fn integer_i64(&mut self, v: i64) {
        let bytes = v.to_be_bytes();
        // Trim redundant leading bytes while preserving the sign bit.
        let mut start = 0;
        while start < 7 {
            let cur = bytes[start];
            let next_top = bytes[start + 1] & 0x80;
            if (cur == 0x00 && next_top == 0) || (cur == 0xff && next_top != 0) {
                start += 1;
            } else {
                break;
            }
        }
        self.write_tlv(Tag::INTEGER, &bytes[start..]);
    }

    /// Append a BIT STRING with zero unused bits.
    pub fn bit_string(&mut self, data: &[u8]) {
        let mut content = Vec::with_capacity(data.len() + 1);
        content.push(0); // unused bits
        content.extend_from_slice(data);
        self.write_tlv(Tag::BIT_STRING, &content);
    }

    /// Append a named-bit-list BIT STRING (for KeyUsage). `bits[i]` is bit
    /// `i` in DER named-bit order (bit 0 = most significant bit of first
    /// octet). Trailing zero bits are trimmed per DER.
    pub fn bit_string_named(&mut self, bits: &[bool]) {
        let last_set = bits.iter().rposition(|&b| b);
        match last_set {
            None => self.write_tlv(Tag::BIT_STRING, &[0]),
            Some(last) => {
                let nbytes = last / 8 + 1;
                let mut data = vec![0u8; nbytes];
                for (i, &bit) in bits.iter().enumerate().take(last + 1) {
                    if bit {
                        data[i / 8] |= 0x80 >> (i % 8);
                    }
                }
                let unused = (7 - last % 8) as u8;
                let mut content = Vec::with_capacity(nbytes + 1);
                content.push(unused);
                content.extend_from_slice(&data);
                self.write_tlv(Tag::BIT_STRING, &content);
            }
        }
    }

    /// Append an OCTET STRING.
    pub fn octet_string(&mut self, data: &[u8]) {
        self.write_tlv(Tag::OCTET_STRING, data);
    }

    /// Append an OBJECT IDENTIFIER.
    pub fn oid(&mut self, oid: &Oid) {
        self.write_tlv(Tag::OID, &oid.encode_content());
    }

    /// Append a UTF8String.
    pub fn utf8_string(&mut self, s: &str) {
        self.write_tlv(Tag::UTF8_STRING, s.as_bytes());
    }

    /// Append a PrintableString (caller must ensure charset validity).
    pub fn printable_string(&mut self, s: &str) {
        self.write_tlv(Tag::PRINTABLE_STRING, s.as_bytes());
    }

    /// Append an IA5String (caller must ensure ASCII).
    pub fn ia5_string(&mut self, s: &str) {
        self.write_tlv(Tag::IA5_STRING, s.as_bytes());
    }

    /// Append a Time as UTCTime or GeneralizedTime per RFC 5280.
    pub fn time(&mut self, t: Time) {
        let (generalized, bytes) = t.encode_der();
        let tag = if generalized {
            Tag::GENERALIZED_TIME
        } else {
            Tag::UTC_TIME
        };
        self.write_tlv(tag, &bytes);
    }
}

/// Encode a definite-length (short or minimal long form).
fn write_length(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = len.to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count();
        let sig = &bytes[skip..];
        out.push(0x80 | sig.len() as u8);
        out.extend_from_slice(sig);
    }
}

/// Convert an unsigned big-endian magnitude into canonical DER INTEGER
/// content octets.
fn unsigned_to_der_integer(magnitude_be: &[u8]) -> Vec<u8> {
    let stripped: &[u8] = {
        let skip = magnitude_be.iter().take_while(|&&b| b == 0).count();
        &magnitude_be[skip..]
    };
    if stripped.is_empty() {
        return vec![0];
    }
    let mut out = Vec::with_capacity(stripped.len() + 1);
    if stripped[0] & 0x80 != 0 {
        out.push(0);
    }
    out.extend_from_slice(stripped);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_and_long_lengths() {
        let mut e = Encoder::new();
        e.octet_string(&[0xaa; 5]);
        assert_eq!(&e.finish()[..2], &[0x04, 0x05]);

        let mut e = Encoder::new();
        e.octet_string(&[0xbb; 200]);
        let out = e.finish();
        assert_eq!(&out[..3], &[0x04, 0x81, 200]);

        let mut e = Encoder::new();
        e.octet_string(&[0xcc; 70000]);
        let out = e.finish();
        assert_eq!(&out[..4], &[0x04, 0x83, 0x01, 0x11]);
        assert_eq!(out[4], 0x70);
    }

    #[test]
    fn integers_are_canonical() {
        let mut e = Encoder::new();
        e.integer_unsigned(&[]);
        e.integer_unsigned(&[0x00]);
        e.integer_unsigned(&[0x7f]);
        e.integer_unsigned(&[0x80]);
        e.integer_unsigned(&[0x00, 0x00, 0x01]);
        let out = e.finish();
        assert_eq!(
            out,
            vec![
                0x02, 0x01, 0x00, // 0
                0x02, 0x01, 0x00, // 0
                0x02, 0x01, 0x7f, // 127
                0x02, 0x02, 0x00, 0x80, // 128 needs a leading zero
                0x02, 0x01, 0x01, // 1
            ]
        );
    }

    #[test]
    fn integer_i64_values() {
        let cases: Vec<(i64, Vec<u8>)> = vec![
            (0, vec![0x02, 0x01, 0x00]),
            (1, vec![0x02, 0x01, 0x01]),
            (127, vec![0x02, 0x01, 0x7f]),
            (128, vec![0x02, 0x02, 0x00, 0x80]),
            (256, vec![0x02, 0x02, 0x01, 0x00]),
            (-1, vec![0x02, 0x01, 0xff]),
            (-128, vec![0x02, 0x01, 0x80]),
            (-129, vec![0x02, 0x02, 0xff, 0x7f]),
        ];
        for (v, expected) in cases {
            let mut e = Encoder::new();
            e.integer_i64(v);
            assert_eq!(e.finish(), expected, "value {v}");
        }
    }

    #[test]
    fn boolean_and_null() {
        let mut e = Encoder::new();
        e.boolean(true);
        e.boolean(false);
        e.null();
        assert_eq!(e.finish(), vec![0x01, 0x01, 0xff, 0x01, 0x01, 0x00, 0x05, 0x00]);
    }

    #[test]
    fn nested_sequence() {
        let mut e = Encoder::new();
        e.sequence(|s| {
            s.integer_i64(1);
            s.sequence(|inner| {
                inner.boolean(true);
            });
        });
        assert_eq!(
            e.finish(),
            vec![0x30, 0x08, 0x02, 0x01, 0x01, 0x30, 0x03, 0x01, 0x01, 0xff]
        );
    }

    #[test]
    fn named_bit_string_trims_trailing_zeros() {
        // keyCertSign is bit 5: expect 1 content byte, 2 unused bits.
        let mut bits = vec![false; 9];
        bits[5] = true;
        let mut e = Encoder::new();
        e.bit_string_named(&bits);
        assert_eq!(e.finish(), vec![0x03, 0x02, 0x02, 0x04]);

        // digitalSignature (bit 0) + keyEncipherment (bit 2).
        let mut e = Encoder::new();
        e.bit_string_named(&[true, false, true]);
        assert_eq!(e.finish(), vec![0x03, 0x02, 0x05, 0xa0]);

        // Empty named bit list.
        let mut e = Encoder::new();
        e.bit_string_named(&[false, false]);
        assert_eq!(e.finish(), vec![0x03, 0x01, 0x00]);
    }

    #[test]
    fn bit_string_plain() {
        let mut e = Encoder::new();
        e.bit_string(&[0xde, 0xad]);
        assert_eq!(e.finish(), vec![0x03, 0x03, 0x00, 0xde, 0xad]);
    }

    #[test]
    fn strings() {
        let mut e = Encoder::new();
        e.utf8_string("ab");
        e.printable_string("CD");
        e.ia5_string("e.f");
        assert_eq!(
            e.finish(),
            vec![
                0x0c, 0x02, b'a', b'b', 0x13, 0x02, b'C', b'D', 0x16, 0x03, b'e', b'.', b'f'
            ]
        );
    }
}
