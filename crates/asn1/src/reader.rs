//! DER parser.

use crate::{Error, Oid, Result, Tag, Time};

/// A cursor over DER-encoded bytes.
///
/// `Parser` reads TLVs sequentially; constructed values hand back a child
/// parser scoped to their content octets. Lengths must be definite and
/// minimally encoded (DER); violations are reported as
/// [`Error::InvalidLength`].
#[derive(Clone, Debug)]
pub struct Parser<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Parse over `data`.
    pub fn new(data: &'a [u8]) -> Parser<'a> {
        Parser { data, pos: 0 }
    }

    /// True when all input has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Error unless all input was consumed.
    pub fn expect_done(&self) -> Result<()> {
        if self.is_done() {
            Ok(())
        } else {
            Err(Error::TrailingData)
        }
    }

    /// Peek the next tag without consuming.
    pub fn peek_tag(&self) -> Result<Tag> {
        let b = *self.data.get(self.pos).ok_or(Error::Truncated)?;
        Tag::from_byte(b)
    }

    /// Read the next TLV, returning its tag and content octets.
    pub fn read_any(&mut self) -> Result<(Tag, &'a [u8])> {
        let tag = self.peek_tag()?;
        self.pos += 1;
        let len = self.read_length()?;
        if self.remaining() < len {
            return Err(Error::Truncated);
        }
        let content = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok((tag, content))
    }

    /// Read the next TLV including its header, returning the full encoding.
    pub fn read_any_raw(&mut self) -> Result<(Tag, &'a [u8])> {
        let start = self.pos;
        let (tag, _) = self.read_any()?;
        Ok((tag, &self.data[start..self.pos]))
    }

    /// Read a TLV and check its tag.
    pub fn read_expected(&mut self, expected: Tag) -> Result<&'a [u8]> {
        let found = self.peek_tag()?;
        if found != expected {
            return Err(Error::UnexpectedTag { expected, found });
        }
        let (_, content) = self.read_any()?;
        Ok(content)
    }

    /// Enter a SEQUENCE, handing its contents to `f` as a child parser.
    /// `f` must consume the entire sequence body.
    pub fn sequence<T>(&mut self, f: impl FnOnce(&mut Parser<'a>) -> Result<T>) -> Result<T> {
        self.constructed(Tag::SEQUENCE, f)
    }

    /// Enter a SET.
    pub fn set<T>(&mut self, f: impl FnOnce(&mut Parser<'a>) -> Result<T>) -> Result<T> {
        self.constructed(Tag::SET, f)
    }

    /// Enter any constructed value with the given tag.
    pub fn constructed<T>(
        &mut self,
        tag: Tag,
        f: impl FnOnce(&mut Parser<'a>) -> Result<T>,
    ) -> Result<T> {
        let content = self.read_expected(tag)?;
        let mut child = Parser::new(content);
        let value = f(&mut child)?;
        child.expect_done()?;
        Ok(value)
    }

    /// If the next tag matches, enter it; otherwise return `None` without
    /// consuming anything.
    pub fn optional_constructed<T>(
        &mut self,
        tag: Tag,
        f: impl FnOnce(&mut Parser<'a>) -> Result<T>,
    ) -> Result<Option<T>> {
        if !self.is_done() && self.peek_tag()? == tag {
            Ok(Some(self.constructed(tag, f)?))
        } else {
            Ok(None)
        }
    }

    /// Read a BOOLEAN.
    pub fn boolean(&mut self) -> Result<bool> {
        let content = self.read_expected(Tag::BOOLEAN)?;
        match content {
            [0x00] => Ok(false),
            [0xff] => Ok(true),
            // DER requires TRUE to be 0xff.
            _ => Err(Error::InvalidValue("non-canonical BOOLEAN")),
        }
    }

    /// Read NULL.
    pub fn null(&mut self) -> Result<()> {
        let content = self.read_expected(Tag::NULL)?;
        if content.is_empty() {
            Ok(())
        } else {
            Err(Error::InvalidValue("NULL with content"))
        }
    }

    /// Read an INTEGER, returning its content octets (two's complement,
    /// canonical).
    pub fn integer_bytes(&mut self) -> Result<&'a [u8]> {
        let content = self.read_expected(Tag::INTEGER)?;
        validate_integer(content)?;
        Ok(content)
    }

    /// Read a non-negative INTEGER as unsigned magnitude bytes (the leading
    /// sign byte, if any, is stripped). Errors on negative values.
    pub fn integer_unsigned(&mut self) -> Result<&'a [u8]> {
        let content = self.integer_bytes()?;
        if content[0] & 0x80 != 0 {
            return Err(Error::InvalidValue("unexpected negative INTEGER"));
        }
        Ok(if content.len() > 1 && content[0] == 0 {
            &content[1..]
        } else {
            content
        })
    }

    /// Read an INTEGER as `i64` (errors when out of range).
    pub fn integer_i64(&mut self) -> Result<i64> {
        let content = self.integer_bytes()?;
        if content.len() > 8 {
            return Err(Error::InvalidValue("INTEGER too large for i64"));
        }
        let negative = content[0] & 0x80 != 0;
        let mut acc: i64 = if negative { -1 } else { 0 };
        for &b in content {
            acc = (acc << 8) | b as i64;
        }
        Ok(acc)
    }

    /// Read a BIT STRING, returning `(unused_bits, data)`.
    pub fn bit_string(&mut self) -> Result<(u8, &'a [u8])> {
        let content = self.read_expected(Tag::BIT_STRING)?;
        let (&unused, data) = content
            .split_first()
            .ok_or(Error::InvalidValue("empty BIT STRING"))?;
        if unused > 7 || (data.is_empty() && unused != 0) {
            return Err(Error::InvalidValue("invalid BIT STRING unused bits"));
        }
        Ok((unused, data))
    }

    /// Read an OCTET STRING.
    pub fn octet_string(&mut self) -> Result<&'a [u8]> {
        self.read_expected(Tag::OCTET_STRING)
    }

    /// Read an OBJECT IDENTIFIER.
    pub fn oid(&mut self) -> Result<Oid> {
        let content = self.read_expected(Tag::OID)?;
        Oid::decode_content(content)
    }

    /// Read any of the supported string types, returning its text.
    pub fn any_string(&mut self) -> Result<&'a str> {
        let tag = self.peek_tag()?;
        if tag != Tag::UTF8_STRING && tag != Tag::PRINTABLE_STRING && tag != Tag::IA5_STRING {
            return Err(Error::UnexpectedTag {
                expected: Tag::UTF8_STRING,
                found: tag,
            });
        }
        let (_, content) = self.read_any()?;
        std::str::from_utf8(content).map_err(|_| Error::InvalidValue("invalid UTF-8 in string"))
    }

    /// Read a Time (UTCTime or GeneralizedTime).
    pub fn time(&mut self) -> Result<Time> {
        let tag = self.peek_tag()?;
        let (_, content) = self.read_any()?;
        match tag {
            Tag::UTC_TIME => Time::decode_utc_time(content),
            Tag::GENERALIZED_TIME => Time::decode_generalized_time(content),
            found => Err(Error::UnexpectedTag {
                expected: Tag::UTC_TIME,
                found,
            }),
        }
    }

    fn read_length(&mut self) -> Result<usize> {
        let first = *self.data.get(self.pos).ok_or(Error::Truncated)?;
        self.pos += 1;
        if first < 0x80 {
            return Ok(first as usize);
        }
        if first == 0x80 {
            // Indefinite length: BER only, forbidden in DER.
            return Err(Error::InvalidLength);
        }
        let nbytes = (first & 0x7f) as usize;
        if nbytes > 8 || self.remaining() < nbytes {
            return Err(if nbytes > 8 {
                Error::InvalidLength
            } else {
                Error::Truncated
            });
        }
        let mut len: usize = 0;
        for i in 0..nbytes {
            len = (len << 8) | self.data[self.pos + i] as usize;
        }
        self.pos += nbytes;
        // DER: length must use the minimal number of octets.
        if len < 0x80 || (nbytes > 1 && len >> ((nbytes - 1) * 8) == 0) {
            return Err(Error::InvalidLength);
        }
        Ok(len)
    }
}

fn validate_integer(content: &[u8]) -> Result<()> {
    match content {
        [] => Err(Error::InvalidValue("empty INTEGER")),
        // Redundant leading 0x00 (next byte's top bit clear) or 0xff (set).
        [0x00, rest, ..] if rest & 0x80 == 0 => {
            Err(Error::InvalidValue("non-minimal INTEGER"))
        }
        [0xff, rest, ..] if rest & 0x80 != 0 => {
            Err(Error::InvalidValue("non-minimal INTEGER"))
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encoder;

    #[test]
    fn roundtrip_via_encoder() {
        let mut e = Encoder::new();
        e.sequence(|s| {
            s.integer_i64(42);
            s.boolean(true);
            s.octet_string(b"hello");
            s.oid(&Oid::new(&[2, 5, 29, 14]));
            s.utf8_string("example.com");
            s.null();
        });
        let der = e.finish();
        let mut p = Parser::new(&der);
        p.sequence(|s| {
            assert_eq!(s.integer_i64()?, 42);
            assert!(s.boolean()?);
            assert_eq!(s.octet_string()?, b"hello");
            assert_eq!(s.oid()?.to_string(), "2.5.29.14");
            assert_eq!(s.any_string()?, "example.com");
            s.null()?;
            Ok(())
        })
        .unwrap();
        p.expect_done().unwrap();
    }

    #[test]
    fn trailing_data_detected() {
        let mut e = Encoder::new();
        e.integer_i64(1);
        let mut der = e.finish();
        der.push(0x00);
        let mut p = Parser::new(&der);
        p.integer_i64().unwrap();
        assert_eq!(p.expect_done(), Err(Error::TrailingData));
    }

    #[test]
    fn truncated_input() {
        let der = [0x30, 0x05, 0x02, 0x01];
        let mut p = Parser::new(&der);
        assert_eq!(p.read_any().unwrap_err(), Error::Truncated);
    }

    #[test]
    fn indefinite_length_rejected() {
        let der = [0x30, 0x80, 0x00, 0x00];
        let mut p = Parser::new(&der);
        assert_eq!(p.read_any().unwrap_err(), Error::InvalidLength);
    }

    #[test]
    fn non_minimal_length_rejected() {
        // Length 5 encoded in long form.
        let der = [0x04, 0x81, 0x05, 1, 2, 3, 4, 5];
        let mut p = Parser::new(&der);
        assert_eq!(p.read_any().unwrap_err(), Error::InvalidLength);
    }

    #[test]
    fn non_canonical_boolean_rejected() {
        let der = [0x01, 0x01, 0x01];
        let mut p = Parser::new(&der);
        assert!(p.boolean().is_err());
    }

    #[test]
    fn non_minimal_integer_rejected() {
        let der = [0x02, 0x02, 0x00, 0x01];
        let mut p = Parser::new(&der);
        assert!(p.integer_bytes().is_err());
        let der = [0x02, 0x02, 0xff, 0xff];
        let mut p = Parser::new(&der);
        assert!(p.integer_bytes().is_err());
    }

    #[test]
    fn integer_unsigned_strips_sign_byte() {
        let mut e = Encoder::new();
        e.integer_unsigned(&[0x80, 0x01]);
        let der = e.finish();
        let mut p = Parser::new(&der);
        assert_eq!(p.integer_unsigned().unwrap(), &[0x80, 0x01]);

        let mut e = Encoder::new();
        e.integer_i64(-5);
        let der = e.finish();
        let mut p = Parser::new(&der);
        assert!(p.integer_unsigned().is_err());
    }

    #[test]
    fn integer_i64_roundtrip() {
        for v in [0i64, 1, -1, 127, 128, -128, -129, i64::MAX, i64::MIN] {
            let mut e = Encoder::new();
            e.integer_i64(v);
            let der = e.finish();
            let mut p = Parser::new(&der);
            assert_eq!(p.integer_i64().unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn bit_string_unused_bits() {
        let der = [0x03, 0x02, 0x04, 0xb0];
        let mut p = Parser::new(&der);
        let (unused, data) = p.bit_string().unwrap();
        assert_eq!(unused, 4);
        assert_eq!(data, &[0xb0]);

        let bad = [0x03, 0x01, 0x08];
        assert!(Parser::new(&bad).bit_string().is_err());
        let empty = [0x03, 0x00];
        assert!(Parser::new(&empty).bit_string().is_err());
    }

    #[test]
    fn optional_constructed() {
        let mut e = Encoder::new();
        e.explicit(3, |x| x.integer_i64(9));
        let der = e.finish();
        let mut p = Parser::new(&der);
        let missing = p
            .optional_constructed(Tag::context_constructed(0), |x| x.integer_i64())
            .unwrap();
        assert!(missing.is_none());
        let present = p
            .optional_constructed(Tag::context_constructed(3), |x| x.integer_i64())
            .unwrap();
        assert_eq!(present, Some(9));
    }

    #[test]
    fn sequence_must_be_fully_consumed() {
        let mut e = Encoder::new();
        e.sequence(|s| {
            s.integer_i64(1);
            s.integer_i64(2);
        });
        let der = e.finish();
        let mut p = Parser::new(&der);
        let err = p.sequence(|s| s.integer_i64()).unwrap_err();
        assert_eq!(err, Error::TrailingData);
    }

    #[test]
    fn read_any_raw_includes_header() {
        let mut e = Encoder::new();
        e.integer_i64(7);
        let der = e.finish();
        let mut p = Parser::new(&der);
        let (tag, raw) = p.read_any_raw().unwrap();
        assert_eq!(tag, Tag::INTEGER);
        assert_eq!(raw, &der[..]);
    }
}
