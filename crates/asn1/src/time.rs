//! Calendar time for certificate validity fields.
//!
//! chain-chaos never reads the ambient clock: all validity decisions are
//! made against an explicit [`Time`] supplied by the caller (the simulated
//! "now"), which keeps experiments reproducible.

use crate::{Error, Result};
use std::fmt;

/// A UTC calendar timestamp with second resolution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Time {
    /// Seconds since the Unix epoch (may be negative for pre-1970).
    epoch_seconds: i64,
}

/// Broken-down UTC date/time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DateTime {
    /// Full year, e.g. 2024.
    pub year: i32,
    /// Month 1..=12.
    pub month: u8,
    /// Day 1..=31.
    pub day: u8,
    /// Hour 0..=23.
    pub hour: u8,
    /// Minute 0..=59.
    pub minute: u8,
    /// Second 0..=59 (leap seconds not modeled).
    pub second: u8,
}

impl Time {
    /// From raw Unix epoch seconds.
    pub const fn from_unix(epoch_seconds: i64) -> Time {
        Time { epoch_seconds }
    }

    /// Unix epoch seconds.
    pub const fn unix(self) -> i64 {
        self.epoch_seconds
    }

    /// Build from a UTC calendar date. Returns `None` for invalid dates.
    pub fn from_ymd_hms(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
        second: u8,
    ) -> Option<Time> {
        if !(1..=12).contains(&month)
            || day == 0
            || day > days_in_month(year, month)
            || hour > 23
            || minute > 59
            || second > 59
        {
            return None;
        }
        let days = days_from_civil(year, month, day);
        Some(Time {
            epoch_seconds: days * 86_400
                + hour as i64 * 3600
                + minute as i64 * 60
                + second as i64,
        })
    }

    /// Convenience: midnight on a date.
    pub fn from_ymd(year: i32, month: u8, day: u8) -> Option<Time> {
        Time::from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// Break down into calendar fields.
    pub fn to_datetime(self) -> DateTime {
        let days = self.epoch_seconds.div_euclid(86_400);
        let secs = self.epoch_seconds.rem_euclid(86_400);
        let (year, month, day) = civil_from_days(days);
        DateTime {
            year,
            month,
            day,
            hour: (secs / 3600) as u8,
            minute: (secs % 3600 / 60) as u8,
            second: (secs % 60) as u8,
        }
    }

    /// Add a duration in seconds.
    pub fn plus_seconds(self, secs: i64) -> Time {
        Time {
            epoch_seconds: self.epoch_seconds + secs,
        }
    }

    /// Add whole days.
    pub fn plus_days(self, days: i64) -> Time {
        self.plus_seconds(days * 86_400)
    }

    /// Encode as DER content octets, choosing UTCTime for 1950..=2049 and
    /// GeneralizedTime otherwise, per RFC 5280 §4.1.2.5. Returns
    /// `(is_generalized, bytes)`.
    pub fn encode_der(self) -> (bool, Vec<u8>) {
        let dt = self.to_datetime();
        if (1950..=2049).contains(&dt.year) {
            let s = format!(
                "{:02}{:02}{:02}{:02}{:02}{:02}Z",
                dt.year % 100,
                dt.month,
                dt.day,
                dt.hour,
                dt.minute,
                dt.second
            );
            (false, s.into_bytes())
        } else {
            let s = format!(
                "{:04}{:02}{:02}{:02}{:02}{:02}Z",
                dt.year, dt.month, dt.day, dt.hour, dt.minute, dt.second
            );
            (true, s.into_bytes())
        }
    }

    /// Decode UTCTime content octets (YYMMDDHHMMSSZ).
    pub fn decode_utc_time(content: &[u8]) -> Result<Time> {
        if content.len() != 13 || content[12] != b'Z' {
            return Err(Error::InvalidValue("UTCTime must be YYMMDDHHMMSSZ"));
        }
        let d = parse_digits(&content[..12])?;
        let yy = d[0] * 10 + d[1];
        // RFC 5280: 00..=49 → 20xx, 50..=99 → 19xx.
        let year = if yy <= 49 { 2000 + yy } else { 1900 + yy };
        build_time(year as i32, &d[2..])
    }

    /// Decode GeneralizedTime content octets (YYYYMMDDHHMMSSZ).
    pub fn decode_generalized_time(content: &[u8]) -> Result<Time> {
        if content.len() != 15 || content[14] != b'Z' {
            return Err(Error::InvalidValue(
                "GeneralizedTime must be YYYYMMDDHHMMSSZ",
            ));
        }
        let d = parse_digits(&content[..14])?;
        let year = d[0] * 1000 + d[1] * 100 + d[2] * 10 + d[3];
        build_time(year as i32, &d[4..])
    }
}

fn parse_digits(bytes: &[u8]) -> Result<Vec<i64>> {
    bytes
        .iter()
        .map(|&b| {
            if b.is_ascii_digit() {
                Ok((b - b'0') as i64)
            } else {
                Err(Error::InvalidValue("non-digit in time"))
            }
        })
        .collect()
}

fn build_time(year: i32, rest: &[i64]) -> Result<Time> {
    let month = (rest[0] * 10 + rest[1]) as u8;
    let day = (rest[2] * 10 + rest[3]) as u8;
    let hour = (rest[4] * 10 + rest[5]) as u8;
    let minute = (rest[6] * 10 + rest[7]) as u8;
    let second = (rest[8] * 10 + rest[9]) as u8;
    Time::from_ymd_hms(year, month, day, hour, minute, second)
        .ok_or(Error::InvalidValue("invalid calendar date in time"))
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since 1970-01-01 from a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = m as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01 (inverse of `days_from_civil`).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
    ((y + if m <= 2 { 1 } else { 0 }) as i32, m, d)
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dt = self.to_datetime();
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            dt.year, dt.month, dt.day, dt.hour, dt.minute, dt.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        let t = Time::from_unix(0);
        let dt = t.to_datetime();
        assert_eq!((dt.year, dt.month, dt.day), (1970, 1, 1));
        assert_eq!((dt.hour, dt.minute, dt.second), (0, 0, 0));
    }

    #[test]
    fn roundtrip_many_dates() {
        for &(y, m, d, h, mi, s) in &[
            (1970, 1, 1, 0, 0, 0),
            (2000, 2, 29, 12, 30, 45),
            (2024, 3, 15, 23, 59, 59),
            (1999, 12, 31, 0, 0, 1),
            (2049, 12, 31, 23, 59, 59),
            (2050, 1, 1, 0, 0, 0),
            (1950, 1, 1, 0, 0, 0),
            (1949, 12, 31, 12, 0, 0),
            (2100, 6, 15, 6, 6, 6),
        ] {
            let t = Time::from_ymd_hms(y, m, d, h, mi, s).unwrap();
            let dt = t.to_datetime();
            assert_eq!(
                (dt.year, dt.month, dt.day, dt.hour, dt.minute, dt.second),
                (y, m, d, h, mi, s)
            );
        }
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(Time::from_ymd(2023, 2, 29).is_none());
        assert!(Time::from_ymd(2023, 13, 1).is_none());
        assert!(Time::from_ymd(2023, 0, 1).is_none());
        assert!(Time::from_ymd(2023, 4, 31).is_none());
        assert!(Time::from_ymd_hms(2023, 1, 1, 24, 0, 0).is_none());
    }

    #[test]
    fn utc_vs_generalized_selection() {
        let (gen_, bytes) = Time::from_ymd(2024, 3, 15).unwrap().encode_der();
        assert!(!gen_);
        assert_eq!(bytes, b"240315000000Z");
        let (gen_, bytes) = Time::from_ymd(2050, 1, 1).unwrap().encode_der();
        assert!(gen_);
        assert_eq!(bytes, b"20500101000000Z");
    }

    #[test]
    fn decode_utc_time_century_rule() {
        let t = Time::decode_utc_time(b"490101000000Z").unwrap();
        assert_eq!(t.to_datetime().year, 2049);
        let t = Time::decode_utc_time(b"500101000000Z").unwrap();
        assert_eq!(t.to_datetime().year, 1950);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Time::decode_utc_time(b"240315").is_err());
        assert!(Time::decode_utc_time(b"2403150000000").is_err());
        assert!(Time::decode_utc_time(b"24031500000xZ").is_err());
        assert!(Time::decode_utc_time(b"241315000000Z").is_err()); // month 13
        assert!(Time::decode_generalized_time(b"20240315000000").is_err());
        assert!(Time::decode_generalized_time(b"20240230000000Z").is_err()); // Feb 30
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = Time::from_ymd_hms(2031, 7, 4, 1, 2, 3).unwrap();
        let (gen_, bytes) = t.encode_der();
        assert!(!gen_);
        assert_eq!(Time::decode_utc_time(&bytes).unwrap(), t);
        let t2 = Time::from_ymd_hms(2055, 7, 4, 1, 2, 3).unwrap();
        let (gen_, bytes) = t2.encode_der();
        assert!(gen_);
        assert_eq!(Time::decode_generalized_time(&bytes).unwrap(), t2);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_ymd(2024, 1, 1).unwrap();
        assert_eq!(t.plus_days(31), Time::from_ymd(2024, 2, 1).unwrap());
        assert_eq!(t.plus_seconds(-1).to_datetime().year, 2023);
    }

    #[test]
    fn ordering_matches_chronology() {
        let a = Time::from_ymd(2020, 1, 1).unwrap();
        let b = Time::from_ymd(2021, 1, 1).unwrap();
        assert!(a < b);
    }
}
