//! A small DER (Distinguished Encoding Rules) encoder/decoder.
//!
//! Implements exactly the subset of X.690 DER needed to serialize and parse
//! X.509 v3 certificates: definite-length TLVs, INTEGER, BOOLEAN, NULL,
//! BIT STRING, OCTET STRING, OBJECT IDENTIFIER, UTF8String/PrintableString/
//! IA5String, UTCTime/GeneralizedTime, SEQUENCE/SET and context-specific
//! tags. Encoding is canonical (minimal lengths, minimal integers); the
//! parser rejects non-minimal length encodings as DER requires.

mod error;
mod oid;
mod reader;
mod tag;
mod time;
mod writer;

pub use error::{Error, Result};
pub use oid::{oids, Oid};
pub use reader::Parser;
pub use tag::{Class, Tag};
pub use time::{DateTime, Time};
pub use writer::Encoder;
