//! DER parse/encode errors.

use std::fmt;

/// Result alias for DER operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while parsing or encoding DER.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Error {
    /// Input ended before a complete TLV could be read.
    Truncated,
    /// A tag byte could not be decoded (e.g. high-tag-number form, which
    /// this subset does not use).
    InvalidTag(u8),
    /// A length was indefinite, non-minimal, or too large for this platform.
    InvalidLength,
    /// The element's tag did not match what the caller expected.
    UnexpectedTag {
        /// Tag the caller asked for.
        expected: crate::Tag,
        /// Tag actually present.
        found: crate::Tag,
    },
    /// The element's contents were malformed for its type.
    InvalidValue(&'static str),
    /// Extra bytes remained after a complete parse.
    TrailingData,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "DER input truncated"),
            Error::InvalidTag(b) => write!(f, "invalid or unsupported DER tag byte 0x{b:02x}"),
            Error::InvalidLength => write!(f, "invalid DER length encoding"),
            Error::UnexpectedTag { expected, found } => {
                write!(f, "expected DER tag {expected:?}, found {found:?}")
            }
            Error::InvalidValue(what) => write!(f, "invalid DER value: {what}"),
            Error::TrailingData => write!(f, "trailing data after DER value"),
        }
    }
}

impl std::error::Error for Error {}
