//! DER tag representation (low-tag-number form only).

use crate::{Error, Result};

/// Tag class bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Class {
    /// Universal (0b00).
    Universal,
    /// Application (0b01).
    Application,
    /// Context-specific (0b10).
    ContextSpecific,
    /// Private (0b11).
    Private,
}

/// A decoded DER tag (class + constructed flag + tag number < 31).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Tag {
    /// Tag class.
    pub class: Class,
    /// Constructed (true) vs primitive (false).
    pub constructed: bool,
    /// Tag number (0..=30; high-tag-number form unsupported).
    pub number: u8,
}

impl Tag {
    /// BOOLEAN.
    pub const BOOLEAN: Tag = Tag::universal(1);
    /// INTEGER.
    pub const INTEGER: Tag = Tag::universal(2);
    /// BIT STRING.
    pub const BIT_STRING: Tag = Tag::universal(3);
    /// OCTET STRING.
    pub const OCTET_STRING: Tag = Tag::universal(4);
    /// NULL.
    pub const NULL: Tag = Tag::universal(5);
    /// OBJECT IDENTIFIER.
    pub const OID: Tag = Tag::universal(6);
    /// UTF8String.
    pub const UTF8_STRING: Tag = Tag::universal(12);
    /// SEQUENCE (always constructed).
    pub const SEQUENCE: Tag = Tag {
        class: Class::Universal,
        constructed: true,
        number: 16,
    };
    /// SET (always constructed).
    pub const SET: Tag = Tag {
        class: Class::Universal,
        constructed: true,
        number: 17,
    };
    /// PrintableString.
    pub const PRINTABLE_STRING: Tag = Tag::universal(19);
    /// IA5String.
    pub const IA5_STRING: Tag = Tag::universal(22);
    /// UTCTime.
    pub const UTC_TIME: Tag = Tag::universal(23);
    /// GeneralizedTime.
    pub const GENERALIZED_TIME: Tag = Tag::universal(24);

    /// A primitive universal tag.
    pub const fn universal(number: u8) -> Tag {
        Tag {
            class: Class::Universal,
            constructed: false,
            number,
        }
    }

    /// A context-specific tag, primitive form (IMPLICIT around a primitive).
    pub const fn context(number: u8) -> Tag {
        Tag {
            class: Class::ContextSpecific,
            constructed: false,
            number,
        }
    }

    /// A context-specific tag, constructed form (EXPLICIT wrapper or
    /// IMPLICIT around a constructed type).
    pub const fn context_constructed(number: u8) -> Tag {
        Tag {
            class: Class::ContextSpecific,
            constructed: true,
            number,
        }
    }

    /// Encode to the identifier octet.
    pub fn to_byte(self) -> u8 {
        let class_bits = match self.class {
            Class::Universal => 0b0000_0000,
            Class::Application => 0b0100_0000,
            Class::ContextSpecific => 0b1000_0000,
            Class::Private => 0b1100_0000,
        };
        let pc = if self.constructed { 0b0010_0000 } else { 0 };
        class_bits | pc | (self.number & 0x1f)
    }

    /// Decode from the identifier octet. High-tag-number form (number 31)
    /// is rejected.
    pub fn from_byte(b: u8) -> Result<Tag> {
        let number = b & 0x1f;
        if number == 0x1f {
            return Err(Error::InvalidTag(b));
        }
        let class = match b >> 6 {
            0b00 => Class::Universal,
            0b01 => Class::Application,
            0b10 => Class::ContextSpecific,
            _ => Class::Private,
        };
        Ok(Tag {
            class,
            constructed: b & 0b0010_0000 != 0,
            number,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_common_tags() {
        for tag in [
            Tag::BOOLEAN,
            Tag::INTEGER,
            Tag::BIT_STRING,
            Tag::OCTET_STRING,
            Tag::NULL,
            Tag::OID,
            Tag::UTF8_STRING,
            Tag::SEQUENCE,
            Tag::SET,
            Tag::PRINTABLE_STRING,
            Tag::IA5_STRING,
            Tag::UTC_TIME,
            Tag::GENERALIZED_TIME,
            Tag::context(0),
            Tag::context(6),
            Tag::context_constructed(3),
        ] {
            assert_eq!(Tag::from_byte(tag.to_byte()).unwrap(), tag);
        }
    }

    #[test]
    fn sequence_byte_is_0x30() {
        assert_eq!(Tag::SEQUENCE.to_byte(), 0x30);
        assert_eq!(Tag::SET.to_byte(), 0x31);
        assert_eq!(Tag::INTEGER.to_byte(), 0x02);
        assert_eq!(Tag::context(0).to_byte(), 0x80);
        assert_eq!(Tag::context_constructed(0).to_byte(), 0xa0);
    }

    #[test]
    fn high_tag_number_rejected() {
        assert!(Tag::from_byte(0x1f).is_err());
        assert!(Tag::from_byte(0xbf).is_err());
    }
}
