//! Synthetic CA universe and root store programs.
//!
//! The paper checks chain completeness against the root programs of
//! Mozilla, Chrome, Microsoft and Apple (and their union). This crate
//! builds the equivalent machinery over a synthetic CA universe:
//!
//! - [`universe::CaUniverse`]: a deterministic population of root CAs,
//!   their intermediates (including cross-signed intermediates), and the
//!   key material needed to issue leaves;
//! - [`store::RootStore`]: an indexed trust store with the lookups chain
//!   builders need (by fingerprint, by SKID, by subject DN);
//! - [`program::RootPrograms`]: four overlapping stores mirroring the
//!   structure of the real root programs, plus their union.

pub mod program;
pub mod store;
pub mod universe;

pub use program::{RootProgram, RootPrograms};
pub use store::RootStore;
pub use universe::{CaUniverse, CrossSignedPair, IssuingCa, RootCa, UniverseSpec};
