//! Indexed trust stores.

use ccc_x509::{Certificate, DistinguishedName, FingerprintSet};
use std::collections::HashMap;

/// An indexed set of trusted root certificates.
///
/// Provides the three lookups chain construction needs: exact membership
/// (fingerprint), SKID match (for AKID→SKID issuer location), and subject
/// DN match (for issuer-DN location when KIDs are absent).
#[derive(Clone, Debug, Default)]
pub struct RootStore {
    name: String,
    roots: Vec<Certificate>,
    by_fingerprint: FingerprintSet,
    by_skid: HashMap<Vec<u8>, Vec<usize>>,
    by_subject: HashMap<Vec<u8>, Vec<usize>>,
}

impl RootStore {
    /// Build a store from certificates.
    pub fn new(name: impl Into<String>, roots: Vec<Certificate>) -> RootStore {
        let mut store = RootStore {
            name: name.into(),
            ..Default::default()
        };
        for cert in roots {
            store.add(cert);
        }
        store
    }

    /// Add one root (duplicates by fingerprint are ignored).
    pub fn add(&mut self, cert: Certificate) {
        if !self.by_fingerprint.insert(cert.fingerprint()) {
            return;
        }
        let idx = self.roots.len();
        if let Some(skid) = cert.skid() {
            self.by_skid.entry(skid.to_vec()).or_default().push(idx);
        }
        self.by_subject
            .entry(cert.subject().to_der())
            .or_default()
            .push(idx);
        self.roots.push(cert);
    }

    /// Store label (e.g. "mozilla").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All roots.
    pub fn roots(&self) -> &[Certificate] {
        &self.roots
    }

    /// Number of roots.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Exact membership test.
    pub fn contains(&self, cert: &Certificate) -> bool {
        self.by_fingerprint.contains(&cert.fingerprint())
    }

    /// True when at least one root's SKID equals `key_id`.
    ///
    /// Allocation-free membership variant of [`RootStore::find_by_skid`]
    /// for hot paths that only need the yes/no answer; index entries are
    /// never empty, so key presence is the whole test.
    pub fn has_skid(&self, key_id: &[u8]) -> bool {
        self.by_skid.contains_key(key_id)
    }

    /// Roots whose SKID equals `key_id`.
    pub fn find_by_skid(&self, key_id: &[u8]) -> Vec<&Certificate> {
        self.by_skid
            .get(key_id)
            .map(|idxs| idxs.iter().map(|&i| &self.roots[i]).collect())
            .unwrap_or_default()
    }

    /// Roots whose subject DN equals `subject`.
    pub fn find_by_subject(&self, subject: &DistinguishedName) -> Vec<&Certificate> {
        self.by_subject
            .get(&subject.to_der())
            .map(|idxs| idxs.iter().map(|&i| &self.roots[i]).collect())
            .unwrap_or_default()
    }

    /// Union of this store and another (left name wins unless given).
    pub fn union(name: impl Into<String>, stores: &[&RootStore]) -> RootStore {
        let mut out = RootStore {
            name: name.into(),
            ..Default::default()
        };
        for store in stores {
            for cert in &store.roots {
                out.add(cert.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::CertificateBuilder;

    fn root(name: &str, seed: &[u8]) -> Certificate {
        let kp = KeyPair::from_seed(Group::simulation_256(), seed);
        CertificateBuilder::ca_profile(DistinguishedName::cn_o(name, "Test")).self_signed(&kp)
    }

    #[test]
    fn membership_and_lookup() {
        let r1 = root("Root A", b"store-a");
        let r2 = root("Root B", b"store-b");
        let r3 = root("Root C", b"store-c");
        let store = RootStore::new("test", vec![r1.clone(), r2.clone()]);
        assert_eq!(store.len(), 2);
        assert!(store.contains(&r1));
        assert!(!store.contains(&r3));
        assert_eq!(store.find_by_skid(r1.skid().unwrap()), vec![&r1]);
        assert!(store.find_by_skid(r3.skid().unwrap()).is_empty());
        assert_eq!(store.find_by_subject(r2.subject()), vec![&r2]);
        assert!(store.find_by_subject(r3.subject()).is_empty());
    }

    #[test]
    fn duplicates_ignored() {
        let r1 = root("Root A", b"store-a");
        let mut store = RootStore::new("test", vec![r1.clone()]);
        store.add(r1.clone());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn union_merges_without_duplicates() {
        let r1 = root("Root A", b"store-a");
        let r2 = root("Root B", b"store-b");
        let s1 = RootStore::new("one", vec![r1.clone(), r2.clone()]);
        let s2 = RootStore::new("two", vec![r2.clone()]);
        let u = RootStore::union("union", &[&s1, &s2]);
        assert_eq!(u.len(), 2);
        assert!(u.contains(&r1));
        assert!(u.contains(&r2));
        assert_eq!(u.name(), "union");
    }
}
