//! Deterministic synthetic CA universe.
//!
//! Substitutes for the real Web PKI CA population. Every experiment in
//! chain-chaos issues its certificates out of a [`CaUniverse`]: a set of
//! root CAs (trusted and untrusted), each with issuing intermediates
//! (including no-AKID variants and cross-signed twins), all published at
//! simulated AIA URIs.

use crate::program::RootProgram;
use ccc_asn1::Time;
use ccc_crypto::{Drbg, Group, KeyPair};
use ccc_x509::{Certificate, CertificateBuilder, DistinguishedName, KidMode};
use std::collections::HashMap;

/// Specification of one CA organization in the universe.
#[derive(Clone, Debug)]
pub struct CaSpec {
    /// Organization name, e.g. "Let's Encrypt Sim".
    pub name: String,
    /// Whether the root participates in any root program at all.
    pub trusted: bool,
    /// Programs that do NOT include this root (even when `trusted`).
    pub excluded_from: Vec<RootProgram>,
    /// Number of issuing intermediates under this root.
    pub intermediates: usize,
}

impl CaSpec {
    /// A trusted CA present in all programs.
    pub fn trusted(name: &str, intermediates: usize) -> CaSpec {
        CaSpec {
            name: name.to_string(),
            trusted: true,
            excluded_from: Vec::new(),
            intermediates,
        }
    }

    /// A trusted CA missing from some programs.
    pub fn partially_trusted(
        name: &str,
        intermediates: usize,
        excluded_from: Vec<RootProgram>,
    ) -> CaSpec {
        CaSpec {
            name: name.to_string(),
            trusted: true,
            excluded_from,
            intermediates,
        }
    }

    /// An untrusted (private / government-internal) root.
    pub fn untrusted(name: &str, intermediates: usize) -> CaSpec {
        CaSpec {
            name: name.to_string(),
            trusted: false,
            excluded_from: Vec::new(),
            intermediates,
        }
    }
}

/// A cross-signing relationship: the subject intermediate also receives a
/// certificate from a different root (same subject DN and key, different
/// issuer) — the mechanism behind the paper's "multiple paths" chains.
#[derive(Clone, Debug)]
pub struct CrossSignSpec {
    /// Index of the CA owning the subject intermediate.
    pub subject_ca: usize,
    /// Index of the intermediate within that CA.
    pub subject_intermediate: usize,
    /// Index of the CA whose root signs the cross certificate.
    pub issuer_ca: usize,
    /// Produce an *expired* cross certificate (the paper found 29 chains
    /// carrying expired cross-signed certs).
    pub expired: bool,
}

/// Universe generation parameters.
#[derive(Clone, Debug)]
pub struct UniverseSpec {
    /// Master seed; all keys and certificates derive from it.
    pub seed: u64,
    /// CA organizations.
    pub cas: Vec<CaSpec>,
    /// Cross-signing relationships.
    pub cross_signs: Vec<CrossSignSpec>,
}

impl UniverseSpec {
    /// The default universe used by the paper-reproduction experiments:
    /// eight CA organizations matching the paper's Table 11 population
    /// (Let's Encrypt, DigiCert, Sectigo, ZeroSSL, GoGetSSL, TAIWAN-CA,
    /// cyber_Folks, Trustico), three partially-excluded roots that drive
    /// the Table 8 store differences, and two untrusted roots for the
    /// irrelevant-certificate and backtracking scenarios.
    pub fn default_population(seed: u64) -> UniverseSpec {
        use RootProgram::*;
        UniverseSpec {
            seed,
            cas: vec![
                CaSpec::trusted("Let's Encrypt Sim", 3),
                CaSpec::trusted("DigiCert Sim", 3),
                CaSpec::trusted("Sectigo Sim", 3),
                CaSpec::trusted("ZeroSSL Sim", 2),
                CaSpec::trusted("GoGetSSL Sim", 2),
                CaSpec::trusted("TAIWAN-CA Sim", 2),
                CaSpec::trusted("cyber_Folks Sim", 2),
                CaSpec::trusted("Trustico Sim", 2),
                // The long tail of other commercial CAs (the corpus "Other
                // CAs" bucket).
                CaSpec::trusted("Commercial CA A Sim", 2),
                CaSpec::trusted("Commercial CA B Sim", 2),
                // Roots driving Table 8 per-store differences.
                CaSpec::partially_trusted("Regional Root Sim MZ", 1, vec![Mozilla, Chrome]),
                CaSpec::partially_trusted("Regional Root Sim MS", 1, vec![Microsoft]),
                CaSpec::partially_trusted("Regional Root Sim AP", 1, vec![Apple]),
                // Untrusted roots (government/internal).
                CaSpec::untrusted("Sim Gov Root", 2),
                CaSpec::untrusted("Sim Hidden Root", 1),
            ],
            cross_signs: vec![
                // Sectigo-style cross sign: GoGetSSL intermediate also
                // signed by DigiCert root.
                CrossSignSpec {
                    subject_ca: 2,
                    subject_intermediate: 0,
                    issuer_ca: 1,
                    expired: false,
                },
                CrossSignSpec {
                    subject_ca: 0,
                    subject_intermediate: 1,
                    issuer_ca: 2,
                    expired: false,
                },
                // An expired cross sign.
                CrossSignSpec {
                    subject_ca: 1,
                    subject_intermediate: 1,
                    issuer_ca: 0,
                    expired: true,
                },
                // Long-tail CA cross sign (drives the corpus "Other CAs"
                // multi-path population).
                CrossSignSpec {
                    subject_ca: 8,
                    subject_intermediate: 0,
                    issuer_ca: 9,
                    expired: false,
                },
            ],
        }
    }
}

/// An issuing (intermediate) CA.
#[derive(Clone, Debug)]
pub struct IssuingCa {
    /// CN of the intermediate.
    pub name: String,
    /// Key pair (needed to issue leaves).
    pub keypair: KeyPair,
    /// Certificate issued by the parent root, with AKID and AIA present.
    pub cert: Certificate,
    /// Variant of `cert` with the AKID extension absent (same subject and
    /// key): deployed by a fraction of servers, it makes the terminal
    /// intermediate unmatchable against root-store SKIDs without AIA —
    /// the mechanism behind the paper's Table 8 no-AIA incompleteness.
    pub cert_no_akid: Certificate,
    /// URI where `cert` is published for AIA completion.
    pub aia_uri: String,
    /// Index of the parent root within the universe.
    pub root_index: usize,
}

/// A root CA with its intermediates.
#[derive(Clone, Debug)]
pub struct RootCa {
    /// Organization name.
    pub name: String,
    /// Root key pair.
    pub keypair: KeyPair,
    /// Self-signed root certificate.
    pub cert: Certificate,
    /// Whether this root participates in root programs.
    pub trusted: bool,
    /// Programs excluding this root.
    pub excluded_from: Vec<RootProgram>,
    /// Issuing intermediates.
    pub intermediates: Vec<IssuingCa>,
    /// URI where the root certificate is published.
    pub aia_uri: String,
}

/// A realized cross-signing relationship.
#[derive(Clone, Debug)]
pub struct CrossSignedPair {
    /// (root index, intermediate index) of the subject CA.
    pub subject: (usize, usize),
    /// The cross certificate: same subject DN/key as the subject
    /// intermediate, issued by `issuer_root`'s key.
    pub cross_cert: Certificate,
    /// Root index of the cross issuer.
    pub issuer_root: usize,
    /// Whether the cross certificate is expired.
    pub expired: bool,
    /// URI where the cross certificate is published.
    pub aia_uri: String,
}

/// The generated CA universe.
#[derive(Clone, Debug)]
pub struct CaUniverse {
    /// Root CAs in spec order.
    pub roots: Vec<RootCa>,
    /// Cross-signed pairs.
    pub cross_signed: Vec<CrossSignedPair>,
    seed: u64,
}

impl CaUniverse {
    /// Generate a universe from a spec. Deterministic in `spec.seed`.
    pub fn generate(spec: &UniverseSpec) -> CaUniverse {
        let group = Group::simulation_256();
        let drbg = Drbg::from_u64(spec.seed).fork("ca-universe");
        let root_not_before = Time::from_ymd(2012, 1, 1).expect("valid");
        let root_not_after = Time::from_ymd(2042, 1, 1).expect("valid");
        let int_not_before = Time::from_ymd(2020, 3, 1).expect("valid");
        let int_not_after = Time::from_ymd(2034, 3, 1).expect("valid");

        let mut roots = Vec::with_capacity(spec.cas.len());
        for (ci, ca) in spec.cas.iter().enumerate() {
            let slug = slugify(&ca.name);
            let root_drbg = drbg.fork(&format!("root/{ci}/{slug}"));
            let keypair = KeyPair::from_seed(group, &root_drbg.fork("key").bytes_static());
            let root_dn =
                DistinguishedName::cn_o(format!("{} Root CA", ca.name), ca.name.clone());
            let cert = CertificateBuilder::ca_profile(root_dn.clone())
                .validity(root_not_before, root_not_after)
                .akid(KidMode::Absent) // typical real-world roots omit AKID
                .self_signed(&keypair);
            let aia_uri = format!("http://aia.sim/{slug}/root.crt");

            let mut intermediates = Vec::with_capacity(ca.intermediates);
            for ii in 0..ca.intermediates {
                let int_drbg = root_drbg.fork(&format!("int/{ii}"));
                let int_kp = KeyPair::from_seed(group, &int_drbg.fork("key").bytes_static());
                let int_name = format!("{} Issuing CA {}", ca.name, ii + 1);
                let int_dn = DistinguishedName::cn_o(int_name.clone(), ca.name.clone());
                let int_aia = format!("http://aia.sim/{slug}/issuing-{}.crt", ii + 1);
                let base = CertificateBuilder::ca_profile(int_dn.clone())
                    .validity(int_not_before, int_not_after)
                    .aia_ca_issuers(aia_uri.clone());
                let cert = base
                    .clone()
                    .issued_by(&int_kp.public, root_dn.clone(), &keypair);
                let cert_no_akid = base
                    .akid(KidMode::Absent)
                    .issued_by(&int_kp.public, root_dn.clone(), &keypair);
                intermediates.push(IssuingCa {
                    name: int_name,
                    keypair: int_kp,
                    cert,
                    cert_no_akid,
                    aia_uri: int_aia,
                    root_index: ci,
                });
            }
            roots.push(RootCa {
                name: ca.name.clone(),
                keypair,
                cert,
                trusted: ca.trusted,
                excluded_from: ca.excluded_from.clone(),
                intermediates,
                aia_uri,
            });
        }

        let mut cross_signed = Vec::with_capacity(spec.cross_signs.len());
        for cs in &spec.cross_signs {
            let subject_int = &roots[cs.subject_ca].intermediates[cs.subject_intermediate];
            let issuer = &roots[cs.issuer_ca];
            let subject_dn = subject_int.cert.subject().clone();
            let (nb, na) = if cs.expired {
                (
                    Time::from_ymd(2016, 1, 1).expect("valid"),
                    Time::from_ymd(2021, 1, 1).expect("valid"),
                )
            } else {
                (int_not_before, int_not_after)
            };
            let cross_cert = CertificateBuilder::ca_profile(subject_dn)
                .validity(nb, na)
                .aia_ca_issuers(issuer.aia_uri.clone())
                .issued_by(
                    &subject_int.keypair.public,
                    roots[cs.issuer_ca].cert.subject().clone(),
                    &issuer.keypair,
                );
            let aia_uri = format!(
                "http://aia.sim/{}/cross-{}-{}.crt",
                slugify(&roots[cs.subject_ca].name),
                cs.subject_intermediate,
                slugify(&roots[cs.issuer_ca].name)
            );
            cross_signed.push(CrossSignedPair {
                subject: (cs.subject_ca, cs.subject_intermediate),
                cross_cert,
                issuer_root: cs.issuer_ca,
                expired: cs.expired,
                aia_uri,
            });
        }

        CaUniverse {
            roots,
            cross_signed,
            seed: spec.seed,
        }
    }

    /// Convenience: generate the default population.
    pub fn default_with_seed(seed: u64) -> CaUniverse {
        CaUniverse::generate(&UniverseSpec::default_population(seed))
    }

    /// The master seed this universe was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All trusted root certificates.
    pub fn trusted_roots(&self) -> impl Iterator<Item = &RootCa> {
        self.roots.iter().filter(|r| r.trusted)
    }

    /// Every published certificate, keyed by AIA URI — the content of the
    /// simulated AIA repository.
    pub fn aia_publications(&self) -> HashMap<String, Certificate> {
        let mut map = HashMap::new();
        for root in &self.roots {
            map.insert(root.aia_uri.clone(), root.cert.clone());
            for int in &root.intermediates {
                map.insert(int.aia_uri.clone(), int.cert.clone());
            }
        }
        for cs in &self.cross_signed {
            map.insert(cs.aia_uri.clone(), cs.cross_cert.clone());
        }
        map
    }

    /// Cross-signed pairs whose subject is the given intermediate.
    pub fn cross_certs_for(&self, root_idx: usize, int_idx: usize) -> Vec<&CrossSignedPair> {
        self.cross_signed
            .iter()
            .filter(|cs| cs.subject == (root_idx, int_idx))
            .collect()
    }
}

fn slugify(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect::<String>()
        .split('-')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("-")
}

/// Helper: a fixed-size byte seed from a DRBG (32 bytes).
trait DrbgSeedExt {
    fn bytes_static(&self) -> Vec<u8>;
}

impl DrbgSeedExt for Drbg {
    fn bytes_static(&self) -> Vec<u8> {
        self.clone().bytes(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> CaUniverse {
        CaUniverse::default_with_seed(7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = universe();
        let b = universe();
        assert_eq!(a.roots.len(), b.roots.len());
        for (ra, rb) in a.roots.iter().zip(&b.roots) {
            assert_eq!(ra.cert, rb.cert);
            for (ia, ib) in ra.intermediates.iter().zip(&rb.intermediates) {
                assert_eq!(ia.cert, ib.cert);
                assert_eq!(ia.cert_no_akid, ib.cert_no_akid);
            }
        }
    }

    #[test]
    fn roots_are_self_signed_cas() {
        for root in universe().roots {
            assert!(root.cert.is_self_signed(), "{}", root.name);
            assert!(root.cert.is_ca());
            assert!(root.cert.skid().is_some());
            assert!(root.cert.akid().is_none());
        }
    }

    #[test]
    fn intermediates_verify_under_their_roots() {
        let u = universe();
        for root in &u.roots {
            for int in &root.intermediates {
                assert!(int.cert.verify_signature_with(root.cert.public_key()));
                assert!(int.cert_no_akid.verify_signature_with(root.cert.public_key()));
                assert_eq!(int.cert.issuer(), root.cert.subject());
                assert_eq!(
                    int.cert.akid_key_id().unwrap(),
                    root.cert.skid().unwrap(),
                    "AKID chain for {}",
                    int.name
                );
                assert!(int.cert_no_akid.akid().is_none());
                // Same key in both variants.
                assert_eq!(int.cert.public_key(), int.cert_no_akid.public_key());
                // AIA points at the root's publication.
                assert_eq!(int.cert.aia_ca_issuers_uri(), Some(root.aia_uri.as_str()));
            }
        }
    }

    #[test]
    fn cross_signs_share_subject_and_key() {
        let u = universe();
        assert_eq!(u.cross_signed.len(), 4);
        for cs in &u.cross_signed {
            let (ri, ii) = cs.subject;
            let original = &u.roots[ri].intermediates[ii];
            assert_eq!(cs.cross_cert.subject(), original.cert.subject());
            assert_eq!(cs.cross_cert.public_key(), original.cert.public_key());
            assert_ne!(cs.cross_cert.issuer(), original.cert.issuer());
            let issuer_root = &u.roots[cs.issuer_root];
            assert!(cs.cross_cert.verify_signature_with(issuer_root.cert.public_key()));
        }
        assert!(u.cross_signed.iter().any(|cs| cs.expired));
    }

    #[test]
    fn aia_repository_contains_all_publications() {
        let u = universe();
        let repo = u.aia_publications();
        let expected = u.roots.len()
            + u.roots.iter().map(|r| r.intermediates.len()).sum::<usize>()
            + u.cross_signed.len();
        assert_eq!(repo.len(), expected);
        for root in &u.roots {
            assert_eq!(repo.get(&root.aia_uri), Some(&root.cert));
        }
    }

    #[test]
    fn trusted_and_untrusted_partition() {
        let u = universe();
        let trusted = u.trusted_roots().count();
        assert_eq!(trusted, 13);
        assert_eq!(u.roots.len() - trusted, 2);
    }

    #[test]
    fn slugify_behaviour() {
        assert_eq!(slugify("Let's Encrypt Sim"), "let-s-encrypt-sim");
        assert_eq!(slugify("cyber_Folks Sim"), "cyber-folks-sim");
    }
}
