//! The four root programs and their union.

use crate::store::RootStore;
use crate::universe::CaUniverse;
use std::fmt;

/// A root program identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum RootProgram {
    /// Mozilla NSS root program.
    Mozilla,
    /// Chrome Root Store.
    Chrome,
    /// Microsoft Trusted Root Program.
    Microsoft,
    /// Apple Root Program.
    Apple,
}

impl RootProgram {
    /// All four programs in display order.
    pub const ALL: [RootProgram; 4] = [
        RootProgram::Mozilla,
        RootProgram::Chrome,
        RootProgram::Microsoft,
        RootProgram::Apple,
    ];
}

impl fmt::Display for RootProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RootProgram::Mozilla => "Mozilla",
            RootProgram::Chrome => "Chrome",
            RootProgram::Microsoft => "Microsoft",
            RootProgram::Apple => "Apple",
        };
        write!(f, "{name}")
    }
}

/// The four program stores plus their union, built from a universe.
#[derive(Clone, Debug)]
pub struct RootPrograms {
    mozilla: RootStore,
    chrome: RootStore,
    microsoft: RootStore,
    apple: RootStore,
    unified: RootStore,
}

impl RootPrograms {
    /// Build program stores from the universe's trust metadata.
    pub fn from_universe(universe: &CaUniverse) -> RootPrograms {
        let mut stores: Vec<(RootProgram, RootStore)> = RootProgram::ALL
            .iter()
            .map(|&p| (p, RootStore::new(p.to_string().to_lowercase(), Vec::new())))
            .collect();
        for root in universe.trusted_roots() {
            for (program, store) in stores.iter_mut() {
                if !root.excluded_from.contains(program) {
                    store.add(root.cert.clone());
                }
            }
        }
        let by = |p: RootProgram, stores: &[(RootProgram, RootStore)]| {
            stores
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, s)| s.clone())
                .expect("program present")
        };
        let mozilla = by(RootProgram::Mozilla, &stores);
        let chrome = by(RootProgram::Chrome, &stores);
        let microsoft = by(RootProgram::Microsoft, &stores);
        let apple = by(RootProgram::Apple, &stores);
        let unified = RootStore::union("unified", &[&mozilla, &chrome, &microsoft, &apple]);
        RootPrograms {
            mozilla,
            chrome,
            microsoft,
            apple,
            unified,
        }
    }

    /// Store for one program.
    pub fn store(&self, program: RootProgram) -> &RootStore {
        match program {
            RootProgram::Mozilla => &self.mozilla,
            RootProgram::Chrome => &self.chrome,
            RootProgram::Microsoft => &self.microsoft,
            RootProgram::Apple => &self.apple,
        }
    }

    /// The union of all four stores (the paper's "unified root store").
    pub fn unified(&self) -> &RootStore {
        &self.unified
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_respect_exclusions() {
        let u = CaUniverse::default_with_seed(11);
        let programs = RootPrograms::from_universe(&u);
        // Default population: 11 trusted roots; MZ-excluded root missing
        // from Mozilla and Chrome; MS root from Microsoft; AP from Apple.
        assert_eq!(programs.unified().len(), 13);
        assert_eq!(programs.store(RootProgram::Mozilla).len(), 12);
        assert_eq!(programs.store(RootProgram::Chrome).len(), 12);
        assert_eq!(programs.store(RootProgram::Microsoft).len(), 12);
        assert_eq!(programs.store(RootProgram::Apple).len(), 12);
        // Untrusted roots appear nowhere.
        for root in &u.roots {
            if !root.trusted {
                assert!(!programs.unified().contains(&root.cert));
            }
        }
    }

    #[test]
    fn excluded_root_is_in_union_but_not_its_programs() {
        let u = CaUniverse::default_with_seed(11);
        let programs = RootPrograms::from_universe(&u);
        let mz_excluded = u
            .roots
            .iter()
            .find(|r| r.name.contains("Sim MZ"))
            .expect("MZ root present");
        assert!(programs.unified().contains(&mz_excluded.cert));
        assert!(!programs.store(RootProgram::Mozilla).contains(&mz_excluded.cert));
        assert!(!programs.store(RootProgram::Chrome).contains(&mz_excluded.cert));
        assert!(programs.store(RootProgram::Microsoft).contains(&mz_excluded.cert));
        assert!(programs.store(RootProgram::Apple).contains(&mz_excluded.cert));
    }
}
