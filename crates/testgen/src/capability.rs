//! The nine chain-construction capability tests (paper §3.2, Table 2) and
//! their evaluation against a chain engine (reproducing Table 9).
//!
//! All priority tests use intermediates that share the *same subject DN
//! and key* (renewed/reissued certificates, like the paper's Figure 5
//! DigiCert example) but differ in exactly one attribute — so the
//! signature verifies under every candidate and the constructed path
//! reveals the client's preference.

use ccc_asn1::Time;
use ccc_core::builder::{BuildContext, ChainEngine, ClientError};
use ccc_core::topology::IssuanceChecker;
use ccc_netsim::AiaRepository;
use ccc_rootstore::RootStore;
use ccc_x509::{
    BasicConstraints, Certificate, CertificateBuilder, DistinguishedName, KeyUsage, KidMode,
};
use ccc_crypto::{Group, KeyPair};

/// Validity-priority classes (Table 9 footnotes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VpClass {
    /// "—": no validity preference (picks first, may pick an invalid one).
    NoPreference,
    /// VP1: first valid certificate.
    FirstValid,
    /// VP2: most recent (then longest) among valid.
    MostRecent,
}

impl VpClass {
    /// Table 9 cell text.
    pub fn label(&self) -> &'static str {
        match self {
            VpClass::NoPreference => "-",
            VpClass::FirstValid => "VP1",
            VpClass::MostRecent => "VP2",
        }
    }
}

/// KID-priority classes (Table 9 footnotes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KpClass {
    /// "—": no KID preference.
    NoPreference,
    /// KP1: match/absence over mismatch.
    MatchOrAbsentFirst,
    /// KP2: match over absence over mismatch.
    MatchFirst,
}

impl KpClass {
    /// Table 9 cell text.
    pub fn label(&self) -> &'static str {
        match self {
            KpClass::NoPreference => "-",
            KpClass::MatchOrAbsentFirst => "KP1",
            KpClass::MatchFirst => "KP2",
        }
    }
}

/// Measured path-length limit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MaxLen {
    /// Exact limit found by probing.
    Exact(usize),
    /// No failure up to the probe ceiling.
    AtLeast(usize),
}

impl MaxLen {
    /// Table 9 cell text.
    pub fn label(&self) -> String {
        match self {
            MaxLen::Exact(n) => format!("={n}"),
            MaxLen::AtLeast(n) => format!(">{n}"),
        }
    }
}

/// One client's row of Table 9.
#[derive(Clone, Debug)]
pub struct CapabilityRow {
    /// Test 1.
    pub order_reorganization: bool,
    /// Test 2.
    pub redundancy_elimination: bool,
    /// Test 3.
    pub aia_completion: bool,
    /// Test 4.
    pub validity_priority: VpClass,
    /// Test 5.
    pub kid_priority: KpClass,
    /// Test 6 (true = KUP).
    pub key_usage_priority: bool,
    /// Test 7 (true = BP).
    pub basic_constraints_priority: bool,
    /// Test 8.
    pub max_path_len: MaxLen,
    /// Test 9 (true = self-signed leaf accepted for construction).
    pub self_signed_leaf: bool,
}

/// The fixed PKI behind all nine tests.
#[derive(Debug)]
pub struct CapabilitySuite {
    /// Trust store holding the suite's root.
    pub store: RootStore,
    /// AIA repository for test 3.
    pub aia: AiaRepository,
    /// The simulated clock.
    pub now: Time,
    root: Certificate,
    root_kp: KeyPair,
    root_dn: DistinguishedName,
    /// Plain E <- I chain material reused by several tests.
    int_kp: KeyPair,
    int_dn: DistinguishedName,
    int_cert: Certificate,
}

/// Probe ceiling for the path-length test (paper probed to 52).
pub const MAX_LEN_PROBE: usize = 53;

impl CapabilitySuite {
    /// Build the suite (deterministic in `seed`).
    pub fn new(seed: u64) -> CapabilitySuite {
        let g = Group::simulation_256();
        let mk = |label: &str| {
            KeyPair::from_seed(g, format!("capability/{seed}/{label}").as_bytes())
        };
        let root_kp = mk("root");
        let root_dn = DistinguishedName::cn_o("Capability Root", "chain-chaos");
        let root = CertificateBuilder::ca_profile(root_dn.clone())
            .validity(
                Time::from_ymd(2015, 1, 1).expect("literal date is valid"),
                Time::from_ymd(2040, 1, 1).expect("literal date is valid"),
            )
            .self_signed(&root_kp);
        let int_kp = mk("int");
        let int_dn = DistinguishedName::cn_o("Capability Issuing CA", "chain-chaos");
        let int_cert = CertificateBuilder::ca_profile(int_dn.clone()).issued_by(
            &int_kp.public,
            root_dn.clone(),
            &root_kp,
        );
        let store = RootStore::new("capability", vec![root.clone()]);
        CapabilitySuite {
            store,
            aia: AiaRepository::empty(),
            now: Time::from_ymd(2024, 7, 1).expect("literal date is valid"),
            root,
            root_kp,
            root_dn,
            int_kp,
            int_dn,
            int_cert,
        }
    }

    fn ctx<'a>(&'a self, checker: &'a IssuanceChecker) -> BuildContext<'a> {
        BuildContext {
            store: &self.store,
            aia: Some(&self.aia),
            cache: &[],
            now: self.now,
            checker,
        }
    }

    fn leaf_under_int(&self, domain: &str) -> Certificate {
        let g = Group::simulation_256();
        let kp = KeyPair::from_seed(g, format!("capability-leaf/{domain}").as_bytes());
        CertificateBuilder::leaf_profile(domain).issued_by(
            &kp.public,
            self.int_dn.clone(),
            &self.int_kp,
        )
    }

    /// Test 1 — ORDER_REORGANIZATION: `{E, I2, I1, R}` where the true
    /// chain is E ← I1 ← I2 ← R.
    pub fn test_order_reorganization(&self, engine: &ChainEngine) -> bool {
        let g = Group::simulation_256();
        let i2_kp = KeyPair::from_seed(g, b"capability/order/i2");
        let i1_kp = KeyPair::from_seed(g, b"capability/order/i1");
        let leaf_kp = KeyPair::from_seed(g, b"capability/order/leaf");
        let i2_dn = DistinguishedName::cn("Order I2");
        let i1_dn = DistinguishedName::cn("Order I1");
        let i2 = CertificateBuilder::ca_profile(i2_dn.clone()).issued_by(
            &i2_kp.public,
            self.root_dn.clone(),
            &self.root_kp,
        );
        let i1 = CertificateBuilder::ca_profile(i1_dn.clone()).issued_by(
            &i1_kp.public,
            i2_dn,
            &i2_kp,
        );
        let e = CertificateBuilder::leaf_profile("order.cap").issued_by(
            &leaf_kp.public,
            i1_dn,
            &i1_kp,
        );
        let served = vec![e, i2, i1, self.root.clone()];
        let checker = IssuanceChecker::new();
        engine.process(&served, &self.ctx(&checker)).accepted()
    }

    /// Test 2 — REDUNDANCY_ELIMINATION: `{E, X, I, R}` with X irrelevant.
    pub fn test_redundancy_elimination(&self, engine: &ChainEngine) -> bool {
        let g = Group::simulation_256();
        let x_kp = KeyPair::from_seed(g, b"capability/redundancy/x");
        let x = CertificateBuilder::ca_profile(DistinguishedName::cn("Irrelevant X"))
            .self_signed(&x_kp);
        let e = self.leaf_under_int("redundancy.cap");
        let served = vec![e, x, self.int_cert.clone(), self.root.clone()];
        let checker = IssuanceChecker::new();
        engine.process(&served, &self.ctx(&checker)).accepted()
    }

    /// Test 3 — AIA_COMPLETION: `{E, I1}` where I1's issuer I2 is only
    /// available via I1's AIA caIssuers URI (and I2 chains to R).
    pub fn test_aia_completion(&self, engine: &ChainEngine) -> bool {
        let g = Group::simulation_256();
        let i2_kp = KeyPair::from_seed(g, b"capability/aia/i2");
        let i1_kp = KeyPair::from_seed(g, b"capability/aia/i1");
        let leaf_kp = KeyPair::from_seed(g, b"capability/aia/leaf");
        let i2_dn = DistinguishedName::cn("AIA I2");
        let i1_dn = DistinguishedName::cn("AIA I1");
        let i2 = CertificateBuilder::ca_profile(i2_dn.clone()).issued_by(
            &i2_kp.public,
            self.root_dn.clone(),
            &self.root_kp,
        );
        let i1 = CertificateBuilder::ca_profile(i1_dn.clone())
            .aia_ca_issuers("http://aia.cap/i2.crt")
            .issued_by(&i1_kp.public, i2_dn, &i2_kp);
        let e = CertificateBuilder::leaf_profile("aia.cap").issued_by(
            &leaf_kp.public,
            i1_dn,
            &i1_kp,
        );
        let mut aia = AiaRepository::empty();
        aia.publish("http://aia.cap/i2.crt", i2);
        let served = vec![e, i1];
        let checker = IssuanceChecker::new();
        let ctx = BuildContext {
            store: &self.store,
            aia: Some(&aia),
            cache: &[],
            now: self.now,
            checker: &checker,
        };
        engine.process(&served, &ctx).accepted()
    }

    /// Builds the same-subject/same-key intermediate family for the
    /// priority tests: `make(label, builder_tweak)`.
    fn same_key_intermediates(
        &self,
        label: &str,
        variants: &[(&str, CertificateBuilder)],
    ) -> (Certificate, Vec<Certificate>) {
        let g = Group::simulation_256();
        let shared_kp = KeyPair::from_seed(g, format!("capability/{label}/shared").as_bytes());
        let leaf_kp = KeyPair::from_seed(g, format!("capability/{label}/leaf").as_bytes());
        let shared_dn = DistinguishedName::cn(format!("Priority CA {label}"));
        let mut certs = Vec::new();
        for (_, builder) in variants {
            certs.push(builder.clone().issued_by(
                &shared_kp.public,
                self.root_dn.clone(),
                &self.root_kp,
            ));
        }
        let leaf = CertificateBuilder::leaf_profile(&format!("{label}.cap")).issued_by(
            &leaf_kp.public,
            shared_dn,
            &shared_kp,
        );
        (leaf, certs)
    }

    /// Test 4 — VALIDITY priority. Served order: `[E, I1(expired),
    /// I(valid, older), I2(valid, recent), I3(valid, long), R]`.
    /// Returns the class inferred from the constructed path.
    pub fn test_validity_priority(&self, engine: &ChainEngine) -> VpClass {
        let label = "validity";
        let g = Group::simulation_256();
        let shared_kp = KeyPair::from_seed(g, format!("capability/{label}/shared").as_bytes());
        let shared_dn = DistinguishedName::cn(format!("Priority CA {label}"));
        let y = |y, m, d| Time::from_ymd(y, m, d).expect("literal date is valid");
        let base = || CertificateBuilder::ca_profile(shared_dn.clone());
        let i = base().validity(y(2024, 1, 1), y(2025, 1, 1));
        let i1 = base().validity(y(2020, 1, 1), y(2021, 1, 1)); // expired
        let i2 = base().validity(y(2024, 6, 1), y(2025, 6, 1)); // most recent
        let i3 = base().validity(y(2024, 1, 1), y(2034, 1, 1)); // longest
        let issue = |b: CertificateBuilder| {
            b.issued_by(&shared_kp.public, self.root_dn.clone(), &self.root_kp)
        };
        let (i, i1, i2, i3) = (issue(i), issue(i1), issue(i2), issue(i3));
        let leaf_kp = KeyPair::from_seed(g, format!("capability/{label}/leaf").as_bytes());
        let leaf = CertificateBuilder::leaf_profile("validity.cap").issued_by(
            &leaf_kp.public,
            shared_dn,
            &shared_kp,
        );
        let served = vec![
            leaf,
            i1.clone(),
            i.clone(),
            i2.clone(),
            i3.clone(),
            self.root.clone(),
        ];
        let checker = IssuanceChecker::new();
        let outcome = engine.process(&served, &self.ctx(&checker));
        if !outcome.accepted() {
            // Picked the expired first candidate (or failed otherwise).
            return VpClass::NoPreference;
        }
        let path = &outcome.path;
        if path.contains(&i) {
            VpClass::FirstValid
        } else if path.contains(&i2) {
            VpClass::MostRecent
        } else if path.contains(&i1) {
            VpClass::NoPreference
        } else {
            // Picked I3 (longest): treat as a most-recent-like preference
            // variant; the paper's VP2 is "most recent, then longest".
            VpClass::MostRecent
        }
    }

    /// Test 5 — KID matching priority. Served order:
    /// `[E, I1(kid mismatch), I2(kid absent), I(kid match), R]`.
    pub fn test_kid_priority(&self, engine: &ChainEngine) -> KpClass {
        let (leaf, certs) = self.same_key_intermediates(
            "kid",
            &[
                ("mismatch", CertificateBuilder::ca_profile(DistinguishedName::cn("Priority CA kid"))
                    .skid(KidMode::Custom(vec![0xAB; 20]))),
                ("absent", CertificateBuilder::ca_profile(DistinguishedName::cn("Priority CA kid"))
                    .skid(KidMode::Absent)),
                ("match", CertificateBuilder::ca_profile(DistinguishedName::cn("Priority CA kid"))),
            ],
        );
        let (i_mismatch, i_absent, i_match) = (certs[0].clone(), certs[1].clone(), certs[2].clone());
        let served = vec![
            leaf,
            i_mismatch.clone(),
            i_absent.clone(),
            i_match.clone(),
            self.root.clone(),
        ];
        let checker = IssuanceChecker::new();
        let outcome = engine.process(&served, &self.ctx(&checker));
        if !outcome.accepted() {
            return KpClass::NoPreference;
        }
        let path = &outcome.path;
        if path.contains(&i_mismatch) {
            KpClass::NoPreference
        } else if path.contains(&i_absent) {
            KpClass::MatchOrAbsentFirst
        } else {
            KpClass::MatchFirst
        }
    }

    /// Test 6 — KeyUsage correctness priority. Served order:
    /// `[E, I1(wrong KU), I2(no KU), I(correct KU), R]`. Returns KUP?
    pub fn test_key_usage_priority(&self, engine: &ChainEngine) -> bool {
        let dn = DistinguishedName::cn("Priority CA ku");
        let (leaf, certs) = self.same_key_intermediates(
            "ku",
            &[
                ("wrong", CertificateBuilder::new(dn.clone())
                    .basic_constraints(Some(BasicConstraints::ca()))
                    .key_usage(Some(KeyUsage::no_cert_sign()))),
                ("absent", CertificateBuilder::new(dn.clone())
                    .basic_constraints(Some(BasicConstraints::ca()))),
                ("correct", CertificateBuilder::new(dn.clone())
                    .basic_constraints(Some(BasicConstraints::ca()))
                    .key_usage(Some(KeyUsage::ca()))),
            ],
        );
        let i_wrong = certs[0].clone();
        let served = vec![
            leaf,
            i_wrong.clone(),
            certs[1].clone(),
            certs[2].clone(),
            self.root.clone(),
        ];
        let checker = IssuanceChecker::new();
        let outcome = engine.process(&served, &self.ctx(&checker));
        outcome.accepted() && !outcome.path.contains(&i_wrong)
    }

    /// Test 7 — BasicConstraints (path length) priority. Chain
    /// E ← I1 ← {I2 (good len), I3 (len 0, violated)} ← R; served
    /// `[E, I1, I3(bad), I2(good), R]`. Returns BP?
    pub fn test_basic_constraints_priority(&self, engine: &ChainEngine) -> bool {
        let g = Group::simulation_256();
        let shared_kp = KeyPair::from_seed(g, b"capability/bc/shared");
        let i1_kp = KeyPair::from_seed(g, b"capability/bc/i1");
        let leaf_kp = KeyPair::from_seed(g, b"capability/bc/leaf");
        let shared_dn = DistinguishedName::cn("Priority CA bc");
        let i1_dn = DistinguishedName::cn("BC I1");
        let good = CertificateBuilder::new(shared_dn.clone())
            .basic_constraints(Some(BasicConstraints::ca_with_path_len(3)))
            .key_usage(Some(KeyUsage::ca()))
            .issued_by(&shared_kp.public, self.root_dn.clone(), &self.root_kp);
        let bad = CertificateBuilder::new(shared_dn.clone())
            .basic_constraints(Some(BasicConstraints::ca_with_path_len(0)))
            .key_usage(Some(KeyUsage::ca()))
            .issued_by(&shared_kp.public, self.root_dn.clone(), &self.root_kp);
        let i1 = CertificateBuilder::ca_profile(i1_dn.clone()).issued_by(
            &i1_kp.public,
            shared_dn,
            &shared_kp,
        );
        let e = CertificateBuilder::leaf_profile("bc.cap").issued_by(
            &leaf_kp.public,
            i1_dn,
            &i1_kp,
        );
        let served = vec![e, i1, bad.clone(), good.clone(), self.root.clone()];
        let checker = IssuanceChecker::new();
        let outcome = engine.process(&served, &self.ctx(&checker));
        outcome.accepted() && outcome.path.contains(&good) && !outcome.path.contains(&bad)
    }

    /// Test 8 — maximum constructible chain length. Probes total path
    /// lengths (leaf + intermediates + root) up to [`MAX_LEN_PROBE`].
    pub fn test_max_path_len(&self, engine: &ChainEngine) -> MaxLen {
        let mut last_ok = 0usize;
        for total in [3usize, 6, 8, 9, 10, 11, 13, 14, 16, 17, 21, 22, 30, 40, 52, MAX_LEN_PROBE] {
            if self.deep_chain_accepted(engine, total) {
                last_ok = total;
            } else {
                // Refine: the failure threshold lies in (last_ok, total].
                for t in (last_ok + 1)..=total {
                    if self.deep_chain_accepted(engine, t) {
                        last_ok = t;
                    } else {
                        return MaxLen::Exact(last_ok);
                    }
                }
            }
        }
        MaxLen::AtLeast(MAX_LEN_PROBE - 1)
    }

    fn deep_chain_accepted(&self, engine: &ChainEngine, total_len: usize) -> bool {
        assert!(total_len >= 2);
        let g = Group::simulation_256();
        let n_ints = total_len - 2;
        let mut chain: Vec<Certificate> = Vec::with_capacity(total_len);
        // Build top-down: root -> I_n -> … -> I_1 -> E.
        let mut issuer_dn = self.root_dn.clone();
        let mut issuer_kp = self.root_kp.clone();
        let mut tower: Vec<Certificate> = Vec::new();
        for depth in 0..n_ints {
            let kp = KeyPair::from_seed(
                g,
                format!("capability/deep/{total_len}/{depth}").as_bytes(),
            );
            let dn = DistinguishedName::cn(format!("Deep CA {total_len}.{depth}"));
            let cert = CertificateBuilder::ca_profile(dn.clone()).issued_by(
                &kp.public,
                issuer_dn.clone(),
                &issuer_kp,
            );
            tower.push(cert);
            issuer_dn = dn;
            issuer_kp = kp;
        }
        let leaf_kp = KeyPair::from_seed(g, format!("capability/deep/{total_len}/leaf").as_bytes());
        let leaf = CertificateBuilder::leaf_profile(&format!("deep{total_len}.cap")).issued_by(
            &leaf_kp.public,
            issuer_dn,
            &issuer_kp,
        );
        chain.push(leaf);
        // Compliant order: leaf, I_1 (nearest), …, I_n, root.
        for cert in tower.into_iter().rev() {
            chain.push(cert);
        }
        chain.push(self.root.clone());
        debug_assert_eq!(chain.len(), total_len);
        let checker = IssuanceChecker::new();
        engine.process(&chain, &self.ctx(&checker)).accepted()
    }

    /// Test 9 — self-signed leaf: `{ES, E, I, R}`. Returns true when the
    /// client *allows* the self-signed leaf into construction (i.e. it
    /// does not reject with a self-signed-leaf error).
    pub fn test_self_signed_leaf(&self, engine: &ChainEngine) -> bool {
        let g = Group::simulation_256();
        let es_kp = KeyPair::from_seed(g, b"capability/ssl/es");
        let e = self.leaf_under_int("ssl.cap");
        let es = CertificateBuilder::leaf_profile("ssl.cap").self_signed(&es_kp);
        let served = vec![es, e, self.int_cert.clone(), self.root.clone()];
        let checker = IssuanceChecker::new();
        let outcome = engine.process(&served, &self.ctx(&checker));
        outcome.verdict != Err(ClientError::SelfSignedLeaf)
    }

    /// Run all nine tests against an engine (one Table 9 row).
    pub fn evaluate(&self, engine: &ChainEngine) -> CapabilityRow {
        CapabilityRow {
            order_reorganization: self.test_order_reorganization(engine),
            redundancy_elimination: self.test_redundancy_elimination(engine),
            aia_completion: self.test_aia_completion(engine),
            validity_priority: self.test_validity_priority(engine),
            kid_priority: self.test_kid_priority(engine),
            key_usage_priority: self.test_key_usage_priority(engine),
            basic_constraints_priority: self.test_basic_constraints_priority(engine),
            max_path_len: self.test_max_path_len(engine),
            self_signed_leaf: self.test_self_signed_leaf(engine),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_core::clients::ClientKind;

    fn suite() -> CapabilitySuite {
        CapabilitySuite::new(1)
    }

    #[test]
    fn chrome_row_matches_table9() {
        let s = suite();
        let row = s.evaluate(&ClientKind::Chrome.engine());
        assert!(row.order_reorganization);
        assert!(row.redundancy_elimination);
        assert!(row.aia_completion);
        assert_eq!(row.validity_priority, VpClass::MostRecent);
        assert_eq!(row.kid_priority, KpClass::MatchFirst);
        assert!(row.key_usage_priority);
        assert!(row.basic_constraints_priority);
        assert_eq!(row.max_path_len, MaxLen::AtLeast(52));
        assert!(!row.self_signed_leaf);
    }

    #[test]
    fn mbedtls_row_matches_table9() {
        let s = suite();
        let row = s.evaluate(&ClientKind::MbedTls.engine());
        assert!(!row.order_reorganization, "MbedTLS cannot reorder");
        assert!(row.redundancy_elimination, "forward scan skips junk");
        assert!(!row.aia_completion);
        assert_eq!(row.validity_priority, VpClass::FirstValid);
        assert_eq!(row.kid_priority, KpClass::NoPreference);
        assert!(row.key_usage_priority, "partial validation acts as KUP");
        assert!(row.basic_constraints_priority);
        assert_eq!(row.max_path_len, MaxLen::Exact(10));
        assert!(row.self_signed_leaf);
    }

    #[test]
    fn openssl_row_matches_table9() {
        let s = suite();
        let row = s.evaluate(&ClientKind::OpenSsl.engine());
        assert!(row.order_reorganization);
        assert!(!row.aia_completion);
        assert_eq!(row.validity_priority, VpClass::FirstValid);
        assert_eq!(row.kid_priority, KpClass::MatchOrAbsentFirst);
        assert!(!row.key_usage_priority);
        assert!(!row.basic_constraints_priority);
        assert_eq!(row.max_path_len, MaxLen::AtLeast(52));
        assert!(!row.self_signed_leaf);
    }

    #[test]
    fn gnutls_row_matches_table9() {
        let s = suite();
        let row = s.evaluate(&ClientKind::GnuTls.engine());
        assert!(row.order_reorganization);
        assert!(!row.aia_completion);
        assert_eq!(row.validity_priority, VpClass::NoPreference);
        assert_eq!(row.kid_priority, KpClass::MatchOrAbsentFirst);
        // List limit of 16 certificates.
        assert_eq!(row.max_path_len, MaxLen::Exact(16));
        assert!(!row.self_signed_leaf);
    }

    #[test]
    fn firefox_row_matches_table9() {
        let s = suite();
        let row = s.evaluate(&ClientKind::Firefox.engine());
        assert!(row.order_reorganization);
        assert!(!row.aia_completion, "no AIA (cache not loaded here)");
        assert_eq!(row.validity_priority, VpClass::FirstValid);
        assert_eq!(row.kid_priority, KpClass::NoPreference);
        assert_eq!(row.max_path_len, MaxLen::Exact(8));
        assert!(!row.self_signed_leaf);
    }

    #[test]
    fn cryptoapi_and_edge_and_safari_rows() {
        let s = suite();
        let capi = s.evaluate(&ClientKind::CryptoApi.engine());
        assert!(capi.aia_completion);
        assert_eq!(capi.validity_priority, VpClass::MostRecent);
        assert_eq!(capi.kid_priority, KpClass::MatchFirst);
        assert_eq!(capi.max_path_len, MaxLen::Exact(13));
        assert!(!capi.self_signed_leaf);

        let edge = s.evaluate(&ClientKind::Edge.engine());
        assert_eq!(edge.max_path_len, MaxLen::Exact(21));
        assert_eq!(edge.kid_priority, KpClass::MatchFirst);

        let safari = s.evaluate(&ClientKind::Safari.engine());
        assert_eq!(safari.kid_priority, KpClass::MatchOrAbsentFirst);
        assert_eq!(safari.max_path_len, MaxLen::AtLeast(52));
        assert!(safari.self_signed_leaf);
        assert_eq!(safari.validity_priority, VpClass::MostRecent);
    }
}
