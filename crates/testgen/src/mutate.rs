//! Frankencert-style chain mutation engine.
//!
//! Takes a well-formed served list and applies structural mutations drawn
//! from the paper's observed misconfiguration patterns. Used by the
//! property tests ("no client panics / every mutation yields a defined
//! verdict") and by fuzz-flavoured differential sweeps.

use ccc_crypto::Drbg;
use ccc_x509::Certificate;

/// A structural mutation of a served list.
#[derive(Clone, Debug)]
pub enum ChainMutation {
    /// Shuffle all certificates after the leaf.
    ShuffleTail,
    /// Reverse the certificates after the leaf.
    ReverseTail,
    /// Reverse the whole list (leaf last).
    ReverseAll,
    /// Duplicate the certificate at (index mod len), appending the copy
    /// right after it.
    DuplicateAt(usize),
    /// Duplicate the leaf immediately after itself.
    DuplicateLeaf,
    /// Drop the certificate at (1 + index mod (len-1)) — never the leaf.
    DropIntermediateAt(usize),
    /// Keep only the leaf.
    TruncateToLeaf,
    /// Insert an unrelated certificate at (index mod (len+1)).
    InsertIrrelevant(Certificate, usize),
    /// Repeat the tail (everything after the leaf) `n` more times.
    RepeatTail(usize),
    /// Swap two adjacent certificates starting at (index mod (len-1)).
    SwapAdjacentAt(usize),
}

impl ChainMutation {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ChainMutation::ShuffleTail => "shuffle-tail",
            ChainMutation::ReverseTail => "reverse-tail",
            ChainMutation::ReverseAll => "reverse-all",
            ChainMutation::DuplicateAt(_) => "duplicate-at",
            ChainMutation::DuplicateLeaf => "duplicate-leaf",
            ChainMutation::DropIntermediateAt(_) => "drop-intermediate",
            ChainMutation::TruncateToLeaf => "truncate-to-leaf",
            ChainMutation::InsertIrrelevant(_, _) => "insert-irrelevant",
            ChainMutation::RepeatTail(_) => "repeat-tail",
            ChainMutation::SwapAdjacentAt(_) => "swap-adjacent",
        }
    }

    /// Apply to a served list (no-ops degrade gracefully on short lists).
    pub fn apply(&self, served: &mut Vec<Certificate>, drbg: &mut Drbg) {
        match self {
            ChainMutation::ShuffleTail => {
                if served.len() > 2 {
                    let tail = &mut served[1..];
                    drbg.shuffle(tail);
                }
            }
            ChainMutation::ReverseTail => {
                if served.len() > 2 {
                    served[1..].reverse();
                }
            }
            ChainMutation::ReverseAll => served.reverse(),
            ChainMutation::DuplicateAt(i) => {
                if !served.is_empty() {
                    let idx = i % served.len();
                    let cert = served[idx].clone();
                    served.insert(idx + 1, cert);
                }
            }
            ChainMutation::DuplicateLeaf => {
                if let Some(leaf) = served.first().cloned() {
                    served.insert(1, leaf);
                }
            }
            ChainMutation::DropIntermediateAt(i) => {
                if served.len() > 1 {
                    let idx = 1 + i % (served.len() - 1);
                    served.remove(idx);
                }
            }
            ChainMutation::TruncateToLeaf => served.truncate(1),
            ChainMutation::InsertIrrelevant(cert, i) => {
                let idx = if served.is_empty() { 0 } else { 1 + i % served.len() };
                let idx = idx.min(served.len());
                served.insert(idx, cert.clone());
            }
            ChainMutation::RepeatTail(n) => {
                if served.len() > 1 {
                    let tail: Vec<Certificate> = served[1..].to_vec();
                    for _ in 0..*n {
                        served.extend(tail.iter().cloned());
                    }
                }
            }
            ChainMutation::SwapAdjacentAt(i) => {
                if served.len() > 1 {
                    let idx = i % (served.len() - 1);
                    served.swap(idx, idx + 1);
                }
            }
        }
    }
}

/// Seeded mutation source.
#[derive(Clone, Debug)]
pub struct Mutator {
    drbg: Drbg,
    /// Pool of unrelated certificates for `InsertIrrelevant`.
    pub irrelevant_pool: Vec<Certificate>,
}

impl Mutator {
    /// Create a mutator with a seed and an irrelevant-certificate pool.
    pub fn new(seed: u64, irrelevant_pool: Vec<Certificate>) -> Mutator {
        Mutator {
            drbg: Drbg::from_u64(seed).fork("mutator"),
            irrelevant_pool,
        }
    }

    /// Draw a random mutation.
    pub fn random_mutation(&mut self) -> ChainMutation {
        let choices = if self.irrelevant_pool.is_empty() { 9 } else { 10 };
        match self.drbg.below(choices) {
            0 => ChainMutation::ShuffleTail,
            1 => ChainMutation::ReverseTail,
            2 => ChainMutation::ReverseAll,
            3 => ChainMutation::DuplicateAt(self.drbg.below(8) as usize),
            4 => ChainMutation::DuplicateLeaf,
            5 => ChainMutation::DropIntermediateAt(self.drbg.below(8) as usize),
            6 => ChainMutation::TruncateToLeaf,
            7 => ChainMutation::RepeatTail(1 + self.drbg.below(3) as usize),
            8 => ChainMutation::SwapAdjacentAt(self.drbg.below(8) as usize),
            _ => {
                let idx = self.drbg.below(self.irrelevant_pool.len() as u64) as usize;
                ChainMutation::InsertIrrelevant(
                    self.irrelevant_pool[idx].clone(),
                    self.drbg.below(8) as usize,
                )
            }
        }
    }

    /// Apply `count` random mutations to a list, returning the labels.
    pub fn mutate(&mut self, served: &mut Vec<Certificate>, count: usize) -> Vec<&'static str> {
        let mut labels = Vec::with_capacity(count);
        for _ in 0..count {
            let m = self.random_mutation();
            labels.push(m.label());
            let mut drbg = self.drbg.fork("apply");
            m.apply(served, &mut drbg);
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_crypto::{Group, KeyPair};
    use ccc_x509::{CertificateBuilder, DistinguishedName};

    fn chain() -> Vec<Certificate> {
        let g = Group::simulation_256();
        let root_kp = KeyPair::from_seed(g, b"mut-root");
        let int_kp = KeyPair::from_seed(g, b"mut-int");
        let leaf_kp = KeyPair::from_seed(g, b"mut-leaf");
        let root_dn = DistinguishedName::cn("Mut Root");
        let int_dn = DistinguishedName::cn("Mut Int");
        let root = CertificateBuilder::ca_profile(root_dn.clone()).self_signed(&root_kp);
        let int = CertificateBuilder::ca_profile(int_dn.clone()).issued_by(
            &int_kp.public,
            root_dn,
            &root_kp,
        );
        let leaf = CertificateBuilder::leaf_profile("mut.sim").issued_by(
            &leaf_kp.public,
            int_dn,
            &int_kp,
        );
        vec![leaf, int, root]
    }

    #[test]
    fn reverse_tail_keeps_leaf() {
        let mut c = chain();
        let leaf = c[0].clone();
        let mut drbg = Drbg::from_u64(1);
        ChainMutation::ReverseTail.apply(&mut c, &mut drbg);
        assert_eq!(c[0], leaf);
        assert!(c[1].is_self_issued(), "root now precedes intermediate");
    }

    #[test]
    fn duplicate_leaf() {
        let mut c = chain();
        let mut drbg = Drbg::from_u64(1);
        ChainMutation::DuplicateLeaf.apply(&mut c, &mut drbg);
        assert_eq!(c.len(), 4);
        assert_eq!(c[0], c[1]);
    }

    #[test]
    fn drop_never_removes_leaf() {
        for i in 0..10 {
            let mut c = chain();
            let leaf = c[0].clone();
            let mut drbg = Drbg::from_u64(1);
            ChainMutation::DropIntermediateAt(i).apply(&mut c, &mut drbg);
            assert_eq!(c.len(), 2);
            assert_eq!(c[0], leaf);
        }
    }

    #[test]
    fn repeat_tail_grows_list() {
        let mut c = chain();
        let mut drbg = Drbg::from_u64(1);
        ChainMutation::RepeatTail(13).apply(&mut c, &mut drbg);
        // 1 leaf + 14 copies of the 2-cert tail = 29 (the ns3.link size).
        assert_eq!(c.len(), 29);
    }

    #[test]
    fn truncate_to_leaf() {
        let mut c = chain();
        let mut drbg = Drbg::from_u64(1);
        ChainMutation::TruncateToLeaf.apply(&mut c, &mut drbg);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn mutator_is_deterministic() {
        let mut m1 = Mutator::new(9, vec![]);
        let mut m2 = Mutator::new(9, vec![]);
        let mut c1 = chain();
        let mut c2 = chain();
        let l1 = m1.mutate(&mut c1, 5);
        let l2 = m2.mutate(&mut c2, 5);
        assert_eq!(l1, l2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn mutations_never_panic_on_tiny_lists() {
        let leaf = chain().remove(0);
        for seed in 0..20u64 {
            let mut m = Mutator::new(seed, vec![leaf.clone()]);
            let mut served = vec![leaf.clone()];
            m.mutate(&mut served, 8);
            let mut empty: Vec<Certificate> = Vec::new();
            m.mutate(&mut empty, 8);
        }
    }
}
