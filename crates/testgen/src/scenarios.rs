//! The paper's concrete case-study topologies.
//!
//! - Figure 2 (a–d): the four server-side topology examples;
//! - Figure 3: the assiste6.serpro.gov.br long-list case that trips
//!   GnuTLS's 16-certificate input limit (I-2);
//! - Figure 4: the moex.gov.tw multi-path case with an untrusted root
//!   that defeats non-backtracking clients (I-3);
//! - Figure 5: the DigiCert same-subject/same-KID candidate pair behind
//!   the validity-priority recommendation (§6.2).

use ccc_asn1::Time;
use ccc_netsim::AiaRepository;
use ccc_rootstore::RootStore;
use ccc_x509::{Certificate, CertificateBuilder, DistinguishedName};
use ccc_crypto::{Group, KeyPair};

/// A named served-list scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Short name ("figure2a", "figure4", …).
    pub name: &'static str,
    /// What the scenario demonstrates.
    pub description: &'static str,
    /// The domain the chain claims to serve.
    pub domain: String,
    /// The served certificate list.
    pub served: Vec<Certificate>,
}

/// Shared environment for the scenario set.
#[derive(Debug)]
pub struct ScenarioSet {
    /// Trust store with the trusted roots.
    pub store: RootStore,
    /// AIA repository (scenarios publish nothing by default).
    pub aia: AiaRepository,
    /// Simulated clock.
    pub now: Time,
    trusted_root: Certificate,
    trusted_root_kp: KeyPair,
    trusted_root_dn: DistinguishedName,
    gov_root: Certificate,
    gov_root_kp: KeyPair,
    gov_root_dn: DistinguishedName,
}

impl ScenarioSet {
    /// Build the environment (deterministic in `seed`).
    pub fn new(seed: u64) -> ScenarioSet {
        let g = Group::simulation_256();
        let mk = |label: &str| KeyPair::from_seed(g, format!("scenario/{seed}/{label}").as_bytes());
        let trusted_root_kp = mk("trusted-root");
        let trusted_root_dn = DistinguishedName::cn_o("Scenario Trusted Root", "chain-chaos");
        let trusted_root = CertificateBuilder::ca_profile(trusted_root_dn.clone())
            .validity(
                Time::from_ymd(2015, 1, 1).expect("literal date is valid"),
                Time::from_ymd(2040, 1, 1).expect("literal date is valid"),
            )
            .self_signed(&trusted_root_kp);
        let gov_root_kp = mk("gov-root");
        let gov_root_dn = DistinguishedName::cn_o("Scenario Gov Root", "gov.sim");
        let gov_root = CertificateBuilder::ca_profile(gov_root_dn.clone())
            .validity(
                Time::from_ymd(2015, 1, 1).expect("literal date is valid"),
                Time::from_ymd(2040, 1, 1).expect("literal date is valid"),
            )
            .self_signed(&gov_root_kp);
        let store = RootStore::new("scenario", vec![trusted_root.clone()]);
        ScenarioSet {
            store,
            aia: AiaRepository::empty(),
            now: Time::from_ymd(2024, 7, 1).expect("literal date is valid"),
            trusted_root,
            trusted_root_kp,
            trusted_root_dn,
            gov_root,
            gov_root_kp,
            gov_root_dn,
        }
    }

    fn intermediate(&self, cn: &str, key_label: &str) -> (Certificate, KeyPair, DistinguishedName) {
        let g = Group::simulation_256();
        let kp = KeyPair::from_seed(g, format!("scenario-int/{key_label}").as_bytes());
        let dn = DistinguishedName::cn_o(cn, "chain-chaos");
        let cert = CertificateBuilder::ca_profile(dn.clone()).issued_by(
            &kp.public,
            self.trusted_root_dn.clone(),
            &self.trusted_root_kp,
        );
        (cert, kp, dn)
    }

    fn leaf(&self, domain: &str, issuer_dn: &DistinguishedName, issuer_kp: &KeyPair) -> Certificate {
        let g = Group::simulation_256();
        let kp = KeyPair::from_seed(g, format!("scenario-leaf/{domain}").as_bytes());
        CertificateBuilder::leaf_profile(domain).issued_by(&kp.public, issuer_dn.clone(), issuer_kp)
    }

    /// Figure 2a: a compliant four-certificate chain
    /// `C0(leaf) ← C1 ← C2 ← C3(root)`.
    pub fn figure2a(&self) -> Scenario {
        let (i2, i2_kp, i2_dn) = self.intermediate("Fig2a CA 2", "fig2a-2");
        let g = Group::simulation_256();
        let i1_kp = KeyPair::from_seed(g, b"scenario-int/fig2a-1");
        let i1_dn = DistinguishedName::cn_o("Fig2a CA 1", "chain-chaos");
        let i1 = CertificateBuilder::ca_profile(i1_dn.clone()).issued_by(
            &i1_kp.public,
            i2_dn,
            &i2_kp,
        );
        let leaf = self.leaf("fig2a.sim", &i1_dn, &i1_kp);
        Scenario {
            name: "figure2a",
            description: "compliant chain: leaf, two intermediates, root, in issuance order",
            domain: "fig2a.sim".into(),
            served: vec![leaf, i1, i2, self.trusted_root.clone()],
        }
    }

    /// Figure 2b: the webcanny.com pattern — multiple stale leaves
    /// (irrelevant certificates), newest first.
    pub fn figure2b(&self) -> Scenario {
        let (i1, i1_kp, i1_dn) = self.intermediate("Fig2b CA", "fig2b-1");
        let g = Group::simulation_256();
        let mut leaves = Vec::new();
        for year in [2024i32, 2023, 2022, 2021, 2020] {
            let kp = KeyPair::from_seed(g, format!("scenario-leaf/fig2b/{year}").as_bytes());
            let leaf = CertificateBuilder::leaf_profile("fig2b.sim")
                .validity(
                    Time::from_ymd(year, 1, 1).expect("literal date is valid"),
                    Time::from_ymd(year + 1, 1, 1).expect("literal date is valid"),
                )
                .issued_by(&kp.public, i1_dn.clone(), &i1_kp);
            leaves.push(leaf);
        }
        let mut served = leaves;
        served.push(i1);
        Scenario {
            name: "figure2b",
            description: "five leaves for the same domain (only the newest relevant), stale \
                          leftovers from renewals",
            domain: "fig2b.sim".into(),
            served,
        }
    }

    /// Figure 2c: cross-signed multi-path — the USERTrust pattern. Two
    /// certificates share the subject/key of the intermediate's issuer;
    /// one is a root-store anchor child, the other a cross-sign. The
    /// cross certificate is deployed *before* the certificate it should
    /// follow, so one path is reversed.
    pub fn figure2c(&self) -> Scenario {
        let g = Group::simulation_256();
        // Shared "USERTrust" CA key, two certs: by trusted root (in list)
        // and cross-signed by the gov root (not trusted).
        let shared_kp = KeyPair::from_seed(g, b"scenario-int/fig2c-shared");
        let shared_dn = DistinguishedName::cn_o("Fig2c USERTrust Sim", "chain-chaos");
        let by_trusted = CertificateBuilder::ca_profile(shared_dn.clone()).issued_by(
            &shared_kp.public,
            self.trusted_root_dn.clone(),
            &self.trusted_root_kp,
        );
        let cross = CertificateBuilder::ca_profile(shared_dn.clone()).issued_by(
            &shared_kp.public,
            self.gov_root_dn.clone(),
            &self.gov_root_kp,
        );
        let i1_kp = KeyPair::from_seed(g, b"scenario-int/fig2c-1");
        let i1_dn = DistinguishedName::cn_o("Fig2c Issuing CA", "chain-chaos");
        let i1 = CertificateBuilder::ca_profile(i1_dn.clone()).issued_by(
            &i1_kp.public,
            shared_dn,
            &shared_kp,
        );
        let leaf = self.leaf("fig2c.sim", &i1_dn, &i1_kp);
        Scenario {
            name: "figure2c",
            description: "cross-signed intermediate creates two paths; the cross certificate is \
                          inserted before its sibling, reversing one path",
            domain: "fig2c.sim".into(),
            served: vec![leaf, i1, cross, by_trusted],
        }
    }

    /// Figure 2d: the archives.gov.tw pattern — the real chain plus a
    /// bundle of certificates from a second, unrelated hierarchy (with a
    /// duplicate).
    pub fn figure2d(&self) -> Scenario {
        let (i1, i1_kp, i1_dn) = self.intermediate("Fig2d CA", "fig2d-1");
        let leaf = self.leaf("fig2d.sim", &i1_dn, &i1_kp);
        // Foreign hierarchy under the gov root.
        let g = Group::simulation_256();
        let mut foreign = Vec::new();
        for i in 0..3 {
            let kp = KeyPair::from_seed(g, format!("scenario-int/fig2d-foreign-{i}").as_bytes());
            let dn = DistinguishedName::cn_o(format!("Fig2d TWCA Sub {i}"), "gov.sim");
            foreign.push(CertificateBuilder::ca_profile(dn).issued_by(
                &kp.public,
                self.gov_root_dn.clone(),
                &self.gov_root_kp,
            ));
        }
        let mut served = vec![leaf, i1, self.trusted_root.clone()];
        served.push(self.gov_root.clone());
        served.extend(foreign.iter().cloned());
        // Duplicate of the gov root (relabelled 4[1] in the paper's graph).
        served.push(self.gov_root.clone());
        Scenario {
            name: "figure2d",
            description: "primary chain plus an unrelated government hierarchy and a duplicated \
                          certificate",
            domain: "fig2d.sim".into(),
            served,
        }
    }

    /// Figure 3: the assiste6.serpro.gov.br pattern — the correct chain
    /// hides inside a 17-certificate list padded with irrelevant and
    /// duplicate certificates, exceeding GnuTLS's input limit of 16.
    pub fn figure3(&self) -> Scenario {
        let (i1, i1_kp, i1_dn) = self.intermediate("Fig3 Issuing CA", "fig3-1");
        let leaf = self.leaf("assiste6.serpro.sim", &i1_dn, &i1_kp);
        let g = Group::simulation_256();
        let mut served = vec![leaf];
        // Pad with 14 irrelevant certificates from the gov hierarchy
        // (with duplicates), then the needed intermediate near the end —
        // mirroring the paper's path 8->1->16->0 shape.
        let mut junk = Vec::new();
        for i in 0..7 {
            let kp = KeyPair::from_seed(g, format!("scenario-int/fig3-junk-{i}").as_bytes());
            let dn = DistinguishedName::cn_o(format!("Fig3 Gov Sub {i}"), "gov.sim");
            junk.push(CertificateBuilder::ca_profile(dn).issued_by(
                &kp.public,
                self.gov_root_dn.clone(),
                &self.gov_root_kp,
            ));
        }
        for i in 0..14 {
            served.push(junk[i % junk.len()].clone());
        }
        served.push(i1); // position 15
        served.push(self.trusted_root.clone()); // position 16 → length 17
        Scenario {
            name: "figure3",
            description: "17-certificate list whose valid path needs the certificate at \
                          position 15; GnuTLS rejects lists longer than 16",
            domain: "assiste6.serpro.sim".into(),
            served,
        }
    }

    /// Figure 4: the moex.gov.tw pattern — the terminal intermediate is
    /// cross-signed by an untrusted government root (whose certificate is
    /// served FIRST among the issuer candidates) and by the trusted root
    /// (served last). Non-backtracking clients walk into the government
    /// branch and fail; backtracking clients recover.
    pub fn figure4(&self) -> Scenario {
        let g = Group::simulation_256();
        let shared_kp = KeyPair::from_seed(g, b"scenario-int/fig4-shared");
        let shared_dn = DistinguishedName::cn_o("Fig4 Cross CA", "gov.sim");
        let by_gov = CertificateBuilder::ca_profile(shared_dn.clone()).issued_by(
            &shared_kp.public,
            self.gov_root_dn.clone(),
            &self.gov_root_kp,
        );
        let by_trusted = CertificateBuilder::ca_profile(shared_dn.clone()).issued_by(
            &shared_kp.public,
            self.trusted_root_dn.clone(),
            &self.trusted_root_kp,
        );
        let leaf = self.leaf("moex.gov.sim", &shared_dn, &shared_kp);
        Scenario {
            name: "figure4",
            description: "three candidate paths; the untrusted government branch comes first, \
                          so only clients with backtracking find the trusted path",
            domain: "moex.gov.sim".into(),
            served: vec![leaf, by_gov, self.gov_root.clone(), by_trusted],
        }
    }

    /// Figure 5: two candidate issuers with identical subject DN and KID,
    /// differing only in validity (the DigiCert TLS RSA SHA256 2020 CA1
    /// example). Returns the scenario plus the two candidates (A newer,
    /// B older) so callers can check which one a client selects.
    pub fn figure5(&self) -> (Scenario, Certificate, Certificate) {
        let g = Group::simulation_256();
        let shared_kp = KeyPair::from_seed(g, b"scenario-int/fig5-shared");
        let shared_dn = DistinguishedName::cn_o("DigiCert TLS Sim 2020 CA1", "chain-chaos");
        let candidate_a = CertificateBuilder::ca_profile(shared_dn.clone())
            .validity(
                Time::from_ymd(2021, 4, 14).expect("literal date is valid"),
                Time::from_ymd(2031, 4, 13).expect("literal date is valid"),
            )
            .issued_by(&shared_kp.public, self.trusted_root_dn.clone(), &self.trusted_root_kp);
        let candidate_b = CertificateBuilder::ca_profile(shared_dn.clone())
            .validity(
                Time::from_ymd(2020, 9, 24).expect("literal date is valid"),
                Time::from_ymd(2030, 9, 23).expect("literal date is valid"),
            )
            .issued_by(&shared_kp.public, self.trusted_root_dn.clone(), &self.trusted_root_kp);
        let leaf = self.leaf("fig5.sim", &shared_dn, &shared_kp);
        let scenario = Scenario {
            name: "figure5",
            description: "two issuer candidates identical except validity; the newer one \
                          (candidate A) should be preferred",
            domain: "fig5.sim".into(),
            served: vec![leaf, candidate_b.clone(), candidate_a.clone()],
        };
        (scenario, candidate_a, candidate_b)
    }

    /// The untrusted government root (exposed for assertions).
    pub fn gov_root(&self) -> &Certificate {
        &self.gov_root
    }

    /// The trusted root (exposed for assertions).
    pub fn trusted_root(&self) -> &Certificate {
        &self.trusted_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_core::builder::{BuildContext, ClientError};
    use ccc_core::clients::ClientKind;
    use ccc_core::topology::IssuanceChecker;
    use ccc_core::{analyze_order, CompletenessAnalyzer};

    fn ctx<'a>(
        set: &'a ScenarioSet,
        checker: &'a IssuanceChecker,
    ) -> BuildContext<'a> {
        BuildContext {
            store: &set.store,
            aia: Some(&set.aia),
            cache: &[],
            now: set.now,
            checker,
        }
    }

    #[test]
    fn figure2a_is_compliant() {
        let set = ScenarioSet::new(5);
        let s = set.figure2a();
        let checker = IssuanceChecker::new();
        let order = analyze_order(&s.served, &checker);
        assert!(order.is_compliant(), "{order:?}");
        let analyzer = CompletenessAnalyzer::new(&checker, &set.store, Some(&set.aia));
        assert_eq!(
            analyzer.analyze(&s.served).completeness,
            ccc_core::Completeness::CompleteWithRoot
        );
    }

    #[test]
    fn figure2b_has_irrelevant_stale_leaves() {
        let set = ScenarioSet::new(5);
        let s = set.figure2b();
        let checker = IssuanceChecker::new();
        let order = analyze_order(&s.served, &checker);
        assert!(order.has_irrelevant());
        assert_eq!(order.irrelevant, 4, "four stale leaves");
        assert!(!order.has_duplicates());
    }

    #[test]
    fn figure2c_has_multiple_paths() {
        let set = ScenarioSet::new(5);
        let s = set.figure2c();
        let checker = IssuanceChecker::new();
        let order = analyze_order(&s.served, &checker);
        assert!(order.has_multiple_paths());
        assert_eq!(order.path_count, 2);
    }

    #[test]
    fn figure2d_has_irrelevant_and_duplicates() {
        let set = ScenarioSet::new(5);
        let s = set.figure2d();
        let checker = IssuanceChecker::new();
        let order = analyze_order(&s.served, &checker);
        assert!(order.has_irrelevant());
        assert!(order.has_duplicates());
        assert_eq!(order.duplicates.root, 1, "gov root duplicated once");
    }

    #[test]
    fn figure3_trips_only_gnutls() {
        let set = ScenarioSet::new(5);
        let s = set.figure3();
        assert_eq!(s.served.len(), 17);
        let checker = IssuanceChecker::new();
        let gnutls = ClientKind::GnuTls.engine().process(&s.served, &ctx(&set, &checker));
        assert_eq!(gnutls.verdict, Err(ClientError::TooManyCertificates));
        let openssl = ClientKind::OpenSsl.engine().process(&s.served, &ctx(&set, &checker));
        assert!(openssl.accepted(), "{:?}", openssl.verdict);
        let chrome = ClientKind::Chrome.engine().process(&s.served, &ctx(&set, &checker));
        assert!(chrome.accepted());
    }

    #[test]
    fn figure4_needs_backtracking() {
        let set = ScenarioSet::new(5);
        let s = set.figure4();
        let checker = IssuanceChecker::new();
        let openssl = ClientKind::OpenSsl.engine().process(&s.served, &ctx(&set, &checker));
        assert!(!openssl.accepted(), "greedy client walks into gov branch");
        let capi = ClientKind::CryptoApi.engine().process(&s.served, &ctx(&set, &checker));
        assert!(capi.accepted(), "{:?}", capi.verdict);
        // The recovered path ends at the trusted root.
        assert_eq!(capi.path.last().unwrap(), set.trusted_root());

        // MbedTLS's forward scan commits to whichever cross certificate
        // comes first — the paper's observation that its "correct" moex
        // path was an accident of ordering. With the gov branch first it
        // fails; swap the branches and it succeeds.
        let mbed = ClientKind::MbedTls.engine().process(&s.served, &ctx(&set, &checker));
        assert!(!mbed.accepted());
        let mut swapped = s.served.clone();
        swapped.swap(1, 3); // by_trusted first, by_gov last
        let mbed2 = ClientKind::MbedTls.engine().process(&swapped, &ctx(&set, &checker));
        assert!(mbed2.accepted(), "{:?}", mbed2.verdict);
    }

    #[test]
    fn figure5_validity_preference_observed() {
        let set = ScenarioSet::new(5);
        let (s, newer, older) = set.figure5();
        let checker = IssuanceChecker::new();
        // VP2 client prefers the newer candidate even though the older one
        // comes first in the list.
        let chrome = ClientKind::Chrome.engine().process(&s.served, &ctx(&set, &checker));
        assert!(chrome.accepted());
        assert!(chrome.path.contains(&newer));
        assert!(!chrome.path.contains(&older));
        // VP1 client takes the first valid (the older one).
        let openssl = ClientKind::OpenSsl.engine().process(&s.served, &ctx(&set, &checker));
        assert!(openssl.accepted());
        assert!(openssl.path.contains(&older));
    }
}
