//! Test-case and corpus generation for chain-chaos.
//!
//! - [`capability`]: the paper's nine chain-construction capability tests
//!   (Table 2) and the machinery to evaluate any [`ccc_core::ChainEngine`]
//!   against them, reproducing Table 9;
//! - [`scenarios`]: the paper's concrete case studies — Figure 2's four
//!   topologies, Figure 3 (GnuTLS long list), Figure 4 (backtracking),
//!   Figure 5 (validity priority candidates);
//! - [`mutate`]: a frankencert-style chain mutation engine for
//!   property-based and fuzz-flavoured differential testing;
//! - [`corpus`]: the calibrated Tranco-like population generator whose
//!   structural-defect mix matches the paper's measured marginals.

pub mod capability;
pub mod corpus;
pub mod mutate;
pub mod scenarios;

pub use capability::{CapabilityRow, CapabilitySuite, KpClass, MaxLen, VpClass};
pub use corpus::{Corpus, CorpusSpec, DomainObservation, ObservationStore, PlannedDefect};
pub use mutate::{ChainMutation, Mutator};
