//! Calibrated Tranco-like corpus generator.
//!
//! Substitutes for the paper's ZGrab2 scan of the Tranco Top 1M: a
//! deterministic population of (domain, served certificate list)
//! observations whose structural-defect mix matches the paper's measured
//! marginals. Defects are not stamped on directly — each observation is
//! produced by running a sampled CA issuance pipeline (Table 6), an
//! administrator behaviour, and an HTTP-server deployment model (Table 4),
//! so the Table 10/11 attributions are causal in the simulation.
//!
//! All sampling is per-rank forked from the master seed, so observations
//! can be generated independently and streamed (a 1M-domain corpus never
//! needs to be resident in memory).

use ccc_asn1::Time;
use ccc_crypto::{Drbg, Group, KeyPair};
use ccc_netsim::admin::{assemble, AdminBehavior};
use ccc_netsim::ca::CaProfile;
use ccc_netsim::httpserver::{DeployError, HttpServerKind};
use ccc_netsim::AiaRepository;
use ccc_rootstore::{CaUniverse, RootPrograms};
use ccc_x509::{Certificate, CertificateBuilder, DistinguishedName};
use std::collections::HashMap;

/// The simulated scan date (all validity sampling is relative to this).
pub fn scan_time() -> Time {
    Time::from_ymd(2024, 3, 15).expect("valid date")
}

/// Per-CA defect rates, calibrated to the paper's Table 11 (rates are
/// fractions of that CA's issuance volume).
#[derive(Clone, Copy, Debug)]
pub struct CaDefectRates {
    /// Duplicate certificates.
    pub duplicate: f64,
    /// Irrelevant certificates.
    pub irrelevant: f64,
    /// Multiple paths (cross-signing deployments).
    pub multipath: f64,
    /// Reversed sequences.
    pub reversed: f64,
    /// Incomplete chains.
    pub incomplete: f64,
}

/// (profile, rates) for the nine corpus CA buckets (Table 11's eight rows
/// plus the long tail that makes aggregates match Table 5).
pub fn ca_population() -> Vec<(CaProfile, CaDefectRates)> {
    let mut profiles = CaProfile::all();
    profiles.push(CaProfile::other_cas());
    let rates = [
        // Let's Encrypt: 400,737 issued.
        CaDefectRates { duplicate: 0.00813, irrelevant: 0.00100, multipath: 0.000127, reversed: 0.000202, incomplete: 0.00288 },
        // Digicert: 60,894.
        CaDefectRates { duplicate: 0.01266, irrelevant: 0.01192, multipath: 0.000099, reversed: 0.02851, incomplete: 0.03687 },
        // Sectigo: 48,042.
        CaDefectRates { duplicate: 0.01330, irrelevant: 0.01032, multipath: 0.00279, reversed: 0.05281, incomplete: 0.04159 },
        // ZeroSSL: 8,219.
        CaDefectRates { duplicate: 0.01046, irrelevant: 0.00426, multipath: 0.0, reversed: 0.000243, incomplete: 0.01460 },
        // GoGetSSL: 1,617 (reversal comes mechanically from its reversed
        // bundle + naive merges, not from a planned rate).
        CaDefectRates { duplicate: 0.02535, irrelevant: 0.02103, multipath: 0.0, reversed: 0.0, incomplete: 0.06926 },
        // TAIWAN-CA: 492.
        CaDefectRates { duplicate: 0.01423, irrelevant: 0.01626, multipath: 0.0, reversed: 0.09553, incomplete: 0.41870 },
        // cyber_Folks: 142 (mechanism-driven reversal, see GoGetSSL).
        CaDefectRates { duplicate: 0.02113, irrelevant: 0.05634, multipath: 0.0, reversed: 0.0, incomplete: 0.05634 },
        // Trustico: 108 (mechanism-driven reversal, see GoGetSSL).
        CaDefectRates { duplicate: 0.00926, irrelevant: 0.00926, multipath: 0.0, reversed: 0.0, incomplete: 0.03704 },
        // Other CAs: 386,085 — rates chosen so Table 5 totals match.
        CaDefectRates { duplicate: 0.00302, irrelevant: 0.00343, multipath: 0.000124, reversed: 0.01006, incomplete: 0.01616 },
    ];
    profiles.into_iter().zip(rates).collect()
}

/// The planned (ground-truth) defect of an observation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum PlannedDefect {
    /// Compliant deployment.
    None,
    /// Duplicate leaf certificate (leaf pasted into the chain file).
    DuplicateLeaf,
    /// Duplicated bundle (duplicate intermediates/roots; large `true`
    /// variants model the ns3.link copy-paste multiplication).
    DuplicateBundle {
        /// Whether this is a pathological many-copy deployment.
        huge: bool,
    },
    /// Stale leaves from previous renewals left in the file.
    StaleLeaves,
    /// A second, unrelated hierarchy served alongside (archives.gov.tw).
    ForeignChain,
    /// An unrelated self-signed root appended.
    UnrelatedRoot,
    /// Cross-signed deployment with more than one candidate path.
    MultiPath,
    /// Reversed issuance order (reseller bundle merged as delivered).
    Reversed,
    /// Missing intermediates (bundle never deployed).
    Incomplete,
    /// Chain served for a different hostname (leaf mismatched).
    WrongHost,
    /// Appliance/test self-signed certificate (Plesk/localhost style).
    TestCertificate,
    /// Leaf already expired at scan time.
    ExpiredLeaf,
}

/// One (domain, served list) observation.
#[derive(Clone, Debug)]
pub struct DomainObservation {
    /// Tranco-like rank (0-based).
    pub rank: usize,
    /// Queried domain.
    pub domain: String,
    /// Issuing CA bucket name.
    pub ca: &'static str,
    /// HTTP server fingerprint bucket.
    pub server: HttpServerKind,
    /// What the TLS handshake returns.
    pub served: Vec<Certificate>,
    /// Ground truth for calibration checks.
    pub planned: PlannedDefect,
    /// Whether the deployed terminal intermediate lacks AKID.
    pub terminal_akid_absent: bool,
}

/// Corpus generation parameters.
#[derive(Clone, Debug)]
pub struct CorpusSpec {
    /// Master seed.
    pub seed: u64,
    /// Number of domains.
    pub domains: usize,
    /// Leaf keypair pool size (keys are reused for speed; uniqueness
    /// comes from DN/serial).
    pub leaf_key_pool: usize,
    /// Fraction of deployments using the no-AKID intermediate variant
    /// (drives the paper's Table 8 no-AIA incompleteness, ~24.9%).
    pub terminal_akid_absent_rate: f64,
    /// Probability a domain is served under the Mozilla/Chrome-excluded
    /// regional root (paper: 66 / 906,336).
    pub regional_mz_rate: f64,
    /// Same for the Microsoft-excluded root (5 / 906,336).
    pub regional_ms_rate: f64,
    /// Same for the Apple-excluded root (4 / 906,336).
    pub regional_ap_rate: f64,
    /// Leaf served for the wrong hostname (Table 3: 6.9%).
    pub wrong_host_rate: f64,
    /// Appliance/test certificates (Table 3 "Other": 0.6%).
    pub test_cert_rate: f64,
    /// Expired-at-scan leaf rate (drives date_invalid differentials).
    pub expired_leaf_rate: f64,
    /// Fraction of otherwise-compliant deployments that append the root
    /// certificate (Table 7: 8.7% of chains include the root).
    pub root_included_rate: f64,
    /// Chaos mode: overall AIA fault rate for the corpus's
    /// [`FaultPlan`](ccc_netsim::FaultPlan) (0.0 = the zero-fault plan,
    /// which leaves every existing analysis byte-identical).
    pub chaos_fault_rate: f64,
}

impl CorpusSpec {
    /// Paper-calibrated defaults at a given scale.
    pub fn calibrated(seed: u64, domains: usize) -> CorpusSpec {
        CorpusSpec {
            seed,
            domains,
            leaf_key_pool: 64,
            terminal_akid_absent_rate: 0.249,
            regional_mz_rate: 66.0 / 906_336.0,
            regional_ms_rate: 5.0 / 906_336.0,
            regional_ap_rate: 4.0 / 906_336.0,
            wrong_host_rate: 0.069,
            test_cert_rate: 0.006,
            expired_leaf_rate: 0.005,
            root_included_rate: 0.066,
            chaos_fault_rate: 0.0,
        }
    }

    /// The calibrated spec with a non-zero chaos fault rate.
    pub fn chaos(seed: u64, domains: usize, fault_rate: f64) -> CorpusSpec {
        CorpusSpec {
            chaos_fault_rate: fault_rate,
            ..CorpusSpec::calibrated(seed, domains)
        }
    }
}

/// The generated corpus: environment + per-rank observation factory.
#[derive(Debug)]
pub struct Corpus {
    /// The CA universe all chains are issued from.
    pub universe: CaUniverse,
    /// The four root programs + union.
    pub programs: RootPrograms,
    /// The AIA repository with all universe publications.
    pub aia: AiaRepository,
    /// The generation parameters.
    pub spec: CorpusSpec,
    population: Vec<(CaProfile, CaDefectRates)>,
    ca_weights: Vec<f64>,
    leaf_keys: Vec<KeyPair>,
    /// One sub-CA per universe root (issued by intermediate 0), used for
    /// the deep reversed chains (paper's 1->2->0 structure, I-1) and the
    /// two-intermediates-missing incompletes. Fields: (DN, keypair,
    /// certificate, AIA publication URI).
    sub_cas: Vec<(ccc_x509::DistinguishedName, KeyPair, Certificate, String)>,
    /// Memoized CA key material: issuing-intermediate key pairs keyed by
    /// subject DN. Built once at construction so the per-rank hot paths
    /// (`intermediate_keypair` in stale-leaf / incomplete generation)
    /// never re-scan the universe or re-derive keys from seed.
    int_keys_by_subject: HashMap<DistinguishedName, KeyPair>,
    /// Root index keyed by root subject DN: replaces the per-rank
    /// whole-certificate equality scans over `universe.roots`.
    root_index_by_subject: HashMap<DistinguishedName, usize>,
    master: Drbg,
}

/// Overall HTTP-server market shares used for sampling (approximate
/// Tranco-wide shares; Table 10's distribution then emerges from the
/// defect coupling below).
const SERVER_SHARES: [(HttpServerKind, f64); 8] = [
    (HttpServerKind::ApacheOld, 0.08),
    (HttpServerKind::ApacheNew, 0.20),
    (HttpServerKind::Nginx, 0.32),
    (HttpServerKind::AzureAppGateway, 0.02),
    (HttpServerKind::Cloudflare, 0.15),
    (HttpServerKind::Iis, 0.04),
    (HttpServerKind::AwsElb, 0.03),
    (HttpServerKind::Other, 0.16),
];

/// Server-conditioned multiplier on the duplicate-certificate rate
/// (Apache's two-file layout invites leaf duplication; Azure/IIS check).
fn duplicate_multiplier(server: HttpServerKind) -> f64 {
    match server {
        HttpServerKind::ApacheOld => 3.5,
        HttpServerKind::ApacheNew => 1.6,
        HttpServerKind::AwsElb => 2.6,
        HttpServerKind::Nginx => 0.6,
        HttpServerKind::Cloudflare => 0.3,
        HttpServerKind::AzureAppGateway => 0.4,
        HttpServerKind::Iis => 0.7,
        HttpServerKind::Other => 0.9,
    }
}

impl Corpus {
    /// Build the environment for a spec.
    pub fn new(spec: CorpusSpec) -> Corpus {
        let universe = CaUniverse::default_with_seed(spec.seed);
        let programs = RootPrograms::from_universe(&universe);
        let aia = AiaRepository::new(universe.aia_publications());
        let population = ca_population();
        let ca_weights: Vec<f64> = population.iter().map(|(p, _)| p.market_weight).collect();
        let master = Drbg::from_u64(spec.seed).fork("corpus");
        let g = Group::simulation_256();
        let leaf_keys: Vec<KeyPair> = (0..spec.leaf_key_pool.max(1))
            .map(|i| KeyPair::from_seed(g, format!("corpus-leaf-key/{}/{i}", spec.seed).as_bytes()))
            .collect();
        let mut aia = aia;
        let sub_cas: Vec<(ccc_x509::DistinguishedName, KeyPair, Certificate, String)> = universe
            .roots
            .iter()
            .enumerate()
            .map(|(i, root)| {
                let kp = KeyPair::from_seed(
                    g,
                    format!("corpus-subca/{}/{i}", spec.seed).as_bytes(),
                );
                let dn = ccc_x509::DistinguishedName::cn_o(
                    format!("{} Sub CA", root.name),
                    root.name.clone(),
                );
                let int = &root.intermediates[0];
                let cert = CertificateBuilder::ca_profile(dn.clone())
                    .aia_ca_issuers(int.aia_uri.clone())
                    .issued_by(&kp.public, int.cert.subject().clone(), &int.keypair);
                let uri = format!("http://aia.sim/subca/{i}.crt");
                aia.publish(uri.clone(), cert.clone());
                (dn, kp, cert, uri)
            })
            .collect();
        let mut int_keys_by_subject = HashMap::new();
        let mut root_index_by_subject = HashMap::new();
        for (ri, root) in universe.roots.iter().enumerate() {
            root_index_by_subject.insert(root.cert.subject().clone(), ri);
            for int in &root.intermediates {
                int_keys_by_subject
                    .insert(int.cert.subject().clone(), int.keypair.clone());
            }
        }
        Corpus {
            universe,
            programs,
            aia,
            spec,
            population,
            ca_weights,
            leaf_keys,
            sub_cas,
            int_keys_by_subject,
            root_index_by_subject,
            master,
        }
    }

    /// The Firefox-style intermediate cache: intermediates of the high
    /// volume CAs (the preloaded/previously-seen population), excluding
    /// regional and long-tail CAs — which is exactly why Firefox shows
    /// SEC_ERROR_UNKNOWN_ISSUER on rare-CA chains in the paper.
    pub fn intermediate_cache(&self) -> Vec<Certificate> {
        let mut cache = Vec::new();
        for ca_idx in 0..4 {
            // Let's Encrypt, DigiCert, Sectigo, ZeroSSL.
            for int in &self.universe.roots[ca_idx].intermediates {
                cache.push(int.cert.clone());
                cache.push(int.cert_no_akid.clone());
            }
        }
        cache
    }

    /// The corpus's fault plan at its spec's `chaos_fault_rate`, seeded
    /// from the master corpus seed so the whole chaos run is one seed.
    pub fn fault_plan(&self) -> ccc_netsim::FaultPlan {
        self.fault_plan_with_rate(self.spec.chaos_fault_rate)
    }

    /// A fault plan at an explicit rate (used by the chaos table to sweep
    /// fault rates over one corpus).
    pub fn fault_plan_with_rate(&self, rate: f64) -> ccc_netsim::FaultPlan {
        if rate <= 0.0 {
            ccc_netsim::FaultPlan::zero(self.spec.seed)
        } else {
            ccc_netsim::FaultPlan::with_fault_rate(self.spec.seed, rate)
        }
    }

    /// Generate the observation for `rank` (deterministic, independent of
    /// other ranks).
    pub fn observation(&self, rank: usize) -> DomainObservation {
        let mut drbg = self.master.fork(&format!("domain/{rank}"));
        let domain = format!("domain{rank}.sim");

        // Special populations first.
        if drbg.chance(self.spec.test_cert_rate) {
            return self.test_cert_observation(rank, &domain, &mut drbg);
        }

        // CA bucket (with rare regional-root overrides for Table 8).
        let (profile, rates, regional_root) = self.sample_ca(&mut drbg);
        let ca_name = profile.name;
        let server = self.sample_server(&mut drbg);

        // Defect plan.
        let planned = self.sample_defect(&rates, server, &mut drbg);

        // Validity window: issued 1–10 months before the scan.
        let (not_before, not_after) = if planned == PlannedDefect::ExpiredLeaf {
            let start = scan_time().plus_days(-(400 + drbg.below(200) as i64));
            (start, start.plus_days(365))
        } else {
            let age_days = 30 + drbg.below(270) as i64;
            let start = scan_time().plus_days(-age_days);
            let duration = if drbg.chance(0.6) { 90 } else { 365 };
            // Re-roll age if it would have expired already.
            let start = if age_days >= duration {
                scan_time().plus_days(-(duration / 2))
            } else {
                start
            };
            (start, start.plus_days(duration))
        };

        let akid_absent = drbg.chance(self.spec.terminal_akid_absent_rate);
        let leaf_kp = &self.leaf_keys[drbg.below(self.leaf_keys.len() as u64) as usize];
        let int_idx = drbg.below(4) as usize;

        // Issue through the CA pipeline (or the regional pseudo-CA).
        let issue_domain = if planned == PlannedDefect::WrongHost {
            format!("alt{rank}.sim")
        } else {
            domain.clone()
        };
        let bundle = match regional_root {
            Some(root_idx) => {
                // Regional CAs behave like a typical manual CA.
                let mut p = profile.clone();
                p.universe_root = root_idx;
                p.issue_with_keypair(
                    &self.universe,
                    int_idx,
                    &issue_domain,
                    not_before,
                    not_after,
                    leaf_kp,
                    false, // regional chains keep AKID so Table 8's
                           // with-AIA diffs isolate store membership
                )
            }
            None => profile.issue_with_keypair(
                &self.universe,
                int_idx,
                &issue_domain,
                not_before,
                not_after,
                leaf_kp,
                akid_absent,
            ),
        };

        // Map the plan to an administrator behaviour + assembly. A plan
        // the server's upload checks reject is *realized* as a compliant
        // deployment (the admin fixes it), so `planned` is downgraded.
        let (mut served, rejected_by_server) = self.deploy(rank, &bundle, planned, server, &mut drbg);
        let planned = if rejected_by_server {
            PlannedDefect::None
        } else {
            planned
        };
        // Some administrators append the root certificate; compliant
        // order (leaf, intermediates, root) is preserved, so this only
        // moves chains between Table 7's "with root" and "without root"
        // rows.
        if matches!(
            planned,
            PlannedDefect::None | PlannedDefect::WrongHost | PlannedDefect::ExpiredLeaf
        ) && served.last() == Some(&bundle.intermediate)
            && drbg.chance(self.spec.root_included_rate)
        {
            let root_cert = self.universe.roots[self.root_index(&bundle.root)].cert.clone();
            served.push(root_cert);
        }

        DomainObservation {
            rank,
            domain,
            ca: ca_name,
            server,
            served,
            planned,
            terminal_akid_absent: akid_absent && regional_root.is_none(),
        }
    }

    fn sample_ca(&self, drbg: &mut Drbg) -> (CaProfile, CaDefectRates, Option<usize>) {
        // Regional roots (Table 8 drivers) override the market sampling.
        let regional = if drbg.chance(self.spec.regional_mz_rate) {
            Some(10) // "Regional Root Sim MZ"
        } else if drbg.chance(self.spec.regional_ms_rate) {
            Some(11)
        } else if drbg.chance(self.spec.regional_ap_rate) {
            Some(12)
        } else {
            None
        };
        if let Some(root_idx) = regional {
            // Regional CAs use a Digicert-like manual profile and compliant
            // behaviour (their effect is trust-store membership, not
            // structure).
            let (profile, _) = &self.population[1];
            let mut p = profile.clone();
            p.name = match root_idx {
                10 => "Regional (MZ-excluded)",
                11 => "Regional (MS-excluded)",
                _ => "Regional (AP-excluded)",
            };
            return (
                p,
                CaDefectRates {
                    duplicate: 0.0,
                    irrelevant: 0.0,
                    multipath: 0.0,
                    reversed: 0.0,
                    incomplete: 0.0,
                },
                Some(root_idx),
            );
        }
        let idx = drbg.weighted_index(&self.ca_weights);
        let (profile, rates) = &self.population[idx];
        (profile.clone(), *rates, None)
    }

    fn sample_server(&self, drbg: &mut Drbg) -> HttpServerKind {
        let weights: Vec<f64> = SERVER_SHARES.iter().map(|(_, w)| *w).collect();
        SERVER_SHARES[drbg.weighted_index(&weights)].0
    }

    fn sample_defect(
        &self,
        rates: &CaDefectRates,
        server: HttpServerKind,
        drbg: &mut Drbg,
    ) -> PlannedDefect {
        // Leaf-identity overlays come first (independent of chain shape).
        if drbg.chance(self.spec.wrong_host_rate) {
            return PlannedDefect::WrongHost;
        }
        if drbg.chance(self.spec.expired_leaf_rate) {
            return PlannedDefect::ExpiredLeaf;
        }
        // Structural defects, at the CA's calibrated rates (duplicates
        // additionally coupled to the server's file layout).
        let dup_rate = rates.duplicate * duplicate_multiplier(server);
        if drbg.chance(dup_rate) {
            // Paper split: ~72% duplicate leaves, ~28% bundle copies, a
            // handful pathological.
            if drbg.chance(0.72) {
                return PlannedDefect::DuplicateLeaf;
            }
            return PlannedDefect::DuplicateBundle {
                huge: drbg.chance(0.004),
            };
        }
        if drbg.chance(rates.reversed) {
            return PlannedDefect::Reversed;
        }
        if drbg.chance(rates.incomplete) {
            return PlannedDefect::Incomplete;
        }
        if drbg.chance(rates.irrelevant) {
            // Paper split of irrelevant kinds: stale leaves 444, foreign
            // chains 840, unrelated roots 225 (+ misc).
            let pick = drbg.weighted_index(&[0.35, 0.5, 0.15]);
            return match pick {
                0 => PlannedDefect::StaleLeaves,
                1 => PlannedDefect::ForeignChain,
                _ => PlannedDefect::UnrelatedRoot,
            };
        }
        if drbg.chance(rates.multipath) {
            return PlannedDefect::MultiPath;
        }
        PlannedDefect::None
    }

    /// Assemble and deploy, honouring server-side checks (a rejected
    /// upload falls back to guided, compliant deployment — the mechanism
    /// by which Azure-style validation suppresses defects in Table 10).
    fn deploy(
        &self,
        rank: usize,
        bundle: &ccc_netsim::ca::IssuedBundle,
        planned: PlannedDefect,
        server: HttpServerKind,
        drbg: &mut Drbg,
    ) -> (Vec<Certificate>, bool) {
        let behavior = match planned {
            PlannedDefect::None | PlannedDefect::WrongHost | PlannedDefect::ExpiredLeaf => {
                // How often administrators merge files verbatim instead of
                // following the guide. For CAs that deliver a REVERSED
                // ca-bundle this is exactly the paper's Table 11 reversed
                // rate (the verbatim merge IS the reversal mechanism);
                // elsewhere a verbatim merge of compliant files is
                // harmless, so the rate only affects root inclusion.
                let naive_rate = match bundle.profile_name {
                    "GoGetSSL" => 0.084,
                    "cyber_Folks S.A." => 0.66,
                    "Trustico" => 0.67,
                    _ => 0.3,
                };
                if bundle.automated || !drbg.chance(naive_rate) {
                    AdminBehavior::FollowGuide
                } else {
                    AdminBehavior::NaiveMerge
                }
            }
            PlannedDefect::DuplicateLeaf => AdminBehavior::LeafInChainFile,
            PlannedDefect::DuplicateBundle { huge } => {
                let times = if huge {
                    10 + drbg.below(6) as usize
                } else {
                    1 + drbg.below(2) as usize
                };
                AdminBehavior::DuplicateBundle(times)
            }
            PlannedDefect::StaleLeaves => {
                let count = 1 + drbg.below(4) as usize;
                let mut old = Vec::with_capacity(count);
                for i in 0..count {
                    let age_years = (i + 1) as i64;
                    let start = scan_time().plus_days(-365 * age_years - 40);
                    let kp = &self.leaf_keys[drbg.below(self.leaf_keys.len() as u64) as usize];
                    let old_leaf = CertificateBuilder::leaf_profile(&bundle.domain)
                        .validity(start, start.plus_days(365))
                        .issued_by(
                            &kp.public,
                            bundle.intermediate.subject().clone(),
                            // Same issuing CA re-signed older leaves: reuse
                            // the intermediate key through the universe.
                            self.intermediate_keypair(bundle),
                        );
                    old.push(old_leaf);
                }
                AdminBehavior::StaleLeaves(old)
            }
            PlannedDefect::ForeignChain => {
                let foreign = self.foreign_chain(rank, drbg);
                AdminBehavior::AppendForeignChain(foreign)
            }
            PlannedDefect::UnrelatedRoot => {
                let gov_idx = self.universe.roots.len() - 2; // "Sim Gov Root"
                AdminBehavior::AppendForeignChain(vec![self.universe.roots[gov_idx].cert.clone()])
            }
            PlannedDefect::MultiPath => {
                // Custom assembly below.
                AdminBehavior::FollowGuide
            }
            PlannedDefect::Reversed => AdminBehavior::NaiveMerge,
            PlannedDefect::Incomplete => AdminBehavior::DropBundle,
            PlannedDefect::TestCertificate => unreachable!("handled earlier"),
        };

        // Multi-path gets a bespoke served list: leaf, original issuer,
        // the cross twin (cross inserted after, occasionally before —
        // the paper found most cross insertions reversed).
        if planned == PlannedDefect::MultiPath {
            return (self.multipath_list(bundle, drbg), false);
        }

        // A small share of reversed chains are DEEP (two intermediates in
        // reversed order, the paper's 1->2->0 shape): these are the chains
        // that actually defeat forward-only construction (I-1), because
        // the trust store cannot rescue an out-of-position intermediate.
        if planned == PlannedDefect::Reversed && drbg.chance(0.006) {
            return (self.deep_reversed_list(bundle, drbg), false);
        }

        // Incomplete chains subdivide per the paper's AIA findings:
        // ~94.5% completable via AIA (of which ~28% miss more than one
        // intermediate), ~4.8% with no AIA field at all, ~0.7% with a
        // dead AIA URI.
        if planned == PlannedDefect::Incomplete {
            let variant = drbg.weighted_index(&[0.68, 0.265, 0.048, 0.007]);
            if variant != 0 {
                let kp = &self.leaf_keys[drbg.below(self.leaf_keys.len() as u64) as usize];
                let mut b = CertificateBuilder::leaf_profile(&bundle.domain).validity(
                    bundle.leaf.validity().not_before,
                    bundle.leaf.validity().not_after,
                );
                if variant == 1 {
                    // Two missing intermediates: leaf under the sub-CA,
                    // neither the sub-CA nor the intermediate served.
                    let root_idx = self.root_index(&bundle.root);
                    let (sub_dn, sub_kp, _, sub_uri) = &self.sub_cas[root_idx];
                    let leaf = b
                        .aia_ca_issuers(sub_uri.clone())
                        .issued_by(&kp.public, sub_dn.clone(), sub_kp);
                    return (vec![leaf], false);
                }
                if variant == 3 {
                    b = b.aia_ca_issuers(format!("http://aia.sim/dead/{rank}.crt"));
                }
                let int_kp = self.intermediate_keypair(bundle);
                let leaf =
                    b.issued_by(&kp.public, bundle.intermediate.subject().clone(), int_kp);
                return (vec![leaf], false);
            }
        }

        // Reversed plan on a CA whose bundle is already compliant models
        // "reseller delivered reversed files": reverse the bundle first.
        let mut bundle = bundle.clone();
        // Some duplicate-bundle deployments also carry the root inside the
        // duplicated unit (paper: 401 chains with duplicated roots).
        if matches!(planned, PlannedDefect::DuplicateBundle { .. }) && drbg.chance(0.12) {
            match &mut bundle.ca_bundle {
                Some(cb) => cb.push(bundle.root.clone()),
                None => {
                    bundle.ca_bundle =
                        Some(vec![bundle.intermediate.clone(), bundle.root.clone()])
                }
            }
        }
        if planned == PlannedDefect::Reversed {
            if let Some(cb) = &mut bundle.ca_bundle {
                // Ensure reversed delivery (include the root like the
                // reversed resellers do).
                let mut b = vec![bundle.intermediate.clone(), bundle.root.clone()];
                b.reverse();
                *cb = b;
            } else {
                bundle.fullchain = None;
                bundle.ca_bundle = Some(vec![bundle.root.clone(), bundle.intermediate.clone()]);
            }
        }

        let files = assemble(&bundle, &behavior, server);
        match server.deploy(&files) {
            Ok(served) => (served, false),
            Err(DeployError::DuplicateLeaf) | Err(DeployError::KeyMismatch) | Err(DeployError::NoCertificate) => {
                // Admin sees the error and follows the guide instead.
                let files = assemble(&bundle, &AdminBehavior::FollowGuide, server);
                let served = server.deploy(&files).expect("guided deployment succeeds");
                (served, true)
            }
        }
    }

    fn multipath_list(
        &self,
        bundle: &ccc_netsim::ca::IssuedBundle,
        drbg: &mut Drbg,
    ) -> Vec<Certificate> {
        // Find a cross pair under this bundle's CA if one exists;
        // otherwise fall back to any cross pair (rare path).
        let root_idx = self
            .root_index_by_subject
            .get(bundle.root.subject())
            .copied()
            .unwrap_or(0);
        let pair = self
            .universe
            .cross_signed
            .iter()
            .find(|cs| cs.subject.0 == root_idx)
            .or_else(|| self.universe.cross_signed.first())
            .expect("universe has cross pairs");
        let (ri, ii) = pair.subject;
        let int = &self.universe.roots[ri].intermediates[ii];
        // Re-issue the leaf under the cross-signed intermediate.
        let kp = &self.leaf_keys[drbg.below(self.leaf_keys.len() as u64) as usize];
        let leaf = CertificateBuilder::leaf_profile(&bundle.domain)
            .validity(bundle.leaf.validity().not_before, bundle.leaf.validity().not_after)
            .aia_ca_issuers(int.aia_uri.clone())
            .issued_by(&kp.public, int.cert.subject().clone(), &int.keypair);
        // Paper: cross certificates are mostly inserted at the wrong spot
        // (before their sibling), creating a reversed path.
        if drbg.chance(0.8) {
            vec![leaf, int.cert.clone(), pair.cross_cert.clone()]
        } else {
            vec![leaf, pair.cross_cert.clone(), int.cert.clone()]
        }
    }

    /// The paper's most common reversed shape: the true chain is
    /// leaf <- subca <- intermediate (<- root omitted), served as
    /// [leaf, intermediate, subca] (optionally with the root inserted at
    /// position 1 for the four-certificate 1->2->3->0 variant).
    fn deep_reversed_list(
        &self,
        bundle: &ccc_netsim::ca::IssuedBundle,
        drbg: &mut Drbg,
    ) -> Vec<Certificate> {
        let root_idx = self.root_index(&bundle.root);
        let (sub_dn, sub_kp, sub_cert, _) = &self.sub_cas[root_idx];
        let int0 = &self.universe.roots[root_idx].intermediates[0];
        let kp = &self.leaf_keys[drbg.below(self.leaf_keys.len() as u64) as usize];
        let leaf = CertificateBuilder::leaf_profile(&bundle.domain)
            .validity(
                bundle.leaf.validity().not_before,
                bundle.leaf.validity().not_after,
            )
            .issued_by(&kp.public, sub_dn.clone(), sub_kp);
        if drbg.chance(0.25) {
            vec![leaf, bundle.root.clone(), int0.cert.clone(), sub_cert.clone()]
        } else {
            vec![leaf, int0.cert.clone(), sub_cert.clone()]
        }
    }

    /// Memoized lookup of the issuing intermediate's key pair (keys are
    /// derived once at construction; per-rank paths only borrow).
    fn intermediate_keypair(&self, bundle: &ccc_netsim::ca::IssuedBundle) -> &KeyPair {
        self.int_keys_by_subject
            .get(bundle.intermediate.subject())
            .expect("bundle intermediate always from the universe")
    }

    /// Memoized root-certificate → universe-index lookup (subject DNs are
    /// unique per root; avoids whole-certificate equality scans per rank).
    fn root_index(&self, root_cert: &Certificate) -> usize {
        *self
            .root_index_by_subject
            .get(root_cert.subject())
            .expect("root from universe")
    }

    fn foreign_chain(&self, rank: usize, drbg: &mut Drbg) -> Vec<Certificate> {
        // A chain from a different hierarchy managed by the same admin
        // (often government CAs in the paper's example).
        let gov_idx = self.universe.roots.len() - 2;
        let gov = &self.universe.roots[gov_idx];
        let int = &gov.intermediates[drbg.below(gov.intermediates.len() as u64) as usize];
        let kp = &self.leaf_keys[drbg.below(self.leaf_keys.len() as u64) as usize];
        let leaf = CertificateBuilder::leaf_profile(&format!("foreign{rank}.gov.sim"))
            .issued_by(&kp.public, int.cert.subject().clone(), &int.keypair);
        vec![leaf, int.cert.clone(), gov.cert.clone()]
    }

    fn test_cert_observation(
        &self,
        rank: usize,
        domain: &str,
        drbg: &mut Drbg,
    ) -> DomainObservation {
        let cn = match drbg.below(3) {
            0 => "Plesk",
            1 => "localhost",
            _ => "testexp",
        };
        let kp = &self.leaf_keys[drbg.below(self.leaf_keys.len() as u64) as usize];
        let cert = CertificateBuilder::new(DistinguishedName::cn(cn))
            .validity(scan_time().plus_days(-100), scan_time().plus_days(265))
            .self_signed(&KeyPair {
                private: kp.private.clone(),
                public: kp.public.clone(),
            });
        DomainObservation {
            rank,
            domain: domain.to_string(),
            ca: "self-signed",
            server: self.sample_server(drbg),
            served: vec![cert],
            planned: PlannedDefect::TestCertificate,
            terminal_akid_absent: false,
        }
    }

    /// Stream every observation through `f`.
    ///
    /// This is the memory-bounded access path: each observation is
    /// generated, handed to `f`, and dropped — a 1M-domain sweep holds
    /// exactly one observation at a time. Multi-consumer sweeps should use
    /// the fused pipeline in `ccc-bench` (one generation, N analyses)
    /// rather than calling `for_each` once per analysis.
    pub fn for_each(&self, mut f: impl FnMut(DomainObservation)) {
        for rank in 0..self.spec.domains {
            f(self.observation(rank));
        }
    }

    /// Collect all observations.
    ///
    /// **Only for small corpora**: memory is O(corpus), unlike
    /// [`for_each`](Self::for_each) (O(1)) and [`ObservationStore`]
    /// (O(capacity)). Prefer those for anything that scales with
    /// `spec.domains`.
    pub fn collect(&self) -> Vec<DomainObservation> {
        (0..self.spec.domains).map(|r| self.observation(r)).collect()
    }
}

/// Bounded per-worker observation reuse buffer.
///
/// [`Corpus::observation`] regenerates from the per-rank DRBG fork on
/// every call — repeating the certificate building, DER encoding, and
/// fingerprinting each time. An `ObservationStore` memoizes the most
/// recently generated observations in a fixed ring (slot = `rank %
/// capacity`), so consumers that revisit nearby ranks (fused analysis
/// passes, benchmark sweeps that loop over a window) pay the generation
/// cost **once** per rank while memory stays **O(capacity)** — never
/// O(corpus), whatever `spec.domains` is.
///
/// Each pipeline worker owns one store sized to (a bound on) its chunk,
/// which is where the fused sweep's "generate each observation a single
/// time" guarantee comes from.
#[derive(Debug)]
pub struct ObservationStore<'c> {
    corpus: &'c Corpus,
    slots: Vec<Option<DomainObservation>>,
    hits: usize,
    misses: usize,
}

impl<'c> ObservationStore<'c> {
    /// A store over `corpus` holding at most `capacity` observations
    /// (`capacity == 0` is treated as 1).
    pub fn new(corpus: &'c Corpus, capacity: usize) -> ObservationStore<'c> {
        ObservationStore {
            corpus,
            slots: (0..capacity.max(1)).map(|_| None).collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of observations the store can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The observation for `rank`, generated on first access and reused
    /// from the ring until evicted by a colliding rank.
    pub fn get(&mut self, rank: usize) -> &DomainObservation {
        let slot = rank % self.slots.len();
        match &self.slots[slot] {
            Some(obs) if obs.rank == rank => self.hits += 1,
            _ => {
                self.misses += 1;
                self.slots[slot] = Some(self.corpus.observation(rank));
            }
        }
        self.slots[slot].as_ref().expect("slot populated above")
    }

    /// `(hits, misses)` — misses equal the number of generations paid.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_core::topology::IssuanceChecker;
    use ccc_core::{analyze_order, CompletenessAnalyzer};
    use std::collections::BTreeMap;

    fn small_corpus() -> Corpus {
        Corpus::new(CorpusSpec::calibrated(2024, 400))
    }

    #[test]
    fn deterministic_per_rank() {
        let c1 = small_corpus();
        let c2 = small_corpus();
        for rank in [0usize, 7, 99, 399] {
            let a = c1.observation(rank);
            let b = c2.observation(rank);
            assert_eq!(a.served, b.served, "rank {rank}");
            assert_eq!(a.planned, b.planned);
        }
    }

    #[test]
    fn majority_compliant() {
        let corpus = small_corpus();
        let mut compliant = 0;
        corpus.for_each(|obs| {
            if obs.planned == PlannedDefect::None {
                compliant += 1;
            }
        });
        // Paper: ~97% compliant; at n=400 allow slack.
        assert!(compliant > 320, "only {compliant}/400 compliant");
    }

    #[test]
    fn planned_defects_materialize() {
        // Use a bigger corpus and verify each planned defect appears in
        // the analyzers' output.
        let corpus = Corpus::new(CorpusSpec::calibrated(7, 1500));
        let checker = IssuanceChecker::new();
        let analyzer =
            CompletenessAnalyzer::new(&checker, corpus.programs.unified(), Some(&corpus.aia));
        let mut seen: BTreeMap<PlannedDefect, usize> = BTreeMap::new();
        let mut mismatches = 0usize;
        corpus.for_each(|obs| {
            *seen.entry(obs.planned).or_insert(0) += 1;
            let order = analyze_order(&obs.served, &checker);
            match obs.planned {
                PlannedDefect::DuplicateLeaf if order.duplicates.leaf == 0 => {
                    mismatches += 1;
                }
                PlannedDefect::DuplicateBundle { .. } if order.duplicates.total() == 0 => {
                    mismatches += 1;
                }
                PlannedDefect::Reversed if !order.has_reversed() => {
                    mismatches += 1;
                }
                PlannedDefect::StaleLeaves
                | PlannedDefect::ForeignChain
                | PlannedDefect::UnrelatedRoot
                    if !order.has_irrelevant() =>
                {
                    mismatches += 1;
                }
                PlannedDefect::MultiPath if !order.has_multiple_paths() => {
                    mismatches += 1;
                }
                PlannedDefect::Incomplete => {
                    let c = analyzer.analyze(&obs.served);
                    if c.completeness != ccc_core::Completeness::Incomplete {
                        mismatches += 1;
                    }
                }
                PlannedDefect::None if !order.is_compliant() => {
                    mismatches += 1;
                }
                _ => {}
            }
        });
        assert_eq!(mismatches, 0, "planned defects must materialize: {seen:?}");
        // The corpus at n=1500 should exercise several defect kinds.
        assert!(seen.len() >= 5, "{seen:?}");
    }

    #[test]
    fn wrong_host_chains_mismatch() {
        let corpus = Corpus::new(CorpusSpec::calibrated(11, 800));
        let mut found = 0;
        corpus.for_each(|obs| {
            if obs.planned == PlannedDefect::WrongHost {
                found += 1;
                let placement = ccc_core::classify_leaf_placement(&obs.domain, &obs.served);
                assert_eq!(
                    placement,
                    ccc_core::LeafPlacement::CorrectlyPlacedMismatched,
                    "rank {}",
                    obs.rank
                );
            }
        });
        assert!(found > 20, "expected ~6.9% wrong-host, found {found}/800");
    }

    #[test]
    fn test_certs_classified_other() {
        let corpus = Corpus::new(CorpusSpec::calibrated(13, 2000));
        let mut found = 0;
        corpus.for_each(|obs| {
            if obs.planned == PlannedDefect::TestCertificate {
                found += 1;
                let placement = ccc_core::classify_leaf_placement(&obs.domain, &obs.served);
                assert_eq!(placement, ccc_core::LeafPlacement::Other);
            }
        });
        assert!(found >= 3, "expected ~0.6% test certs, found {found}/2000");
    }

    #[test]
    fn akid_absent_rate_close_to_target() {
        let corpus = Corpus::new(CorpusSpec::calibrated(17, 1000));
        let mut absent = 0;
        corpus.for_each(|obs| {
            if obs.terminal_akid_absent {
                absent += 1;
            }
        });
        let rate = absent as f64 / 1000.0;
        assert!((0.19..=0.31).contains(&rate), "rate {rate}");
    }

    #[test]
    fn observation_store_reuses_within_capacity() {
        let corpus = small_corpus();
        let mut store = ObservationStore::new(&corpus, 8);
        assert_eq!(store.capacity(), 8);
        // First sweep over a window: all misses.
        for rank in 0..8 {
            let obs = store.get(rank);
            assert_eq!(obs.rank, rank);
        }
        assert_eq!(store.stats(), (0, 8));
        // Second sweep over the same window: all hits, observations match
        // a fresh generation bit-for-bit.
        for rank in 0..8 {
            let fresh = corpus.observation(rank);
            let cached = store.get(rank);
            assert_eq!(cached.served, fresh.served, "rank {rank}");
            assert_eq!(cached.planned, fresh.planned);
        }
        assert_eq!(store.stats(), (8, 8));
        // A colliding rank evicts and regenerates correctly.
        let obs = store.get(16); // slot 0
        assert_eq!(obs.rank, 16);
        assert_eq!(store.stats(), (8, 9));
        assert_eq!(store.get(0).rank, 0); // regenerated after eviction
        assert_eq!(store.stats(), (8, 10));
    }

    #[test]
    fn observation_store_zero_capacity_degenerates_to_one() {
        let corpus = small_corpus();
        let mut store = ObservationStore::new(&corpus, 0);
        assert_eq!(store.capacity(), 1);
        assert_eq!(store.get(3).rank, 3);
        assert_eq!(store.get(3).rank, 3);
        assert_eq!(store.stats(), (1, 1));
    }

    #[test]
    fn fault_plan_follows_spec_rate() {
        let calibrated = Corpus::new(CorpusSpec::calibrated(7, 4));
        assert!(calibrated.fault_plan().is_zero());
        assert_eq!(calibrated.fault_plan(), ccc_netsim::FaultPlan::zero(7));

        let chaotic = Corpus::new(CorpusSpec::chaos(7, 4, 0.2));
        let plan = chaotic.fault_plan();
        assert!(!plan.is_zero());
        assert_eq!(plan, ccc_netsim::FaultPlan::with_fault_rate(7, 0.2));
        // Sweeping an explicit rate over the calibrated corpus matches the
        // chaos-spec plan (same seed, same rate).
        assert_eq!(calibrated.fault_plan_with_rate(0.2), plan);
    }

    #[test]
    fn cache_contains_only_big_ca_intermediates() {
        let corpus = small_corpus();
        let cache = corpus.intermediate_cache();
        assert!(!cache.is_empty());
        for cert in &cache {
            let org = cert.subject().attributes().iter().find_map(|(t, v)| {
                (*t == ccc_x509::AttributeType::Organization).then_some(v.clone())
            });
            let org = org.unwrap_or_default();
            assert!(
                ["Let's Encrypt Sim", "DigiCert Sim", "Sectigo Sim", "ZeroSSL Sim"]
                    .contains(&org.as_str()),
                "unexpected cached org {org}"
            );
        }
    }
}
