//! Key-derivation memoization: a corpus pass must not re-derive CA keys.
//!
//! `Corpus::new` derives every CA / intermediate / sub-CA / leaf key pair
//! exactly once (through `CaUniverse::generate` and the corpus caches).
//! The per-rank generation paths — stale leaves, incomplete chains,
//! multi-path, deep-reversed — only *borrow* those keys. This test pins
//! that property with the global derivation counter: generating 1k domain
//! observations performs zero additional keypair derivations.
//!
//! Kept as its own integration-test binary so no concurrently running test
//! can bump the process-global counter mid-measurement.

use ccc_crypto::keypair_derivations;
use ccc_testgen::{Corpus, CorpusSpec};

#[test]
fn thousand_domain_pass_derives_each_ca_key_once() {
    let corpus = Corpus::new(CorpusSpec::calibrated(42, 1000));
    let after_construction = keypair_derivations();
    assert!(
        after_construction > 0,
        "corpus construction must derive the universe's keys"
    );

    // Full 1k-domain pass: every defect path, including the ones that
    // historically re-derived intermediate keys per rank.
    let mut served_total = 0usize;
    corpus.for_each(|obs| served_total += obs.served.len());
    assert!(served_total > 0);

    assert_eq!(
        keypair_derivations(),
        after_construction,
        "observation pass must not derive any new key pairs"
    );

    // A second corpus with the same spec derives the same number of keys
    // again (once per key, not once per domain): the per-corpus cost is
    // independent of how many observations are drawn afterwards.
    let _corpus2 = Corpus::new(CorpusSpec::calibrated(42, 1000));
    let after_second = keypair_derivations();
    assert_eq!(after_second - after_construction, after_construction);
}
