//! Subgroup membership at the corpus key-construction boundary.
//!
//! `PublicKey::from_bytes` is deliberately permissive (it checks only
//! `y ∈ [2, p)`, like real validators parsing SPKIs); the order-`q`
//! subgroup check is an explicit, cached opt-in. Two properties are pinned
//! here: every key the corpus generator constructs — roots,
//! intermediates, sub-CAs, leaves — is a genuine subgroup member (they are
//! all `g^x`, so anything else would be a generator bug), and a crafted
//! small-order element smuggled through `from_bytes` is caught by the
//! check.

use ccc_bignum::Uint;
use ccc_crypto::{Group, PublicKey};
use ccc_testgen::{Corpus, CorpusSpec};

#[test]
fn corpus_constructed_keys_are_subgroup_members() {
    let corpus = Corpus::new(CorpusSpec::calibrated(7, 50));
    let mut checked = 0usize;
    for root in &corpus.universe.roots {
        assert!(
            root.cert.public_key().is_subgroup_member(),
            "root {} key escaped the subgroup",
            root.name
        );
        checked += 1;
        for int in &root.intermediates {
            assert!(
                int.cert.public_key().is_subgroup_member(),
                "intermediate of {} escaped the subgroup",
                root.name
            );
            checked += 1;
        }
    }
    // Served observations exercise leaf + sub-CA keys too.
    let mut served_checked = 0usize;
    corpus.for_each(|obs| {
        for cert in &obs.served {
            assert!(cert.public_key().is_subgroup_member());
            served_checked += 1;
        }
    });
    assert!(checked > 0, "universe had no CA keys to check");
    assert!(served_checked > 0, "corpus served no certificates");
}

#[test]
fn crafted_order_two_element_is_caught() {
    // y = p - 1 has order 2 in Z_p* (it is -1): it passes the range check
    // in from_bytes but fails y^q ≡ 1, for both built-in groups.
    for group in [Group::simulation_256(), Group::rfc3526_1536()] {
        let bytes = group
            .p
            .checked_sub(&Uint::one())
            .expect("p > 1")
            .to_bytes_be_padded(group.element_len)
            .expect("p - 1 fits the element length");
        let outsider =
            PublicKey::from_bytes(group, &bytes).expect("range check admits p - 1");
        assert!(
            !outsider.is_subgroup_member(),
            "{:?}: order-2 element accepted as subgroup member",
            group.id
        );
    }
}
