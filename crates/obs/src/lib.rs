//! Process-wide observability: a metrics registry plus a span API.
//!
//! The paper's tables are aggregate measurements; a production-scale
//! reproduction additionally has to answer *where time and failures go* —
//! builder backtracking, AIA retries, verify routing — without re-running
//! a profiling binary. This crate is the substrate the other layers hang
//! that telemetry on:
//!
//! - [`MetricsRegistry`]: a process-global registry of named counters,
//!   gauges, and fixed log₂-bucket histograms. Every cell is a `ccc-mc`
//!   shim atomic, so under `--features model-check` the model checker
//!   explores metric updates together with the cache state they
//!   instrument (and `ci/check_raw_sync.sh` enforces the shim use).
//! - [`span!`]: scope guards that record nested wall durations (and, via
//!   [`SpanGuard::record_sim_ms`], simulated-clock durations) into
//!   histograms named after the `parent/child` span path.
//! - [`render_prometheus`] / [`render_json`]: two renderers over a
//!   [`Snapshot`] — Prometheus text exposition and the same compact
//!   no-serde JSON shape as `ccc-lint`'s `json` module (objects with
//!   ordered keys, no whitespace), so `json::parse` round-trips it.
//!
//! ## Naming scheme
//!
//! Series are `ccc_<subsystem>_<what>[_<unit>][_total]`, with optional
//! labels baked into the series name (`ccc_netsim_fetch_outcomes_total{class="dead"}`).
//! Counters end in `_total`; quantities carry their unit (`_ms`, `_us`).
//!
//! ## Stable vs. volatile
//!
//! Each metric is registered as **stable** (bit-identical for a fixed
//! workload regardless of worker count, wall clock, or scheduling — counts
//! of deterministic work, simulated-clock milliseconds) or **volatile**
//! (wall-time durations, thread gauges, schedule-dependent routing such as
//! fixed-base-table hit counts). [`Snapshot::stable_only`] filters to the
//! former; the determinism CI job and the golden snapshots compare only
//! stable series, while the full exposition always includes both (volatile
//! families are flagged with a `# VOLATILE` comment line).

pub mod registry;
pub mod render;
pub mod span;

pub use registry::{
    Counter, Gauge, Histogram, HistogramSample, MetricKind, MetricSample, MetricsRegistry,
    SampleValue, Snapshot, HISTOGRAM_BUCKETS,
};
pub use render::{render_json, render_prometheus};
pub use span::SpanGuard;

/// Enter a named span: `let _guard = span!("cmd.matrix");`.
///
/// The guard records the wall duration of its scope into the volatile
/// histogram `ccc_span_wall_us{span="<path>"}` and bumps the stable
/// counter `ccc_span_calls_total{span="<path>"}`, where `<path>` is the
/// `/`-joined chain of spans open on this thread (guards must be dropped
/// in LIFO order, which scope-bound `let` bindings guarantee).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}
