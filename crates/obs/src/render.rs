//! Snapshot renderers: Prometheus text exposition and compact JSON.

use crate::registry::{SampleValue, Snapshot, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// Split a full series name into its family (base) name and the inner
/// label list: `a_total{class="dead"}` → `("a_total", Some("class=\"dead\""))`.
fn split_name(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// Join an optional existing label list with one extra `k="v"` pair.
fn with_label(labels: Option<&str>, extra: &str) -> String {
    match labels {
        Some(inner) => format!("{{{inner},{extra}}}"),
        None => format!("{{{extra}}}"),
    }
}

/// The upper bound of histogram bucket `i` as a Prometheus `le` value.
fn bucket_bound(i: usize) -> String {
    if i == HISTOGRAM_BUCKETS - 1 {
        "+Inf".to_string()
    } else {
        (1u64 << i).to_string()
    }
}

/// Render a snapshot in the Prometheus text exposition format.
///
/// `# HELP` / `# TYPE` headers are emitted once per family (series with
/// the same base name are adjacent thanks to the snapshot's sort order);
/// volatile families additionally carry a `# VOLATILE <family>` comment
/// line, which exposition parsers ignore and the determinism tooling keys
/// on. Histograms expand into cumulative `_bucket{le=...}` series plus
/// `_sum` / `_count`, per the format.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for m in &snap.entries {
        let (family, labels) = split_name(&m.name);
        if family != last_family {
            let _ = writeln!(out, "# HELP {family} {}", m.help);
            let _ = writeln!(out, "# TYPE {family} {}", m.kind.as_str());
            if !m.stable {
                let _ = writeln!(out, "# VOLATILE {family}");
            }
            last_family = family.to_string();
        }
        match &m.value {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                let _ = writeln!(out, "{} {v}", m.name);
            }
            SampleValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, bucket) in h.buckets.iter().enumerate() {
                    cumulative = cumulative.saturating_add(*bucket);
                    let le = format!("le=\"{}\"", bucket_bound(i));
                    let _ = writeln!(
                        out,
                        "{family}_bucket{} {cumulative}",
                        with_label(labels, &le)
                    );
                }
                let suffix = labels.map(|l| format!("{{{l}}}")).unwrap_or_default();
                let _ = writeln!(out, "{family}_sum{suffix} {}", h.sum);
                let _ = writeln!(out, "{family}_count{suffix} {}", h.count);
            }
        }
    }
    out
}

/// JSON string escaping, byte-compatible with `ccc-lint`'s `json::escape`.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a snapshot as one compact JSON object keyed by series name, in
/// the same no-serde shape `ccc-lint`'s `json` module emits (ordered
/// keys, no whitespace) — `json::parse` round-trips the output.
///
/// Per series: `{"kind":...,"stable":...,"help":...,` then `"value"` for
/// counters/gauges or `"count"`/`"sum"`/`"buckets"` (non-cumulative,
/// index-aligned with the fixed log₂ bounds) for histograms.
pub fn render_json(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    for (i, m) in snap.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"kind\":\"{}\",\"stable\":{},\"help\":\"{}\",",
            escape(&m.name),
            m.kind.as_str(),
            m.stable,
            escape(m.help)
        );
        match &m.value {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                let _ = write!(out, "\"value\":{v}}}");
            }
            SampleValue::Histogram(h) => {
                let _ = write!(out, "\"count\":{},\"sum\":{},\"buckets\":[", h.count, h.sum);
                for (j, bucket) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{bucket}");
                }
                out.push_str("]}");
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("ccc_demo_builds_total", "Builds processed.").add(3);
        reg.counter_volatile(
            "ccc_demo_wall_us_total",
            "Wall microseconds (volatile).",
        )
        .add(1234);
        reg.counter("ccc_demo_outcomes_total{class=\"dead\"}", "Outcomes by class.")
            .add(2);
        reg.counter("ccc_demo_outcomes_total{class=\"ok\"}", "Outcomes by class.")
            .add(7);
        reg.histogram("ccc_demo_latency_ms", "Per-build simulated latency.")
            .observe(5);
        reg
    }

    #[test]
    fn prometheus_families_labels_and_histograms() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE ccc_demo_builds_total counter"));
        assert!(text.contains("ccc_demo_builds_total 3"));
        // One header per family even with several labeled series.
        assert_eq!(
            text.matches("# TYPE ccc_demo_outcomes_total counter").count(),
            1
        );
        assert!(text.contains("ccc_demo_outcomes_total{class=\"dead\"} 2"));
        assert!(text.contains("ccc_demo_outcomes_total{class=\"ok\"} 7"));
        // Histogram expansion: cumulative buckets, +Inf, sum, count.
        assert!(text.contains("# TYPE ccc_demo_latency_ms histogram"));
        assert!(text.contains("ccc_demo_latency_ms_bucket{le=\"4\"} 0"));
        assert!(text.contains("ccc_demo_latency_ms_bucket{le=\"8\"} 1"));
        assert!(text.contains("ccc_demo_latency_ms_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("ccc_demo_latency_ms_sum 5"));
        assert!(text.contains("ccc_demo_latency_ms_count 1"));
        // Volatile families are flagged; stable ones are not.
        assert!(text.contains("# VOLATILE ccc_demo_wall_us_total"));
        assert!(!text.contains("# VOLATILE ccc_demo_builds_total"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            value.parse::<u64>().expect("sample values are integers");
        }
    }

    #[test]
    fn json_is_compact_and_ordered() {
        let json = render_json(&sample_registry().snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains(": "), "compact form has no whitespace");
        assert!(json.contains("\"ccc_demo_builds_total\":{\"kind\":\"counter\",\"stable\":true,"));
        assert!(json.contains("\"stable\":false"));
        assert!(json.contains("\"buckets\":[0,0,0,1,0"));
        // Keys appear in snapshot (sorted) order.
        let builds = json.find("ccc_demo_builds_total").expect("builds key");
        let wall = json.find("ccc_demo_wall_us_total").expect("wall key");
        assert!(builds < wall);
    }
}
