//! Scope-guard spans feeding the registry's histograms.
//!
//! A span names a phase (`"cmd.matrix"`, `"pipeline.run"`); entering one
//! pushes it onto a thread-local stack so nested spans record under their
//! full `parent/child` path. Three series per path:
//!
//! - `ccc_span_calls_total{span="<path>"}` — stable counter of entries;
//! - `ccc_span_wall_us{span="<path>"}` — volatile histogram of wall
//!   durations (microseconds);
//! - `ccc_span_sim_ms_total{span="<path>"}` — stable counter of simulated
//!   milliseconds charged via [`SpanGuard::record_sim_ms`] (the builder's
//!   simulated clock is deterministic, so this side stays comparable
//!   across runs while the wall side does not).

use crate::registry::MetricsRegistry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An open span; records on drop. Created via [`crate::span!`] or
/// [`SpanGuard::enter`]. Guards must close in LIFO order (scope-bound
/// `let` bindings guarantee this).
#[derive(Debug)]
pub struct SpanGuard {
    path: String,
    start: Instant,
}

impl SpanGuard {
    /// Enter a span named `name`, nesting under any span already open on
    /// this thread.
    pub fn enter(name: &'static str) -> SpanGuard {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        MetricsRegistry::global()
            .counter(
                &format!("ccc_span_calls_total{{span=\"{path}\"}}"),
                "Times each span path was entered.",
            )
            .inc();
        SpanGuard {
            path,
            start: Instant::now(),
        }
    }

    /// The full `parent/child` path this guard records under.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Charge `ms` simulated milliseconds to this span path (deterministic
    /// simulated-clock time, e.g. `BuildStats::sim_latency_ms`, as opposed
    /// to the wall duration the guard records on drop).
    pub fn record_sim_ms(&self, ms: u64) {
        MetricsRegistry::global()
            .counter(
                &format!("ccc_span_sim_ms_total{{span=\"{}\"}}", self.path),
                "Simulated milliseconds charged per span path.",
            )
            .add(ms);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        MetricsRegistry::global()
            .histogram_volatile(
                &format!("ccc_span_wall_us{{span=\"{}\"}}", self.path),
                "Wall-clock span duration in microseconds (volatile).",
            )
            .observe(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_slash_paths() {
        {
            let outer = crate::span!("obs_test.outer");
            assert_eq!(outer.path(), "obs_test.outer");
            {
                let inner = crate::span!("obs_test.inner");
                assert_eq!(inner.path(), "obs_test.outer/obs_test.inner");
                inner.record_sim_ms(7);
            }
        }
        let snap = MetricsRegistry::global().snapshot();
        assert_eq!(
            snap.counter("ccc_span_calls_total{span=\"obs_test.outer\"}"),
            1
        );
        assert_eq!(
            snap.counter("ccc_span_calls_total{span=\"obs_test.outer/obs_test.inner\"}"),
            1
        );
        assert_eq!(
            snap.counter("ccc_span_sim_ms_total{span=\"obs_test.outer/obs_test.inner\"}"),
            7
        );
        // The wall histogram exists and is volatile.
        let wall = snap
            .get("ccc_span_wall_us{span=\"obs_test.outer\"}")
            .expect("wall histogram registered");
        assert!(!wall.stable);
    }
}
